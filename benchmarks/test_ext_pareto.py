"""Extension: bucket-size accuracy-throughput Pareto frontier."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.datasets import lidar_frame_pair
from repro.harness.exp_extensions import ext_pareto
from repro.kdtree import KdTreeConfig


@pytest.fixture(scope="module")
def result():
    return ext_pareto()


def test_ext_pareto_shape_and_kernel(benchmark, result):
    ref, qry = lidar_frame_pair(15_000, seed=0)
    accel = QuickNN(QuickNNConfig(n_fus=64, tree=KdTreeConfig(bucket_capacity=1024)))
    # The timed kernel: the largest-bucket end of the frontier.
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
