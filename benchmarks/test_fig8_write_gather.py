"""Figure 8: write-gather cache memory-access speedup sweep."""

import pytest

from conftest import attach_and_assert
from repro.arch import WriteGatherCache
from repro.harness.exp_memory import fig8_write_gather


@pytest.fixture(scope="module")
def result():
    return fig8_write_gather()


def test_fig8_shape_and_kernel(benchmark, result, frames_30k):
    ref, _ = frames_30k
    from repro.kdtree import KdTreeConfig, build_tree

    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=256))
    leaf_to_bucket = {n.index: n.bucket_id for n in tree.nodes if n.is_leaf}
    stream = [leaf_to_bucket[int(l)] for l in tree.descend_batch(ref.xyz)]

    # The timed kernel: pushing a full 30k-point placement stream
    # through the paper's 128 x 4 write-gather configuration.
    def kernel():
        return WriteGatherCache(128, 4).process_stream(stream)

    benchmark.pedantic(kernel, rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
