"""Micro-benchmark of the vectorized build pipeline vs the recursive one.

Measures the per-frame pipeline costs the vectorized builder attacks:
full build (construction + placement), placement alone, the batched
incremental update, and the randomized forest build.  Every pair is
first checked for equivalence (bit-identical trees for the single-tree
builder, identical update results for the incremental path), then timed
best-of-N; ratios land in ``extra_info``.  As with the engine
micro-benchmarks, CI only smoke-asserts not-slower — the hard multiple
lives in the PR notes, because shared runners are too noisy to gate on
a ratio.  Each test also records a trajectory point (points/second)
with the ``bench_build`` recorder; with ``QUICKNN_BENCH_DIR`` set the
session writes ``BENCH_build.json`` for the ``bench-diff`` gate.
"""

import time

import numpy as np

from repro.kdtree import (
    FlatKdTree,
    KdForest,
    KdForestConfig,
    KdTreeConfig,
    build_flat,
    build_tree,
    update_tree,
)


def _timed_runs(fn, rounds: int) -> list[float]:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times


def _best_of(fn, rounds: int) -> float:
    return min(_timed_runs(fn, rounds))


def test_build_vectorized_vs_legacy(benchmark, frames_30k, bench_build):
    ref, _ = frames_30k
    legacy_cfg = KdTreeConfig(bucket_capacity=256, builder="legacy")
    vect_cfg = KdTreeConfig(bucket_capacity=256, builder="vectorized")

    legacy, trace_l = build_tree(ref, legacy_cfg)
    vect, trace_v = build_tree(ref, vect_cfg)
    assert [(n.dim, n.threshold, n.left, n.right) for n in legacy.nodes] == \
           [(n.dim, n.threshold, n.left, n.right) for n in vect.nodes]
    assert all(np.array_equal(a, b) for a, b in zip(legacy.buckets, vect.buckets))
    assert trace_l.as_dict() == trace_v.as_dict()

    # The engine-facing fast path: frame in, queryable flat layout out.
    legacy_s = _best_of(
        lambda: FlatKdTree.from_tree(build_tree(ref, legacy_cfg)[0]), rounds=3
    )
    benchmark(lambda: build_flat(ref, vect_cfg))
    vect_times = _timed_runs(lambda: build_flat(ref, vect_cfg), rounds=5)
    vect_s = min(vect_times)
    speedup = legacy_s / vect_s
    benchmark.extra_info["legacy_ms"] = round(legacy_s * 1e3, 2)
    benchmark.extra_info["vectorized_ms"] = round(vect_s * 1e3, 2)
    benchmark.extra_info["speedup_vs_legacy"] = round(speedup, 2)
    bench_build.add(
        "flat_vectorized", work=ref.xyz.shape[0], times_s=vect_times,
        points=int(ref.xyz.shape[0]), speedup_vs_legacy=round(speedup, 2),
    )
    print(f"\nbuild 30k: legacy {legacy_s * 1e3:.1f} ms, "
          f"vectorized {vect_s * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 1.0


def test_placement_vectorized_vs_legacy(benchmark, frames_30k, bench_build):
    ref, _ = frames_30k
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=256))
    flat = tree.flat()
    xyz = tree.points

    assert np.array_equal(flat.descend_fast(xyz), tree.descend_batch(xyz))

    legacy_s = _best_of(lambda: tree.descend_batch(xyz), rounds=3)
    benchmark(lambda: flat.descend_fast(xyz))
    vect_times = _timed_runs(lambda: flat.descend_fast(xyz), rounds=5)
    vect_s = min(vect_times)
    speedup = legacy_s / vect_s
    benchmark.extra_info["legacy_ms"] = round(legacy_s * 1e3, 2)
    benchmark.extra_info["vectorized_ms"] = round(vect_s * 1e3, 2)
    benchmark.extra_info["speedup_vs_legacy"] = round(speedup, 2)
    bench_build.add(
        "placement_fast", work=xyz.shape[0], times_s=vect_times,
        points=int(xyz.shape[0]), speedup_vs_legacy=round(speedup, 2),
    )
    print(f"\nplacement 30k: descend_batch {legacy_s * 1e3:.1f} ms, "
          f"descend_fast {vect_s * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 1.0


def test_incremental_update_batched(benchmark, frames_30k, bench_build):
    ref, qry = frames_30k
    config = KdTreeConfig(bucket_capacity=256)
    tree, _ = build_tree(ref, config)
    new_points = qry.xyz[:5_000]

    fast, trace_f = update_tree(tree, new_points, config, batched=True)
    slow, trace_s = update_tree(tree, new_points, config, batched=False)
    assert fast.nodes == slow.nodes
    assert all(np.array_equal(a, b) for a, b in zip(fast.buckets, slow.buckets))
    assert trace_f.as_dict() == trace_s.as_dict()

    scalar_s = _best_of(lambda: update_tree(tree, new_points, config, batched=False),
                        rounds=2)
    benchmark(lambda: update_tree(tree, new_points, config, batched=True))
    batched_times = _timed_runs(
        lambda: update_tree(tree, new_points, config, batched=True), rounds=3
    )
    batched_s = min(batched_times)
    speedup = scalar_s / batched_s
    benchmark.extra_info["scalar_ms"] = round(scalar_s * 1e3, 2)
    benchmark.extra_info["batched_ms"] = round(batched_s * 1e3, 2)
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    bench_build.add(
        "incremental_batched", work=new_points.shape[0], times_s=batched_times,
        points=int(new_points.shape[0]), speedup_vs_scalar=round(speedup, 2),
    )
    print(f"\nincremental +5k: scalar routing {scalar_s * 1e3:.1f} ms, "
          f"batched {batched_s * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 1.0


def test_forest_build_vectorized(benchmark, frames_30k, bench_build):
    ref, _ = frames_30k
    legacy = KdForest(ref, KdForestConfig(n_trees=4, bucket_capacity=64,
                                          builder="legacy"))
    vect = KdForest(ref, KdForestConfig(n_trees=4, bucket_capacity=64,
                                        builder="vectorized"))
    assert [len(t.nodes) for t in legacy.trees] == [len(t.nodes) for t in vect.trees]

    legacy_s = _best_of(lambda: legacy.build(ref), rounds=2)
    benchmark(lambda: vect.build(ref))
    vect_times = _timed_runs(lambda: vect.build(ref), rounds=2)
    vect_s = min(vect_times)
    speedup = legacy_s / vect_s
    benchmark.extra_info["legacy_ms"] = round(legacy_s * 1e3, 2)
    benchmark.extra_info["vectorized_ms"] = round(vect_s * 1e3, 2)
    benchmark.extra_info["speedup_vs_legacy"] = round(speedup, 2)
    bench_build.add(
        "forest_vectorized", work=4 * ref.xyz.shape[0], times_s=vect_times,
        points=int(ref.xyz.shape[0]), n_trees=4,
        speedup_vs_legacy=round(speedup, 2),
    )
    print(f"\nforest build 4x30k: legacy {legacy_s * 1e3:.1f} ms, "
          f"vectorized {vect_s * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 1.0
