"""Extension: QuickNN behind near-chip HBM (Section 7.2 outlook)."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_extensions import ext_hbm
from repro.sim import DramTimingParams


@pytest.fixture(scope="module")
def result():
    return ext_hbm()


def test_ext_hbm_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    accel = QuickNN(QuickNNConfig(n_fus=128, dram=DramTimingParams.hbm2()))
    # The timed kernel: the HBM-backed high-performance design point.
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
