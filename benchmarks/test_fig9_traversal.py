"""Figure 9: parallel tree traversal speedup per partition scheme."""

import numpy as np
import pytest

from conftest import attach_and_assert
from repro.arch import BankedTreeCache, TreeCacheConfig, simulate_traversal
from repro.datasets import lidar_frame
from repro.harness.exp_parallel import fig9_traversal
from repro.kdtree import KdTreeConfig, build_tree


@pytest.fixture(scope="module")
def result():
    return fig9_traversal()


def test_fig9_shape_and_kernel(benchmark, result):
    frame = lidar_frame(6_000, seed=0)
    tree, _ = build_tree(frame, KdTreeConfig(bucket_capacity=32))
    cache = BankedTreeCache(tree, TreeCacheConfig(replicated_levels=2),
                            rng=np.random.default_rng(0))

    # The timed kernel: an 8-worker cycle-accurate traversal pass.
    benchmark.pedantic(
        lambda: simulate_traversal(tree, frame.xyz, cache, n_workers=8),
        rounds=3, iterations=1,
    )
    attach_and_assert(benchmark, result)
