"""Figure 10: tree balance over a drive, static reuse vs incremental."""

import pytest

from conftest import attach_and_assert
from repro.datasets import DriveConfig, generate_drive
from repro.harness.exp_incremental import fig10_incremental
from repro.kdtree import KdTreeConfig, build_tree, update_tree


@pytest.fixture(scope="module")
def result():
    return fig10_incremental()


def test_fig10_shape_and_kernel(benchmark, result):
    config = KdTreeConfig(bucket_capacity=256)
    frames = list(generate_drive(
        DriveConfig(n_frames=2, target_points=15_000), seed=0
    ))
    tree, _ = build_tree(frames[0].cloud, config)

    # The timed kernel: one incremental update of a 15k-point frame.
    benchmark.pedantic(
        lambda: update_tree(tree, frames[1].cloud, config),
        rounds=3, iterations=1,
    )
    attach_and_assert(benchmark, result)
