"""Shared benchmark plumbing.

Each benchmark file regenerates one table or figure of the paper at
full scale, times its core kernel through pytest-benchmark, prints the
regenerated table, and asserts the experiment's shape checks — the
qualitative findings of the paper — all hold.

Trajectory artifacts: the engine and build micro-benchmarks also feed
a per-area :class:`TrajectoryRecorder`.  When ``QUICKNN_BENCH_DIR`` is
set, each area writes a ``BENCH_<area>.json`` in the same
``quicknn-bench-<area>/v1`` schema as the serving layer's
``BENCH_serve.json`` (best-of rates, per-repeat spread, per-core
normalization, honesty notes), so ``quicknn-experiments bench-diff``
can gate regressions across all three areas uniformly.
"""

from __future__ import annotations

import json
import os
import platform

import pytest


def attach_and_assert(benchmark, result) -> None:
    """Record the rendered table on the benchmark and assert its checks."""
    benchmark.extra_info["experiment"] = result.exp_id
    benchmark.extra_info["checks"] = {
        name: bool(ok) for name, ok in result.shape_checks.items()
    }
    print()
    print(result.to_text())
    assert result.all_checks_pass, f"failed shape checks: {result.failed_checks()}"


@pytest.fixture(scope="session")
def frames_30k():
    """The paper's 30k-point successive-frame pair (cached per session)."""
    from repro.datasets import lidar_frame_pair

    return lidar_frame_pair(30_000, seed=0)


# ----------------------------------------------------------------------
# Bench trajectory artifacts (BENCH_engine.json / BENCH_build.json)
# ----------------------------------------------------------------------
def _machine_info() -> dict:
    import numpy as np

    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


class TrajectoryRecorder:
    """Collects one area's benchmark points into a schema'd artifact.

    Every entry is a *rate* (work units per second — higher is better,
    like the serve artifact's qps) computed from best-of repeat
    timings, with the per-repeat rates kept so a diff can tell noise
    from regression.
    """

    def __init__(self, area: str):
        self.area = area
        self.benchmarks: list[dict] = []
        self.derived: dict = {}
        self.params: dict = {}

    def add(self, name: str, *, work: float, times_s: list[float],
            **extra) -> None:
        """Record one benchmark: ``work`` units over each repeat time."""
        cores = os.cpu_count() or 1
        runs = [work / t for t in times_s if t > 0]
        best = max(runs) if runs else 0.0
        entry = {
            "name": f"{self.area}.{name}",
            "qps": best,
            "qps_per_core": best / cores,
            "qps_runs": runs,
        }
        entry.update(extra)
        self.benchmarks.append(entry)

    def artifact(self) -> dict:
        machine = _machine_info()
        cores = machine["cpu_count"]
        notes = [
            "qps is work units (queries, points, rows) per second of the "
            "fastest repeat; per-repeat rates kept in qps_runs",
            "qps_per_core divides by os.cpu_count(); it normalizes machine "
            "size, not memory bandwidth or clock",
            "single-process kernels: cpu count only matters for BLAS "
            "threading inside the batched engine",
        ]
        if cores < 4:
            notes.append(
                f"measured on a {cores}-core machine; treat absolute rates "
                "as that machine's trajectory, not hardware-independent truth"
            )
        return {
            "schema": f"quicknn-bench-{self.area}/v1",
            "params": self.params,
            "machine": machine,
            "benchmarks": self.benchmarks,
            "derived": self.derived,
            "extra_info": {"notes": notes},
        }

    def write(self, directory: str) -> str:
        """Write ``BENCH_<area>.json``, merging by benchmark name.

        Different pytest sessions contribute different subsets of an
        area (the engine micro file vs the blocked micro file); a
        session must refresh the entries it re-measured without
        dropping the ones it didn't run.
        """
        path = os.path.join(directory, f"BENCH_{self.area}.json")
        doc = self.artifact()
        try:
            with open(path, encoding="utf-8") as fh:
                previous = json.load(fh)
        except (OSError, json.JSONDecodeError):
            previous = None
        if previous and previous.get("schema") == doc["schema"]:
            fresh = {b["name"] for b in doc["benchmarks"]}
            kept = [
                b for b in previous.get("benchmarks", [])
                if b.get("name") not in fresh
            ]
            doc["benchmarks"] = kept + doc["benchmarks"]
            doc["derived"] = {**previous.get("derived", {}), **doc["derived"]}
            doc["params"] = {**previous.get("params", {}), **doc["params"]}
        doc["benchmarks"].sort(key=lambda b: b.get("name", ""))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        return path


def _area_recorder(area: str):
    @pytest.fixture(scope="session")
    def recorder():
        rec = TrajectoryRecorder(area)
        yield rec
        out_dir = os.environ.get("QUICKNN_BENCH_DIR")
        if out_dir and rec.benchmarks:
            os.makedirs(out_dir, exist_ok=True)
            path = rec.write(out_dir)
            print(f"\n[bench-trajectory] wrote {path}")

    return recorder


bench_engine = _area_recorder("engine")
bench_build = _area_recorder("build")
