"""Shared benchmark plumbing.

Each benchmark file regenerates one table or figure of the paper at
full scale, times its core kernel through pytest-benchmark, prints the
regenerated table, and asserts the experiment's shape checks — the
qualitative findings of the paper — all hold.
"""

from __future__ import annotations

import pytest


def attach_and_assert(benchmark, result) -> None:
    """Record the rendered table on the benchmark and assert its checks."""
    benchmark.extra_info["experiment"] = result.exp_id
    benchmark.extra_info["checks"] = {
        name: bool(ok) for name, ok in result.shape_checks.items()
    }
    print()
    print(result.to_text())
    assert result.all_checks_pass, f"failed shape checks: {result.failed_checks()}"


@pytest.fixture(scope="session")
def frames_30k():
    """The paper's 30k-point successive-frame pair (cached per session)."""
    from repro.datasets import lidar_frame_pair

    return lidar_frame_pair(30_000, seed=0)
