"""Table 4: linear architecture FPS across FU counts and frame sizes."""

import pytest

from conftest import attach_and_assert
from repro.arch import LinearArch, LinearArchConfig
from repro.harness.exp_perf import table4_linear_fps


@pytest.fixture(scope="module")
def result():
    return table4_linear_fps()


def test_table4_shape_and_kernel(benchmark, result):
    arch = LinearArch(LinearArchConfig(n_fus=64))
    # The timed kernel: one 30k-frame traffic simulation.
    benchmark.pedantic(lambda: arch.simulate(30_000, 30_000, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
