"""Table 5: QuickNN FPS across FU counts and frame sizes."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_perf import table5_quicknn_fps


@pytest.fixture(scope="module")
def result():
    return table5_quicknn_fps()


def test_table5_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    accel = QuickNN(QuickNNConfig(n_fus=64))
    # The timed kernel: one steady-state QuickNN round at the paper's
    # headline operating point (64 FUs, 30k points, k=8).
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
