"""Extension: cross-check headline results on the highway environment."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.datasets import lidar_frame_pair
from repro.harness.exp_extensions import ext_crosscheck


@pytest.fixture(scope="module")
def result():
    return ext_crosscheck()


def test_ext_crosscheck_shape_and_kernel(benchmark, result):
    ref, qry = lidar_frame_pair(30_000, seed=0, scene_kind="highway")
    accel = QuickNN(QuickNNConfig(n_fus=64))
    # The timed kernel: the headline operating point on the second scene.
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
