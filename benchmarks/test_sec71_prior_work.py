"""Section 7.1: QuickNN scaled to prior accelerators' benchmarks."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_platforms import sec71_prior_accelerators


@pytest.fixture(scope="module")
def result():
    return sec71_prior_accelerators()


def test_sec71_shape_and_kernel(benchmark, result):
    accel = QuickNN(QuickNNConfig(n_fus=128))
    # The timed kernel: the Heinzle-scale 5k-point frame.
    benchmark.pedantic(lambda: accel.simulate(5_000, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
