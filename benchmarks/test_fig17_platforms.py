"""Figure 17: CPU / GPU / FPGA latency comparison across frame sizes."""

import pytest

from conftest import attach_and_assert
from repro.analysis.platforms import CPU_MODEL, GPU_MODEL
from repro.harness.exp_platforms import fig17_platforms


@pytest.fixture(scope="module")
def result():
    return fig17_platforms()


def test_fig17_shape_and_kernel(benchmark, result):
    # The timed kernel: the analytic platform sweep itself.
    def kernel():
        return [
            (CPU_MODEL.latency_seconds(n), GPU_MODEL.latency_seconds(n))
            for n in range(5_000, 35_000, 5_000)
        ]

    benchmark(kernel)
    attach_and_assert(benchmark, result)
