"""Extension: the 2n-workers-per-n-banks rule across bank counts."""

import numpy as np
import pytest

from conftest import attach_and_assert
from repro.arch import BankedTreeCache, TreeCacheConfig, simulate_traversal
from repro.datasets import lidar_frame
from repro.harness.exp_extensions import ext_banks
from repro.kdtree import KdTreeConfig, build_tree


@pytest.fixture(scope="module")
def result():
    return ext_banks()


def test_ext_banks_shape_and_kernel(benchmark, result):
    frame = lidar_frame(6_000, seed=0)
    tree, _ = build_tree(frame, KdTreeConfig(bucket_capacity=32))
    cache = BankedTreeCache(
        tree, TreeCacheConfig(n_banks=8, replicated_levels=3),
        rng=np.random.default_rng(0),
    )
    # The timed kernel: the 16-worker / 8-bank traversal.
    benchmark.pedantic(
        lambda: simulate_traversal(tree, frame.xyz, cache, n_workers=16),
        rounds=3, iterations=1,
    )
    attach_and_assert(benchmark, result)
