"""Figure 13: QuickNN memory bandwidth utilization."""

import pytest

from conftest import attach_and_assert
from repro.harness.exp_memory import fig13_bandwidth_utilization
from repro.sim import DramModel


@pytest.fixture(scope="module")
def result():
    return fig13_bandwidth_utilization()


def test_fig13_shape_and_kernel(benchmark, result):
    # The timed kernel: the DRAM timing model absorbing a frame's worth
    # of mixed sequential/scattered transactions.
    def kernel():
        dram = DramModel()
        for addr in range(0, 1 << 20, 4096):
            dram.access("Rd1", addr, 4096, write=False)
        dram.access_scattered("Wr1", 4_000, 96, write=True)
        dram.access_scattered("Rd3", 600, 3_080, write=False)
        return dram.stats.bandwidth_utilization()

    benchmark(kernel)
    attach_and_assert(benchmark, result)
