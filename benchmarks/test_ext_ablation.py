"""Extension: ablation of QuickNN's memory optimizations."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_extensions import ext_ablation


@pytest.fixture(scope="module")
def result():
    return ext_ablation()


def test_ext_ablation_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    accel = QuickNN(QuickNNConfig(n_fus=64, write_gather_capacity=1))
    # The timed kernel: the no-write-gather variant (one random DRAM
    # write per placed point).
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
