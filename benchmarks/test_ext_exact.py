"""Extension: the price of exactness on QuickNN's memory system."""

import pytest

from conftest import attach_and_assert
from repro.arch import ExactKdArch, QuickNNConfig
from repro.datasets import lidar_frame_pair
from repro.harness.exp_extensions import ext_exact_search


@pytest.fixture(scope="module")
def result():
    return ext_exact_search()


def test_ext_exact_shape_and_kernel(benchmark, result):
    ref, qry = lidar_frame_pair(15_000, seed=0)
    accel = ExactKdArch(QuickNNConfig(n_fus=64))
    # The timed kernel: one exact-search round (dominated by the
    # backtracking functional search).
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
