"""Micro-benchmark of the batched query engine vs. the per-query loop.

The engine's reason to exist is wall-clock: identical answers to the
loop paths, much faster.  This file measures both sides on the paper's
workload shape (10k queries against a 30k-point frame), records the
ratio in ``extra_info``, and smoke-asserts the engine is not slower —
the hard >=5x claim lives in the PR notes, not in CI, so noisy shared
runners cannot flake the suite.  Each test also records a trajectory
point (queries/second) with the ``bench_engine`` recorder; with
``QUICKNN_BENCH_DIR`` set the session writes ``BENCH_engine.json``
for the ``bench-diff`` regression gate.
"""

import time

import numpy as np

from repro.kdtree import KdTreeConfig, build_tree, knn_approx, knn_approx_loop, knn_exact
from repro.kdtree.search import knn_exact_instrumented


def _timed_runs(fn, rounds: int) -> list[float]:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times


def _best_of(fn, rounds: int) -> float:
    return min(_timed_runs(fn, rounds))


def test_engine_vs_loop_approx(benchmark, frames_30k, bench_engine):
    ref, qry = frames_30k
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=256))
    queries = qry.xyz[:10_000]
    k = 8

    fast = knn_approx(tree, queries, k)
    slow = knn_approx_loop(tree, queries, k)
    assert np.array_equal(fast.indices, slow.indices)
    assert np.array_equal(fast.distances, slow.distances)

    loop_s = _best_of(lambda: knn_approx_loop(tree, queries, k), rounds=2)
    benchmark(lambda: knn_approx(tree, queries, k))
    engine_times = _timed_runs(lambda: knn_approx(tree, queries, k), rounds=3)
    engine_s = min(engine_times)
    speedup = loop_s / engine_s
    benchmark.extra_info["loop_ms"] = round(loop_s * 1e3, 2)
    benchmark.extra_info["engine_ms"] = round(engine_s * 1e3, 2)
    benchmark.extra_info["speedup_vs_loop"] = round(speedup, 2)
    bench_engine.add(
        "approx_batched", work=queries.shape[0], times_s=engine_times,
        k=k, points=int(ref.xyz.shape[0]), speedup_vs_loop=round(speedup, 2),
    )
    print(f"\napprox engine: loop {loop_s * 1e3:.1f} ms, "
          f"engine {engine_s * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 1.0


def test_engine_vs_loop_exact(benchmark, frames_30k, bench_engine):
    ref, qry = frames_30k
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=256))
    queries = qry.xyz[:3_000]
    k = 8

    fast = knn_exact(tree, queries, k)
    slow, _ = knn_exact_instrumented(tree, queries, k)
    assert np.array_equal(fast.indices, slow.indices)
    assert np.array_equal(fast.distances, slow.distances)

    loop_s = _best_of(lambda: knn_exact_instrumented(tree, queries, k), rounds=1)
    benchmark(lambda: knn_exact(tree, queries, k))
    engine_times = _timed_runs(lambda: knn_exact(tree, queries, k), rounds=2)
    engine_s = min(engine_times)
    speedup = loop_s / engine_s
    benchmark.extra_info["loop_ms"] = round(loop_s * 1e3, 2)
    benchmark.extra_info["engine_ms"] = round(engine_s * 1e3, 2)
    benchmark.extra_info["speedup_vs_loop"] = round(speedup, 2)
    bench_engine.add(
        "exact_batched", work=queries.shape[0], times_s=engine_times,
        k=k, points=int(ref.xyz.shape[0]), speedup_vs_loop=round(speedup, 2),
    )
    print(f"\nexact engine: loop {loop_s * 1e3:.1f} ms, "
          f"engine {engine_s * 1e3:.1f} ms, speedup {speedup:.1f}x")
    assert speedup >= 1.0
