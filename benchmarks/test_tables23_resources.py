"""Tables 2-3: FPGA resource model vs the paper's synthesis results."""

import pytest

from conftest import attach_and_assert
from repro.analysis.resources import QUICKNN_RESOURCE_MODEL, quicknn_cache_bytes
from repro.harness.exp_platforms import tables23_resources


@pytest.fixture(scope="module")
def result():
    return tables23_resources()


def test_tables23_shape_and_kernel(benchmark, result):
    # The timed kernel: a full design-space sweep of the resource model.
    def kernel():
        return [
            QUICKNN_RESOURCE_MODEL.estimate(f, cache_bytes=quicknn_cache_bytes(f))
            for f in (16, 32, 64, 128)
        ]

    benchmark(kernel)
    attach_and_assert(benchmark, result)
