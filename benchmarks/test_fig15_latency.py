"""Figure 15: QuickNN latency per frame vs frame size."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_perf import fig15_latency


@pytest.fixture(scope="module")
def result():
    return fig15_latency()


def test_fig15_shape_and_kernel(benchmark, result):
    accel = QuickNN(QuickNNConfig(n_fus=64))
    # The timed kernel: the largest frame of the sweep.
    benchmark.pedantic(lambda: accel.simulate(30_000, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
