"""Table 1: accuracy / complexity comparison of the four kNN methods."""

import pytest

from conftest import attach_and_assert
from repro.harness.exp_accuracy import table1_methods
from repro.kdtree import KdTreeConfig, build_tree, knn_approx


@pytest.fixture(scope="module")
def result():
    return table1_methods()


def test_table1_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=256))
    # The timed kernel: a full 30k-query approximate search, the
    # operation every method in the table is competing on.
    benchmark.pedantic(lambda: knn_approx(tree, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
