"""Micro-benchmarks of the blocked out-of-core layer.

Two trajectory points over one accumulated city-block map:

* ``build.blocked_parallel`` — the full blocked build (partition,
  stage, per-block trees) at the configured worker count, in points
  per second.  The entry records the inline (1-worker) time and the
  machine's core count alongside, because on a 1-core runner the
  worker processes only add spawn overhead — the honesty note the
  committed baseline carries.
* ``engine.blocked_vs_monolithic`` — exact routed queries through the
  :class:`~repro.kdtree.blocked.BlockedIndex` under a small
  resident-block budget, in queries per second, with the monolithic
  engine's rate on the same queries recorded for the ratio.

Correctness is asserted the same way the serve layer does: distance
rows bit-identical to the monolithic engine, index rows allowed to
differ only among exact-duplicate coordinates.
"""

import time

import numpy as np
import pytest

from repro.datasets import city_block_map
from repro.kdtree import (
    BlockedBuildConfig,
    BlockedIndex,
    build_blocked,
    build_flat,
    knn_exact_batched,
)

N_POINTS = 300_000
TARGET_BLOCK = 50_000
N_QUERIES = 2_000
K = 8
WORKERS = 2


def _timed_runs(fn, rounds: int) -> list[float]:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times


def test_trajectory_write_merges_by_name(tmp_path):
    """Separate sessions contribute disjoint entries to one area file."""
    import importlib.util
    import json
    from pathlib import Path

    spec = importlib.util.spec_from_file_location(
        "bench_conftest", Path(__file__).parent / "conftest.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)

    first = mod.TrajectoryRecorder("build")
    first.add("flat_vectorized", work=100.0, times_s=[0.1])
    first.write(str(tmp_path))
    second = mod.TrajectoryRecorder("build")
    second.add("blocked_parallel", work=100.0, times_s=[0.5])
    second.add("flat_vectorized", work=100.0, times_s=[0.05])
    path = second.write(str(tmp_path))

    doc = json.load(open(path))
    by_name = {b["name"]: b for b in doc["benchmarks"]}
    assert set(by_name) == {"build.flat_vectorized", "build.blocked_parallel"}
    # Re-measured entries are refreshed, not duplicated.
    assert by_name["build.flat_vectorized"]["qps"] == 100.0 / 0.05


@pytest.fixture(scope="module")
def city_map(tmp_path_factory):
    path = tmp_path_factory.mktemp("map") / "city.npy"
    city_block_map(N_POINTS, seed=0, out=path)
    return path


def test_blocked_build_parallel(benchmark, bench_build, city_map, tmp_path):
    import os

    config = BlockedBuildConfig(
        target_block_points=TARGET_BLOCK, chunk_points=N_POINTS // 3
    )
    inline_s = min(_timed_runs(
        lambda: build_blocked(
            str(city_map), config, block_dir=tmp_path / "inline"
        ),
        rounds=2,
    ))

    from dataclasses import replace

    parallel_cfg = replace(config, workers=WORKERS)
    benchmark(lambda: build_blocked(
        str(city_map), parallel_cfg, block_dir=tmp_path / "bench"
    ))
    parallel_times = _timed_runs(
        lambda: build_blocked(
            str(city_map), parallel_cfg, block_dir=tmp_path / "par"
        ),
        rounds=2,
    )

    # Worker fan-out must not change the output: block snapshots are
    # byte-identical to the inline build's.
    index = BlockedIndex(tmp_path / "par")
    for name in index.manifest["files"]:
        want = (tmp_path / "inline" / name).read_bytes()
        assert (tmp_path / "par" / name).read_bytes() == want, name

    cores = os.cpu_count() or 1
    bench_build.add(
        "blocked_parallel",
        work=N_POINTS,
        times_s=parallel_times,
        points=N_POINTS,
        workers=WORKERS,
        blocks=index.n_blocks,
        inline_s=round(inline_s, 3),
        cores=cores,
    )
    parallel_s = min(parallel_times)
    if cores == 1:
        bench_build.derived["blocked_parallel_note"] = (
            f"recorded on a 1-core machine: the {WORKERS}-worker build pays "
            f"process spawn + shm handoff overhead ({parallel_s:.2f}s vs "
            f"{inline_s:.2f}s inline) with no cores to win it back; on "
            "multi-core hardware the same entry should beat inline_s"
        )
    benchmark.extra_info["inline_s"] = round(inline_s, 3)
    benchmark.extra_info["parallel_s"] = round(parallel_s, 3)
    print(f"\nblocked build {N_POINTS:,} pts / {index.n_blocks} blocks: "
          f"inline {inline_s:.2f}s, {WORKERS} workers {parallel_s:.2f}s "
          f"({cores} core(s))")
    if cores > 1:
        # Fan-out must beat inline when there is real parallelism.
        assert parallel_s < inline_s * 1.1


def test_query_blocked_vs_monolithic(benchmark, bench_engine, city_map,
                                     tmp_path):
    xyz = np.asarray(np.load(city_map, mmap_mode="r"), dtype=np.float64)
    index = build_blocked(
        str(city_map),
        BlockedBuildConfig(target_block_points=TARGET_BLOCK),
        block_dir=tmp_path / "blocks",
        max_resident_blocks=2,
    )
    rng = np.random.default_rng(1)
    queries = (
        xyz[rng.integers(0, N_POINTS, size=N_QUERIES)]
        + rng.normal(scale=0.05, size=(N_QUERIES, 3))
    )

    flat, _ = build_flat(xyz)
    truth, _ = knn_exact_batched(flat, queries, K)
    result = index.query(queries, K)
    np.testing.assert_array_equal(result.distances, truth.distances)
    differs = result.indices != truth.indices
    if differs.any():
        np.testing.assert_array_equal(
            xyz[result.indices[differs]], xyz[truth.indices[differs]]
        )

    mono_s = min(_timed_runs(lambda: knn_exact_batched(flat, queries, K),
                             rounds=3))
    benchmark(lambda: index.query(queries, K))
    blocked_times = _timed_runs(lambda: index.query(queries, K), rounds=3)
    blocked_s = min(blocked_times)

    stats = index.stats()
    bench_engine.add(
        "blocked_vs_monolithic",
        work=N_QUERIES,
        times_s=blocked_times,
        points=N_POINTS,
        k=K,
        blocks=index.n_blocks,
        resident_budget=2,
        monolithic_qps=round(N_QUERIES / mono_s, 1),
    )
    benchmark.extra_info["monolithic_s"] = round(mono_s, 3)
    benchmark.extra_info["blocked_s"] = round(blocked_s, 3)
    print(f"\nexact {N_QUERIES} queries vs {N_POINTS:,} pts: monolithic "
          f"{mono_s:.2f}s, blocked {blocked_s:.2f}s "
          f"(visits {stats['block_visits']}, budget 2 blocks)")
    assert stats["resident_blocks"] <= 2
