"""Micro-benchmarks of the library's hot kernels.

Not tied to a specific paper figure: these track the performance of the
software substrate itself (tree build, batched descent, approximate and
best-bin-first search, incremental update, brute force), so regressions
in the algorithmic layer are visible independently of the architecture
models.
"""

import numpy as np
import pytest

from repro.baselines import knn_bruteforce
from repro.datasets import lidar_frame_pair
from repro.kdtree import BbfConfig, KdTreeConfig, build_tree, knn_approx, knn_bbf, update_tree


@pytest.fixture(scope="module")
def workload():
    ref, qry = lidar_frame_pair(10_000, seed=4)
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=256))
    return ref, qry, tree


def test_build_tree_10k(benchmark, workload):
    ref, _, _ = workload
    benchmark(lambda: build_tree(ref, KdTreeConfig(bucket_capacity=256)))


def test_descend_batch_10k(benchmark, workload):
    _, qry, tree = workload
    benchmark(lambda: tree.descend_batch(qry.xyz))


def test_knn_approx_10k(benchmark, workload):
    _, qry, tree = workload
    result = benchmark(lambda: knn_approx(tree, qry, 8))
    assert result.indices.shape == (10_000, 8)


def test_knn_bbf_1k(benchmark, workload):
    _, qry, tree = workload
    benchmark.pedantic(
        lambda: knn_bbf(tree, qry.xyz[:1_000], 8, BbfConfig(max_leaves=2)),
        rounds=3, iterations=1,
    )


def test_update_tree_10k(benchmark, workload):
    ref, qry, tree = workload
    benchmark(lambda: update_tree(tree, qry, KdTreeConfig(bucket_capacity=256)))


def test_bruteforce_1k_x_10k(benchmark, workload):
    ref, qry, _ = workload
    benchmark(lambda: knn_bruteforce(ref, qry.xyz[:1_000], 8))
