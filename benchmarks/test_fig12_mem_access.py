"""Figure 12: external memory traffic of the three architectures."""

import pytest

from conftest import attach_and_assert
from repro.arch import SimpleKdArch, SimpleKdConfig
from repro.harness.exp_memory import fig12_memory_accesses


@pytest.fixture(scope="module")
def result():
    return fig12_memory_accesses()


def test_fig12_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    arch = SimpleKdArch(SimpleKdConfig(n_fus=64))
    # The timed kernel: the Simple k-d run (the heaviest of the three
    # traffic models, dominated by its scattered bucket reads).
    benchmark.pedantic(lambda: arch.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
