"""Table 6: speedup and perf/W over the CPU k-d tree search."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_platforms import table6_speedup


@pytest.fixture(scope="module")
def result():
    return table6_speedup()


def test_table6_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    accel = QuickNN(QuickNNConfig(n_fus=128))
    # The timed kernel: the high-performance design point of the table.
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
