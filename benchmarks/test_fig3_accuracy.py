"""Figure 3: k-d tree search accuracy vs bucket size (k=5, x=0..5)."""

import pytest

from conftest import attach_and_assert
from repro.harness.exp_accuracy import fig3_accuracy
from repro.kdtree import KdTreeConfig, build_tree


@pytest.fixture(scope="module")
def result():
    return fig3_accuracy()


def test_fig3_shape_and_kernel(benchmark, result, frames_30k):
    ref, _ = frames_30k
    # The timed kernel: building the 256-point-bucket tree the paper's
    # accuracy operating point rests on.
    benchmark.pedantic(
        lambda: build_tree(ref, KdTreeConfig(bucket_capacity=256)),
        rounds=3, iterations=1,
    )
    attach_and_assert(benchmark, result)
