"""Extension: robustness of the headline speedup to model constants."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.datasets import lidar_frame_pair
from repro.harness.exp_extensions import ext_sensitivity
from repro.sim import DramTimingParams


@pytest.fixture(scope="module")
def result():
    return ext_sensitivity()


def test_ext_sensitivity_shape_and_kernel(benchmark, result):
    ref, qry = lidar_frame_pair(15_000, seed=0)
    accel = QuickNN(QuickNNConfig(
        n_fus=64, dram=DramTimingParams(row_miss_cycles=24)
    ))
    # The timed kernel: the harshest memory perturbation of the sweep.
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
