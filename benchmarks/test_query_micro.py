"""Micro-benchmarks of the query-modality subsystem.

Two trajectory points for the new modalities behind ``NeighborIndex``:

* ``engine.radius_batched`` — the vectorized batched radius kernel in
  queries per second, with the per-query reference loop's rate on the
  same tree recorded for the ratio.  The acceptance bar from the
  subsystem's issue — batched at least 3x the reference loop — is
  asserted here so the committed baseline can never silently regress
  past it.
* ``build.fps_fused`` — build-fused farthest point sampling (FuseFPS)
  in selected samples per second, with the naive O(n·m) loop's rate
  recorded for the ratio.  The fused timing includes the tree build it
  fuses with — the honest total for a pipeline that has no tree yet.

Correctness rides along exactly as the blocked micro-bench does it:
bit-identical CSR arrays against the reference loop, bit-identical
sample sequences against the naive loop, before any rate is recorded.
"""

import os
import time

import numpy as np

from repro.datasets import lidar_frame_pair
from repro.kdtree import build_flat
from repro.query import (
    radius_batched,
    radius_reference,
    sample_fps,
    sample_fps_reference,
)

N_POINTS = 100_000
N_QUERIES = 20_000
RADIUS = 0.3
CAP = 32
FPS_SAMPLES = 512
MIN_RADIUS_SPEEDUP = 3.0


def _timed_runs(fn, rounds: int) -> list[float]:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return times


def test_radius_batched_vs_reference(benchmark, bench_engine):
    ref_cloud, qry_cloud = lidar_frame_pair(N_POINTS, seed=3)
    queries = qry_cloud.xyz[:N_QUERIES]
    flat, _ = build_flat(ref_cloud.xyz)

    batched = radius_batched(flat, queries, RADIUS, max_neighbors=CAP)
    reference = radius_reference(flat, queries, RADIUS, max_neighbors=CAP)
    np.testing.assert_array_equal(batched.offsets, reference.offsets)
    np.testing.assert_array_equal(batched.indices, reference.indices)
    np.testing.assert_array_equal(batched.distances, reference.distances)

    reference_s = min(_timed_runs(
        lambda: radius_reference(flat, queries, RADIUS, max_neighbors=CAP),
        rounds=2,
    ))
    benchmark(
        lambda: radius_batched(flat, queries, RADIUS, max_neighbors=CAP)
    )
    batched_times = _timed_runs(
        lambda: radius_batched(flat, queries, RADIUS, max_neighbors=CAP),
        rounds=3,
    )
    batched_s = min(batched_times)
    speedup = reference_s / batched_s
    cores = os.cpu_count() or 1

    bench_engine.add(
        "radius_batched",
        work=N_QUERIES,
        times_s=batched_times,
        points=N_POINTS,
        radius=RADIUS,
        max_neighbors=CAP,
        pairs=int(batched.n_pairs),
        reference_qps=round(N_QUERIES / reference_s, 1),
        speedup=round(speedup, 2),
        cores=cores,
    )
    if cores == 1:
        bench_engine.derived["radius_batched_note"] = (
            "recorded on a 1-core machine: the batched-vs-reference ratio "
            "is NumPy-dispatch economy (one frontier walk for all rows "
            "instead of a Python loop), not parallelism"
        )
    benchmark.extra_info["reference_s"] = round(reference_s, 3)
    benchmark.extra_info["batched_s"] = round(batched_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(f"\nradius {N_QUERIES:,} queries over {N_POINTS:,} pts: "
          f"batched {batched_s:.3f}s vs reference {reference_s:.3f}s "
          f"({speedup:.1f}x, {cores} core(s))")
    assert speedup >= MIN_RADIUS_SPEEDUP


def test_fps_fused_vs_naive(benchmark, bench_build):
    frame, _ = lidar_frame_pair(N_POINTS, seed=3)
    xyz = frame.xyz

    fused = sample_fps(xyz, FPS_SAMPLES)
    naive = sample_fps_reference(xyz, FPS_SAMPLES)
    np.testing.assert_array_equal(fused, naive)

    naive_s = min(_timed_runs(
        lambda: sample_fps_reference(xyz, FPS_SAMPLES), rounds=2
    ))
    benchmark(lambda: sample_fps(xyz, FPS_SAMPLES))
    fused_times = _timed_runs(
        lambda: sample_fps(xyz, FPS_SAMPLES), rounds=3
    )
    fused_s = min(fused_times)
    speedup = naive_s / fused_s
    cores = os.cpu_count() or 1

    bench_build.add(
        "fps_fused",
        work=FPS_SAMPLES,
        times_s=fused_times,
        points=N_POINTS,
        samples=FPS_SAMPLES,
        naive_sps=round(FPS_SAMPLES / naive_s, 1),
        speedup=round(speedup, 2),
        cores=cores,
    )
    if cores == 1:
        bench_build.derived["fps_fused_note"] = (
            "recorded on a 1-core machine: the fused-vs-naive ratio is "
            "bucket-bound pruning of distance updates, not parallelism; "
            "the fused timing includes the tree build it fuses with"
        )
    benchmark.extra_info["naive_s"] = round(naive_s, 3)
    benchmark.extra_info["fused_s"] = round(fused_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(f"\nfps {FPS_SAMPLES} samples from {N_POINTS:,} pts: "
          f"fused {fused_s:.3f}s vs naive {naive_s:.3f}s "
          f"({speedup:.1f}x, {cores} core(s))")
    # Fused includes its tree build and must still beat the naive loop.
    assert fused_s < naive_s
