"""Figure 16: performance per area and per watt vs FU count."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_perf import fig16_perf_scaling


@pytest.fixture(scope="module")
def result():
    return fig16_perf_scaling()


def test_fig16_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    accel = QuickNN(QuickNNConfig(n_fus=32))
    # The timed kernel: the design point where perf/area peaks.
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
