"""Figure 14: latency growth with the number of nearest neighbors."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_perf import fig14_k_sweep


@pytest.fixture(scope="module")
def result():
    return fig14_k_sweep()


def test_fig14_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    accel = QuickNN(QuickNNConfig(n_fus=128))
    # The timed kernel: the k=16 extreme at the FU count where the
    # paper says the write-back overhead becomes noticeable.
    benchmark.pedantic(lambda: accel.run(ref, qry, 16), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
