"""Extension: rebuild vs incremental TBuild across frame sizes."""

import pytest

from conftest import attach_and_assert
from repro.arch import QuickNN, QuickNNConfig
from repro.harness.exp_extensions import ext_incremental_scaling


@pytest.fixture(scope="module")
def result():
    return ext_incremental_scaling()


def test_ext_incremental_shape_and_kernel(benchmark, result, frames_30k):
    ref, qry = frames_30k
    accel = QuickNN(QuickNNConfig(n_fus=128, tree_strategy="incremental"))
    # The timed kernel: one incremental-TBuild round at 30k points.
    benchmark.pedantic(lambda: accel.run(ref, qry, 8), rounds=3, iterations=1)
    attach_and_assert(benchmark, result)
