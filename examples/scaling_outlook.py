#!/usr/bin/env python
"""Scaling QuickNN to future workloads (the paper's Section 7.2).

Next-generation LiDAR produces 100k+ useful points per frame.  This
example quantifies the two mitigations the paper proposes — incremental
tree update and near-chip HBM — using the roofline analyzer to show
*why* each helps: DDR4 QuickNN is memory-bound, and construction's
share of the frame grows with N.

Run:  python examples/scaling_outlook.py
"""

import repro
from repro.analysis import analyze_bound
from repro.sim import DramTimingParams


def main() -> None:
    print(f"{'points':>8} {'memory':>8} {'strategy':>12} {'FPS':>7} "
          f"{'build %':>8} {'bound':>8} {'mem-free speedup':>16}")
    for n_points in (30_000, 100_000):
        ref, qry = repro.lidar_frame_pair(n_points, seed=0)
        for memory, dram in (("DDR4", DramTimingParams.ddr4()),
                             ("HBM2", DramTimingParams.hbm2())):
            for strategy in ("rebuild", "incremental"):
                config = repro.QuickNNConfig(
                    n_fus=128, dram=dram, tree_strategy=strategy
                )
                _, report = repro.QuickNN(config).run(ref, qry, k=8)
                build = (report.phase_cycles["sample"]
                         + report.phase_cycles["construct"])
                analysis = analyze_bound(report)
                print(f"{n_points:>8,} {memory:>8} {strategy:>12} "
                      f"{report.fps:>7.1f} "
                      f"{build / report.total_cycles:>8.1%} "
                      f"{analysis.bound:>8} "
                      f"{analysis.speedup_if_memory_free:>16.2f}")
        print()

    print("Takeaways (matching Section 7.2):")
    print(" * on DDR4 the design is memory-bound at every size - a perfect")
    print("   memory would be worth ~3-5x; HBM realizes most of that;")
    print(" * from-scratch construction grows toward a quarter of the frame")
    print("   at 100k points; incremental update removes it on coherent")
    print("   drives, and both mitigations compose.")


if __name__ == "__main__":
    main()
