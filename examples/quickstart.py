#!/usr/bin/env python
"""Quickstart: build a k-d tree over a LiDAR frame and search it.

Covers the core public API in ~40 lines: generate a synthetic
ground-removed LiDAR frame pair, build the bucketed k-d tree, run the
approximate search the QuickNN hardware implements, and compare its
accuracy and cost against the exact answer.

Run:  python examples/quickstart.py
"""

import time

import repro
from repro.analysis import knn_recall
from repro.baselines import knn_bruteforce


def main() -> None:
    # Two successive frames of a drive: the paper's benchmark workload.
    reference, query = repro.lidar_frame_pair(30_000, seed=0)
    print(f"reference frame: {len(reference):,} points, "
          f"query frame: {len(query):,} points")

    # Build the bucketed k-d tree (256-point buckets, the paper's
    # accuracy operating point).
    t0 = time.perf_counter()
    tree, trace = repro.build_tree(reference, repro.KdTreeConfig(bucket_capacity=256))
    build_s = time.perf_counter() - t0
    stats = repro.tree_stats(tree)
    print(f"tree: {stats.n_leaves} buckets, depth {stats.depth}, "
          f"built from a {trace.sample_size}-point sample in {build_s * 1e3:.0f} ms")

    # Approximate search: one bucket per query, no backtracking.
    t0 = time.perf_counter()
    approx = repro.knn_approx(tree, query, k=8)
    approx_s = time.perf_counter() - t0

    # Exact ground truth for comparison.
    t0 = time.perf_counter()
    exact = knn_bruteforce(reference, query, 8)
    exact_s = time.perf_counter() - t0

    recall = knn_recall(approx, exact, 8)
    print(f"approximate search: {approx_s * 1e3:.0f} ms, "
          f"exact search: {exact_s * 1e3:.0f} ms "
          f"({exact_s / approx_s:.1f}x slower)")
    print(f"accuracy (fraction of returned neighbors in the true top-8): "
          f"{recall:.1%}")

    # The same search, on the simulated accelerator.
    accel = repro.QuickNN(repro.QuickNNConfig(n_fus=64))
    hw_result, report = accel.run(reference, query, k=8)
    assert (hw_result.indices == approx.indices).all()
    print(f"QuickNN (64 FUs): {report.total_cycles:,} cycles/frame = "
          f"{report.fps:.1f} FPS at 100 MHz, "
          f"{report.bandwidth_utilization:.0%} memory bandwidth utilization")


if __name__ == "__main__":
    main()
