#!/usr/bin/env python
"""Ego-motion estimation with ICP on approximate kNN correspondences.

The paper's motivating application: ICP-based tracking spends ~75% of
its time in kNN search, and its iterative error tolerance is what makes
the *approximate* k-d tree search acceptable.  This example registers
consecutive LiDAR frames of a drive with ICP using three kNN backends —
brute force, exact k-d tree, approximate k-d tree — and shows that the
approximate backend recovers the same ego motion.

Run:  python examples/icp_tracking.py
"""

import time

import numpy as np

import repro
from repro.icp import IcpConfig, icp_register


def main() -> None:
    # Moderate motion keeps ICP inside its convergence basin; the yaw
    # component makes the motion observable despite the straight street
    # (long parallel walls under-constrain pure x-translation — the
    # classic aperture problem).
    drive = repro.DriveConfig(n_frames=4, target_points=4_000, ego_speed=3.0,
                              ego_yaw_rate=0.1)
    frames = list(repro.generate_drive(drive, seed=2))
    step = drive.ego_speed * drive.frame_period          # meters per frame
    yaw_step = drive.ego_yaw_rate * drive.frame_period   # radians per frame
    print(f"true ego motion per frame: {step:.2f} m forward, "
          f"{yaw_step * 1e3:.1f} mrad yaw\n")

    backends = ("bruteforce", "exact", "approx")
    print(f"{'frame':>5} {'backend':>10} {'dx (m)':>8} {'yaw (mrad)':>10} "
          f"{'rms (m)':>8} {'iters':>5} {'time':>7}")
    for prev, current in zip(frames, frames[1:]):
        # Register in the sensor frame: the recovered transform is the
        # inverse of the ego step.
        source = current.sensor_cloud()
        target = prev.sensor_cloud()
        for backend in backends:
            t0 = time.perf_counter()
            result = icp_register(
                source, target, IcpConfig(knn=backend, trim_fraction=0.3)
            )
            elapsed = time.perf_counter() - t0
            dx = result.transform.translation[0]
            yaw = result.transform.yaw()
            print(f"{current.index:>5} {backend:>10} {dx:>8.3f} "
                  f"{yaw * 1e3:>10.2f} {result.rms_error:>8.4f} "
                  f"{result.iterations:>5} {elapsed:>6.2f}s")
            if backend == "bruteforce":
                reference_dx = dx
            else:
                gap = abs(dx - reference_dx)
                assert gap < 0.1, f"{backend} diverged from brute force by {gap:.3f} m"
        print()

    print("All three backends agree to centimeters: the approximation the "
          "QuickNN hardware makes does not harm the application (Section 2).")


if __name__ == "__main__":
    main()
