#!/usr/bin/env python
"""Successive-frame kNN over a whole drive, on the simulated accelerator.

Models the paper's steady-state pipeline (Figure 7): for every new
LiDAR frame, TSearch matches it against the previous frame's tree while
TBuild constructs the new frame's tree — and reports per-frame FPS,
memory traffic, and how the incremental tree update keeps bucket sizes
bounded as the scene moves.

Run:  python examples/lidar_pipeline.py
"""

import repro
from repro.kdtree import tree_stats, update_tree


def main() -> None:
    drive = repro.DriveConfig(n_frames=8, target_points=20_000, ego_speed=12.0)
    frames = list(repro.generate_drive(drive, seed=1))
    print(f"drive: {len(frames)} frames x {drive.target_points:,} points, "
          f"ego at {drive.ego_speed} m/s\n")

    accel = repro.QuickNN(repro.QuickNNConfig(n_fus=64))
    config = repro.KdTreeConfig(bucket_capacity=256)
    tree, _ = repro.build_tree(frames[0].cloud, config)

    print(f"{'frame':>5} {'FPS':>7} {'Mwords':>7} {'util':>5} "
          f"{'bucket min':>10} {'bucket max':>10} {'merges':>6} {'splits':>6}")
    for prev, current in zip(frames, frames[1:]):
        # The accelerator round: search `current` against `prev`'s tree
        # while building `current`'s own tree for the next round.
        _, report = accel.run(prev.cloud, current.cloud, k=8)

        # Maintain the software-side tree incrementally, as Section 4.4
        # prescribes for large frames.
        tree, trace = update_tree(tree, current.cloud, config)
        stats = tree_stats(tree)
        print(f"{current.index:>5} {report.fps:>7.1f} "
              f"{report.memory_words / 1e6:>7.2f} "
              f"{report.bandwidth_utilization:>5.0%} "
              f"{stats.bucket_min:>10} {stats.bucket_max:>10} "
              f"{trace.n_merges:>6} {trace.n_splits:>6}")

    print("\nBucket sizes stay within [B/2, 2B] across the drive — the "
          "incremental update at work (paper Figure 10).")


if __name__ == "__main__":
    main()
