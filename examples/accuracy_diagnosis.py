#!/usr/bin/env python
"""Why the approximate search misses — and what bucket size buys.

Reproduces the geometric mechanism behind the paper's Figure 3: a
single-bucket search can only lose a neighbor across a cell boundary,
so misses should concentrate on queries that sit close to their leaf
region's faces, and bigger buckets (boundaries farther away) should
reduce the fraction of boundary-limited queries.  This script measures
both on a real frame pair.

Run:  python examples/accuracy_diagnosis.py
"""

import repro
from repro.baselines import knn_bruteforce
from repro.kdtree import KdTreeConfig, build_tree, diagnose_misses, knn_approx


def main() -> None:
    reference, query = repro.lidar_frame_pair(15_000, seed=0)
    exact = knn_bruteforce(reference, query, 8)
    print(f"{'B_N':>5} {'recall':>7} {'boundary-limited':>16} "
          f"{'miss near bdry':>14} {'miss far':>9}")
    for bucket in (64, 128, 256, 512, 1024):
        tree, _ = build_tree(reference, KdTreeConfig(bucket_capacity=bucket))
        approx = knn_approx(tree, query, 8)
        d = diagnose_misses(tree, query.xyz, approx, exact)
        print(f"{bucket:>5} {d.recall:>7.1%} "
              f"{d.boundary_limited_fraction:>16.1%} "
              f"{d.miss_rate_near_boundary:>14.1%} "
              f"{d.miss_rate_far_from_boundary:>9.1%}")

    print("\nMisses concentrate on boundary-adjacent queries, and growing")
    print("the bucket pushes boundaries away — the geometric content of")
    print("the paper's Figure 3 accuracy curves.")


if __name__ == "__main__":
    main()
