#!/usr/bin/env python
"""End-to-end perception: detect and track moving objects over a drive.

The paper's opening scenario, assembled from this library's layers:
LiDAR frames stream in, ground is removed, non-ground points are
clustered into object candidates, clusters are tracked across frames,
and per-object velocities separate the moving traffic from the static
scene — the pipeline whose kNN inner loop QuickNN exists to accelerate.

Run:  python examples/object_tracking.py
"""

import numpy as np

import repro
from repro.perception import MultiObjectTracker, euclidean_clusters
from repro.viz import bev_view


def main() -> None:
    drive = repro.DriveConfig(n_frames=8, target_points=8_000, ego_speed=0.0)
    frames = list(repro.generate_drive(drive, seed=0))
    print(f"drive: {len(frames)} frames x {drive.target_points:,} points "
          f"(stationary ego, watching traffic)\n")

    tracker = MultiObjectTracker(gate_distance=3.0)
    for frame in frames:
        clusters = euclidean_clusters(
            frame.cloud, tolerance=0.8, min_points=15, max_points=3_000
        )
        tracker.update(clusters, frame.time)

    print("bird's-eye view of the final frame (sensor at center):")
    print(bev_view(frames[-1].cloud, width=72, height=20))
    print()

    moving = sorted(tracker.moving_tracks(min_speed=3.0), key=lambda t: -t.speed)
    print(f"{len(tracker.confirmed_tracks())} confirmed objects, "
          f"{len(moving)} moving:")
    print(f"{'track':>6} {'speed m/s':>10} {'heading':>8} {'position':>22} {'age':>4}")
    for track in moving:
        velocity = track.velocity()
        heading = np.degrees(np.arctan2(velocity[1], velocity[0]))
        x, y, _ = track.position
        print(f"{track.track_id:>6} {track.speed:>10.1f} {heading:>7.0f}° "
              f"({x:>8.1f}, {y:>8.1f} ) {track.age:>4}")

    print("\nThe street scene seeds 4 moving cars at 5-14 m/s in opposing "
          "lanes; the tracker recovers them from raw points alone.")


if __name__ == "__main__":
    main()
