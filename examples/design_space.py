#!/usr/bin/env python
"""Design-space exploration: pick a QuickNN configuration.

Sweeps the accelerator's main knobs — FU count and bucket size — on the
30k-point workload, and reports FPS, FPGA area/power (from the resource
model), and search accuracy, reproducing the trade-off analysis behind
the paper's Figure 16 and Section 6.3.

Run:  python examples/design_space.py
"""

import repro
from repro.analysis import knn_recall
from repro.analysis.resources import QUICKNN_RESOURCE_MODEL, quicknn_cache_bytes
from repro.baselines import knn_bruteforce


def main() -> None:
    reference, query = repro.lidar_frame_pair(30_000, seed=0)
    exact = knn_bruteforce(reference, query, 8)

    print("== FU sweep (bucket size 256) ==")
    print(f"{'FUs':>4} {'FPS':>7} {'kLUT+FF':>8} {'watts':>6} "
          f"{'FPS/area':>8} {'FPS/W':>6}")
    best = None
    for fus in (16, 32, 64, 128):
        accel = repro.QuickNN(repro.QuickNNConfig(n_fus=fus))
        _, report = accel.run(reference, query, k=8)
        est = QUICKNN_RESOURCE_MODEL.estimate(
            fus, cache_bytes=quicknn_cache_bytes(fus)
        )
        per_area = report.fps / (est.area / 1e5)
        per_watt = report.fps / est.power_watts
        print(f"{fus:>4} {report.fps:>7.1f} {est.area / 1e3:>8.0f} "
              f"{est.power_watts:>6.2f} {per_area:>8.2f} {per_watt:>6.1f}")
        if best is None or per_area > best[1]:
            best = (fus, per_area)
    print(f"-> best perf/area at {best[0]} FUs "
          f"(the paper reports the peak at 32, declining beyond)\n")

    print("== bucket-size sweep (64 FUs) ==")
    print(f"{'B_N':>5} {'FPS':>7} {'recall@8':>8}")
    for bucket in (128, 256, 512, 1024):
        config = repro.QuickNNConfig(
            n_fus=64, tree=repro.KdTreeConfig(bucket_capacity=bucket)
        )
        result, report = repro.QuickNN(config).run(reference, query, k=8)
        recall = knn_recall(result, exact, 8)
        print(f"{bucket:>5} {report.fps:>7.1f} {recall:>8.1%}")
    print("-> bigger buckets buy accuracy with latency (paper Figure 3 "
          "vs Table 5): pick the smallest bucket meeting the accuracy "
          "target of the application.")


if __name__ == "__main__":
    main()
