"""Unit tests for the accuracy metrics."""

import numpy as np
import pytest

from repro.analysis.accuracy import knn_recall, top1_containment
from repro.kdtree.search import PAD_INDEX, QueryResult


def result(indices):
    idx = np.asarray(indices, dtype=np.int64)
    dst = np.where(idx == PAD_INDEX, np.inf, np.arange(idx.shape[1], dtype=float))
    dst = np.broadcast_to(dst, idx.shape).copy()
    return QueryResult(indices=idx, distances=dst)


class TestRecall:
    def test_perfect(self):
        exact = result([[1, 2, 3]])
        assert knn_recall(exact, exact, 3) == 1.0

    def test_partial(self):
        approx = result([[1, 9, 8]])
        exact = result([[1, 2, 3]])
        assert knn_recall(approx, exact, 3) == pytest.approx(1 / 3)

    def test_x_relaxes_rank(self):
        # Approx returns items ranked 3 and 4 in the exact ordering.
        approx = result([[30, 40]])
        exact = result([[10, 20, 30, 40]])
        assert knn_recall(approx, exact, 2, x=0) == 0.0
        assert knn_recall(approx, exact, 2, x=1) == pytest.approx(0.5)
        assert knn_recall(approx, exact, 2, x=2) == 1.0

    def test_monotone_in_x(self):
        approx = result([[5, 6, 7]])
        exact = result([[5, 9, 6, 8, 7, 1]])
        values = [knn_recall(approx, exact, 3, x=x) for x in range(4)]
        assert values == sorted(values)

    def test_padding_never_counts(self):
        approx = result([[1, PAD_INDEX, PAD_INDEX]])
        exact = result([[1, 2, 3]])
        assert knn_recall(approx, exact, 3) == pytest.approx(1 / 3)

    def test_averages_over_queries(self):
        approx = result([[1, 2], [9, 9]])
        exact = result([[1, 2], [1, 2]])
        assert knn_recall(approx, exact, 2) == pytest.approx(0.5)

    def test_validation(self):
        approx = result([[1, 2]])
        exact = result([[1, 2, 3]])
        with pytest.raises(ValueError):
            knn_recall(approx, exact, 0)
        with pytest.raises(ValueError):
            knn_recall(approx, exact, 2, x=5)
        with pytest.raises(ValueError):
            knn_recall(approx, result([[1, 2], [3, 4]]), 1)


class TestTop1:
    def test_contained_anywhere(self):
        approx = result([[9, 9, 1]])
        exact = result([[1, 2, 3]])
        assert top1_containment(approx, exact) == 1.0

    def test_missing(self):
        approx = result([[9, 8, 7]])
        exact = result([[1, 2, 3]])
        assert top1_containment(approx, exact) == 0.0

    def test_fractional(self):
        approx = result([[1, 5], [6, 7]])
        exact = result([[1, 2], [1, 2]])
        assert top1_containment(approx, exact) == pytest.approx(0.5)
