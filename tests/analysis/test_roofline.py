"""Unit tests for the roofline / bound analysis."""

import pytest

from repro.analysis import analyze_bound, arithmetic_intensity
from repro.arch import LinearArch, LinearArchConfig, QuickNN, QuickNNConfig
from repro.sim import DramTimingParams


@pytest.fixture(scope="module")
def frames():
    from repro.datasets import lidar_frame_pair

    return lidar_frame_pair(4_000, seed=11)


class TestAnalyzeBound:
    def test_quicknn_on_ddr4_is_memory_bound(self, frames):
        ref, qry = frames
        _, report = QuickNN(QuickNNConfig(n_fus=64)).run(ref, qry, 8)
        analysis = analyze_bound(report)
        assert analysis.bound == "memory"
        assert analysis.memory_busy_fraction > analysis.compute_busy_fraction
        assert analysis.speedup_if_memory_free > 1.0

    def test_hbm_shifts_the_bound(self, frames):
        """Section 7.2's prediction, quantified."""
        ref, qry = frames
        _, ddr4 = QuickNN(QuickNNConfig(n_fus=64)).run(ref, qry, 8)
        _, hbm = QuickNN(
            QuickNNConfig(n_fus=64, dram=DramTimingParams.hbm2())
        ).run(ref, qry, 8)
        assert analyze_bound(hbm).memory_busy_fraction < analyze_bound(
            ddr4
        ).memory_busy_fraction

    def test_linear_arch_is_memory_bound(self):
        report = LinearArch(LinearArchConfig(n_fus=64)).simulate(4_000, 4_000, 8)
        analysis = analyze_bound(report)
        assert analysis.bound == "memory"
        assert analysis.memory_busy_fraction > 0.9

    def test_summary_mentions_bound(self, frames):
        ref, qry = frames
        _, report = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 8)
        text = analyze_bound(report).summary()
        assert "bound" in text


class TestArithmeticIntensity:
    def test_positive_for_real_runs(self, frames):
        ref, qry = frames
        _, report = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 8)
        intensity = arithmetic_intensity(report)
        assert 0.0 < intensity < 10.0

    def test_more_fus_do_not_raise_intensity(self, frames):
        """FU count shrinks compute time but leaves bytes unchanged."""
        ref, qry = frames
        _, small = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 8)
        _, large = QuickNN(QuickNNConfig(n_fus=128)).run(ref, qry, 8)
        assert arithmetic_intensity(large) <= arithmetic_intensity(small) * 1.05
