"""Unit tests for the CPU/GPU platform cost models."""

import pytest

from repro.analysis.platforms import CPU_MODEL, GPU_MODEL, PlatformModel


class TestCalibration:
    def test_cpu_latency_at_operating_point(self):
        """FLANN on an i7-7700k: ~130 ms for the 30k successive-frame search."""
        latency = CPU_MODEL.latency_seconds(30_000, 8)
        assert 0.08 <= latency <= 0.20

    def test_gpu_over_cpu_ratio(self):
        """Paper Table 6: GPU k-d is 2.62x faster than CPU at 30k."""
        ratio = CPU_MODEL.latency_seconds(30_000) / GPU_MODEL.latency_seconds(30_000)
        assert 2.0 <= ratio <= 3.5

    def test_gpu_perf_per_watt_ratio(self):
        """Paper Table 6: GPU perf/W is ~3.55x the CPU's."""
        ratio = GPU_MODEL.perf_per_watt(30_000) / CPU_MODEL.perf_per_watt(30_000)
        assert 2.5 <= ratio <= 5.0

    def test_gpu_advantage_shrinks_at_small_frames(self):
        """Launch overhead dominates small frames (the paper's Fig 17 shape)."""
        small = CPU_MODEL.latency_seconds(5_000) / GPU_MODEL.latency_seconds(5_000)
        big = CPU_MODEL.latency_seconds(30_000) / GPU_MODEL.latency_seconds(30_000)
        assert small < big


class TestModelShape:
    def test_latency_superlinear_in_n(self):
        ratio = CPU_MODEL.latency_seconds(40_000) / CPU_MODEL.latency_seconds(10_000)
        assert ratio > 4.0  # N log N build + N queries

    def test_fps_inverse_of_latency(self):
        assert CPU_MODEL.fps(10_000) == pytest.approx(1.0 / CPU_MODEL.latency_seconds(10_000))

    def test_k_increases_latency(self):
        assert CPU_MODEL.latency_seconds(10_000, k=16) > CPU_MODEL.latency_seconds(10_000, k=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            CPU_MODEL.latency_seconds(0)
        with pytest.raises(ValueError):
            CPU_MODEL.latency_seconds(100, k=0)
        with pytest.raises(ValueError):
            PlatformModel(
                name="bad", power_watts=0.0, build_coef=0, query_traverse_coef=0,
                query_scan_coef=0, query_fixed=0, launch_overhead=0,
            )
