"""Unit tests for the FPGA resource/power model."""

import pytest

from repro.analysis.resources import (
    LINEAR_RESOURCE_MODEL,
    QUICKNN_RESOURCE_MODEL,
    ResourceModel,
    quicknn_cache_bytes,
)


class TestPaperAnchors:
    def test_linear_64fu_matches_table2(self):
        est = LINEAR_RESOURCE_MODEL.estimate(64)
        assert est.luts == pytest.approx(45_458, rel=0.02)
        assert est.registers == pytest.approx(40_024, rel=0.02)
        assert est.dsps == 512
        assert est.power_watts == pytest.approx(4.44, rel=0.05)

    def test_quicknn_64fu_matches_table3(self):
        est = QUICKNN_RESOURCE_MODEL.estimate(64, cache_bytes=quicknn_cache_bytes(64))
        assert est.luts == pytest.approx(90_754, rel=0.05)
        assert est.registers == pytest.approx(79_002, rel=0.05)
        assert est.dsps == 512
        assert est.power_watts == pytest.approx(4.73, rel=0.05)


class TestScaling:
    def test_cache_grows_with_fus(self):
        assert quicknn_cache_bytes(128) > quicknn_cache_bytes(16)

    def test_read_gather_dominates_growth(self):
        """TSearch cache is 33-243 kB for 16-128 FUs in the paper."""
        small = quicknn_cache_bytes(16)
        large = quicknn_cache_bytes(128)
        assert 40_000 <= small <= 120_000
        assert large >= 3 * small

    def test_area_monotone_in_fus(self):
        areas = [
            QUICKNN_RESOURCE_MODEL.estimate(f, cache_bytes=quicknn_cache_bytes(f)).area
            for f in (16, 32, 64, 128)
        ]
        assert areas == sorted(areas)

    def test_power_monotone_in_fus(self):
        powers = [
            QUICKNN_RESOURCE_MODEL.estimate(f, cache_bytes=quicknn_cache_bytes(f)).power_watts
            for f in (16, 32, 64, 128)
        ]
        assert powers == sorted(powers)

    def test_cache_luts_packing(self):
        model = QUICKNN_RESOURCE_MODEL
        assert model.cache_luts(64) == 8  # 64 B = 512 bits / 64 bits-per-LUT


class TestValidation:
    def test_rejects_bad_fus(self):
        with pytest.raises(ValueError):
            LINEAR_RESOURCE_MODEL.estimate(0)

    def test_rejects_negative_cache(self):
        with pytest.raises(ValueError):
            QUICKNN_RESOURCE_MODEL.estimate(16, cache_bytes=-1)
