"""Unit tests for trajectory metrics."""

import numpy as np
import pytest

from repro.analysis import (
    absolute_trajectory_error,
    evaluate_trajectory,
    relative_pose_errors,
)
from repro.geometry import RigidTransform


def straight_line(n, step=1.0, yaw_rate=0.0):
    poses = [RigidTransform.identity()]
    for _ in range(n - 1):
        inc = RigidTransform.from_yaw(yaw_rate, translation=(step, 0.0, 0.0))
        poses.append(poses[-1].compose(inc))
    return poses


class TestAte:
    def test_identical_trajectories_zero(self):
        traj = straight_line(5)
        errors = absolute_trajectory_error(traj, traj)
        assert np.allclose(errors, 0.0)

    def test_constant_offset(self):
        truth = straight_line(4)
        shifted = [
            RigidTransform(p.rotation, p.translation + [0.0, 2.0, 0.0])
            for p in truth
        ]
        errors = absolute_trajectory_error(shifted, truth)
        assert np.allclose(errors, 2.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="lengths"):
            absolute_trajectory_error(straight_line(3), straight_line(4))


class TestRpe:
    def test_identical_zero(self):
        traj = straight_line(6, yaw_rate=0.05)
        t, r = relative_pose_errors(traj, traj)
        assert np.allclose(t, 0.0) and np.allclose(r, 0.0)

    def test_catches_one_bad_step(self):
        truth = straight_line(5)
        bad = list(truth)
        # Corrupt step 2 -> 3 by an extra 0.5 m.
        for i in range(3, 5):
            bad[i] = RigidTransform(
                bad[i].rotation, bad[i].translation + [0.5, 0.0, 0.0]
            )
        t, r = relative_pose_errors(bad, truth)
        assert t[2] == pytest.approx(0.5)
        assert t[0] == pytest.approx(0.0) and t[3] == pytest.approx(0.0)

    def test_single_pose_empty(self):
        t, r = relative_pose_errors(straight_line(1), straight_line(1))
        assert t.size == 0 and r.size == 0


class TestEvaluate:
    def test_rebase_handles_offset_truth(self):
        # Truth trajectory starts away from the origin; the estimate is
        # anchored at identity (as a tracker's output is).
        offset = RigidTransform.from_translation([100.0, 50.0, 0.0])
        truth = [offset.compose(p) for p in straight_line(5)]
        estimate = straight_line(5)
        result = evaluate_trajectory(estimate, truth, rebase=True)
        assert result.ate_rmse == pytest.approx(0.0, abs=1e-12)

    def test_summary_readable(self):
        result = evaluate_trajectory(straight_line(3), straight_line(3))
        assert "ATE" in result.summary() and "RPE" in result.summary()

    def test_end_to_end_with_tracker(self):
        """The ICP tracker's drift, quantified with standard metrics."""
        from repro.datasets import DriveConfig, generate_drive
        from repro.icp import FrameTracker, IcpConfig

        config = DriveConfig(
            n_frames=4, target_points=4_000, ego_speed=3.0, ego_yaw_rate=0.1
        )
        frames = list(generate_drive(config, seed=2))
        tracker = FrameTracker(IcpConfig(knn="approx", trim_fraction=0.3))
        state = tracker.track(f.sensor_cloud() for f in frames)
        result = evaluate_trajectory(
            state.poses, [f.ego_pose for f in frames], rebase=True
        )
        assert result.ate_rmse < 0.3
        assert result.rpe_translation_rmse < 0.2
