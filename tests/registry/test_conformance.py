"""Conformance suite over every string-knob registry in the repo.

Satellite contract of the registry consolidation: every knob rejects
unknown names with one uniform message listing the full set of choices,
deprecated aliases fold with exactly one DeprecationWarning, and
registration order never changes what callers resolve or see.
"""

import re
import warnings

import numpy as np
import pytest

from repro.registry import Registry, warn_deprecated_alias

# ---------------------------------------------------------------------------
# The live registries: (registry, an exercised caller that must raise the
# registry's uniform unknown-name error for a bogus knob value).
# ---------------------------------------------------------------------------


def _registries():
    from repro.datasets.drive import SCENES
    from repro.index.protocol import INDEXES
    from repro.kdtree.blocked import PARTITIONERS
    from repro.kdtree.builders import BUILDERS
    from repro.kdtree.search import ENGINES
    from repro.serve.backends import BACKENDS
    from repro.serve.sessions import EVICTION
    from repro.serve.sharding import STRATEGIES

    return {
        "knn index": INDEXES,
        "execution backend": BACKENDS,
        "tree builder": BUILDERS,
        "query engine": ENGINES,
        "sharding strategy": STRATEGIES,
        "scene kind": SCENES,
        "eviction policy": EVICTION,
        "partitioner": PARTITIONERS,
    }


def _callers():
    """Knob surfaces that must surface the registry error verbatim."""
    from repro.index import make_index
    from repro.kdtree import BlockedBuildConfig, KdTreeConfig, knn_approx
    from repro.kdtree.build import build_tree
    from repro.serve.config import ExecutionConfig, ServeConfig
    from repro.serve.sessions import SessionConfig

    ref = np.zeros((4, 3))

    def _engine():
        from repro.kdtree.build import build_tree

        tree, _ = build_tree(np.random.default_rng(0).normal(size=(16, 3)))
        knn_approx(tree, ref, 1, engine="nope")

    return [
        ("knn index", lambda: make_index("nope", ref)),
        ("execution backend", lambda: ExecutionConfig(backend="nope")),
        ("tree builder", lambda: KdTreeConfig(builder="nope")),
        ("query engine", _engine),
        ("sharding strategy", lambda: ServeConfig(sharding="nope")),
        ("scene kind", lambda: __import__(
            "repro.datasets.drive", fromlist=["_make_scene"]
        )._make_scene("nope", 0)),
        ("eviction policy", lambda: SessionConfig(eviction="nope")),
        ("partitioner", lambda: BlockedBuildConfig(partitioner="nope")),
    ]


class TestUniformErrors:
    @pytest.mark.parametrize("kind", sorted(_registries()))
    def test_unknown_name_lists_every_choice(self, kind):
        registry = _registries()[kind]
        with pytest.raises(ValueError) as excinfo:
            registry.resolve("definitely-not-registered")
        message = str(excinfo.value)
        assert message.startswith(
            f"unknown {kind} 'definitely-not-registered'; available: "
        )
        for choice in registry.available():
            assert choice in message

    @pytest.mark.parametrize(
        "kind,caller", _callers(), ids=[k for k, _ in _callers()]
    )
    def test_knob_surfaces_raise_the_registry_error(self, kind, caller):
        with pytest.raises(ValueError, match=f"unknown {re.escape(kind)} "):
            caller()

    def test_alias_summary_included_when_aliases_exist(self):
        from repro.kdtree.search import ENGINES

        with pytest.raises(ValueError, match=r"aliases: .*vectorized -> batched"):
            ENGINES.resolve("nope")


class TestAliases:
    @pytest.mark.parametrize("kind", sorted(_registries()))
    def test_aliases_fold_to_registered_canonicals(self, kind):
        registry = _registries()[kind]
        for alias, canonical in registry.aliases().items():
            assert canonical in registry.available()
            assert registry.resolve(alias) is registry.resolve(canonical)

    def test_engine_aliases(self):
        from repro.kdtree.search import ENGINES

        assert ENGINES.canonical("vectorized") == "batched"
        assert ENGINES.canonical("reference") == "loop"

    def test_available_excludes_aliases(self):
        registry = Registry("thing")
        registry.add("real", object(), "nickname")
        assert registry.available() == ("real",)
        assert registry.aliases() == {"nickname": "real"}
        assert "nickname" in registry


class TestDeprecatedAliasWarnings:
    def test_warn_deprecated_alias_message_and_category(self):
        with pytest.warns(DeprecationWarning,
                          match=r"^old\(\) is deprecated; use new\(\) instead$"):
            warn_deprecated_alias("old()", "new()", stacklevel=2)

    def test_serve_worker_alias_warns_exactly_once(self):
        from repro.serve.config import ServeConfig

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            config = ServeConfig(worker="thread")
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "ServeConfig(worker=...)" in str(deprecations[0].message)
        assert config.execution.backend == "thread"
        assert config.worker is None

    def test_snapshot_shims_warn_exactly_once_per_call(self, tmp_path):
        from repro.kdtree import build_flat
        from repro.kdtree.serialize import load_flat, save_flat

        flat, _ = build_flat(np.random.default_rng(0).normal(size=(32, 3)))
        path = tmp_path / "t.npz"
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            save_flat(flat, path)
            load_flat(path)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2
        # Attributed to this caller, not to repro internals (the test
        # suite escalates repro-attributed DeprecationWarnings).
        for w in deprecations:
            assert w.filename == __file__

    def test_bbf_max_leaves_alias_warns_exactly_once(self):
        from repro.kdtree import build_tree, knn_bbf

        tree, _ = build_tree(np.random.default_rng(0).normal(size=(64, 3)))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            knn_bbf(tree, np.zeros((1, 3)), 2, max_leaves=4)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "BbfConfig(max_leaves=...)" in str(deprecations[0].message)


class TestRegistrySemantics:
    def test_registration_order_does_not_change_resolution(self):
        a = Registry("widget")
        b = Registry("widget")
        one, two, three = object(), object(), object()
        a.add("one", one, "uno")
        a.add("two", two)
        a.add("three", three)
        b.add("three", three)
        b.add("two", two)
        b.add("one", one, "uno")
        assert a.available() == b.available()
        assert a.aliases() == b.aliases()
        for name in ("one", "two", "three", "uno"):
            assert a.resolve(name) is b.resolve(name)
        with pytest.raises(ValueError) as err_a:
            a.resolve("nope")
        with pytest.raises(ValueError) as err_b:
            b.resolve("nope")
        assert str(err_a.value) == str(err_b.value)

    def test_duplicate_names_and_aliases_rejected(self):
        registry = Registry("widget")
        registry.add("one", object(), "uno")
        with pytest.raises(ValueError, match="duplicate widget name 'one'"):
            registry.add("one", object())
        with pytest.raises(ValueError, match="duplicate widget name 'uno'"):
            registry.add("two", object(), "uno")

    def test_invalid_names_rejected(self):
        registry = Registry("widget")
        for bad in ("", "-leading", "has space", "has/slash"):
            with pytest.raises(ValueError, match="invalid widget name"):
                registry.add(bad, object())

    def test_check_validates_and_folds(self):
        registry = Registry("widget")
        registry.add("real", object(), "nick")
        assert registry.check("nick") == "real"
        with pytest.raises(ValueError, match="unknown widget"):
            registry.check("nope")

    def test_container_protocol(self):
        registry = Registry("widget")
        registry.add("b", 1)
        registry.add("a", 2)
        assert list(registry) == ["a", "b"]
        assert len(registry) == 2
        assert "a" in registry and "zz" not in registry
