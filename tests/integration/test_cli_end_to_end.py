"""End-to-end CLI tests: the installed entry point's full surface."""

import json

import pytest

from repro.harness.runner import main


class TestCliSurface:
    def test_list_is_complete_and_ordered(self, capsys):
        assert main(["list"]) == 0
        ids = capsys.readouterr().out.split()
        # Paper artifacts first, in paper order; extensions after.
        assert ids[:5] == ["table1", "fig3", "fig8", "fig9", "fig10"]
        assert all(
            x.startswith(("ext-", "serve-", "blocked-", "radius-", "fps-"))
            for x in ids[16:]
        )

    def test_run_with_json_roundtrip(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(["run", "tables23", "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload[0]["exp_id"] == "tables23"
        assert all(payload[0]["shape_checks"].values())
        stdout = capsys.readouterr().out
        assert "tables23" in stdout and "[ok]" in stdout

    def test_exit_code_reflects_failures(self, monkeypatch):
        import repro.harness.runner as runner
        from repro.harness.result import ExperimentResult

        failing = ExperimentResult(
            exp_id="x", title="t", headers=["a"], rows=[[1]],
            shape_checks={"doomed": False},
        )
        monkeypatch.setattr(runner, "experiment_ids", lambda: ["x"])
        monkeypatch.setattr(runner, "run_experiment", lambda exp_id: failing)
        assert runner.main(["all"]) == 1

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            main([])
