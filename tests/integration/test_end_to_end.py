"""Cross-module integration tests: the full pipeline, end to end."""

import numpy as np
import pytest

import repro
from repro.analysis.accuracy import knn_recall
from repro.arch import LinearArch, LinearArchConfig, QuickNN, QuickNNConfig
from repro.baselines import knn_bruteforce
from repro.datasets import DriveConfig, generate_drive
from repro.icp import IcpConfig, icp_register
from repro.kdtree import KdTreeConfig, build_tree, check_tree, knn_approx, update_tree


class TestPublicApi:
    def test_top_level_exports_work(self):
        ref, qry = repro.lidar_frame_pair(1_000, seed=1)
        tree, _ = repro.build_tree(ref)
        result = repro.knn_approx(tree, qry, k=4)
        assert result.indices.shape == (1_000, 4)

    def test_version(self):
        assert repro.__version__ == "1.0.0"


class TestSuccessiveFramePipeline:
    """The paper's benchmark workload, run through the whole stack."""

    def test_accelerator_results_equal_software(self, small_frame_pair):
        ref, qry = small_frame_pair
        config = KdTreeConfig(bucket_capacity=64)
        accel = QuickNN(QuickNNConfig(n_fus=16, tree=config))
        hw_result, report = accel.run(ref, qry, 8)

        tree, _ = build_tree(ref, config)
        sw_result = knn_approx(tree, qry, 8)
        assert np.array_equal(hw_result.indices, sw_result.indices)
        assert report.fps > 0

    def test_quicknn_faster_and_lighter_than_linear(self, small_frame_pair):
        ref, qry = small_frame_pair
        n = len(ref)
        quick = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 8)[1]
        linear = LinearArch(LinearArchConfig(n_fus=16)).simulate(n, n, 8)
        assert quick.total_cycles < linear.total_cycles
        assert quick.memory_words < linear.memory_words

    def test_accuracy_holds_through_accelerator(self, small_frame_pair):
        ref, qry = small_frame_pair
        _, _ = small_frame_pair
        accel = QuickNN(QuickNNConfig(n_fus=16))
        hw_result, _ = accel.run(ref, qry, 8)
        exact = knn_bruteforce(ref, qry, 8)
        assert knn_recall(hw_result, exact, 8) > 0.5


class TestDriveWithIncrementalUpdate:
    def test_tree_maintained_across_frames(self):
        config = KdTreeConfig(bucket_capacity=128)
        frames = list(generate_drive(
            DriveConfig(n_frames=4, target_points=3_000), seed=2
        ))
        tree, _ = build_tree(frames[0].cloud, config)
        for frame in frames[1:]:
            tree, _ = update_tree(tree, frame.cloud, config)
            check_tree(tree)
            result = knn_approx(tree, frame.cloud.xyz[:100], k=1)
            assert np.allclose(result.distances[:, 0], 0.0)


class TestIcpOnLidarFrames:
    def test_ego_motion_estimated_from_drive(self):
        frames = list(generate_drive(
            DriveConfig(n_frames=2, target_points=4_000, ego_speed=5.0), seed=3
        ))
        # Register consecutive sensor-frame clouds; the recovered motion
        # should match the ego step (0.5 m forward).
        src = frames[1].sensor_cloud()
        tgt = frames[0].sensor_cloud()
        result = icp_register(src, tgt, IcpConfig(knn="approx", trim_fraction=0.3))
        dx = result.transform.translation[0]
        assert dx == pytest.approx(0.5, abs=0.25)
