"""Paper-conformance summary at reduced scale.

The benchmark suite asserts the paper's findings at the full 30k
operating point; this module asserts a compact subset at 10k so the
headline claims are also guarded by the fast test suite.
"""

import pytest

from repro.arch import LinearArch, LinearArchConfig, QuickNN, QuickNNConfig


@pytest.fixture(scope="module")
def frames_10k():
    from repro.datasets import lidar_frame_pair

    return lidar_frame_pair(10_000, seed=0)


@pytest.fixture(scope="module")
def quick64(frames_10k):
    ref, qry = frames_10k
    _, report = QuickNN(QuickNNConfig(n_fus=64)).run(ref, qry, 8)
    return report


class TestHeadlineClaims:
    def test_order_of_magnitude_over_linear(self, quick64):
        """Abstract: large speedup over the same-sized exact design."""
        linear = LinearArch(LinearArchConfig(n_fus=64)).simulate(10_000, 10_000, 8)
        assert linear.total_cycles / quick64.total_cycles >= 8.0

    def test_memory_traffic_reduction(self, quick64):
        """Figure 12's regime: an order of magnitude less traffic."""
        linear = LinearArch(LinearArchConfig(n_fus=64)).simulate(10_000, 10_000, 8)
        assert linear.memory_words / quick64.memory_words >= 10.0

    def test_real_time_capable(self, quick64):
        """Section 6: modern LiDARs need >=10 FPS; QuickNN clears it."""
        assert quick64.fps >= 10.0

    def test_bandwidth_utilization_band(self, quick64):
        """Figure 13: utilization in the high-but-not-saturated band."""
        assert 0.5 <= quick64.bandwidth_utilization <= 0.95

    def test_fu_scaling_with_diminishing_returns(self, frames_10k):
        """Table 5's shape: monotone FPS, sublinear at the top end."""
        ref, qry = frames_10k
        fps = {}
        for fus in (16, 64, 128):
            _, report = QuickNN(QuickNNConfig(n_fus=fus)).run(ref, qry, 8)
            fps[fus] = report.fps
        assert fps[16] < fps[64] < fps[128]
        assert fps[128] / fps[16] < 8.0  # far from linear: shared memory binds

    def test_accuracy_at_operating_point(self, frames_10k):
        """Figure 3's regime: B_N=256 approximate search is usably
        accurate at x=2 rank tolerance."""
        from repro.analysis.accuracy import knn_recall
        from repro.baselines import knn_bruteforce

        ref, qry = frames_10k
        result, _ = QuickNN(QuickNNConfig(n_fus=64)).run(ref, qry, 8)
        exact = knn_bruteforce(ref, qry, 10)
        assert knn_recall(result, exact, 8, x=2) >= 0.6
