"""Unit tests for ego motion profiles."""

import numpy as np
import pytest

from repro.datasets import DriveConfig, generate_drive


class TestYawRateProfiles:
    def test_straight_constant(self):
        cfg = DriveConfig(n_frames=6, ego_yaw_rate=0.1)
        rates = [cfg.yaw_rate_at(i) for i in range(6)]
        assert rates == [0.1] * 6

    def test_turn_ramps_in(self):
        cfg = DriveConfig(n_frames=9, ego_profile="turn")
        rates = [cfg.yaw_rate_at(i) for i in range(9)]
        assert rates[0] == 0.0 and rates[1] == 0.0
        assert all(r > 0 for r in rates[3:])

    def test_slalom_oscillates(self):
        cfg = DriveConfig(n_frames=8, ego_profile="slalom")
        rates = [cfg.yaw_rate_at(i) for i in range(8)]
        assert max(rates) > 0 and min(rates) < 0

    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="ego_profile"):
            DriveConfig(ego_profile="teleport")


class TestDrivesWithProfiles:
    def test_turn_curves_the_trajectory(self):
        straight = list(generate_drive(
            DriveConfig(n_frames=6, target_points=500, ego_speed=10.0), seed=1
        ))
        turning = list(generate_drive(
            DriveConfig(n_frames=6, target_points=500, ego_speed=10.0,
                        ego_profile="turn"), seed=1
        ))
        straight_y = straight[-1].ego_pose.translation[1]
        turning_y = turning[-1].ego_pose.translation[1]
        assert abs(turning_y) > abs(straight_y) + 0.01

    def test_slalom_returns_toward_heading(self):
        frames = list(generate_drive(
            DriveConfig(n_frames=9, target_points=500, ego_speed=10.0,
                        ego_profile="slalom"), seed=1
        ))
        final_yaw = frames[-1].ego_pose.yaw()
        max_yaw = max(abs(f.ego_pose.yaw()) for f in frames)
        assert abs(final_yaw) < max_yaw  # wobble partially cancels
