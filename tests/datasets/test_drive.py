"""Unit tests for drive sequences and frame generation."""

import numpy as np
import pytest

from repro.datasets import DriveConfig, generate_drive, lidar_frame, lidar_frame_pair


class TestDriveConfig:
    def test_rejects_zero_frames(self):
        with pytest.raises(ValueError):
            DriveConfig(n_frames=0)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            DriveConfig(frame_period=0.0)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            DriveConfig(target_points=0)


class TestGenerateDrive:
    def test_frame_count_and_indexing(self):
        frames = list(generate_drive(DriveConfig(n_frames=3, target_points=1000), seed=1))
        assert [f.index for f in frames] == [0, 1, 2]
        assert frames[1].time == pytest.approx(0.1)

    def test_target_points_enforced(self):
        frames = list(generate_drive(DriveConfig(n_frames=2, target_points=1500), seed=1))
        assert all(len(f.cloud) == 1500 for f in frames)

    def test_deterministic(self):
        cfg = DriveConfig(n_frames=2, target_points=800)
        a = list(generate_drive(cfg, seed=5))
        b = list(generate_drive(cfg, seed=5))
        assert np.array_equal(a[1].cloud.xyz, b[1].cloud.xyz)

    def test_ego_moves_forward(self):
        cfg = DriveConfig(n_frames=3, target_points=500, ego_speed=10.0)
        frames = list(generate_drive(cfg, seed=0))
        x0 = frames[0].ego_pose.translation[0]
        x2 = frames[2].ego_pose.translation[0]
        assert x2 - x0 == pytest.approx(2.0)  # 2 frames * 0.1 s * 10 m/s

    def test_sensor_cloud_recenters(self):
        cfg = DriveConfig(n_frames=2, target_points=500, ego_speed=20.0)
        frames = list(generate_drive(cfg, seed=0))
        frame = frames[1]
        world_mean_x = frame.cloud.xyz[:, 0].mean()
        sensor_mean_x = frame.sensor_cloud().xyz[:, 0].mean()
        assert abs(sensor_mean_x) < abs(world_mean_x) + 1e-9

    def test_frames_differ_over_time(self):
        cfg = DriveConfig(n_frames=2, target_points=1000, ego_speed=10.0)
        frames = list(generate_drive(cfg, seed=0))
        assert not np.array_equal(frames[0].cloud.xyz, frames[1].cloud.xyz)


class TestLidarFrame:
    def test_exact_size(self):
        assert len(lidar_frame(1234, seed=11)) == 1234

    def test_cached_identity(self):
        a = lidar_frame(1000, seed=2)
        b = lidar_frame(1000, seed=2)
        assert a is b  # lru-cached

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lidar_frame(0)

    def test_no_ground_points(self):
        frame = lidar_frame(2000, seed=3)
        assert (frame.xyz[:, 2] > 0.3).all()


class TestFramePair:
    def test_sizes(self):
        ref, qry = lidar_frame_pair(1500, seed=4)
        assert len(ref) == 1500 and len(qry) == 1500

    def test_frames_are_coherent(self):
        """Successive frames overlap heavily: median NN distance is small."""
        from scipy.spatial import cKDTree

        ref, qry = lidar_frame_pair(3000, seed=4)
        d, _ = cKDTree(ref.xyz).query(qry.xyz, k=1)
        assert np.median(d) < 1.0
