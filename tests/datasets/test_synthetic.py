"""Unit tests for simple synthetic distributions."""

import numpy as np
import pytest

from repro.datasets.synthetic import gaussian_clusters, perturbed_pair, uniform_cloud
from repro.geometry import RigidTransform


class TestUniform:
    def test_within_bounds(self, rng):
        cloud = uniform_cloud(500, rng=rng, lo=(0, 0, 0), hi=(1, 2, 3))
        assert (cloud.xyz >= 0).all()
        assert (cloud.xyz <= [1, 2, 3]).all()

    def test_rejects_inverted_bounds(self, rng):
        with pytest.raises(ValueError):
            uniform_cloud(10, rng=rng, lo=(1, 0, 0), hi=(0, 1, 1))

    def test_size(self, rng):
        assert len(uniform_cloud(77, rng=rng)) == 77


class TestClusters:
    def test_size_and_nonuniformity(self, rng):
        cloud = gaussian_clusters(2000, rng=rng, n_clusters=4, cluster_std=1.0)
        assert len(cloud) == 2000
        # Clustered data has much higher local density than uniform.
        from scipy.spatial import cKDTree

        d, _ = cKDTree(cloud.xyz).query(cloud.xyz, k=2)
        assert np.median(d[:, 1]) < 1.0

    def test_rejects_zero_clusters(self, rng):
        with pytest.raises(ValueError):
            gaussian_clusters(10, rng=rng, n_clusters=0)


class TestPerturbedPair:
    def test_transform_applies(self, rng):
        t = RigidTransform.from_yaw(0.1, translation=(1.0, 0.0, 0.0))
        ref, qry, returned = perturbed_pair(500, rng=rng, transform=t, noise_std=0.0)
        assert returned is t
        assert np.allclose(qry.xyz, t.apply(ref.xyz))

    def test_noise_added(self, rng):
        t = RigidTransform.identity()
        ref, qry, _ = perturbed_pair(500, rng=rng, transform=t, noise_std=0.05)
        rms = np.sqrt(((qry.xyz - ref.xyz) ** 2).mean())
        assert 0.01 < rms < 0.2

    def test_default_transform(self, rng):
        _, _, t = perturbed_pair(100, rng=rng)
        angle, dist = t.magnitude()
        assert angle > 0 and dist > 0
