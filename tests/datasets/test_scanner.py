"""Unit tests for the LiDAR scanner model."""

import numpy as np
import pytest

from repro.datasets.scanner import LidarScanner, ScannerConfig
from repro.datasets.scene import Box, GroundPlane, Scene
from repro.geometry import RigidTransform


@pytest.fixture
def flat_world():
    return Scene((GroundPlane(height=0.0),))


class TestConfig:
    def test_defaults_valid(self):
        cfg = ScannerConfig()
        assert cfg.rays_per_revolution == cfg.n_beams * cfg.n_azimuth

    def test_rejects_bad_elevations(self):
        with pytest.raises(ValueError):
            ScannerConfig(elevation_min_deg=5.0, elevation_max_deg=-5.0)

    def test_rejects_bad_dropout(self):
        with pytest.raises(ValueError):
            ScannerConfig(dropout_rate=1.0)

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            ScannerConfig(min_range=5.0, max_range=2.0)


class TestScan:
    def test_ground_only_returns_below_sensor(self, flat_world):
        scanner = LidarScanner(ScannerConfig(n_beams=8, n_azimuth=64))
        cloud = scanner.scan(flat_world)
        assert len(cloud) > 0
        assert np.allclose(cloud.xyz[:, 2], 0.0, atol=1e-9)

    def test_range_gating(self, flat_world):
        cfg = ScannerConfig(n_beams=8, n_azimuth=64, max_range=20.0)
        cloud = LidarScanner(cfg).scan(flat_world)
        ranges = np.linalg.norm(cloud.xyz - [0.0, 0.0, cfg.sensor_height], axis=1)
        assert (ranges <= 20.0 + 1e-6).all()
        assert (ranges >= cfg.min_range - 1e-6).all()

    def test_deterministic_without_rng(self, flat_world):
        scanner = LidarScanner(ScannerConfig(n_beams=4, n_azimuth=32))
        a = scanner.scan(flat_world)
        b = scanner.scan(flat_world)
        assert np.array_equal(a.xyz, b.xyz)

    def test_noise_perturbs(self, flat_world, rng):
        scanner = LidarScanner(ScannerConfig(n_beams=4, n_azimuth=32, dropout_rate=0.0))
        clean = scanner.scan(flat_world)
        noisy = scanner.scan(flat_world, rng=rng)
        assert not np.allclose(clean.xyz, noisy.xyz)

    def test_dropout_reduces_returns(self, flat_world, rng):
        base = LidarScanner(
            ScannerConfig(n_beams=8, n_azimuth=128, dropout_rate=0.0, range_noise_std=0.0)
        ).scan(flat_world, rng=rng)
        dropped = LidarScanner(
            ScannerConfig(n_beams=8, n_azimuth=128, dropout_rate=0.5, range_noise_std=0.0)
        ).scan(flat_world, rng=np.random.default_rng(0))
        assert len(dropped) < len(base)

    def test_wall_appears_at_distance(self):
        scene = Scene((Box(lo=(9.5, -50, 0), hi=(10.5, 50, 10)),))
        scanner = LidarScanner(ScannerConfig(n_beams=8, n_azimuth=256))
        cloud = scanner.scan(scene)
        assert len(cloud) > 0
        assert cloud.xyz[:, 0].min() >= 9.4

    def test_ego_pose_moves_origin(self, flat_world):
        scanner = LidarScanner(ScannerConfig(n_beams=4, n_azimuth=32))
        pose = RigidTransform.from_translation([100.0, 0.0, 0.0])
        cloud = scanner.scan(flat_world, ego_pose=pose)
        # Ground hits cluster around the translated sensor.
        assert abs(cloud.xyz[:, 0].mean() - 100.0) < 30.0

    def test_density_falls_with_range(self, flat_world):
        """Point density drops with distance: the LiDAR non-uniformity."""
        scanner = LidarScanner(ScannerConfig(n_beams=32, n_azimuth=512))
        cloud = scanner.scan(flat_world)
        r = np.linalg.norm(cloud.xyz[:, :2], axis=1)
        near = ((r > 2) & (r < 10)).sum() / (np.pi * (10**2 - 2**2))
        far = ((r > 30) & (r < 60)).sum() / (np.pi * (60**2 - 30**2))
        assert near > 5 * far
