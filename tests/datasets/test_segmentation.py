"""Unit tests for RANSAC ground segmentation."""

import numpy as np
import pytest

from repro.datasets import fit_ground_plane, remove_ground_ransac
from repro.geometry import PointCloud


def make_scene(rng, *, ground_z=0.0, slope=0.0, n_ground=600, n_obstacles=200):
    gx = rng.uniform(-30, 30, n_ground)
    gy = rng.uniform(-30, 30, n_ground)
    gz = ground_z + slope * gx + rng.normal(0, 0.02, n_ground)
    ground = np.column_stack([gx, gy, gz])
    ox = rng.uniform(-30, 30, n_obstacles)
    oy = rng.uniform(-30, 30, n_obstacles)
    oz = rng.uniform(1.0, 6.0, n_obstacles)
    obstacles = np.column_stack([ox, oy, oz])
    return PointCloud(np.vstack([ground, obstacles])), n_ground


class TestFit:
    def test_flat_ground_recovered(self, rng):
        cloud, n_ground = make_scene(rng)
        plane = fit_ground_plane(cloud, rng=rng)
        assert plane.normal[2] > 0.99
        assert abs(plane.offset) < 0.1
        assert plane.inlier_fraction > 0.6

    def test_offset_ground_recovered(self, rng):
        cloud, _ = make_scene(rng, ground_z=-1.8)
        plane = fit_ground_plane(cloud, rng=rng)
        assert plane.offset == pytest.approx(-1.8, abs=0.1)

    def test_sloped_ground_recovered(self, rng):
        cloud, _ = make_scene(rng, slope=0.05)
        plane = fit_ground_plane(cloud, rng=rng)
        # ~2.9 degree slope: normal tilts accordingly.
        assert plane.normal[2] > 0.95
        heights = plane.signed_distance(cloud.xyz[:600])
        assert np.abs(heights).mean() < 0.1

    def test_rejects_tiny_cloud(self):
        with pytest.raises(ValueError):
            fit_ground_plane(PointCloud([[0, 0, 0], [1, 1, 1]]))


class TestRemoval:
    def test_keeps_obstacles_drops_ground(self, rng):
        cloud, n_ground = make_scene(rng)
        kept = remove_ground_ransac(cloud, rng=rng)
        n_obstacles = len(cloud) - n_ground
        assert abs(len(kept) - n_obstacles) <= 0.05 * len(cloud)
        assert kept.xyz[:, 2].min() > 0.2

    def test_robust_to_height_offset(self, rng):
        """Unlike the fixed threshold, RANSAC adapts to sensor height.

        With the ground *above* the fixed threshold (downhill sensor
        mount), the threshold filter keeps every ground point; the
        RANSAC fit still finds and removes the plane.
        """
        from repro.datasets import remove_ground

        cloud, n_ground = make_scene(rng, ground_z=1.0)
        threshold_kept = remove_ground(cloud, z_threshold=0.3)
        ransac_kept = remove_ground_ransac(cloud, rng=rng)
        # The fixed threshold keeps the elevated ground...
        assert len(threshold_kept) > len(cloud) - n_ground + 100
        # ...while RANSAC still removes it.
        assert len(ransac_kept) <= len(cloud) - n_ground + 0.05 * len(cloud)

    def test_tiny_cloud_passthrough(self):
        small = PointCloud([[0, 0, 0], [1, 1, 1]])
        assert len(remove_ground_ransac(small)) == 2

    def test_on_synthetic_lidar_frame(self, small_frame, rng):
        # The cached frame is threshold-cleaned already; a second RANSAC
        # pass should remove little (no dominant plane left).
        kept = remove_ground_ransac(small_frame, rng=rng)
        assert len(kept) > 0.4 * len(small_frame)
