"""Unit tests for point-cloud file I/O."""

import numpy as np
import pytest

from repro.datasets import load_cloud, save_cloud
from repro.datasets.synthetic import uniform_cloud
from repro.geometry import PointCloud


@pytest.fixture
def cloud(rng):
    return uniform_cloud(200, rng=rng)


class TestRoundtrips:
    @pytest.mark.parametrize("suffix", [".npz", ".npy", ".bin", ".xyz"])
    def test_roundtrip(self, cloud, tmp_path, suffix):
        path = tmp_path / f"cloud{suffix}"
        save_cloud(cloud, path)
        restored = load_cloud(path)
        atol = 1e-4 if suffix in (".bin", ".xyz") else 0.0  # float32 / ascii
        assert restored.xyz.shape == cloud.xyz.shape
        assert np.allclose(restored.xyz, cloud.xyz, atol=atol)

    def test_kitti_bin_layout(self, cloud, tmp_path):
        """The .bin format must match KITTI: float32 x,y,z,reflectance."""
        path = tmp_path / "scan.bin"
        save_cloud(cloud, path)
        raw = np.fromfile(path, dtype=np.float32).reshape(-1, 4)
        assert raw.shape[0] == len(cloud)
        assert np.allclose(raw[:, 3], 0.0)


class TestValidation:
    def test_unknown_format(self, cloud, tmp_path):
        with pytest.raises(ValueError, match="format"):
            save_cloud(cloud, tmp_path / "cloud.pcd")
        with pytest.raises(ValueError, match="format"):
            load_cloud(tmp_path / "cloud.pcd")

    def test_corrupt_bin_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        np.arange(7, dtype=np.float32).tofile(path)  # not a multiple of 4
        with pytest.raises(ValueError, match="KITTI"):
            load_cloud(path)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros((5, 2)))
        with pytest.raises(ValueError):
            load_cloud(path)

    def test_reflectance_column_dropped(self, tmp_path):
        path = tmp_path / "four.npy"
        np.save(path, np.ones((5, 4)))
        cloud = load_cloud(path)
        assert cloud.xyz.shape == (5, 3)
