"""city_block_map: accumulated multi-frame maps (repro.datasets.city)."""

import numpy as np
import pytest

from repro.datasets import city_block_map


def test_exact_size_and_determinism():
    a = city_block_map(25_000, seed=3, frame_points=8_000)
    b = city_block_map(25_000, seed=3, frame_points=8_000)
    assert a.shape == (25_000, 3)
    assert a.dtype == np.float64
    np.testing.assert_array_equal(a, b)


def test_seed_changes_map():
    a = city_block_map(10_000, seed=0, frame_points=5_000)
    b = city_block_map(10_000, seed=1, frame_points=5_000)
    assert not np.array_equal(a, b)


def test_out_path_streams_identical_map(tmp_path):
    path = tmp_path / "map.npy"
    mapped = city_block_map(12_000, seed=2, frame_points=5_000, out=path)
    assert isinstance(mapped, np.memmap)
    assert not mapped.flags.writeable
    in_ram = city_block_map(12_000, seed=2, frame_points=5_000)
    np.testing.assert_array_equal(np.asarray(mapped), in_ram)


def test_multi_frame_extent_exceeds_one_scan():
    # Accumulation along the ego trajectory: the map must span more
    # ground than any single frame's scan radius.
    xyz = city_block_map(30_000, seed=0, frame_points=6_000)
    assert np.ptp(xyz[:, 0]) > 50.0


def test_validation():
    with pytest.raises(ValueError, match="n_points"):
        city_block_map(0)
    with pytest.raises(ValueError, match="frame_points"):
        city_block_map(10, frame_points=0)
