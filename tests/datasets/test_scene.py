"""Unit tests for scene primitives and ray intersection."""

import numpy as np
import pytest

from repro.datasets.scene import Box, Cylinder, GroundPlane, Scene, make_street_scene


def rays(origin, direction):
    o = np.atleast_2d(np.asarray(origin, dtype=float))
    d = np.atleast_2d(np.asarray(direction, dtype=float))
    return o, d


class TestGroundPlane:
    def test_downward_ray_hits(self):
        plane = GroundPlane(height=0.0)
        o, d = rays([0, 0, 2.0], [0, 0, -1.0])
        assert plane.intersect(o, d)[0] == pytest.approx(2.0)

    def test_upward_ray_misses(self):
        plane = GroundPlane(height=0.0)
        o, d = rays([0, 0, 2.0], [0, 0, 1.0])
        assert np.isinf(plane.intersect(o, d)[0])

    def test_horizontal_ray_misses(self):
        plane = GroundPlane(height=0.0)
        o, d = rays([0, 0, 2.0], [1.0, 0, 0])
        assert np.isinf(plane.intersect(o, d)[0])

    def test_moved_is_noop(self):
        plane = GroundPlane(height=0.0)
        assert plane.moved(1.0) is plane


class TestBox:
    def test_frontal_hit(self):
        box = Box(lo=(2, -1, 0), hi=(4, 1, 2))
        o, d = rays([0, 0, 1.0], [1.0, 0, 0])
        assert box.intersect(o, d)[0] == pytest.approx(2.0)

    def test_miss_above(self):
        box = Box(lo=(2, -1, 0), hi=(4, 1, 2))
        o, d = rays([0, 0, 3.0], [1.0, 0, 0])
        assert np.isinf(box.intersect(o, d)[0])

    def test_ray_starting_inside_exits(self):
        box = Box(lo=(-1, -1, -1), hi=(1, 1, 1))
        o, d = rays([0, 0, 0], [1.0, 0, 0])
        assert box.intersect(o, d)[0] == pytest.approx(1.0)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Box(lo=(0, 0, 0), hi=(0, 1, 1))

    def test_moved_by_velocity(self):
        box = Box(lo=(0, 0, 0), hi=(1, 1, 1), velocity=(2.0, 0.0, 0.0))
        moved = box.moved(0.5)
        assert moved.lo[0] == pytest.approx(1.0)
        assert moved.hi[0] == pytest.approx(2.0)

    def test_static_moved_is_same_object(self):
        box = Box(lo=(0, 0, 0), hi=(1, 1, 1))
        assert box.moved(1.0) is box


class TestCylinder:
    def test_frontal_hit(self):
        cyl = Cylinder(cx=5.0, cy=0.0, radius=1.0, z_lo=0.0, z_hi=4.0)
        o, d = rays([0, 0, 1.0], [1.0, 0, 0])
        assert cyl.intersect(o, d)[0] == pytest.approx(4.0)

    def test_miss_above_cap(self):
        cyl = Cylinder(cx=5.0, cy=0.0, radius=1.0, z_lo=0.0, z_hi=2.0)
        o, d = rays([0, 0, 3.0], [1.0, 0, 0])
        assert np.isinf(cyl.intersect(o, d)[0])

    def test_vertical_ray_misses(self):
        cyl = Cylinder(cx=0.0, cy=0.0, radius=1.0, z_lo=0.0, z_hi=2.0)
        o, d = rays([0, 0, 5.0], [0, 0, -1.0])
        # Purely vertical ray has a=0 in the quadratic: treated as a miss.
        assert np.isinf(cyl.intersect(o, d)[0])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Cylinder(cx=0, cy=0, radius=0.0, z_lo=0, z_hi=1)
        with pytest.raises(ValueError):
            Cylinder(cx=0, cy=0, radius=1.0, z_lo=2, z_hi=1)


class TestScene:
    def test_nearest_primitive_wins(self):
        scene = Scene((
            Box(lo=(2, -1, 0), hi=(3, 1, 2)),
            Box(lo=(5, -1, 0), hi=(6, 1, 2)),
        ))
        o, d = rays([0, 0, 1.0], [1.0, 0, 0])
        assert scene.intersect(o, d)[0] == pytest.approx(2.0)

    def test_empty_scene_all_misses(self):
        scene = Scene(())
        o, d = rays([0, 0, 0], [1, 0, 0])
        assert np.isinf(scene.intersect(o, d)).all()

    def test_advanced_moves_dynamics_only(self):
        moving = Box(lo=(0, 0, 0), hi=(1, 1, 1), velocity=(1.0, 0, 0))
        static = Box(lo=(5, 0, 0), hi=(6, 1, 1))
        scene = Scene((moving, static)).advanced(1.0)
        assert scene.primitives[0].lo[0] == pytest.approx(1.0)
        assert scene.primitives[1] is static


class TestStreetScene:
    def test_deterministic(self):
        a = make_street_scene(seed=3)
        b = make_street_scene(seed=3)
        assert len(a) == len(b)

    def test_different_seeds_differ(self):
        a = make_street_scene(seed=1)
        b = make_street_scene(seed=2)
        assert len(a) != len(b) or any(
            not np.array_equal(getattr(pa, "velocity"), getattr(pb, "velocity"))
            for pa, pb in zip(a.primitives, b.primitives)
        )

    def test_contains_ground_and_movers(self):
        scene = make_street_scene(seed=0, n_moving_cars=3)
        assert any(isinstance(p, GroundPlane) for p in scene.primitives)
        movers = [p for p in scene.primitives if np.asarray(p.velocity).any()]
        assert len(movers) == 3
