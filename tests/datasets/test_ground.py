"""Unit tests for ground removal."""

import numpy as np
import pytest

from repro.datasets.ground import ground_fraction, remove_ground, remove_ground_robust
from repro.geometry import PointCloud


@pytest.fixture
def mixed_cloud():
    ground = np.column_stack([
        np.linspace(-10, 10, 60),
        np.linspace(-10, 10, 60),
        np.zeros(60),
    ])
    elevated = np.column_stack([
        np.linspace(-10, 10, 40),
        np.zeros(40),
        np.linspace(1.0, 5.0, 40),
    ])
    return PointCloud(np.vstack([ground, elevated]))


class TestThreshold:
    def test_removes_ground(self, mixed_cloud):
        kept = remove_ground(mixed_cloud, z_threshold=0.3)
        assert len(kept) == 40
        assert (kept.xyz[:, 2] > 0.3).all()

    def test_threshold_boundary_removed(self):
        cloud = PointCloud([[0, 0, 0.3], [0, 0, 0.300001]])
        kept = remove_ground(cloud, z_threshold=0.3)
        assert len(kept) == 1

    def test_empty_passthrough(self):
        assert len(remove_ground(PointCloud.empty())) == 0

    def test_fraction(self, mixed_cloud):
        assert ground_fraction(mixed_cloud) == pytest.approx(0.6)

    def test_fraction_empty(self):
        assert ground_fraction(PointCloud.empty()) == 0.0


class TestRobust:
    def test_handles_offset_ground(self, mixed_cloud):
        shifted = mixed_cloud.translated(np.array([0.0, 0.0, -2.0]))
        kept = remove_ground_robust(shifted, clearance=0.3)
        # Same structure survives even though absolute heights changed.
        assert 30 <= len(kept) <= 45

    def test_empty_passthrough(self):
        assert len(remove_ground_robust(PointCloud.empty())) == 0

    def test_reduces_realistic_frame(self, small_frame):
        # The cached fixture is already ground-removed; re-removal with a
        # higher clearance should only shrink it further.
        kept = remove_ground_robust(small_frame, clearance=1.0)
        assert len(kept) < len(small_frame)
