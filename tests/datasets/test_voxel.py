"""Unit tests for voxel-grid downsampling."""

import numpy as np
import pytest

from repro.datasets import voxel_downsample, voxel_occupancy
from repro.datasets.synthetic import uniform_cloud
from repro.geometry import PointCloud


class TestDownsample:
    def test_reduces_density(self, rng):
        cloud = uniform_cloud(5_000, rng=rng, lo=(0, 0, 0), hi=(10, 10, 10))
        down = voxel_downsample(cloud, 1.0)
        assert len(down) < len(cloud)
        # 10x10x10 voxels over dense data: close to fully occupied.
        assert 800 <= len(down) <= 1000

    def test_centroids_inside_their_voxels(self, rng):
        cloud = uniform_cloud(2_000, rng=rng)
        down = voxel_downsample(cloud, 2.0)
        keys = np.floor(down.xyz / 2.0)
        # Each centroid's voxel must have contained original points.
        original_keys = {tuple(k) for k in np.floor(cloud.xyz / 2.0).astype(int)}
        for key in keys.astype(int):
            assert tuple(key) in original_keys

    def test_one_point_per_voxel_is_identity(self):
        cloud = PointCloud([[0.5, 0.5, 0.5], [5.5, 0.5, 0.5]])
        down = voxel_downsample(cloud, 1.0)
        assert len(down) == 2
        assert np.allclose(np.sort(down.xyz[:, 0]), [0.5, 5.5])

    def test_coarse_voxel_collapses_everything(self, rng):
        cloud = uniform_cloud(100, rng=rng, lo=(0, 0, 0), hi=(1, 1, 1))
        down = voxel_downsample(cloud, 100.0)
        assert len(down) == 1
        assert np.allclose(down.xyz[0], cloud.centroid())

    def test_empty_passthrough(self):
        assert len(voxel_downsample(PointCloud.empty(), 1.0)) == 0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            voxel_downsample(uniform_cloud(10, rng=rng), 0.0)


class TestOccupancy:
    def test_counts_sum_to_n(self, rng):
        cloud = uniform_cloud(500, rng=rng)
        occupancy = voxel_occupancy(cloud, 5.0)
        assert sum(occupancy.values()) == 500

    def test_matches_downsample_voxel_count(self, rng):
        cloud = uniform_cloud(1_000, rng=rng)
        occupancy = voxel_occupancy(cloud, 3.0)
        down = voxel_downsample(cloud, 3.0)
        assert len(occupancy) == len(down)

    def test_empty(self):
        assert voxel_occupancy(PointCloud.empty(), 1.0) == {}
