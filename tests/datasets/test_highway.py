"""Unit tests for the highway (Ford-style) scene and scene selection."""

import numpy as np
import pytest

from repro.datasets import (
    DriveConfig,
    generate_drive,
    lidar_frame,
    lidar_frame_pair,
    make_highway_scene,
)
from repro.datasets.scene import Box, Cylinder, GroundPlane


class TestHighwayScene:
    def test_composition(self):
        scene = make_highway_scene(seed=0, n_moving_vehicles=5)
        assert any(isinstance(p, GroundPlane) for p in scene.primitives)
        assert any(isinstance(p, Cylinder) for p in scene.primitives)
        movers = [p for p in scene.primitives if np.asarray(p.velocity).any()]
        assert len(movers) == 5

    def test_highway_traffic_is_fast(self):
        scene = make_highway_scene(seed=1)
        speeds = [
            abs(p.velocity[0]) for p in scene.primitives
            if np.asarray(p.velocity).any()
        ]
        assert min(speeds) >= 20.0

    def test_deterministic(self):
        a = make_highway_scene(seed=4)
        b = make_highway_scene(seed=4)
        assert len(a) == len(b)


class TestSceneSelection:
    def test_frame_kinds_differ(self):
        street = lidar_frame(3_000, seed=5, scene_kind="street")
        highway = lidar_frame(3_000, seed=5, scene_kind="highway")
        assert not np.array_equal(street.xyz, highway.xyz)
        # The highway's lateral extent is wider than the street canyon.
        assert np.ptp(highway.xyz[:, 1]) > np.ptp(street.xyz[:, 1])

    def test_pair_sizes_guaranteed(self):
        ref, qry = lidar_frame_pair(4_000, seed=2, scene_kind="highway")
        assert len(ref) == len(qry) == 4_000

    def test_drive_with_scene_kind(self):
        frames = list(generate_drive(
            DriveConfig(n_frames=2, target_points=2_000, scene_kind="highway",
                        ego_speed=25.0),
            seed=1,
        ))
        assert all(len(f.cloud) == 2_000 for f in frames)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="scene kind"):
            lidar_frame(1_000, seed=0, scene_kind="ocean")
        with pytest.raises(ValueError, match="scene kind"):
            list(generate_drive(DriveConfig(n_frames=1, scene_kind="ocean")))
