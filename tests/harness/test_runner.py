"""CLI tests: multi-experiment runs, --json/--profile/--trace outputs.

``run_experiment`` is monkeypatched to a fast stub so these exercise
the runner's plumbing (argument parsing, progress, summary table,
output files) rather than the experiments themselves.
"""

import json

import pytest

import repro.harness.runner as runner
from repro.harness.result import ExperimentResult
from repro.obs import NullRegistry, get_registry


def _fake_result(exp_id: str) -> ExperimentResult:
    return ExperimentResult(
        exp_id=exp_id,
        title=f"stub {exp_id}",
        headers=["a", "b"],
        rows=[[1, 2.0]],
        shape_checks={"looks right": True},
    )


@pytest.fixture
def stubbed(monkeypatch):
    calls: list[str] = []

    def fake_run(exp_id, **kwargs):
        calls.append(exp_id)
        return _fake_result(exp_id)

    monkeypatch.setattr(runner, "run_experiment", fake_run)
    return calls


class TestRun:
    def test_single_experiment(self, stubbed, capsys):
        assert runner.main(["run", "fig3"]) == 0
        assert stubbed == ["fig3"]
        out = capsys.readouterr().out
        assert "[1/1] fig3" in out
        assert "stub fig3" in out

    def test_multiple_experiments_print_summary_table(self, stubbed, capsys):
        assert runner.main(["run", "fig3", "table1"]) == 0
        assert stubbed == ["fig3", "table1"]
        out = capsys.readouterr().out
        assert "[2/2] table1" in out
        assert "elapsed (s)" in out
        assert "total" in out

    def test_unknown_id_is_rejected_by_argparse(self, stubbed):
        with pytest.raises(SystemExit):
            runner.main(["run", "not-an-experiment"])
        assert stubbed == []

    def test_failed_checks_set_exit_code(self, monkeypatch, capsys):
        def failing(exp_id, **kwargs):
            result = _fake_result(exp_id)
            result.shape_checks["looks right"] = False
            return result

        monkeypatch.setattr(runner, "run_experiment", failing)
        assert runner.main(["run", "fig3"]) == 1


class TestOutputs:
    def test_json_output(self, stubbed, tmp_path):
        path = tmp_path / "res.json"
        runner.main(["run", "fig3", "--json", str(path)])
        (entry,) = json.loads(path.read_text())
        assert entry["exp_id"] == "fig3"
        assert entry["all_checks_pass"] is True
        assert entry["elapsed_s"] > 0

    def test_profile_output(self, stubbed, tmp_path):
        path = tmp_path / "prof.json"
        runner.main(["run", "fig3", "table1", "--profile", str(path)])
        doc = json.loads(path.read_text())
        assert [e["exp_id"] for e in doc["experiments"]] == ["fig3", "table1"]
        assert doc["total_seconds"] > 0
        assert doc["metrics"]["experiment.fig3.seconds.count"] == 1

    def test_trace_output_is_valid_chrome_trace(self, stubbed, tmp_path):
        path = tmp_path / "out.trace.json"
        runner.main(["run", "fig3", "--trace", str(path)])
        doc = json.loads(path.read_text())
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert "experiment.fig3" in names
        for event in doc["traceEvents"]:
            assert {"name", "ph", "ts"} <= set(event) or event["ph"] == "M"

    def test_registry_restored_after_profiled_run(self, stubbed, tmp_path):
        runner.main(["run", "fig3", "--profile", str(tmp_path / "p.json")])
        assert isinstance(get_registry(), NullRegistry)

    def test_report_honors_json(self, stubbed, monkeypatch, tmp_path):
        monkeypatch.setattr(runner, "experiment_ids", lambda: ["fig3", "table1"])
        md = tmp_path / "report.md"
        js = tmp_path / "report.json"
        assert runner.main(["report", str(md), "--json", str(js)]) == 0
        assert "## fig3" in md.read_text()
        assert [e["exp_id"] for e in json.loads(js.read_text())] == ["fig3", "table1"]


class TestAll:
    def test_all_runs_every_registered_id(self, stubbed, monkeypatch, capsys):
        monkeypatch.setattr(runner, "experiment_ids", lambda: ["fig3", "table1"])
        assert runner.main(["all"]) == 0
        assert stubbed == ["fig3", "table1"]
        out = capsys.readouterr().out
        assert "elapsed (s)" in out


class TestWorkers:
    """--workers N fan-out: parallel processes, gathered in order."""

    def test_parallel_run_reports_in_submission_order(self, stubbed, capsys):
        assert runner.main(["run", "fig3", "table1", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
        assert out.index("stub fig3") < out.index("stub table1")
        assert "elapsed (s)" in out

    def test_parallel_failed_checks_set_exit_code(self, monkeypatch):
        def failing(exp_id, **kwargs):
            result = _fake_result(exp_id)
            result.shape_checks["looks right"] = False
            return result

        monkeypatch.setattr(runner, "run_experiment", failing)
        assert runner.main(["run", "fig3", "table1", "--workers", "2"]) == 1

    def test_workers_reject_profiling(self, stubbed, tmp_path, capsys):
        code = runner.main(
            ["run", "fig3", "--workers", "2", "--profile", str(tmp_path / "p.json")]
        )
        assert code == 2
        assert "single process" in capsys.readouterr().err
        assert stubbed == []

    def test_workers_reject_tracing(self, stubbed, tmp_path, capsys):
        # --trace shares the per-process registry constraint with --profile:
        # both must be refused under --workers, not silently half-recorded.
        code = runner.main(
            ["run", "fig3", "--workers", "2", "--trace", str(tmp_path / "t.json")]
        )
        assert code == 2
        assert "single process" in capsys.readouterr().err
        assert stubbed == []
        assert not (tmp_path / "t.json").exists()

    def test_workers_help_documents_profiling_conflict(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["run", "--help"])
        out = " ".join(capsys.readouterr().out.split())
        assert "incompatible with --profile/--trace" in out
        assert out.count("rejected with --workers > 1") == 2

    def test_workers_must_be_positive(self, stubbed, capsys):
        assert runner.main(["run", "fig3", "--workers", "0"]) == 2
        assert stubbed == []

    def test_json_output_from_parallel_all(self, stubbed, monkeypatch, tmp_path):
        monkeypatch.setattr(runner, "experiment_ids", lambda: ["fig3", "table1"])
        path = tmp_path / "res.json"
        assert runner.main(["all", "--workers", "2", "--json", str(path)]) == 0
        entries = json.loads(path.read_text())
        assert [e["exp_id"] for e in entries] == ["fig3", "table1"]
        assert all(e["elapsed_s"] > 0 for e in entries)


class TestList:
    def test_list_prints_ids(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert "fig3" in out
        assert "ext-icp" in out
