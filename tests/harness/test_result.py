"""Unit tests for experiment result rendering."""

from repro.harness.result import ExperimentResult, render_table


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert lines[0].index("value") == lines[2].index("1") - 4

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text

    def test_float_formatting(self):
        text = render_table(["v"], [[0.12345], [1234.5], [12.345]])
        assert "0.123" in text
        assert "1,234" in text or "1,235" in text
        assert "12.3" in text

    def test_bool_formatting(self):
        text = render_table(["v"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestExperimentResult:
    def make(self, checks):
        return ExperimentResult(
            exp_id="figX",
            title="Demo",
            headers=["a"],
            rows=[[1]],
            shape_checks=checks,
            paper_says="something",
        )

    def test_all_checks_pass(self):
        assert self.make({"one": True, "two": True}).all_checks_pass
        assert not self.make({"one": True, "two": False}).all_checks_pass

    def test_failed_checks_listed(self):
        result = self.make({"good": True, "bad": False})
        assert result.failed_checks() == ["bad"]

    def test_to_text_contains_everything(self):
        text = self.make({"check": True}).to_text()
        assert "figX" in text
        assert "Demo" in text
        assert "paper:" in text
        assert "[ok] check" in text

    def test_to_text_marks_failures(self):
        text = self.make({"check": False}).to_text()
        assert "[FAIL] check" in text

    def test_from_dict_round_trips(self):
        original = self.make({"one": True, "two": False})
        original.elapsed_s = 1.5
        original.notes = "a note"
        restored = ExperimentResult.from_dict(original.to_dict())
        assert restored == original

    def test_from_dict_tolerates_missing_optionals(self):
        restored = ExperimentResult.from_dict(
            {
                "exp_id": "figX",
                "title": "Demo",
                "headers": ["a"],
                "rows": [[1]],
                "shape_checks": {},
            }
        )
        assert restored.paper_says == ""
        assert restored.elapsed_s == 0.0
