"""Unit tests for markdown report rendering and the report CLI."""

import pytest

from repro.harness import report_document, result_to_markdown
from repro.harness.result import ExperimentResult


@pytest.fixture
def result():
    return ExperimentResult(
        exp_id="figX",
        title="Demo experiment",
        headers=["size", "fps"],
        rows=[[1000, 42.5], [2000, 21.2]],
        shape_checks={"passes": True, "fails": False},
        paper_says="something quantitative",
        notes="a caveat",
    )


class TestResultToMarkdown:
    def test_structure(self, result):
        md = result_to_markdown(result)
        assert md.startswith("## figX — Demo experiment")
        assert "| size | fps |" in md
        assert "| 1,000 | 42.5 |" in md
        assert "- [x] passes" in md
        assert "- [ ] fails" in md
        assert "> a caveat" in md
        assert "*Paper:* something quantitative" in md

    def test_table_well_formed(self, result):
        md = result_to_markdown(result)
        table_lines = [l for l in md.splitlines() if l.startswith("|")]
        widths = {l.count("|") for l in table_lines}
        assert widths == {3}  # header, separator, rows all 2 columns


class TestReportDocument:
    def test_summary_counts(self, result):
        doc = report_document([result, result], title="Test report")
        assert doc.startswith("# Test report")
        assert "2 experiments, 2/4 shape checks passing." in doc
        assert doc.count("## figX") == 2

    def test_index_table(self, result):
        doc = report_document([result])
        assert "| figX | Demo experiment | 1/2 |" in doc


class TestReportCli:
    def test_report_subcommand_writes_file(self, tmp_path, monkeypatch, result):
        import repro.harness.runner as runner

        # Avoid running the full (slow) evaluation: stub the registry.
        monkeypatch.setattr(runner, "experiment_ids", lambda: ["figX"])
        monkeypatch.setattr(runner, "run_experiment", lambda exp_id: result)
        out = tmp_path / "report.md"
        code = runner.main(["report", str(out)])
        assert out.exists()
        text = out.read_text()
        assert "figX" in text
        assert code == 1  # one failing check in the stub result
