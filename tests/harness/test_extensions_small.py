"""Reduced-scale runs of the extension experiments."""

from repro.harness.exp_extensions import (
    ext_ablation,
    ext_hbm,
    ext_incremental_scaling,
)


class TestAblation:
    def test_small(self):
        result = ext_ablation(n_points=3_000, n_fus=16)
        assert len(result.rows) == 5
        slowdowns = [row[2] for row in result.rows]
        assert slowdowns[0] == 1.0
        assert all(s >= 0.95 for s in slowdowns)
        assert result.shape_checks["losing read gather hurts most"]


class TestIncrementalScaling:
    def test_small(self):
        result = ext_incremental_scaling(frame_sizes=(3_000, 8_000), n_fus=32)
        assert len(result.rows) == 2
        assert result.shape_checks["incremental cheaper than rebuild at every size"]


class TestHbm:
    def test_small(self):
        result = ext_hbm(frame_sizes=(4_000,), n_fus=32)
        assert len(result.rows) == 1
        assert result.shape_checks["HBM speeds up every size"]


class TestCrosscheck:
    def test_small(self):
        from repro.harness.exp_extensions import ext_crosscheck

        result = ext_crosscheck(n_points=4_000, n_fus=16)
        assert len(result.rows) == 2
        assert result.shape_checks["FPS consistent across scenes (within ~30%)"]


class TestExactSearch:
    def test_small(self):
        from repro.harness.exp_extensions import ext_exact_search

        result = ext_exact_search(n_points=3_000, n_fus=16)
        assert len(result.rows) == 3
        assert result.shape_checks["backtracking search is truly exact"]


class TestSensitivity:
    def test_small(self):
        from repro.harness.exp_extensions import ext_sensitivity

        result = ext_sensitivity(n_points=4_000, n_fus=32)
        assert len(result.rows) == 7
        ratios = [row[1] for row in result.rows]
        assert max(ratios) / min(ratios) < 2.0


class TestBanks:
    def test_small(self):
        from repro.harness.exp_extensions import ext_banks

        result = ext_banks(
            n_points=1_500, bank_counts=(2, 4), worker_counts=(1, 2, 4)
        )
        assert len(result.rows) == 2
        # Single worker is always the 1.0 baseline.
        assert all(row[1] == 1.0 for row in result.rows)


class TestPareto:
    def test_small(self):
        from repro.harness.exp_extensions import ext_pareto

        result = ext_pareto(
            n_points=3_000, n_fus=16, bucket_sizes=(64, 256)
        )
        assert len(result.rows) == 2
        assert result.shape_checks["accuracy rises with bucket size"]


class TestIcpRegistration:
    def test_small(self):
        from repro.harness.exp_extensions import ext_icp_registration

        result = ext_icp_registration(n_points=800)
        assert len(result.rows) == 3
        assert result.shape_checks["every backend converges"]
        assert result.shape_checks["approx recovers the pose"]


class TestServeLoad:
    def test_small(self):
        from repro.harness.exp_serve import serve_load

        result = serve_load(
            n_points=3_000, n_queries=256, concurrency=16, n_shards=2
        )
        assert len(result.rows) == 4  # three closed-loop arms + overload
        assert result.shape_checks["zero errored requests in every arm"]
        assert result.shape_checks[
            "sharded serving bit-identical to unsharded exact engine"
        ]
        assert result.shape_checks["overload sheds typed rejections"]
