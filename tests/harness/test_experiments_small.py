"""Run each experiment at reduced scale: structure and robustness checks.

These do not assert the paper's shape checks (full-scale runs in
``benchmarks/`` do that); they assert that every experiment produces a
well-formed result quickly at small workload sizes.
"""

import pytest

from repro.harness.exp_accuracy import fig3_accuracy, table1_methods
from repro.harness.exp_incremental import fig10_incremental
from repro.harness.exp_memory import (
    fig8_write_gather,
    fig12_memory_accesses,
    fig13_bandwidth_utilization,
)
from repro.harness.exp_parallel import fig9_traversal
from repro.harness.exp_perf import (
    fig14_k_sweep,
    fig15_latency,
    fig16_perf_scaling,
    table4_linear_fps,
    table5_quicknn_fps,
)
from repro.harness.exp_platforms import (
    fig17_platforms,
    sec71_prior_accelerators,
    table6_speedup,
    tables23_resources,
)


def assert_wellformed(result, n_rows=None):
    assert result.rows, f"{result.exp_id} produced no rows"
    width = len(result.headers)
    assert all(len(row) == width for row in result.rows)
    assert result.shape_checks
    if n_rows is not None:
        assert len(result.rows) == n_rows


class TestAccuracyExperiments:
    def test_table1_small(self):
        result = table1_methods(n_points=1_500, k=4)
        assert_wellformed(result, n_rows=6)
        accuracies = {row[0]: row[1] for row in result.rows}
        assert accuracies["Linear"] == 1.0
        assert accuracies["Uniform grid (exact, ext)"] >= 0.999

    def test_fig3_small(self):
        result = fig3_accuracy(n_points=2_000, k=3, max_extra=2,
                               bucket_sizes=(64, 256))
        assert_wellformed(result, n_rows=2)
        assert result.shape_checks["accuracy rises with x"]


class TestMemoryExperiments:
    def test_fig8_small(self):
        result = fig8_write_gather(
            n_points=3_000, bucket_capacity=64,
            slot_counts=(2, 16), slot_capacities=(1, 4),
        )
        assert_wellformed(result, n_rows=2)
        # Speedups relative to no gathering must be >= ~1.
        assert all(v >= 0.9 for row in result.rows for v in row[1:])

    def test_fig12_small(self):
        result = fig12_memory_accesses(n_points=3_000, n_fus=16)
        assert_wellformed(result, n_rows=3)
        # At 3k points the linear architecture's O(N^2) traffic has not
        # yet overtaken Simple k-d, so only QuickNN's position is stable.
        words = {row[0]: row[1] for row in result.rows}
        assert words["QuickNN"] == min(words.values())

    def test_fig13_small(self):
        result = fig13_bandwidth_utilization(
            frame_sizes=(3_000,), fu_counts=(8, 16)
        )
        assert_wellformed(result, n_rows=1)
        assert all(0.0 < v <= 1.0 for v in result.rows[0][1:])


class TestParallelExperiment:
    def test_fig9_small(self):
        result = fig9_traversal(
            n_points=1_200, bucket_capacity=16, worker_counts=(1, 2, 4)
        )
        assert_wellformed(result, n_rows=3)
        for row in result.rows:
            assert row[1] == pytest.approx(1.0)
            assert row[3] > row[1]


class TestIncrementalExperiment:
    def test_fig10_small(self):
        result = fig10_incremental(n_frames=4, n_points=3_000, bucket_capacity=128)
        assert_wellformed(result, n_rows=3)
        assert result.shape_checks["incremental max bounded by 2x capacity"]


class TestPerfExperiments:
    def test_table4_small(self):
        result = table4_linear_fps(frame_sizes=(2_000, 4_000), fu_counts=(32, 64, 128))
        assert_wellformed(result, n_rows=3)

    def test_table5_small(self):
        result = table5_quicknn_fps(frame_sizes=(3_000,), fu_counts=(16, 64))
        assert_wellformed(result, n_rows=2)

    def test_fig14_small(self):
        result = fig14_k_sweep(k_values=(1, 8), fu_counts=(16, 64), n_points=3_000)
        assert_wellformed(result, n_rows=2)

    def test_fig15_small(self):
        result = fig15_latency(frame_sizes=(2_000, 4_000), fu_counts=(16, 64))
        assert_wellformed(result, n_rows=2)

    def test_fig16_small(self):
        result = fig16_perf_scaling(fu_counts=(16, 32, 64, 128), n_points=3_000)
        assert_wellformed(result, n_rows=4)


class TestPlatformExperiments:
    def test_tables23(self):
        result = tables23_resources()
        assert_wellformed(result, n_rows=8)
        assert result.all_checks_pass

    def test_fig17_small(self):
        result = fig17_platforms(frame_sizes=(2_000, 5_000))
        assert_wellformed(result, n_rows=2)

    def test_table6_small(self):
        result = table6_speedup(n_points=5_000)
        assert_wellformed(result, n_rows=4)

    def test_sec71_runs(self):
        result = sec71_prior_accelerators()
        assert_wellformed(result, n_rows=2)


class TestBlockedExperiment:
    def test_blocked_build_small(self):
        from repro.harness.exp_blocked import blocked_build

        result = blocked_build(
            n_points=30_000,
            target_block_points=5_000,
            workers=1,
            n_queries=200,
            max_resident_blocks=2,
        )
        assert_wellformed(result)
        assert result.all_checks_pass, result.failed_checks()
