"""The bench-diff regression gate: tolerance math and CLI wiring.

Synthetic ``quicknn-bench-*/v1`` artifacts exercise every verdict the
gate can return — clean, within-noise, regressed, warn-only, renamed
benchmarks, and unusable inputs — plus the effective-tolerance rule:
``max(rel_spread(old), rel_spread(new), min_spread)``.
"""

import json

import repro.harness.runner as runner
from repro.harness.bench_diff import (
    DEFAULT_MIN_SPREAD,
    diff_trajectories,
    format_report,
    load_trajectory,
    run_diff,
)


def _artifact(benchmarks, area="engine"):
    return {
        "schema": f"quicknn-bench-{area}/v1",
        "params": {},
        "machine": {"cpu_count": 1},
        "benchmarks": benchmarks,
        "derived": {},
        "extra_info": {"notes": []},
    }


def _entry(name, qps, runs=None):
    return {"name": name, "qps": qps, "qps_per_core": qps,
            "qps_runs": runs if runs is not None else [qps]}


def _write(tmp_path, filename, doc):
    path = tmp_path / filename
    path.write_text(json.dumps(doc))
    return str(path)


class TestDiffTrajectories:
    def test_within_noise_floor_is_ok(self):
        old = _artifact([_entry("engine.approx", 1000.0)])
        new = _artifact([_entry("engine.approx", 950.0)])  # -5% < 10% floor
        (row,) = diff_trajectories(old, new)
        assert row["status"] == "ok"
        assert row["tolerance"] == DEFAULT_MIN_SPREAD

    def test_regression_beyond_floor_is_flagged(self):
        old = _artifact([_entry("engine.approx", 1000.0)])
        new = _artifact([_entry("engine.approx", 800.0)])  # -20%
        (row,) = diff_trajectories(old, new)
        assert row["status"] == "regressed"

    def test_recorded_spread_widens_the_tolerance(self):
        # Old runs spread 1000..700 → 30% spread; a -20% drop is noise.
        old = _artifact([_entry("engine.approx", 1000.0,
                                runs=[1000.0, 700.0, 900.0])])
        new = _artifact([_entry("engine.approx", 800.0)])
        (row,) = diff_trajectories(old, new)
        assert row["status"] == "ok"
        assert row["tolerance"] == 0.3

    def test_new_side_spread_also_counts(self):
        old = _artifact([_entry("engine.approx", 1000.0)])
        new = _artifact([_entry("engine.approx", 750.0,
                                runs=[750.0, 500.0])])  # 33% spread
        (row,) = diff_trajectories(old, new)
        assert row["status"] == "ok"

    def test_improvement_beyond_tolerance(self):
        old = _artifact([_entry("engine.approx", 1000.0)])
        new = _artifact([_entry("engine.approx", 1500.0)])
        (row,) = diff_trajectories(old, new)
        assert row["status"] == "improved"

    def test_added_and_removed_never_gate(self):
        old = _artifact([_entry("engine.gone", 100.0)])
        new = _artifact([_entry("engine.fresh", 100.0)])
        rows = {r["name"]: r["status"] for r in diff_trajectories(old, new)}
        assert rows == {"engine.fresh": "added", "engine.gone": "removed"}

    def test_custom_min_spread(self):
        old = _artifact([_entry("engine.approx", 1000.0)])
        new = _artifact([_entry("engine.approx", 950.0)])  # -5%
        (row,) = diff_trajectories(old, new, min_spread=0.02)
        assert row["status"] == "regressed"

    def test_report_renders_every_row(self):
        old = _artifact([_entry("engine.a", 100.0), _entry("engine.b", 10.0)])
        new = _artifact([_entry("engine.a", 100.0), _entry("engine.c", 5.0)])
        text = format_report(diff_trajectories(old, new))
        for token in ("engine.a", "engine.b", "engine.c",
                      "removed", "added", "ok"):
            assert token in text


class TestRunDiff:
    def test_clean_pair_exits_zero(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json",
                     _artifact([_entry("engine.approx", 1000.0)]))
        new = _write(tmp_path, "new.json",
                     _artifact([_entry("engine.approx", 1010.0)]))
        assert run_diff(old, new) == 0
        assert "engine.approx" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json",
                     _artifact([_entry("engine.approx", 1000.0)]))
        new = _write(tmp_path, "new.json",
                     _artifact([_entry("engine.approx", 500.0)]))
        assert run_diff(old, new) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_warn_only_downgrades_to_zero(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json",
                     _artifact([_entry("engine.approx", 1000.0)]))
        new = _write(tmp_path, "new.json",
                     _artifact([_entry("engine.approx", 500.0)]))
        assert run_diff(old, new, warn_only=True) == 0
        assert "WARN" in capsys.readouterr().err

    def test_first_landing_of_blocked_bench_never_gates(self, tmp_path, capsys):
        # The PR that introduces build.blocked_parallel: the committed
        # baseline predates the name, so it shows up as "added" — an
        # informational note, exit 0, no regression verdict.
        old = _write(tmp_path, "old.json", _artifact(
            [_entry("build.flat_1M", 100.0)], area="build"))
        new = _write(tmp_path, "new.json", _artifact(
            [_entry("build.flat_1M", 101.0),
             _entry("build.blocked_parallel", 7.0)], area="build"))
        assert run_diff(old, new) == 0
        captured = capsys.readouterr()
        assert "informational only: build.blocked_parallel" in captured.out
        assert "FAIL" not in captured.err

    def test_removed_benchmark_noted_but_never_gates(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", _artifact(
            [_entry("engine.approx", 1000.0), _entry("engine.gone", 5.0)]))
        new = _write(tmp_path, "new.json", _artifact(
            [_entry("engine.approx", 1000.0)]))
        assert run_diff(old, new) == 0
        assert "only in the old file" in capsys.readouterr().out

    def test_mismatched_areas_are_unusable(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json",
                     _artifact([_entry("engine.approx", 1.0)], area="engine"))
        new = _write(tmp_path, "new.json",
                     _artifact([_entry("build.flat", 1.0)], area="build"))
        assert run_diff(old, new) == 2
        assert "different areas" in capsys.readouterr().err

    def test_bad_schema_is_unusable(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else/v1"}))
        ok = _write(tmp_path, "ok.json", _artifact([]))
        assert run_diff(str(bad), ok) == 2
        assert "quicknn-bench" in capsys.readouterr().err

    def test_missing_file_is_unusable(self, tmp_path, capsys):
        ok = _write(tmp_path, "ok.json", _artifact([]))
        assert run_diff(str(tmp_path / "nope.json"), ok) == 2
        capsys.readouterr()


class TestLoadTrajectory:
    def test_real_artifacts_load(self, tmp_path):
        path = _write(tmp_path, "t.json",
                      _artifact([_entry("engine.approx", 123.0)]))
        doc = load_trajectory(path)
        assert doc["benchmarks"][0]["qps"] == 123.0


class TestCliWiring:
    def test_subcommand_exit_codes(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json",
                     _artifact([_entry("engine.approx", 1000.0)]))
        new = _write(tmp_path, "new.json",
                     _artifact([_entry("engine.approx", 500.0)]))
        assert runner.main(["bench-diff", old, new]) == 1
        assert runner.main(["bench-diff", old, new, "--warn-only"]) == 0
        assert runner.main(["bench-diff", old, old]) == 0
        capsys.readouterr()

    def test_min_spread_flag_forwarded(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json",
                     _artifact([_entry("engine.approx", 1000.0)]))
        new = _write(tmp_path, "new.json",
                     _artifact([_entry("engine.approx", 950.0)]))
        assert runner.main(["bench-diff", old, new]) == 0
        assert runner.main(
            ["bench-diff", old, new, "--min-spread", "0.01"]
        ) == 1
        capsys.readouterr()
