"""Unit tests for the experiment registry and CLI plumbing."""

import pytest

from repro.harness import EXPERIMENTS, experiment_ids, run_experiment
from repro.harness.runner import main


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {
            "table1", "fig3", "fig8", "fig9", "fig10", "tables23", "table4",
            "table5", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
            "table6", "sec71",
            "ext-ablation", "ext-incremental", "ext-hbm", "ext-crosscheck",
            "ext-exact", "ext-sensitivity", "ext-banks", "ext-pareto",
            "ext-icp", "serve-load", "serve-fleet", "blocked-build",
            "radius-query", "fps-build",
        }
        assert set(experiment_ids()) == expected

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="unknown"):
            run_experiment("fig99")

    def test_run_experiment_forwards_kwargs(self):
        result = run_experiment("tables23", n_fus=64)
        assert result.exp_id == "tables23"
        assert result.rows

    def test_every_entry_callable(self):
        for func in EXPERIMENTS.values():
            assert callable(func)


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out and "table5" in out

    def test_run_single(self, capsys):
        assert main(["run", "tables23"]) == 0
        out = capsys.readouterr().out
        assert "tables23" in out
        assert "[ok]" in out

    def test_run_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["run", "nonsense"])
