"""Unit tests for the ASCII visualizations."""

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.geometry import PointCloud
from repro.viz import bev_view, sparkline


class TestBevView:
    def test_dimensions(self, rng):
        cloud = uniform_cloud(500, rng=rng)
        text = bev_view(cloud, width=40, height=10)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_empty_cloud_blank(self):
        text = bev_view(PointCloud.empty(), width=10, height=4)
        assert set(text.replace("\n", "")) == {" "}

    def test_point_cluster_appears_at_expected_cell(self):
        pts = np.tile([[5.0, 0.0, 1.0]], (50, 1))
        text = bev_view(PointCloud(pts), width=21, height=11, extent=10.0)
        lines = text.splitlines()
        # x=+5 of extent 10 -> 3/4 across; y=0 -> middle row.
        row = lines[5]
        assert row[15] != " "
        assert lines[0].strip() == ""

    def test_denser_cells_darker(self, rng):
        dense = np.tile([[0.0, 0.0, 1.0]], (500, 1))
        sparse = np.array([[8.0, 8.0, 1.0]])
        text = bev_view(
            PointCloud(np.vstack([dense, sparse])), width=21, height=21,
            extent=10.0,
        )
        chars = text.replace("\n", "")
        ramp = " .:-=+*#%@"
        dense_level = max(ramp.index(c) for c in chars)
        assert dense_level == len(ramp) - 1

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bev_view(uniform_cloud(10, rng=rng), width=1, height=5)


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        line = sparkline([5], lo=0, hi=10)
        assert line in ("▄", "▅")  # mid-scale, either rounding of 3.5
