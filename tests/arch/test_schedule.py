"""Unit tests for the event-driven phase-3 scheduler."""

import pytest

from repro.arch import QuickNN, QuickNNConfig
from repro.arch.schedule import BucketJob, Phase3Schedule, StreamJob, schedule_phase3


def simple_schedule(**overrides):
    base = dict(
        n_points=100,
        chunk_costs=[50, 50],
        points_per_chunk=50,
        traversal_cycles_per_point=1.0,
        wr1_jobs=[],
        bucket_jobs=[],
    )
    base.update(overrides)
    return schedule_phase3(**base)


class TestBasics:
    def test_stream_only(self):
        schedule = simple_schedule()
        # Two chained 50-cycle chunks, then the last chunk's traversal.
        assert schedule.dram_busy == 100
        assert schedule.total_cycles == 100 + 50

    def test_writes_extend_busy_time(self):
        schedule = simple_schedule(
            wr1_jobs=[StreamJob(point_index=10, cost=20)]
        )
        assert schedule.dram_busy == 120
        assert schedule.total_cycles >= 120

    def test_bucket_pipeline_chain(self):
        schedule = simple_schedule(
            bucket_jobs=[BucketJob(point_index=0, rd3_cost=30, fu_cost=40,
                                   wr2_cost=10, kickoff=5)]
        )
        # Rd3 + Wr2 hit the DRAM; the FU scan overlaps the stream.
        assert schedule.dram_busy == 100 + 30 + 10
        assert schedule.fu_busy == 45
        # Dependency chain: rd3 cannot start before its chunk (50), the
        # wr2 not before the fu scan finished.
        assert schedule.total_cycles >= 50 + 30 + 5 + 40 + 10

    def test_rd2_stream_adds_traffic(self):
        snooped = simple_schedule()
        separate = simple_schedule(rd2_chunk_costs=[50, 50])
        assert separate.dram_busy == snooped.dram_busy + 100
        assert separate.total_cycles > snooped.total_cycles

    def test_total_bounded_by_busy_times(self):
        schedule = simple_schedule(
            wr1_jobs=[StreamJob(5, 10), StreamJob(60, 10)],
            bucket_jobs=[BucketJob(20, 15, 25, 5, 2)],
        )
        assert schedule.total_cycles >= schedule.dram_busy
        assert schedule.total_cycles >= schedule.fu_busy
        assert schedule.total_cycles <= (
            schedule.dram_busy + schedule.fu_busy + schedule.traversal_busy + 100
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            simple_schedule(n_points=0)
        with pytest.raises(ValueError):
            simple_schedule(points_per_chunk=0)
        with pytest.raises(ValueError):
            simple_schedule(traversal_cycles_per_point=-1.0)


class TestAgainstAnalyticModel:
    @pytest.fixture(scope="class")
    def frames(self):
        from repro.datasets import lidar_frame_pair

        return lidar_frame_pair(5_000, seed=3)

    def test_event_within_band_of_analytic(self, frames):
        """The DES assumes perfect double buffering, so it can only be
        faster than the single-buffered analytic bound — but never by
        more than the serialization slack."""
        ref, qry = frames
        for fus in (16, 64):
            _, analytic = QuickNN(QuickNNConfig(n_fus=fus)).run(ref, qry, 8)
            _, event = QuickNN(
                QuickNNConfig(n_fus=fus, scheduler="event")
            ).run(ref, qry, 8)
            assert event.total_cycles <= analytic.total_cycles + 1
            assert event.total_cycles >= 0.5 * analytic.total_cycles

    def test_event_never_beats_memory_busy(self, frames):
        ref, qry = frames
        _, event = QuickNN(QuickNNConfig(n_fus=64, scheduler="event")).run(ref, qry, 8)
        mem_busy = event.dram.busy_cycles - event.dram.stream("RdSample").total_cycles
        assert event.phase_cycles["place+search"] >= mem_busy

    def test_results_identical_across_schedulers(self, frames):
        import numpy as np

        ref, qry = frames
        a, _ = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 4)
        b, _ = QuickNN(QuickNNConfig(n_fus=16, scheduler="event")).run(ref, qry, 4)
        assert np.array_equal(a.indices, b.indices)

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError, match="scheduler"):
            QuickNNConfig(scheduler="quantum")
