"""Unit tests for the bucket-block DRAM store."""

import pytest

from repro.arch import BucketBlockStore
from repro.arch.bucket_store import LINK_BYTES
from repro.arch.params import POINT_BYTES
from repro.sim import AddressAllocator


def make_store(n_buckets=4, block_points=8, pool_blocks=None):
    return BucketBlockStore(
        AddressAllocator(),
        n_buckets=n_buckets,
        block_points=block_points,
        pool_blocks=pool_blocks,
    )


class TestAppend:
    def test_single_span_within_block(self):
        store = make_store()
        spans = store.append(0, 3)
        assert len(spans) == 1
        assert spans[0].nbytes == 3 * POINT_BYTES
        assert store.bucket_fill(0) == 3

    def test_spans_are_contiguous_within_block(self):
        store = make_store()
        first = store.append(1, 2)[0]
        second = store.append(1, 2)[0]
        assert second.addr == first.addr + first.nbytes

    def test_overflow_links_new_block(self):
        store = make_store(block_points=4)
        spans = store.append(0, 6)
        assert len(spans) == 2
        assert store.chain_length(0) == 2
        assert spans[0].nbytes == 4 * POINT_BYTES
        assert spans[1].nbytes == 2 * POINT_BYTES

    def test_buckets_do_not_overlap(self):
        store = make_store(n_buckets=3, block_points=4)
        a = store.append(0, 4)[0]
        b = store.append(1, 4)[0]
        assert a.addr + a.nbytes <= b.addr or b.addr + b.nbytes <= a.addr

    def test_pool_exhaustion(self):
        store = make_store(n_buckets=2, block_points=2, pool_blocks=2)
        store.append(0, 2)
        with pytest.raises(RuntimeError, match="exhausted"):
            store.append(0, 1)

    def test_rejects_bad_args(self):
        store = make_store()
        with pytest.raises(ValueError):
            store.append(99, 1)
        with pytest.raises(ValueError):
            store.append(0, 0)


class TestReadSpans:
    def test_read_covers_fill(self):
        store = make_store(block_points=4)
        store.append(2, 3)
        spans = store.read_spans(2)
        assert len(spans) == 1
        assert spans[0].nbytes == LINK_BYTES + 3 * POINT_BYTES

    def test_read_chained_bucket(self):
        store = make_store(block_points=4)
        store.append(0, 10)
        spans = store.read_spans(0)
        assert len(spans) == 3
        total_points = sum((s.nbytes - LINK_BYTES) // POINT_BYTES for s in spans)
        assert total_points == 10

    def test_empty_bucket_reads_header_only(self):
        store = make_store()
        spans = store.read_spans(0)
        assert len(spans) == 1
        assert spans[0].nbytes == LINK_BYTES

    def test_blocks_used_accounting(self):
        store = make_store(n_buckets=2, block_points=2)
        assert store.blocks_used == 2
        store.append(0, 5)
        assert store.blocks_used == 4


class TestValidation:
    def test_rejects_bad_geometry(self):
        alloc = AddressAllocator()
        with pytest.raises(ValueError):
            BucketBlockStore(alloc, n_buckets=0, block_points=4)
        with pytest.raises(ValueError):
            BucketBlockStore(AddressAllocator(), n_buckets=2, block_points=0)
        with pytest.raises(ValueError):
            BucketBlockStore(AddressAllocator(), n_buckets=4, block_points=2, pool_blocks=2)
