"""Unit tests for the write-gather / read-gather caches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import GatherCache, ReadGatherCache, WriteGatherCache


class TestBasicMechanics:
    def test_natural_flush_at_capacity(self):
        cache = GatherCache(n_slots=4, slot_capacity=3)
        assert cache.insert(7) == []
        assert cache.insert(7) == []
        events = cache.insert(7)
        assert len(events) == 1
        assert events[0].bucket_id == 7
        assert events[0].count == 3
        assert not events[0].forced
        assert cache.fill_of(7) == 0

    def test_forced_eviction_of_fullest(self):
        cache = GatherCache(n_slots=2, slot_capacity=10)
        cache.insert(1)
        cache.insert(1)
        cache.insert(2)
        events = cache.insert(3)  # cache full: bucket 1 (fullest) evicted
        assert len(events) == 1
        assert events[0].bucket_id == 1
        assert events[0].count == 2
        assert events[0].forced

    def test_capacity_one_flushes_immediately(self):
        cache = GatherCache(n_slots=2, slot_capacity=1)
        events = cache.insert(5)
        assert len(events) == 1 and events[0].count == 1

    def test_eviction_plus_fill_two_events(self):
        cache = GatherCache(n_slots=1, slot_capacity=1)
        cache_events = cache.insert(1)
        assert len(cache_events) == 1
        both = cache.insert(2)  # nothing to evict (slot freed), fills and flushes
        assert len(both) == 1

    def test_drain_flushes_everything(self):
        cache = GatherCache(n_slots=8, slot_capacity=10)
        for bucket in (1, 2, 2, 3):
            cache.insert(bucket)
        events = cache.drain()
        assert sorted(e.bucket_id for e in events) == [1, 2, 3]
        assert sum(e.count for e in events) == 4
        assert cache.occupancy == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GatherCache(0, 1)
        with pytest.raises(ValueError):
            GatherCache(1, 0)


class TestStats:
    def test_mean_fill(self):
        cache = GatherCache(n_slots=4, slot_capacity=2)
        cache.process_stream([1, 1, 2])
        assert cache.stats.flushes == 2
        assert cache.stats.flushed_items == 3
        assert cache.stats.mean_fill == pytest.approx(1.5)

    def test_histogram(self):
        cache = GatherCache(n_slots=4, slot_capacity=3)
        cache.process_stream([1, 1, 1, 2])
        assert cache.stats.fill_histogram == {3: 1, 1: 1}


class TestConservation:
    @settings(max_examples=50, deadline=None)
    @given(
        stream=st.lists(st.integers(0, 30), max_size=300),
        slots=st.integers(1, 16),
        capacity=st.integers(1, 16),
    )
    def test_every_item_flushed_exactly_once(self, stream, slots, capacity):
        cache = GatherCache(slots, capacity)
        events = cache.process_stream(stream)
        assert sum(e.count for e in events) == len(stream)
        # Per-bucket conservation.
        for bucket in set(stream):
            sent = sum(e.count for e in events if e.bucket_id == bucket)
            assert sent == stream.count(bucket)

    @settings(max_examples=30, deadline=None)
    @given(
        stream=st.lists(st.integers(0, 10), min_size=1, max_size=200),
        slots=st.integers(1, 8),
        capacity=st.integers(1, 8),
    )
    def test_occupancy_never_exceeds_slots(self, stream, slots, capacity):
        cache = GatherCache(slots, capacity)
        for bucket in stream:
            cache.insert(bucket)
            assert cache.occupancy <= slots

    @settings(max_examples=30, deadline=None)
    @given(stream=st.lists(st.integers(0, 200), min_size=1, max_size=300))
    def test_bigger_cache_fewer_flushes(self, stream):
        small = WriteGatherCache(2, 4)
        big = WriteGatherCache(64, 4)
        small_events = small.process_stream(stream)
        big_events = big.process_stream(stream)
        assert len(big_events) <= len(small_events)


class TestAliases:
    def test_subclasses_share_mechanics(self):
        for cls in (WriteGatherCache, ReadGatherCache):
            cache = cls(4, 2)
            events = cache.process_stream([9, 9, 9])
            assert sum(e.count for e in events) == 3
