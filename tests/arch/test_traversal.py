"""Unit tests for the parallel-traversal simulator."""

import numpy as np
import pytest

from repro.arch import (
    BankedTreeCache,
    TreeCacheConfig,
    simulate_traversal,
    traversal_cycles_estimate,
)
from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import KdTreeConfig, build_tree


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(9)
    cloud = uniform_cloud(1500, rng=rng)
    tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=32))
    cache = BankedTreeCache(tree, TreeCacheConfig(replicated_levels=2), rng=rng)
    return tree, cloud.xyz, cache


class TestSimulation:
    def test_visits_match_path_lengths(self, setup):
        tree, points, cache = setup
        report = simulate_traversal(tree, points, cache, n_workers=1)
        expected = sum(len(tree.descend_path(p)) for p in points)
        assert report.node_visits == expected

    def test_more_workers_fewer_cycles(self, setup):
        tree, points, cache = setup
        one = simulate_traversal(tree, points, cache, n_workers=1)
        four = simulate_traversal(tree, points, cache, n_workers=4)
        assert four.cycles < one.cycles
        assert four.node_visits == one.node_visits

    def test_two_workers_near_double(self, setup):
        tree, points, cache = setup
        one = simulate_traversal(tree, points, cache, n_workers=1)
        two = simulate_traversal(tree, points, cache, n_workers=2)
        assert one.cycles / two.cycles > 1.8

    def test_bank_requests_only_to_lower_levels(self, setup):
        tree, points, cache = setup
        report = simulate_traversal(tree, points, cache, n_workers=2)
        lower_visits = sum(
            len([n for n in tree.descend_path(p) if not cache.is_replicated(n)])
            for p in points
        )
        assert report.bank_requests.sum() == lower_visits

    def test_single_worker_never_stalls(self, setup):
        tree, points, cache = setup
        report = simulate_traversal(tree, points, cache, n_workers=1)
        assert report.stall_cycles == 0

    def test_queue_vs_blocked_same_work(self, setup):
        tree, points, cache = setup
        blocked = simulate_traversal(tree, points, cache, n_workers=4, assignment="blocked")
        queued = simulate_traversal(tree, points, cache, n_workers=4, assignment="queue")
        assert blocked.node_visits == queued.node_visits

    def test_validation(self, setup):
        tree, points, cache = setup
        with pytest.raises(ValueError):
            simulate_traversal(tree, points, cache, n_workers=0)
        with pytest.raises(ValueError):
            simulate_traversal(tree, points, cache, n_workers=1, assignment="bogus")
        with pytest.raises(ValueError):
            simulate_traversal(tree, np.empty((0, 3)), cache, n_workers=1)


class TestEstimate:
    def test_tracks_simulator_within_factor(self, setup):
        tree, points, cache = setup
        for workers in (1, 4, 8):
            sim = simulate_traversal(tree, points, cache, n_workers=workers)
            est = traversal_cycles_estimate(
                points.shape[0], tree.depth(),
                n_workers=workers, n_banks=4, replicated_levels=2,
            )
            # The closed form is used for frame-level accounting only;
            # it must stay within ~3x of the cycle-accurate simulation.
            assert sim.cycles / 3 <= est * 2 <= sim.cycles * 6

    def test_monotone_in_workers(self):
        estimates = [
            traversal_cycles_estimate(
                10_000, 8, n_workers=w, n_banks=4, replicated_levels=3
            )
            for w in (1, 2, 4, 8)
        ]
        assert estimates == sorted(estimates, reverse=True)

    def test_bank_bandwidth_floor(self):
        est = traversal_cycles_estimate(
            1000, 9, n_workers=64, n_banks=4, replicated_levels=2
        )
        assert est >= 1000 * 8 / 4  # lower levels / aggregate bank rate

    def test_validation(self):
        with pytest.raises(ValueError):
            traversal_cycles_estimate(0, 5, n_workers=1, n_banks=1, replicated_levels=1)
