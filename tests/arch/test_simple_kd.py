"""Unit tests for the Simple k-d (unoptimized) architecture model."""

import numpy as np
import pytest

from repro.arch import SimpleKdArch, SimpleKdConfig
from repro.kdtree import KdTreeConfig, build_tree, knn_approx


class TestFunctional:
    def test_results_match_functional_search(self, small_frame_pair):
        ref, qry = small_frame_pair
        arch = SimpleKdArch(SimpleKdConfig(tree=KdTreeConfig(bucket_capacity=64)))
        result, _ = arch.run(ref, qry, 4)
        tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=64))
        expected = knn_approx(tree, qry, 4)
        assert np.array_equal(result.indices, expected.indices)


class TestTraffic:
    def test_bucket_reads_dominate(self, small_frame_pair):
        ref, qry = small_frame_pair
        _, report = SimpleKdArch().run(ref, qry, 8)
        rd3 = report.dram.stream("Rd3").bytes
        assert rd3 > 0.5 * report.dram.bytes

    def test_tree_in_dram_adds_traffic(self, small_frame_pair):
        ref, qry = small_frame_pair
        _, cached = SimpleKdArch(SimpleKdConfig(tree_cached_on_chip=True)).run(ref, qry, 8)
        _, dram_tree = SimpleKdArch(SimpleKdConfig(tree_cached_on_chip=False)).run(ref, qry, 8)
        assert dram_tree.memory_words > cached.memory_words
        assert "RdTreeSearch" in dram_tree.dram.streams
        assert "RdTreeSearch" not in cached.dram.streams

    def test_phases_present(self, small_frame_pair):
        ref, qry = small_frame_pair
        _, report = SimpleKdArch().run(ref, qry, 8)
        assert set(report.phase_cycles) == {"build", "place", "search"}
        assert report.total_cycles == sum(report.phase_cycles.values())

    def test_validation(self, small_frame_pair):
        ref, qry = small_frame_pair
        with pytest.raises(ValueError):
            SimpleKdConfig(n_fus=0)
        with pytest.raises(ValueError):
            SimpleKdArch().run(ref, qry, 0)
