"""Unit tests for the Functional Unit model."""

import numpy as np
import pytest

from repro.arch import FU_PIPELINE_DEPTH, FunctionalUnit, fu_batch_cycles
from repro.baselines import knn_bruteforce
from repro.datasets.synthetic import uniform_cloud


class TestFunctionalUnit:
    def test_matches_bruteforce(self, rng):
        ref = uniform_cloud(200, rng=rng)
        query = ref.xyz[17]
        fu = FunctionalUnit(query, k=5)
        fu.process_batch(np.arange(200), ref.xyz)
        idx, dst = fu.results()
        expected = knn_bruteforce(ref, query, 5)
        assert np.array_equal(idx, expected.indices[0])
        assert np.allclose(dst, expected.distances[0], atol=1e-9)

    def test_running_list_stays_sorted(self, rng):
        fu = FunctionalUnit(np.zeros(3), k=4)
        pts = rng.normal(size=(50, 3))
        for i, p in enumerate(pts):
            fu.process(i, p)
            _, dst = fu.results()
            finite = dst[~np.isinf(dst)]
            assert (np.diff(finite) >= 0).all()

    def test_fewer_candidates_than_k_pads(self):
        fu = FunctionalUnit(np.zeros(3), k=5)
        fu.process(0, np.array([1.0, 0.0, 0.0]))
        idx, dst = fu.results()
        assert idx[0] == 0 and (idx[1:] == -1).all()
        assert np.isinf(dst[1:]).all()

    def test_far_candidate_rejected_quickly(self):
        fu = FunctionalUnit(np.zeros(3), k=1)
        fu.process(0, np.array([1.0, 0.0, 0.0]))
        fu.process(1, np.array([50.0, 0.0, 0.0]))
        idx, _ = fu.results()
        assert idx[0] == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            FunctionalUnit(np.zeros(2), k=1)
        with pytest.raises(ValueError):
            FunctionalUnit(np.zeros(3), k=0)


class TestCycleModel:
    def test_single_pass(self):
        assert fu_batch_cycles(64, 1000, 64) == 1000 + FU_PIPELINE_DEPTH

    def test_multi_pass(self):
        assert fu_batch_cycles(65, 1000, 64) == 2 * (1000 + FU_PIPELINE_DEPTH)

    def test_zero_work_free(self):
        assert fu_batch_cycles(0, 100, 8) == 0
        assert fu_batch_cycles(100, 0, 8) == 0

    def test_scales_inverse_with_fus(self):
        wide = fu_batch_cycles(256, 500, 128)
        narrow = fu_batch_cycles(256, 500, 16)
        assert narrow == 8 * wide

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            fu_batch_cycles(1, 1, 0)
        with pytest.raises(ValueError):
            fu_batch_cycles(-1, 1, 1)
