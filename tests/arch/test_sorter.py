"""Unit tests for the merge-sort accelerator cycle model."""

import pytest

from repro.arch import MergeSorter, MergeSorterConfig


class TestRounds:
    def test_trivial_inputs(self):
        sorter = MergeSorter()
        assert sorter.rounds(0) == 0
        assert sorter.rounds(1) == 0

    def test_four_way_rounds(self):
        sorter = MergeSorter(MergeSorterConfig(n_way=4))
        assert sorter.rounds(4) == 1
        assert sorter.rounds(16) == 2
        assert sorter.rounds(17) == 3
        assert sorter.rounds(64) == 3

    def test_two_way_matches_log2(self):
        sorter = MergeSorter(MergeSorterConfig(n_way=2))
        assert sorter.rounds(1024) == 10

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MergeSorter().rounds(-1)


class TestCycles:
    def test_cost_formula(self):
        sorter = MergeSorter(MergeSorterConfig(n_way=4, round_setup_cycles=16))
        assert sorter.sort_cycles(256) == 4 * (256 + 16)

    def test_charge_accumulates(self):
        sorter = MergeSorter()
        a = sorter.charge(100)
        b = sorter.charge(200)
        assert sorter.total_cycles == a + b
        assert sorter.total_elements == 300

    def test_charge_many_matches_loop(self):
        sizes = [10, 100, 1000]
        batch = MergeSorter()
        total = batch.charge_many(sizes)
        loop = MergeSorter()
        expected = sum(loop.charge(s) for s in sizes)
        assert total == expected

    def test_nlogn_scaling(self):
        sorter = MergeSorter(MergeSorterConfig(n_way=2, round_setup_cycles=0))
        # Doubling n roughly doubles-and-a-bit the cycles.
        assert sorter.sort_cycles(2048) == 2048 * 11
        assert sorter.sort_cycles(4096) == 4096 * 12

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MergeSorterConfig(n_way=1)
        with pytest.raises(ValueError):
            MergeSorterConfig(round_setup_cycles=-1)
