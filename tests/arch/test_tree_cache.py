"""Unit tests for the banked tree cache and partition schemes."""

import numpy as np
import pytest

from repro.arch import BankedTreeCache, PartitionScheme, TreeCacheConfig
from repro.arch.tree_cache import REPLICATED
from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import KdTreeConfig, build_tree


@pytest.fixture(scope="module")
def tree():
    rng = np.random.default_rng(5)
    cloud = uniform_cloud(4096, rng=rng)
    built, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=64))
    return built


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TreeCacheConfig(n_banks=0)
        with pytest.raises(ValueError):
            TreeCacheConfig(replicated_levels=0)


class TestAssignment:
    @pytest.mark.parametrize("scheme", list(PartitionScheme))
    def test_partition_covers_all_lower_nodes(self, tree, scheme, rng):
        cache = BankedTreeCache(
            tree, TreeCacheConfig(scheme=scheme, replicated_levels=2), rng=rng
        )
        for node in tree.nodes:
            bank = cache.bank_of[node.index]
            if node.depth < 2:
                assert bank == REPLICATED
            else:
                assert 0 <= bank < 4

    def test_upper_levels_replicated(self, tree, rng):
        cache = BankedTreeCache(
            tree, TreeCacheConfig(replicated_levels=3), rng=rng
        )
        # Levels 0..2 of a full binary tree: 7 nodes.
        assert cache.n_replicated_nodes == 7
        assert cache.n_banked_nodes == tree.n_nodes - 7

    def test_group_keeps_subtrees_whole(self, tree, rng):
        cache = BankedTreeCache(
            tree,
            TreeCacheConfig(scheme=PartitionScheme.GROUP, replicated_levels=2),
            rng=rng,
        )
        # Every lower node must share its bank with its lower parent.
        for node in tree.nodes:
            if node.depth > 2:
                assert cache.bank_of[node.index] == cache.bank_of[node.parent]

    def test_leftright_splits_siblings(self, tree, rng):
        cache = BankedTreeCache(
            tree,
            TreeCacheConfig(scheme=PartitionScheme.LEFTRIGHT, replicated_levels=2),
            rng=rng,
        )
        for node in tree.nodes:
            if node.depth >= 2 and not node.is_leaf:
                left_bank = cache.bank_of[node.left]
                right_bank = cache.bank_of[node.right]
                assert left_bank != right_bank

    def test_random_uses_all_banks(self, tree, rng):
        cache = BankedTreeCache(
            tree,
            TreeCacheConfig(scheme=PartitionScheme.RANDOM, replicated_levels=2),
            rng=rng,
        )
        used = set(cache.bank_of[cache.bank_of != REPLICATED].tolist())
        assert used == {0, 1, 2, 3}


class TestSizeAccounting:
    def test_cache_bytes_grow_with_workers(self, tree, rng):
        one = BankedTreeCache(tree, n_workers=1, rng=rng).cache_bytes()
        eight = BankedTreeCache(tree, n_workers=8, rng=rng).cache_bytes()
        assert eight > one

    def test_bank_loads_sum_to_banked_nodes(self, tree, rng):
        cache = BankedTreeCache(tree, rng=rng)
        assert cache.bank_loads().sum() == cache.n_banked_nodes

    def test_rejects_bad_workers(self, tree, rng):
        with pytest.raises(ValueError):
            BankedTreeCache(tree, n_workers=0, rng=rng)
