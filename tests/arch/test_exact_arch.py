"""Unit tests for the exact-search k-d accelerator."""

import numpy as np
import pytest

from repro.arch import ExactKdArch, QuickNN, QuickNNConfig
from repro.baselines import knn_bruteforce
from repro.kdtree import KdTreeConfig


@pytest.fixture(scope="module")
def run():
    from repro.datasets import lidar_frame_pair

    ref, qry = lidar_frame_pair(3_000, seed=13)
    config = QuickNNConfig(n_fus=16, tree=KdTreeConfig(bucket_capacity=64))
    result, report = ExactKdArch(config).run(ref, qry, 4)
    return ref, qry, result, report


class TestExactness:
    def test_results_are_exact(self, run):
        ref, qry, result, _ = run
        truth = knn_bruteforce(ref, qry, 4)
        assert np.allclose(result.distances, truth.distances, atol=1e-9)

    def test_visit_counts_reported(self, run):
        _, _, _, report = run
        assert report.notes["mean_buckets_visited"] >= 1.0
        assert report.notes["max_buckets_visited"] >= report.notes["mean_buckets_visited"]


class TestCost:
    def test_slower_than_approximate_quicknn(self, run):
        ref, qry, _, exact_report = run
        config = QuickNNConfig(n_fus=16, tree=KdTreeConfig(bucket_capacity=64))
        _, approx_report = QuickNN(config).run(ref, qry, 4)
        assert exact_report.total_cycles > approx_report.total_cycles
        assert exact_report.memory_words > approx_report.memory_words

    def test_traffic_scales_with_visits(self, run):
        _, _, _, report = run
        mean_visits = report.notes["mean_buckets_visited"]
        rd3 = report.dram.stream("Rd3").bytes
        n_qry = report.n_query
        # Rd3 should be roughly visits * bucket bytes worth of reads,
        # amortized by the gather capacity.
        assert rd3 > 0
        assert rd3 < mean_visits * n_qry * 64 * 12  # loose upper bound

    def test_validation(self, run):
        ref, qry, _, _ = run
        with pytest.raises(ValueError):
            ExactKdArch().run(ref, qry, 0)
        with pytest.raises(ValueError):
            ExactKdArch().run(np.empty((0, 3)), qry.xyz, 1)
