"""Tests for QuickNN's fixed-point datapath model."""

import numpy as np
import pytest

from repro.arch import QuickNN, QuickNNConfig
from repro.analysis.accuracy import knn_recall
from repro.baselines import knn_bruteforce


@pytest.fixture(scope="module")
def frames():
    from repro.datasets import lidar_frame_pair

    return lidar_frame_pair(3_000, seed=9)


class TestFixedPointMode:
    def test_quantization_barely_moves_accuracy(self, frames):
        """Q24.8 resolution (~4 mm) is far below LiDAR noise (~2 cm)."""
        ref, qry = frames
        exact = knn_bruteforce(ref, qry, 8)
        float_result, _ = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 8)
        fixed_result, _ = QuickNN(
            QuickNNConfig(n_fus=16, model_fixed_point=True)
        ).run(ref, qry, 8)
        float_recall = knn_recall(float_result, exact, 8)
        fixed_recall = knn_recall(fixed_result, exact, 8)
        assert abs(float_recall - fixed_recall) < 0.02

    def test_most_results_unchanged(self, frames):
        ref, qry = frames
        float_result, _ = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 8)
        fixed_result, _ = QuickNN(
            QuickNNConfig(n_fus=16, model_fixed_point=True)
        ).run(ref, qry, 8)
        agreement = (float_result.indices == fixed_result.indices).mean()
        assert agreement > 0.9

    def test_performance_model_unaffected(self, frames):
        """Fixed point changes values, not traffic: same cycle count."""
        ref, qry = frames
        _, float_report = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 8)
        _, fixed_report = QuickNN(
            QuickNNConfig(n_fus=16, model_fixed_point=True)
        ).run(ref, qry, 8)
        # Quantization can push a few points across bucket thresholds,
        # nudging traffic and cycles by a fraction of a percent.
        assert fixed_report.dram.bytes == pytest.approx(float_report.dram.bytes, rel=0.01)
        assert fixed_report.total_cycles == pytest.approx(
            float_report.total_cycles, rel=0.01
        )
