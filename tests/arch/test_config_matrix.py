"""Configuration-matrix robustness: QuickNN invariants across the design space.

A sweep over the architecture's knobs asserting the invariants that must
hold for *every* configuration: functional correctness, traffic
conservation, and report consistency.  This is the failure-injection
net that catches config-dependent bugs in the cycle model.
"""

import numpy as np
import pytest

from repro.arch import QuickNN, QuickNNConfig
from repro.arch.params import POINT_BYTES, RESULT_BYTES
from repro.kdtree import KdTreeConfig, build_tree, knn_approx
from repro.sim import DramTimingParams

CONFIG_MATRIX = [
    QuickNNConfig(n_fus=1),
    QuickNNConfig(n_fus=8, tree=KdTreeConfig(bucket_capacity=32)),
    QuickNNConfig(n_fus=64, write_gather_capacity=1),
    QuickNNConfig(n_fus=64, write_gather_slots=2),
    QuickNNConfig(n_fus=16, read_gather_slots=2, read_gather_capacity=2),
    QuickNNConfig(n_fus=32, enable_snooping=False),
    QuickNNConfig(n_fus=32, tree_strategy="incremental"),
    QuickNNConfig(n_fus=32, scheduler="event"),
    QuickNNConfig(n_fus=32, dram=DramTimingParams.hbm2()),
    QuickNNConfig(n_fus=32, n_traversal_workers=1),
    QuickNNConfig(n_fus=32, bucket_kickoff_cycles=0),
    QuickNNConfig(n_fus=128, tree=KdTreeConfig(bucket_capacity=512)),
]


@pytest.fixture(scope="module")
def frames():
    from repro.datasets import lidar_frame_pair

    return lidar_frame_pair(2_500, seed=21)


@pytest.mark.parametrize("config", CONFIG_MATRIX, ids=lambda c: (
    f"fus{c.n_fus}-wg{c.write_gather_slots}x{c.write_gather_capacity}"
    f"-rg{c.read_gather_slots}-{c.tree_strategy[:4]}-{c.scheduler[:4]}"
    f"{'-nosnoop' if not c.enable_snooping else ''}"
))
class TestConfigMatrix:
    def test_invariants(self, config, frames):
        ref, qry = frames
        k = 4
        result, report = QuickNN(config).run(ref, qry, k)

        # Functional: every query gets k results (buckets >= k points
        # here), all indices in range, distances sorted.
        assert result.indices.shape == (len(qry), k)
        valid = result.indices >= 0
        assert valid.mean() > 0.95
        assert (result.indices[valid] < len(ref)).all()
        finite = ~np.isinf(result.distances)
        rows_ok = np.diff(np.where(finite, result.distances, np.inf), axis=1)
        assert (rows_ok >= -1e12).all()

        # Correctness: results match the software search over the same
        # (deterministically built) reference tree — except for the
        # incremental strategy, which still searches the ref tree.
        tree, _ = build_tree(ref, config.tree, rng=np.random.default_rng(0))
        expected = knn_approx(tree, qry, k)
        assert np.array_equal(result.indices, expected.indices)

        # Traffic conservation: Wr1 covers the frame exactly once; Wr2
        # covers every result record exactly once; Rd1 reads the frame.
        assert report.dram.stream("Wr1").bytes == len(qry) * POINT_BYTES
        assert report.dram.stream("Wr2").bytes == len(qry) * k * RESULT_BYTES
        assert report.dram.stream("Rd1").bytes == len(qry) * POINT_BYTES
        if config.enable_snooping:
            assert "Rd2" not in report.dram.streams
        else:
            assert report.dram.stream("Rd2").bytes == len(qry) * POINT_BYTES

        # Report consistency.
        assert report.total_cycles == sum(report.phase_cycles.values())
        assert report.fps > 0
        assert 0.0 < report.bandwidth_utilization <= 1.0
        assert report.notes["bucket_reads"] >= 1
