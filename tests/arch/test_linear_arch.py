"""Unit tests for the linear search architecture model."""

import numpy as np
import pytest

from repro.arch import LinearArch, LinearArchConfig
from repro.baselines import knn_bruteforce


class TestFunctional:
    def test_results_exact(self, small_frame_pair):
        ref, qry = small_frame_pair
        arch = LinearArch(LinearArchConfig(n_fus=16))
        result, _ = arch.run(ref, qry, 4)
        expected = knn_bruteforce(ref, qry, 4)
        assert np.array_equal(result.indices, expected.indices)


class TestCycleModel:
    def test_quadratic_in_frame_size(self):
        arch = LinearArch(LinearArchConfig(n_fus=64))
        small = arch.simulate(10_000, 10_000, 8)
        big = arch.simulate(30_000, 30_000, 8)
        ratio = big.total_cycles / small.total_cycles
        assert 7.0 <= ratio <= 11.0

    def test_fu_scaling_near_linear(self):
        fps32 = LinearArch(LinearArchConfig(n_fus=32)).simulate(30_000, 30_000, 8).fps
        fps64 = LinearArch(LinearArchConfig(n_fus=64)).simulate(30_000, 30_000, 8).fps
        assert 1.85 <= fps64 / fps32 <= 2.1

    def test_matches_paper_magnitude_at_64fu(self):
        """The paper's 64-FU linear design runs ~21.9M cycles at 30k."""
        report = LinearArch(LinearArchConfig(n_fus=64)).simulate(30_000, 30_000, 8)
        assert 15e6 <= report.total_cycles <= 30e6

    def test_bandwidth_utilization_high(self):
        """All-sequential access: the paper measures 98.7%."""
        report = LinearArch(LinearArchConfig(n_fus=64)).simulate(30_000, 30_000, 8)
        assert report.dram.bandwidth_utilization() >= 0.95

    def test_memory_traffic_scales_with_passes(self):
        arch = LinearArch(LinearArchConfig(n_fus=64))
        a = arch.simulate(10_000, 10_000, 8)
        b = arch.simulate(10_000, 20_000, 8)  # twice the queries = twice the passes
        assert b.dram.stream("RdRef").bytes == pytest.approx(
            2 * a.dram.stream("RdRef").bytes, rel=0.01
        )

    def test_report_fields(self):
        report = LinearArch(LinearArchConfig(n_fus=8)).simulate(1_000, 1_000, 2)
        assert report.architecture == "linear-8fu"
        assert report.fps == pytest.approx(1e8 / report.total_cycles)
        assert report.memory_words > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearArchConfig(n_fus=0)
        with pytest.raises(ValueError):
            LinearArch().simulate(0, 10, 1)
