"""Unit tests for FrameReport and shared architecture constants."""

import pytest

from repro.arch.params import (
    CORE_CLOCK_HZ,
    POINT_BYTES,
    RESULT_BYTES,
    cycles_to_seconds,
    fps_from_cycles,
)
from repro.arch.report import FrameReport
from repro.sim.dram import DramModel


class TestParams:
    def test_clock_conversions(self):
        assert cycles_to_seconds(CORE_CLOCK_HZ) == pytest.approx(1.0)
        assert fps_from_cycles(CORE_CLOCK_HZ) == pytest.approx(1.0)
        assert fps_from_cycles(1_000_000) == pytest.approx(100.0)

    def test_fps_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fps_from_cycles(0)

    def test_record_sizes(self):
        # The paper's datapath: 3 x 32-bit point, index+distance result.
        assert POINT_BYTES == 12
        assert RESULT_BYTES == 8


class TestFrameReport:
    def make(self, cycles=1_000_000):
        dram = DramModel()
        dram.access("Rd1", 0, 4096, write=False)
        return FrameReport(
            architecture="test-arch",
            n_reference=100,
            n_query=100,
            k=4,
            total_cycles=cycles,
            phase_cycles={"a": cycles // 2, "b": cycles // 2},
            compute_cycles={"fu": 1000},
            dram=dram.stats,
        )

    def test_fps_and_latency(self):
        report = self.make(2_000_000)
        assert report.fps == pytest.approx(50.0)
        assert report.latency_ms == pytest.approx(20.0)

    def test_words_and_accesses(self):
        report = self.make()
        assert report.memory_accesses == 1
        assert report.memory_words == 512

    def test_utilization_against_wall_time(self):
        report = self.make(10_000)
        util = report.bandwidth_utilization
        assert 0.0 < util < 1.0
        assert util == pytest.approx(512 / 10_000)

    def test_summary_mentions_key_figures(self):
        text = self.make().summary()
        assert "test-arch" in text
        assert "FPS" in text

    def test_rejects_nonpositive_cycles(self):
        with pytest.raises(ValueError):
            FrameReport(
                architecture="x", n_reference=1, n_query=1, k=1, total_cycles=0
            )
