"""Property-based tests of the architecture building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import FunctionalUnit, MergeSorter, MergeSorterConfig
from repro.arch.bucket_store import LINK_BYTES, BucketBlockStore
from repro.arch.params import POINT_BYTES
from repro.sim import AddressAllocator

common = settings(max_examples=40, deadline=None)


class TestFuProperties:
    @common
    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(1, 60),
        k=st.integers(1, 10),
    )
    def test_fu_matches_numpy_topk(self, seed, n, k):
        rng = np.random.default_rng(seed)
        query = rng.normal(size=3)
        points = rng.normal(size=(n, 3))
        fu = FunctionalUnit(query, k)
        fu.process_batch(np.arange(n), points)
        idx, dst = fu.results()

        dists = np.linalg.norm(points - query, axis=1)
        order = np.argsort(dists, kind="stable")[:k]
        take = min(k, n)
        assert np.allclose(dst[:take], dists[order][:take])
        # Indices may differ under exact distance ties; distances decide.
        assert np.allclose(dists[idx[:take]], dists[order][:take])


class TestSorterProperties:
    @common
    @given(n=st.integers(0, 100_000), n_way=st.integers(2, 16))
    def test_cycles_scale_with_rounds(self, n, n_way):
        sorter = MergeSorter(MergeSorterConfig(n_way=n_way))
        cycles = sorter.sort_cycles(n)
        rounds = sorter.rounds(n)
        assert cycles == rounds * (n + sorter.config.round_setup_cycles)
        if n > 1:
            assert n_way**rounds >= n > n_way ** (rounds - 1) or rounds == 1

    @common
    @given(n=st.integers(2, 50_000))
    def test_wider_merge_never_slower(self, n):
        narrow = MergeSorter(MergeSorterConfig(n_way=2)).sort_cycles(n)
        wide = MergeSorter(MergeSorterConfig(n_way=8)).sort_cycles(n)
        assert wide <= narrow


class TestBucketStoreProperties:
    @common
    @given(
        appends=st.lists(
            st.tuples(st.integers(0, 7), st.integers(1, 40)),
            min_size=1,
            max_size=40,
        )
    )
    def test_spans_conserve_points_and_never_overlap(self, appends):
        store = BucketBlockStore(
            AddressAllocator(), n_buckets=8, block_points=16, pool_blocks=4096
        )
        all_spans = []
        per_bucket = {b: 0 for b in range(8)}
        for bucket, count in appends:
            spans = store.append(bucket, count)
            all_spans.extend(spans)
            per_bucket[bucket] += count
            written = sum(s.nbytes for s in spans)
            assert written == count * POINT_BYTES

        for bucket, total in per_bucket.items():
            assert store.bucket_fill(bucket) == total
            read = store.read_spans(bucket)
            readable = sum(s.nbytes - LINK_BYTES for s in read)
            assert readable == total * POINT_BYTES

        # Write spans never overlap one another.
        ordered = sorted(all_spans, key=lambda s: s.addr)
        for a, b in zip(ordered, ordered[1:]):
            assert a.addr + a.nbytes <= b.addr
