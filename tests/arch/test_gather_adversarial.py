"""Adversarial access patterns for the gather caches.

The unit tests cover the mechanics; these cover the *pathological*
streams a gather cache can face — exact flush counts are asserted, not
just conservation, so policy regressions are caught.
"""

import numpy as np

from repro.arch import GatherCache, WriteGatherCache


class TestPathologicalStreams:
    def test_single_bucket_stream_is_optimal(self):
        """All traffic to one bucket: every flush leaves full."""
        cache = GatherCache(n_slots=4, slot_capacity=8)
        events = cache.process_stream([3] * 64)
        assert len(events) == 8
        assert all(e.count == 8 and not e.forced for e in events)

    def test_round_robin_over_capacity_thrashes(self):
        """More active buckets than slots, perfectly interleaved: the
        worst case — almost every insert forces an eviction at fill 1-2,
        so gathering degenerates (mean fill ~1, far from capacity 8)."""
        cache = GatherCache(n_slots=4, slot_capacity=8)
        stream = list(range(8)) * 16  # 8 buckets, 4 slots
        events = cache.process_stream(stream)
        assert len(events) >= len(stream) / 2
        assert cache.stats.mean_fill <= 2.0

    def test_round_robin_within_capacity_is_optimal(self):
        """Interleaving is harmless when the slot count covers the
        working set."""
        cache = GatherCache(n_slots=8, slot_capacity=8)
        stream = list(range(8)) * 16
        events = cache.process_stream(stream)
        assert len(events) == 16
        assert all(e.count == 8 for e in events)

    def test_bursty_stream_matches_burst_structure(self):
        """Contiguous runs per bucket (sorted stream): flush count is
        run length / capacity, independent of slot count."""
        cache = GatherCache(n_slots=2, slot_capacity=4)
        stream = [0] * 12 + [1] * 12 + [2] * 12
        events = cache.process_stream(stream)
        assert len(events) == 9
        assert all(e.count == 4 for e in events)

    def test_heavy_hitter_sacrificed_to_unique_noise(self):
        """One hot bucket interleaved with always-fresh cold buckets:
        the fullest-eviction policy evicts the hot bucket every time
        (it *is* the fullest), so its accumulation degenerates — the
        policy optimizes per-eviction burst length, not hot-bucket
        retention.  This documents the worst case; in placement streams
        the working set is bounded by the tree's bucket count, where
        the policy is near-optimal (see Figure 8)."""
        cache = GatherCache(n_slots=4, slot_capacity=16)
        stream = []
        for i in range(96):
            stream.append(0)            # hot bucket
            stream.append(100 + i)      # unique cold bucket each time
        events = cache.process_stream(stream)
        hot = [e for e in events if e.bucket_id == 0]
        assert sum(e.count for e in hot) == 96           # conservation
        assert max(e.count for e in hot) <= cache.n_slots  # no accumulation
        forced = [e for e in events if e.forced]
        assert len(forced) > 90  # nearly every insert forces an eviction

    def test_zipf_stream_conserves_and_beats_thrash(self):
        rng = np.random.default_rng(0)
        buckets = (rng.zipf(1.5, size=2_000) - 1) % 64
        wide = WriteGatherCache(64, 8)
        narrow = WriteGatherCache(2, 8)
        wide_events = wide.process_stream(buckets)
        narrow_events = narrow.process_stream(buckets)
        assert sum(e.count for e in wide_events) == 2_000
        assert sum(e.count for e in narrow_events) == 2_000
        assert len(wide_events) < len(narrow_events)
