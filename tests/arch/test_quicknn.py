"""Unit and integration tests for the QuickNN architecture model."""

import numpy as np
import pytest

from repro.arch import QuickNN, QuickNNConfig
from repro.kdtree import KdTreeConfig, build_tree, knn_approx


@pytest.fixture(scope="module")
def run_small():
    from repro.datasets import lidar_frame_pair

    ref, qry = lidar_frame_pair(2_000, seed=7)
    accel = QuickNN(QuickNNConfig(n_fus=16, tree=KdTreeConfig(bucket_capacity=64)))
    result, report = accel.run(ref, qry, 4)
    return ref, qry, result, report


class TestFunctional:
    def test_results_match_functional_search(self, run_small):
        ref, qry, result, _ = run_small
        tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=64))
        expected = knn_approx(tree, qry, 4)
        assert np.array_equal(result.indices, expected.indices)

    def test_report_phases(self, run_small):
        _, _, _, report = run_small
        assert set(report.phase_cycles) == {"sample", "construct", "place+search"}
        assert report.total_cycles == sum(report.phase_cycles.values())


class TestStreams:
    def test_no_rd2_stream(self, run_small):
        """Snooping TBuild's Rd1 eliminates the query read stream."""
        _, _, _, report = run_small
        assert "Rd2" not in report.dram.streams
        assert "Rd1" in report.dram.streams

    def test_five_streams_minus_snooped(self, run_small):
        _, _, _, report = run_small
        assert set(report.dram.streams) == {"RdSample", "Rd1", "Wr1", "Rd3", "Wr2"}

    def test_wr1_bytes_cover_frame(self, run_small):
        ref, qry, _, report = run_small
        # Every placed point is written back exactly once.
        from repro.arch.params import POINT_BYTES

        assert report.dram.stream("Wr1").bytes == len(qry) * POINT_BYTES

    def test_wr2_bytes_cover_results(self, run_small):
        ref, qry, _, report = run_small
        from repro.arch.params import RESULT_BYTES

        assert report.dram.stream("Wr2").bytes == len(qry) * 4 * RESULT_BYTES

    def test_rd3_reads_buckets_not_frames(self, run_small):
        ref, qry, _, report = run_small
        from repro.arch.params import POINT_BYTES

        rd3 = report.dram.stream("Rd3").bytes
        # Far less than the linear architecture's N reads per query...
        assert rd3 < len(qry) * 64 * POINT_BYTES
        # ...but at least one bucket's worth per gather flush.
        assert rd3 > report.notes["bucket_reads"] * 8


class TestScaling:
    def test_more_fus_not_slower(self):
        from repro.datasets import lidar_frame_pair

        ref, qry = lidar_frame_pair(5_000, seed=3)
        cycles = []
        for fus in (8, 32, 128):
            _, report = QuickNN(QuickNNConfig(n_fus=fus)).run(ref, qry, 8)
            cycles.append(report.total_cycles)
        assert cycles[0] > cycles[1] >= cycles[2]

    def test_matches_paper_magnitude_at_64fu(self):
        """Paper: 908k cycles/frame at 64 FUs, 30k points, k=8."""
        report = QuickNN(QuickNNConfig(n_fus=64)).simulate(30_000, 8)
        assert 450_000 <= report.total_cycles <= 1_400_000

    def test_speedup_over_linear_in_paper_band(self):
        """Paper: 24.1x over the 64-FU linear architecture at 30k."""
        from repro.arch import LinearArch, LinearArchConfig

        quick = QuickNN(QuickNNConfig(n_fus=64)).simulate(30_000, 8)
        linear = LinearArch(LinearArchConfig(n_fus=64)).simulate(30_000, 30_000, 8)
        speedup = linear.total_cycles / quick.total_cycles
        assert 15.0 <= speedup <= 45.0

    def test_notes_expose_cache_behavior(self, run_small):
        _, _, _, report = run_small
        assert report.notes["bucket_reads"] > 0
        assert report.notes["read_gather_mean_fill"] > 1.0
        assert report.notes["tree_cache_bytes"] > 0


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            QuickNNConfig(n_fus=0)
        with pytest.raises(ValueError):
            QuickNNConfig(write_gather_capacity=0)
        with pytest.raises(ValueError):
            QuickNNConfig(bucket_kickoff_cycles=-1)

    def test_run_validation(self, small_frame_pair):
        ref, qry = small_frame_pair
        with pytest.raises(ValueError):
            QuickNN().run(ref, qry, 0)
        with pytest.raises(ValueError):
            QuickNN().run(np.empty((0, 3)), qry.xyz, 1)

    def test_read_gather_capacity_defaults_to_fus(self):
        assert QuickNNConfig(n_fus=32).effective_read_gather_capacity == 32
        assert QuickNNConfig(n_fus=32, read_gather_capacity=8).effective_read_gather_capacity == 8
