"""Property-based tests of the event-driven phase scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.schedule import BucketJob, StreamJob, schedule_phase3

common = settings(max_examples=40, deadline=None)

jobs_strategy = st.lists(
    st.tuples(st.integers(0, 199), st.integers(1, 50)), max_size=15
)
buckets_strategy = st.lists(
    st.tuples(
        st.integers(0, 199),  # point index
        st.integers(1, 60),   # rd3
        st.integers(0, 60),   # fu
        st.integers(1, 20),   # wr2
        st.integers(0, 8),    # kickoff
    ),
    max_size=10,
)


def run(wr1, buckets, *, chunks=4, chunk_cost=25, trav=0.5):
    return schedule_phase3(
        n_points=200,
        chunk_costs=[chunk_cost] * chunks,
        points_per_chunk=50,
        traversal_cycles_per_point=trav,
        wr1_jobs=[StreamJob(p, c) for p, c in wr1],
        bucket_jobs=[BucketJob(p, r, f, w, k) for p, r, f, w, k in buckets],
    )


class TestSchedulerInvariants:
    @common
    @given(wr1=jobs_strategy, buckets=buckets_strategy)
    def test_total_bounded_below_by_each_resource(self, wr1, buckets):
        schedule = run(wr1, buckets)
        assert schedule.total_cycles >= schedule.dram_busy
        assert schedule.total_cycles >= schedule.fu_busy
        assert schedule.total_cycles >= schedule.traversal_busy

    @common
    @given(wr1=jobs_strategy, buckets=buckets_strategy)
    def test_total_bounded_above_by_full_serialization(self, wr1, buckets):
        schedule = run(wr1, buckets)
        upper = schedule.dram_busy + schedule.fu_busy + schedule.traversal_busy
        assert schedule.total_cycles <= upper

    @common
    @given(wr1=jobs_strategy, buckets=buckets_strategy)
    def test_dram_busy_conserves_job_costs(self, wr1, buckets):
        schedule = run(wr1, buckets)
        expected = (
            4 * 25
            + sum(c for _, c in wr1)
            + sum(r + w for _, r, _, w, _ in buckets)
        )
        assert schedule.dram_busy == expected

    @common
    @given(wr1=jobs_strategy, buckets=buckets_strategy)
    def test_adding_work_never_speeds_up(self, wr1, buckets):
        base = run(wr1, buckets)
        more = run(wr1 + [(100, 40)], buckets)
        assert more.total_cycles >= base.total_cycles

    @common
    @given(buckets=buckets_strategy)
    def test_fu_busy_counts_scans_and_kickoffs(self, buckets):
        schedule = run([], buckets)
        expected = sum(f + k for _, _, f, _, k in buckets)
        assert schedule.fu_busy == expected
