"""Tests for QuickNN's extension modes: snooping, tree strategy, HBM."""

import numpy as np
import pytest

from repro.arch import QuickNN, QuickNNConfig
from repro.sim import DramTimingParams


@pytest.fixture(scope="module")
def frames():
    from repro.datasets import lidar_frame_pair

    return lidar_frame_pair(4_000, seed=5)


class TestSnooping:
    def test_disabling_snooping_adds_rd2(self, frames):
        ref, qry = frames
        _, snooped = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 4)
        _, separate = QuickNN(
            QuickNNConfig(n_fus=16, enable_snooping=False)
        ).run(ref, qry, 4)
        assert "Rd2" not in snooped.dram.streams
        assert "Rd2" in separate.dram.streams
        assert separate.total_cycles > snooped.total_cycles
        assert separate.memory_words > snooped.memory_words

    def test_results_identical_either_way(self, frames):
        ref, qry = frames
        with_snoop, _ = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 4)
        without, _ = QuickNN(
            QuickNNConfig(n_fus=16, enable_snooping=False)
        ).run(ref, qry, 4)
        assert np.array_equal(with_snoop.indices, without.indices)


class TestTreeStrategy:
    def test_incremental_skips_sampling(self, frames):
        ref, qry = frames
        _, report = QuickNN(
            QuickNNConfig(n_fus=16, tree_strategy="incremental")
        ).run(ref, qry, 4)
        assert report.phase_cycles["sample"] == 0
        assert "RdSample" not in report.dram.streams

    def test_incremental_construction_cheaper(self, frames):
        ref, qry = frames
        _, rebuild = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 4)
        _, incremental = QuickNN(
            QuickNNConfig(n_fus=16, tree_strategy="incremental")
        ).run(ref, qry, 4)
        rebuild_build = rebuild.phase_cycles["sample"] + rebuild.phase_cycles["construct"]
        incr_build = incremental.phase_cycles["sample"] + incremental.phase_cycles["construct"]
        assert incr_build < rebuild_build

    def test_search_results_unaffected_by_strategy(self, frames):
        ref, qry = frames
        a, _ = QuickNN(QuickNNConfig(n_fus=16)).run(ref, qry, 4)
        b, _ = QuickNN(
            QuickNNConfig(n_fus=16, tree_strategy="incremental")
        ).run(ref, qry, 4)
        # TSearch uses the reference tree either way.
        assert np.array_equal(a.indices, b.indices)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="tree_strategy"):
            QuickNNConfig(tree_strategy="telepathy")


class TestHbm:
    def test_hbm_preset_is_faster_memory(self):
        ddr4 = DramTimingParams.ddr4()
        hbm = DramTimingParams.hbm2()
        assert hbm.bytes_per_cycle > ddr4.bytes_per_cycle
        assert hbm.n_banks > ddr4.n_banks

    def test_hbm_speeds_up_quicknn(self, frames):
        ref, qry = frames
        _, ddr4 = QuickNN(QuickNNConfig(n_fus=64)).run(ref, qry, 8)
        _, hbm = QuickNN(
            QuickNNConfig(n_fus=64, dram=DramTimingParams.hbm2())
        ).run(ref, qry, 8)
        assert hbm.total_cycles < ddr4.total_cycles
        # Same algorithm: identical traffic volume, just cheaper.
        assert hbm.dram.bytes == ddr4.dram.bytes

    def test_hbm_drops_wall_time_utilization(self, frames):
        """With 8x the bandwidth the design becomes compute-bound."""
        ref, qry = frames
        _, ddr4 = QuickNN(QuickNNConfig(n_fus=64)).run(ref, qry, 8)
        _, hbm = QuickNN(
            QuickNNConfig(n_fus=64, dram=DramTimingParams.hbm2())
        ).run(ref, qry, 8)
        assert hbm.bandwidth_utilization < ddr4.bandwidth_utilization
