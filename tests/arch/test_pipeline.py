"""Unit tests for the drive-level round pipeline."""

import numpy as np
import pytest

from repro.arch import QuickNN, QuickNNConfig, run_drive
from repro.datasets import DriveConfig, generate_drive
from repro.kdtree import KdTreeConfig, build_tree, knn_approx


@pytest.fixture(scope="module")
def drive_clouds():
    frames = generate_drive(DriveConfig(n_frames=4, target_points=2_500), seed=6)
    return [f.cloud for f in frames]


@pytest.fixture(scope="module")
def pipeline(drive_clouds):
    accel = QuickNN(QuickNNConfig(n_fus=16, tree=KdTreeConfig(bucket_capacity=64)))
    return run_drive(accel, drive_clouds, k=4)


class TestRunDrive:
    def test_round_count(self, pipeline, drive_clouds):
        assert pipeline.n_rounds == len(drive_clouds) - 1
        assert len(pipeline.results) == pipeline.n_rounds

    def test_deterministic(self, pipeline, drive_clouds):
        accel = QuickNN(QuickNNConfig(n_fus=16, tree=KdTreeConfig(bucket_capacity=64)))
        again = run_drive(accel, drive_clouds, k=4)
        for a, b in zip(pipeline.results, again.results):
            assert np.array_equal(a.indices, b.indices)
        assert pipeline.total_cycles == again.total_cycles

    def test_each_round_accurate_against_bruteforce(self, pipeline, drive_clouds):
        from repro.analysis.accuracy import knn_recall
        from repro.baselines import knn_bruteforce

        for i, result in enumerate(pipeline.results):
            exact = knn_bruteforce(drive_clouds[i], drive_clouds[i + 1], 4)
            assert knn_recall(result, exact, 4) > 0.4

    def test_aggregates_consistent(self, pipeline):
        assert pipeline.total_cycles == sum(r.total_cycles for r in pipeline.reports)
        assert pipeline.total_memory_words == sum(
            r.memory_words for r in pipeline.reports
        )
        assert pipeline.worst_latency_ms >= max(
            r.latency_ms for r in pipeline.reports
        ) - 1e-9

    def test_sustained_fps_between_extremes(self, pipeline):
        per_round = pipeline.fps_per_round()
        assert per_round.min() <= pipeline.sustained_fps <= per_round.max()

    def test_meets_frame_rate(self, pipeline):
        assert pipeline.meets_frame_rate(1.0)
        assert not pipeline.meets_frame_rate(1e9)

    def test_rejects_single_frame(self, drive_clouds):
        with pytest.raises(ValueError, match="two frames"):
            run_drive(QuickNN(), drive_clouds[:1], k=4)

    def test_overlapped_throughput_at_least_sequential(self, pipeline):
        """Round overlap (Figure 7) can only improve sustained FPS."""
        overlapped = pipeline.overlapped_throughput_fps()
        assert overlapped >= pipeline.sustained_fps * 0.999
        # ...but not beyond the shared-memory bound (sanity ceiling).
        assert overlapped <= pipeline.sustained_fps * 3.0
