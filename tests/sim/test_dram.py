"""Unit tests for the DDR4 timing model."""

import pytest

from repro.sim import DramModel, DramTimingParams


@pytest.fixture
def dram():
    return DramModel()


class TestParams:
    def test_defaults(self):
        p = DramTimingParams()
        assert p.transfer_cycles(8) == 1
        assert p.transfer_cycles(9) == 2
        assert p.transfer_cycles(1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DramTimingParams(bytes_per_cycle=0)
        with pytest.raises(ValueError):
            DramTimingParams(n_banks=0)
        with pytest.raises(ValueError):
            DramTimingParams(row_miss_cycles=-1)


class TestAccessCosts:
    def test_first_access_pays_row_miss(self, dram):
        cycles = dram.access("s", 0, 8, write=False)
        assert cycles == 1 + dram.params.row_miss_cycles

    def test_contiguous_stream_pays_once_per_row(self, dram):
        row = dram.params.row_bytes
        total = sum(dram.access("s", addr, 64, write=False) for addr in range(0, row, 64))
        # One miss for the whole row, the rest pure transfer.
        assert total == row // 8 + dram.params.row_miss_cycles

    def test_random_accesses_each_pay_miss(self, dram):
        row = dram.params.row_bytes
        a = dram.access("s", 0, 8, write=False)
        b = dram.access("s", 37 * row, 8, write=False)  # same bank (37 % 16 != 0... different row)
        assert a == b == 1 + dram.params.row_miss_cycles

    def test_row_hit_for_noncontiguous_same_row(self, dram):
        dram.access("s", 0, 8, write=False)
        cycles = dram.access("s", 128, 8, write=False)  # same row, gap
        assert cycles == 1 + dram.params.row_hit_cycles

    def test_turnaround_penalty(self, dram):
        dram.access("s", 0, 8, write=False)
        w = dram.access("s", 8, 8, write=True)
        assert w >= dram.params.turnaround_cycles

    def test_large_access_spans_rows(self, dram):
        nbytes = 3 * dram.params.row_bytes
        cycles = dram.access("s", 0, nbytes, write=False)
        assert cycles == nbytes // 8 + 3 * dram.params.row_miss_cycles

    def test_rejects_bad_args(self, dram):
        with pytest.raises(ValueError):
            dram.access("s", -1, 8, write=False)
        with pytest.raises(ValueError):
            dram.access("s", 0, 0, write=False)


class TestScattered:
    def test_bulk_matches_unit_cost(self):
        a = DramModel()
        bulk = a.access_scattered("s", 100, 12, write=False)
        per = a.params.transfer_cycles(12) + a.params.row_miss_cycles
        assert bulk == 100 * per

    def test_hit_fraction_discounts(self):
        dram = DramModel()
        all_miss = dram.access_scattered("a", 100, 8, write=False, hit_fraction=0.0)
        some_hit = dram.access_scattered("b", 100, 8, write=False, hit_fraction=0.5)
        assert some_hit < all_miss

    def test_turnaround_each(self):
        dram = DramModel()
        plain = dram.access_scattered("a", 10, 8, write=True)
        churn = dram.access_scattered("b", 10, 8, write=True, turnaround_each=True)
        assert churn == plain + 10 * dram.params.turnaround_cycles

    def test_zero_count_free(self):
        dram = DramModel()
        assert dram.access_scattered("s", 0, 8, write=False) == 0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            DramModel().access_scattered("s", 1, 8, write=False, hit_fraction=1.5)


class TestStats:
    def test_per_stream_accounting(self, dram):
        dram.access("Rd1", 0, 64, write=False)
        dram.access("Wr1", 1 << 20, 32, write=True)
        assert dram.stats.stream("Rd1").bytes == 64
        assert dram.stats.stream("Wr1").bytes == 32
        assert dram.stats.bytes == 96
        assert dram.stats.accesses == 2

    def test_words_rounding(self, dram):
        dram.access("s", 0, 12, write=False)
        assert dram.stats.stream("s").words == 2

    def test_utilization_bounds(self, dram):
        for addr in range(0, 1 << 16, 4096):
            dram.access("s", addr, 4096, write=False)
        util = dram.stats.bandwidth_utilization()
        assert 0.9 < util <= 1.0
        wall = dram.stats.bandwidth_utilization(total_cycles=10 * dram.stats.busy_cycles)
        expected = dram.stats.data_cycles / (10 * dram.stats.busy_cycles)
        assert wall == pytest.approx(expected)

    def test_sequential_beats_random_utilization(self):
        seq = DramModel()
        for addr in range(0, 1 << 15, 4096):
            seq.access("s", addr, 4096, write=False)
        rnd = DramModel()
        rnd.access_scattered("s", 1 << 12, 8, write=False)
        assert seq.stats.bandwidth_utilization() > rnd.stats.bandwidth_utilization()

    def test_reset_stats(self, dram):
        dram.access("s", 0, 8, write=False)
        dram.reset_stats()
        assert dram.stats.accesses == 0
