"""Unit tests for DRAM transaction tracing."""

from repro.sim import DramModel


class TestTrace:
    def test_disabled_by_default(self):
        dram = DramModel()
        dram.access("s", 0, 8, write=False)
        assert dram.trace is None

    def test_records_in_order(self):
        dram = DramModel(trace=True)
        dram.access("Rd1", 0, 64, write=False)
        dram.access("Wr1", 4096, 32, write=True)
        assert [(e.stream, e.addr, e.write) for e in dram.trace] == [
            ("Rd1", 0, False),
            ("Wr1", 4096, True),
        ]

    def test_cycles_match_return_value(self):
        dram = DramModel(trace=True)
        cycles = dram.access("s", 128, 256, write=False)
        assert dram.trace[-1].cycles == cycles
        assert dram.trace[-1].nbytes == 256

    def test_scattered_summarized(self):
        dram = DramModel(trace=True)
        dram.access_scattered("Wr1", 10, 12, write=True)
        entry = dram.trace[-1]
        assert entry.addr == -1
        assert entry.nbytes == 120

    def test_trace_covers_all_bytes(self):
        dram = DramModel(trace=True)
        dram.access("a", 0, 100, write=False)
        dram.access_scattered("b", 5, 8, write=True)
        assert sum(e.nbytes for e in dram.trace) == dram.stats.bytes

    def test_quicknn_trace_starts_with_rd1_after_sampling(self):
        """Integration: the accelerator issues streams in pipeline order."""
        from repro.arch.quicknn import QuickNN, QuickNNConfig
        from repro.datasets import lidar_frame_pair
        from repro.sim import DramTimingParams

        # Patch a traced model in by running the phases manually is
        # overkill; instead we just verify stream ordering appears in
        # the stats the accelerator produces.
        ref, qry = lidar_frame_pair(2_000, seed=7)
        _, report = QuickNN(QuickNNConfig(n_fus=8)).run(ref, qry, 2)
        assert list(report.dram.streams) == ["RdSample", "Rd1", "Wr1", "Rd3", "Wr2"]
