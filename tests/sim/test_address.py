"""Unit tests for the DRAM address allocator."""

import pytest

from repro.sim import AddressAllocator, Region


class TestRegion:
    def test_addr_bounds(self):
        region = Region(name="r", base=64, size=128)
        assert region.addr(0) == 64
        assert region.addr(127) == 191
        assert region.end == 192

    def test_addr_out_of_bounds(self):
        region = Region(name="r", base=0, size=8)
        with pytest.raises(ValueError):
            region.addr(8)
        with pytest.raises(ValueError):
            region.addr(-1)

    def test_zero_size_region_offset_zero(self):
        region = Region(name="r", base=0, size=0)
        assert region.addr(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Region(name="r", base=-1, size=4)


class TestAllocator:
    def test_regions_disjoint_and_aligned(self):
        alloc = AddressAllocator(alignment=64)
        a = alloc.allocate("a", 100)
        b = alloc.allocate("b", 50)
        assert a.base % 64 == 0 and b.base % 64 == 0
        assert b.base >= a.end

    def test_duplicate_name_rejected(self):
        alloc = AddressAllocator()
        alloc.allocate("x", 10)
        with pytest.raises(ValueError, match="already"):
            alloc.allocate("x", 10)

    def test_used_bytes_grows(self):
        alloc = AddressAllocator()
        alloc.allocate("a", 1000)
        assert alloc.used_bytes >= 1000

    def test_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            AddressAllocator(alignment=0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            AddressAllocator().allocate("a", -1)
