"""Property-based tests of DRAM model invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import DramModel, DramTimingParams

common = settings(max_examples=50, deadline=None)


class TestConservation:
    @common
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(0, 1 << 24),       # address
                st.integers(1, 4096),          # size
                st.booleans(),                 # write
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_stats_conserve_bytes_and_cycles(self, accesses):
        dram = DramModel()
        total_cycles = 0
        total_bytes = 0
        for addr, nbytes, write in accesses:
            total_cycles += dram.access("s", addr, nbytes, write=write)
            total_bytes += nbytes
        assert dram.stats.bytes == total_bytes
        assert dram.stats.busy_cycles == total_cycles
        assert dram.stats.accesses == len(accesses)

    @common
    @given(
        addr=st.integers(0, 1 << 24),
        nbytes=st.integers(1, 1 << 16),
    )
    def test_cost_at_least_transfer_time(self, addr, nbytes):
        dram = DramModel()
        cycles = dram.access("s", addr, nbytes, write=False)
        assert cycles >= dram.params.transfer_cycles(nbytes)

    @common
    @given(nbytes=st.integers(1, 1 << 14), addr=st.integers(0, 1 << 20))
    def test_one_big_access_never_slower_than_split(self, nbytes, addr):
        whole = DramModel()
        big = whole.access("s", addr, nbytes, write=False)
        split = DramModel()
        half = nbytes // 2
        parts = 0
        if half:
            parts += split.access("s", addr, half, write=False)
        parts += split.access("s", addr + half, nbytes - half, write=False)
        assert big <= parts

    @common
    @given(
        count=st.integers(0, 500),
        nbytes=st.integers(1, 64),
        hit=st.floats(0.0, 1.0),
    )
    def test_scattered_monotone_in_hit_fraction(self, count, nbytes, hit):
        miss_model = DramModel()
        hit_model = DramModel()
        all_miss = miss_model.access_scattered("s", count, nbytes, write=False, hit_fraction=0.0)
        mixed = hit_model.access_scattered("s", count, nbytes, write=False, hit_fraction=hit)
        assert mixed <= all_miss

    @common
    @given(
        bpc=st.integers(1, 64),
        nbytes=st.integers(1, 10_000),
    )
    def test_transfer_cycles_ceiling(self, bpc, nbytes):
        params = DramTimingParams(bytes_per_cycle=bpc, row_bytes=max(8192, bpc))
        cycles = params.transfer_cycles(nbytes)
        assert (cycles - 1) * bpc < nbytes <= cycles * bpc
