"""MicroBatcher: admission control and batch-formation policy.

Uses a fake clock everywhere timing matters, so the deadline logic is
tested deterministically rather than with sleeps.
"""

import threading

import numpy as np
import pytest

from repro.serve import MicroBatcher, Overloaded, ServeRequest, ServerClosed


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def request(rows: int = 1, k: int = 4) -> ServeRequest:
    return ServeRequest(
        xyz=np.zeros((rows, 3)), k=k, mode="exact", allow_degraded=False
    )


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def batcher(clock):
    return MicroBatcher(
        max_batch_size=8, max_delay_s=0.01, max_queue=16, clock=clock
    )


class TestAdmission:
    def test_counts_rows_not_requests(self, batcher):
        batcher.submit(request(rows=10))
        batcher.submit(request(rows=6))  # 16 rows: exactly full
        assert batcher.depth() == 16
        with pytest.raises(Overloaded) as excinfo:
            batcher.submit(request(rows=1))
        assert excinfo.value.queue_depth == 16
        assert excinfo.value.max_queue == 16

    def test_shed_is_synchronous_and_costless(self, batcher):
        batcher.submit(request(rows=16))
        shed = request(rows=1)
        with pytest.raises(Overloaded):
            batcher.submit(shed)
        # The shed request never entered the queue.
        assert batcher.depth() == 16
        assert not shed.future.done()

    def test_fill_fraction(self, batcher):
        assert batcher.fill_fraction() == 0.0
        batcher.submit(request(rows=8))
        assert batcher.fill_fraction() == 0.5

    def test_submit_after_close_raises(self, batcher):
        batcher.close()
        with pytest.raises(ServerClosed):
            batcher.submit(request())


class TestFormation:
    def test_full_batch_dispatches_immediately(self, batcher):
        for _ in range(8):
            batcher.submit(request())
        batch = batcher.next_batch(timeout=0)
        assert batch is not None and len(batch) == 8
        assert batcher.depth() == 0

    def test_partial_batch_waits_for_deadline(self, batcher, clock):
        batcher.submit(request())
        assert batcher.next_batch(timeout=0) is None  # deadline not reached
        clock.now += 0.011
        batch = batcher.next_batch(timeout=0)
        assert batch is not None and len(batch) == 1

    def test_batch_respects_row_cap(self, batcher, clock):
        for _ in range(3):
            batcher.submit(request(rows=3))  # 9 rows queued >= cap of 8
        batch = batcher.next_batch(timeout=0)
        # 3+3 fits, +3 would exceed 8: two requests ship, one stays.
        assert len(batch) == 2
        assert batcher.depth() == 3

    def test_oversized_request_ships_alone(self, batcher, clock):
        batcher.submit(request(rows=12))  # larger than max_batch_size
        batch = batcher.next_batch(timeout=0)
        assert len(batch) == 1 and batch[0].n_rows == 12

    def test_fifo_order(self, batcher, clock):
        first, second = request(), request()
        batcher.submit(first)
        batcher.submit(second)
        clock.now += 0.02
        batch = batcher.next_batch(timeout=0)
        assert batch[0] is first and batch[1] is second

    def test_blocking_wakeup_on_submit(self, clock):
        # A real-threads smoke: the dispatcher blocked in next_batch
        # must wake when a full batch arrives.
        import time

        batcher = MicroBatcher(
            max_batch_size=1, max_delay_s=5.0, max_queue=8, clock=time.monotonic
        )
        got = []

        def consume():
            got.append(batcher.next_batch(timeout=2.0))

        t = threading.Thread(target=consume)
        t.start()
        batcher.submit(request())
        t.join(timeout=3.0)
        assert not t.is_alive()
        assert got and got[0] is not None and len(got[0]) == 1


class TestExpiry:
    def test_expire_removes_past_deadline(self, batcher, clock):
        alive, doomed = request(rows=2), request(rows=3)
        doomed.deadline = 0.5
        batcher.submit(alive)
        batcher.submit(doomed)
        clock.now = 1.0
        expired = batcher.expire(clock.now)
        assert expired == [doomed]
        assert batcher.depth() == 2  # doomed's rows were freed

    def test_expire_noop_without_deadlines(self, batcher, clock):
        batcher.submit(request())
        assert batcher.expire(clock.now) == []
        assert batcher.depth() == 1


class TestClose:
    def test_close_drains_queue(self, batcher):
        batcher.submit(request())
        batcher.submit(request())
        drained = batcher.close()
        assert len(drained) == 2
        assert batcher.depth() == 0

    def test_next_batch_returns_none_after_close(self, batcher):
        batcher.close()
        assert batcher.next_batch(timeout=0) is None
