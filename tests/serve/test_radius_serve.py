"""Ragged radius requests through the server, both execution backends.

The radius path rides the same admission/batching/shard-merge spine as
kNN, so its contract is checked at the same three levels: bit-identity
of the merged answer with the monolithic batched kernel (thread AND
process execution, round-robin AND spatial sharding), honest admission
(each request is charged its worst-case answer size, ``rows x
max_neighbors``), and the no-degradation policy — a truncated ball has
no honest meaning, so radius requests reject rather than degrade.
"""

import numpy as np
import pytest

from repro.kdtree import build_flat
from repro.query import radius_batched
from repro.serve import (
    ExecutionConfig,
    KnnServer,
    Overloaded,
    RadiusServeResponse,
    ServeConfig,
    ServeRequest,
    ServerClosed,
)

RADIUS = 3.0
CAP = 6


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(77)
    ref = rng.uniform(-30.0, 30.0, size=(3_000, 3))
    queries = np.concatenate(
        [rng.uniform(-30.0, 30.0, size=(100, 3)), ref[:28]]
    )
    return ref, queries


@pytest.fixture(scope="module")
def monolithic(cloud):
    ref, queries = cloud
    flat, _ = build_flat(ref)
    return radius_batched(flat, queries, RADIUS, max_neighbors=CAP)


def _config(backend: str, sharding: str, **overrides) -> ServeConfig:
    defaults = dict(
        n_shards=3,
        sharding=sharding,
        max_queue=8192,
        max_batch_size=8192,
        execution=ExecutionConfig(backend=backend),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("sharding", ["round-robin", "spatial"])
    def test_matches_monolithic(self, cloud, monolithic, backend, sharding):
        ref, queries = cloud
        with KnnServer(ref, _config(backend, sharding)) as server:
            response = server.query_radius(
                queries, RADIUS, max_neighbors=CAP, timeout=60
            )
        assert isinstance(response, RadiusServeResponse)
        assert response.served == "exact"
        assert response.degrade_level == 0
        result = response.as_ragged()
        np.testing.assert_array_equal(result.offsets, monolithic.offsets)
        np.testing.assert_array_equal(result.indices, monolithic.indices)
        np.testing.assert_array_equal(result.distances, monolithic.distances)

    def test_split_across_submissions(self, cloud, monolithic):
        """Row slicing back to each request preserves per-request CSR."""
        ref, queries = cloud
        with KnnServer(ref, _config("thread", "round-robin")) as server:
            futures = [
                server.submit_radius(queries[i:i + 16], RADIUS,
                                     max_neighbors=CAP)
                for i in range(0, queries.shape[0], 16)
            ]
            parts = [f.result(timeout=60).as_ragged() for f in futures]
        row = 0
        for part in parts:
            for i in range(part.n_queries):
                idx, dst = part.row(i)
                want_idx, want_dst = monolithic.row(row)
                np.testing.assert_array_equal(idx, want_idx)
                np.testing.assert_array_equal(dst, want_dst)
                row += 1
        assert row == queries.shape[0]

    def test_mixed_knn_and_radius_traffic(self, cloud, monolithic):
        ref, queries = cloud
        with KnnServer(ref, _config("thread", "round-robin")) as server:
            knn_future = server.submit(queries[:32], 4)
            radius_future = server.submit_radius(
                queries, RADIUS, max_neighbors=CAP
            )
            knn = knn_future.result(timeout=60)
            ragged = radius_future.result(timeout=60).as_ragged()
        assert knn.indices.shape == (32, 4)
        np.testing.assert_array_equal(ragged.indices, monolithic.indices)


class TestAdmission:
    def test_cost_rows_charges_worst_case(self):
        request = ServeRequest(
            xyz=np.zeros((10, 3)), k=7, mode="exact",
            allow_degraded=False, kind="radius", radius=1.0,
        )
        assert request.cost_rows == 70
        knn = ServeRequest(
            xyz=np.zeros((10, 3)), k=7, mode="exact", allow_degraded=True,
        )
        assert knn.cost_rows == 10

    def test_queue_overload_counts_expanded_rows(self, cloud):
        ref, queries = cloud
        # 50 queries x cap 6 = 300 worst-case rows > max_queue of 128.
        config = _config("thread", "round-robin", max_queue=128,
                         max_delay_s=0.5)
        with KnnServer(ref, config) as server:
            with pytest.raises(Overloaded):
                for _ in range(8):
                    server.submit_radius(queries[:50], RADIUS,
                                         max_neighbors=CAP)

    def test_validation(self, cloud):
        ref, queries = cloud
        with KnnServer(ref, _config("thread", "round-robin")) as server:
            with pytest.raises(ValueError, match="radius"):
                server.submit_radius(queries[:2], -1.0, max_neighbors=4)
            with pytest.raises(ValueError, match="max_neighbors"):
                server.submit_radius(queries[:2], 1.0, max_neighbors=0)
        with pytest.raises(ServerClosed):
            server.submit_radius(queries[:2], 1.0, max_neighbors=4)


class TestNoDegradation:
    def test_radius_never_degrades_under_pressure(self, cloud, monolithic):
        """Same overload that degrades kNN leaves radius answers exact."""
        ref, queries = cloud
        config = _config(
            "thread", "round-robin",
            degrade_thresholds=(0.01, 0.02, 0.03), approx_budget=4,
        )
        with KnnServer(ref, config) as server:
            futures = [
                server.submit_radius(queries, RADIUS, max_neighbors=CAP)
                for _ in range(6)
            ]
            responses = [f.result(timeout=60) for f in futures]
        for response in responses:
            assert response.served == "exact"
            assert response.degrade_level == 0
            result = response.as_ragged()
            np.testing.assert_array_equal(result.indices, monolithic.indices)
            np.testing.assert_array_equal(
                result.distances, monolithic.distances
            )
