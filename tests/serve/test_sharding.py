"""Shard plans and the canonical cross-shard top-k merge."""

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import PAD_INDEX, build_flat, knn_exact_batched
from repro.serve import make_plan, merge_topk


class TestMakePlan:
    @pytest.mark.parametrize("strategy", ["round-robin", "spatial"])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_partition(self, rng, strategy, n_shards):
        xyz = uniform_cloud(997, rng=rng).xyz
        plan = make_plan(xyz, n_shards, strategy)
        assert plan.n_shards == n_shards
        combined = np.concatenate(plan.global_ids)
        assert combined.size == 997
        assert np.array_equal(np.sort(combined), np.arange(997))

    def test_round_robin_is_balanced(self, rng):
        xyz = uniform_cloud(1000, rng=rng).xyz
        plan = make_plan(xyz, 4, "round-robin")
        assert all(ids.size == 250 for ids in plan.global_ids)

    def test_spatial_is_near_balanced(self, rng):
        xyz = uniform_cloud(1000, rng=rng).xyz
        sizes = [ids.size for ids in make_plan(xyz, 4, "spatial").global_ids]
        assert max(sizes) - min(sizes) <= 1

    def test_spatial_cells_are_compact(self, rng):
        # Median cuts should give each cell a smaller bounding box than
        # the whole cloud on the cut axes.
        xyz = uniform_cloud(2000, rng=rng).xyz
        plan = make_plan(xyz, 4, "spatial")
        full = (xyz.max(axis=0) - xyz.min(axis=0)).prod()
        for ids in plan.global_ids:
            cell = xyz[ids]
            volume = (cell.max(axis=0) - cell.min(axis=0)).prod()
            assert volume < full * 0.6

    def test_describe(self, rng):
        plan = make_plan(uniform_cloud(100, rng=rng).xyz, 2, "round-robin")
        d = plan.describe()
        assert d["n_shards"] == 2 and d["n_points"] == 100

    def test_rejects_bad_inputs(self, rng):
        xyz = uniform_cloud(10, rng=rng).xyz
        with pytest.raises(ValueError, match="n_shards"):
            make_plan(xyz, 0, "round-robin")
        with pytest.raises(ValueError, match="cannot split"):
            make_plan(xyz, 11, "round-robin")
        with pytest.raises(ValueError, match="unknown sharding"):
            make_plan(xyz, 2, "diagonal")


def _sharded_exact(xyz, queries, k, n_shards, strategy="round-robin"):
    """Reference implementation of the serve fan-out/merge, inline."""
    plan = make_plan(xyz, n_shards, strategy)
    idx_parts, dst_parts = [], []
    for ids in plan.global_ids:
        flat, _ = build_flat(xyz[ids])
        res, _ = knn_exact_batched(flat, queries, k)
        translated = ids[res.indices]
        translated[res.indices == PAD_INDEX] = PAD_INDEX
        idx_parts.append(translated)
        dst_parts.append(res.distances)
    return merge_topk(idx_parts, dst_parts, k)


class TestMergeTopk:
    """The acceptance bar: merged answers == single-index ground truth."""

    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_identical_to_unsharded(self, rng, n_shards):
        xyz = uniform_cloud(3000, rng=rng).xyz
        queries = uniform_cloud(300, rng=rng).xyz
        flat, _ = build_flat(xyz)
        truth, _ = knn_exact_batched(flat, queries, 8)
        idx, dst = _sharded_exact(xyz, queries, 8, n_shards)
        assert np.array_equal(dst, truth.distances)
        assert np.array_equal(idx, truth.indices)

    @pytest.mark.parametrize("offset", [100.0, 1000.0, 1e5])
    def test_identical_off_origin(self, rng, offset):
        # UTM-style frames far from the origin stress the centered
        # selection metric; the merge must stay bit-identical.
        xyz = uniform_cloud(2000, rng=rng).xyz + offset
        queries = uniform_cloud(200, rng=rng).xyz + offset
        flat, _ = build_flat(xyz)
        truth, _ = knn_exact_batched(flat, queries, 8)
        idx, dst = _sharded_exact(xyz, queries, 8, 3)
        assert np.array_equal(dst, truth.distances)
        assert np.array_equal(idx, truth.indices)

    def test_duplicate_distance_ties_are_canonical(self, rng):
        # Duplicated points give exactly-tied distances.  The engine's
        # raw tie order depends on bucket internals, so the contract is
        # canonical (distance, id) order — identical for every shard
        # count, with the same multiset of distances as ground truth.
        base = uniform_cloud(500, rng=rng).xyz
        xyz = np.concatenate([base, base[:200], base[:100]])  # many exact ties
        queries = base[:100] + rng.normal(scale=0.01, size=(100, 3))
        flat, _ = build_flat(xyz)
        truth, _ = knn_exact_batched(flat, queries, 6)

        results = {
            s: _sharded_exact(xyz, queries, 6, s) for s in (1, 2, 4)
        }
        for s, (idx, dst) in results.items():
            assert np.array_equal(dst, truth.distances), s
            # Canonical order: within every tied run, ids ascend.
            for row in range(idx.shape[0]):
                for col in range(idx.shape[1] - 1):
                    if dst[row, col] == dst[row, col + 1]:
                        assert idx[row, col] < idx[row, col + 1]
        # Shard-count invariance: distances agree exactly, and indices
        # may differ only at exactly-tied positions (a tie straddling a
        # shard's local k boundary reports whichever of the equal-
        # distance duplicates that shard kept — they are interchangeable).
        for s in (2, 4):
            idx_s, dst_s = results[s]
            idx_1, dst_1 = results[1]
            assert np.array_equal(dst_1, dst_s)
            for row, col in zip(*np.nonzero(idx_1 != idx_s)):
                # The swapped ids are duplicates: identical coordinates,
                # hence identical (already asserted equal) distances.
                assert np.array_equal(xyz[idx_1[row, col]], xyz[idx_s[row, col]])

    def test_tied_set_matches_ground_truth_per_row(self, rng):
        # Where ties straddle the k boundary the *chosen* ids may
        # legitimately differ from the engine's raw order, but the
        # neighbor set must match after canonicalization of the truth.
        base = uniform_cloud(400, rng=rng).xyz
        xyz = np.concatenate([base, base])
        queries = base[:50]
        flat, _ = build_flat(xyz)
        truth, _ = knn_exact_batched(flat, queries, 5)
        idx, dst = _sharded_exact(xyz, queries, 5, 3)
        for row in range(50):
            order = np.lexsort((truth.indices[row], truth.distances[row]))
            assert np.array_equal(dst[row], truth.distances[row][order])

    def test_padding_sorts_last(self):
        # One shard answers, the other is out of points: inf/PAD must
        # sink to the end and keep PAD_INDEX.
        idx_a = np.array([[3, PAD_INDEX]])
        dst_a = np.array([[1.0, np.inf]])
        idx_b = np.array([[7, 5]])
        dst_b = np.array([[0.5, 2.0]])
        idx, dst = merge_topk([idx_a, idx_b], [dst_a, dst_b], 3)
        assert np.array_equal(idx, [[7, 3, 5]])
        assert np.array_equal(dst, [[0.5, 1.0, 2.0]])

    def test_all_pad_row(self):
        idx, dst = merge_topk(
            [np.full((1, 2), PAD_INDEX)], [np.full((1, 2), np.inf)], 2
        )
        assert np.array_equal(idx, [[PAD_INDEX, PAD_INDEX]])
        assert np.isinf(dst).all()

    def test_k_larger_than_any_single_shard(self, rng):
        # k exceeds every shard's point count: the merge must still
        # recover the global top-k from the per-shard full lists.
        xyz = uniform_cloud(30, rng=rng).xyz
        queries = uniform_cloud(20, rng=rng).xyz
        flat, _ = build_flat(xyz)
        truth, _ = knn_exact_batched(flat, queries, 12)
        idx, dst = _sharded_exact(xyz, queries, 12, 3)
        assert np.array_equal(dst, truth.distances)
        assert np.array_equal(idx, truth.indices)
