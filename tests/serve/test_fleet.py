"""Fleet replay: concurrent drive sessions, zero-rebuild steady state."""

import json

import pytest

from repro.obs import MetricsRegistry, NullRegistry, use_registry
from repro.serve import cli
from repro.serve.config import ServeConfig
from repro.serve.fleet import FleetConfig, run_fleet
from repro.serve.sessions import SessionConfig


def _fleet(**kwargs) -> FleetConfig:
    kwargs.setdefault(
        "session", SessionConfig(serve=ServeConfig(max_delay_s=0.0))
    )
    kwargs.setdefault("points_per_frame", 600)
    kwargs.setdefault("distinct_drives", 2)
    return FleetConfig(**kwargs)


class TestConfig:
    def test_validates(self):
        with pytest.raises(ValueError):
            FleetConfig(n_tenants=0)
        with pytest.raises(ValueError):
            FleetConfig(mode="fuzzy")
        with pytest.raises(ValueError):
            FleetConfig(distinct_drives=0)

    def test_tenant_names_are_valid_session_ids(self):
        cfg = FleetConfig()
        assert cfg.tenant_name(7) == "drive-007"


class TestSteadyState:
    def test_32_concurrent_drives_zero_full_rebuilds(self):
        """The PR's acceptance bar: >= 32 concurrent synthetic drive
        sessions in steady state with zero full rebuilds, proven by the
        build counters — one build per session creation, every later
        frame through the incremental fast path."""
        config = _fleet(
            n_tenants=32,
            n_frames=3,
            queries_per_frame=16,
            rows_per_request=8,
            session=SessionConfig(
                serve=ServeConfig(max_delay_s=0.0), max_resident=16
            ),
        )
        with use_registry(MetricsRegistry()):
            report = run_fleet(config)
        agg = report.aggregate()
        assert report.frames_observed == 32 * 3
        assert report.frame_errors == 0
        assert agg["errors"] == 0
        assert agg["completed"] > 0
        assert report.full_builds == 32
        assert report.incremental_updates == 32 * 2
        assert report.zero_rebuild is True
        # Residency pressure (16 < 32) forced real spill/restore churn
        # and every session is still alive at the end.
        counters = report.manager_stats["counters"]
        assert counters["serve.sessions.spilled"] > 0
        assert counters["serve.sessions.restored"] > 0
        assert report.manager_stats["n_sessions"] == 32

    def test_report_dict_shape(self):
        config = _fleet(n_tenants=2, n_frames=2, queries_per_frame=8)
        with use_registry(MetricsRegistry()):
            report = run_fleet(config)
        payload = report.as_dict()
        assert payload["zero_rebuild"] is True
        assert set(payload["per_tenant"]) == {"drive-000", "drive-001"}
        assert payload["aggregate"]["errors"] == 0
        assert payload["build"]["build.calls"] == 2

    def test_without_registry_rebuild_evidence_is_none(self):
        # Pin the no-op registry: CLI tests in this directory install a
        # live one process-wide, and this test is about the disabled path.
        with use_registry(NullRegistry()):
            report = run_fleet(_fleet(n_tenants=1, n_frames=2,
                                      queries_per_frame=0))
        assert report.build_counters == {}
        assert report.zero_rebuild is None


class TestFleetCli:
    def test_parser_defaults(self):
        args = cli.build_parser().parse_args(["fleet"])
        assert args.tenants == 32
        assert args.points == 2000       # fleet-sized, not the 30k frame
        assert args.eviction == "lru"

    def test_small_fleet_run_writes_json_and_asserts_rebuild_contract(
        self, tmp_path
    ):
        out = tmp_path / "fleet.json"
        code = cli.main([
            "fleet", "--tenants", "4", "--frames", "2",
            "--points", "600", "--queries-per-frame", "8",
            "--distinct-drives", "1", "--max-resident", "2",
            "--fail-on-rebuild", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        fleet = payload["fleet"]
        assert fleet["zero_rebuild"] is True
        assert fleet["aggregate"]["errors"] == 0
        assert fleet["build"]["build.calls"] == 4
        assert any(
            k.startswith("serve.tenant.") for k in payload["metrics"]
        )
