"""Shared-memory segment layout and lifecycle (repro.serve.shm)."""

import numpy as np
import pytest

from repro.serve import shm


@pytest.fixture
def payload():
    rng = np.random.default_rng(7)
    return {
        "points": rng.uniform(-10, 10, size=(257, 3)),
        "left": rng.integers(-1, 100, size=63, dtype=np.int64),
        "is_leaf": rng.integers(0, 2, size=63).astype(bool),
        "empty": np.empty(0, dtype=np.int64),
    }


def _unique(name):
    import secrets

    return f"qnn-test-{name}-{secrets.token_hex(4)}"


class TestRoundTrip:
    def test_create_attach_bit_identical(self, payload):
        name = _unique("rt")
        handle = shm.create_segment(name, payload)
        try:
            views, attachment = shm.attach_segment(name)
            assert set(views) == set(payload)
            for key, value in payload.items():
                assert views[key].dtype == value.dtype
                assert views[key].shape == value.shape
                assert np.array_equal(views[key], value)
            views.clear()
            shm.close_attachment(attachment)
        finally:
            shm.unlink_segment(handle)

    def test_views_are_zero_copy(self, payload):
        name = _unique("zc")
        handle = shm.create_segment(name, payload)
        try:
            views, attachment = shm.attach_segment(name)
            assert all(not v.flags["OWNDATA"] for v in views.values())
            views.clear()
            shm.close_attachment(attachment)
        finally:
            shm.unlink_segment(handle)

    def test_arrays_are_64_byte_aligned(self, payload):
        name = _unique("al")
        handle = shm.create_segment(name, payload)
        try:
            views, attachment = shm.attach_segment(name)
            for key, view in views.items():
                if view.size:
                    addr = view.__array_interface__["data"][0]
                    assert addr % 64 == 0, key
            views.clear()
            shm.close_attachment(attachment)
        finally:
            shm.unlink_segment(handle)


class TestLifecycle:
    def test_name_collision_raises(self, payload):
        name = _unique("col")
        handle = shm.create_segment(name, payload)
        try:
            with pytest.raises(FileExistsError):
                shm.create_segment(name, payload)
        finally:
            shm.unlink_segment(handle)

    def test_unlink_is_idempotent(self, payload):
        name = _unique("idem")
        handle = shm.create_segment(name, payload)
        shm.unlink_segment(handle)
        shm.unlink_segment(handle)  # second call must not raise
        with pytest.raises(FileNotFoundError):
            shm.attach_segment(name)

    def test_live_segments_tracking(self, payload):
        name = _unique("live")
        handle = shm.create_segment(name, payload)
        assert name in shm.live_segments()
        shm.unlink_segment(handle)
        assert name not in shm.live_segments()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        name = _unique("foreign")
        raw = shared_memory.SharedMemory(name=name, create=True, size=64)
        try:
            raw.buf[:4] = b"JUNK"
            with pytest.raises(ValueError, match="not a QuickNN"):
                shm.attach_segment(name)
        finally:
            raw.close()
            raw.unlink()
