"""quicknn-serve CLI: subcommands, JSON artifacts, exit codes."""

import json

import pytest

from repro.serve import cli


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_bench_defaults(self):
        args = cli.build_parser().parse_args(["bench"])
        assert args.points == 30_000
        assert args.concurrency == 64

    def test_smoke_implies_fail_on_errors(self):
        args = cli.build_parser().parse_args(["smoke"])
        assert args.fail_on_errors is True


class TestBench:
    def test_small_bench_writes_json(self, tmp_path):
        out = tmp_path / "bench.json"
        code = cli.main([
            "bench", "--points", "2000", "--queries", "256",
            "--concurrency", "16", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        bench = payload["bench"]
        assert bench["one_at_a_time"]["errors"] == 0
        assert bench["micro_batched"]["errors"] == 0
        assert bench["speedup"] > 0
        assert any(k.startswith("serve.") for k in payload["metrics"])


class TestObservabilityFlags:
    def test_bench_writes_profile_trace_and_prom(self, tmp_path):
        profile = tmp_path / "prof.json"
        trace = tmp_path / "trace.json"
        prom = tmp_path / "metrics.prom"
        code = cli.main([
            "bench", "--points", "2000", "--queries", "128",
            "--concurrency", "8",
            "--profile", str(profile), "--trace", str(trace),
            "--prom", str(prom),
        ])
        assert code == 0
        prof = json.loads(profile.read_text())
        assert any(k.startswith("engine.") for k in prof["metrics"])
        doc = json.loads(trace.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {"serve.admit", "serve.dispatch", "serve.worker.search",
                "serve.merge"} <= {e["name"] for e in spans}
        text = prom.read_text()
        assert "# TYPE" in text
        assert "serve_completed_total" in text

    def test_load_stats_line_on_interval(self, tmp_path, capsys):
        code = cli.main([
            "load", "--points", "2000", "--rate", "300",
            "--duration", "0.6", "--stats-interval", "0.2",
            "--fail-on-errors",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "[stats]" in err
        assert "completed=" in err

    def test_stats_interval_zero_disables_the_line(self, capsys):
        code = cli.main([
            "load", "--points", "2000", "--rate", "300",
            "--duration", "0.4", "--stats-interval", "0",
            "--fail-on-errors",
        ])
        assert code == 0
        assert "[stats]" not in capsys.readouterr().err

    def test_stats_line_format(self):
        line = cli._stats_line({
            "generation": 3, "queue_rows": 2, "inflight_jobs": 1,
            "degrade_level": 0,
            "counters": {"serve.completed": 10, "serve.shed": 1,
                         "serve.timeouts": 0, "serve.retries": 2,
                         "serve.errors": 0},
        })
        assert line.startswith("[stats]")
        for token in ("gen=3", "queue=2", "completed=10", "shed=1",
                      "retries=2"):
            assert token in line


class TestLoad:
    def test_small_load_writes_json(self, tmp_path):
        out = tmp_path / "load.json"
        code = cli.main([
            "load", "--points", "2000", "--rate", "300",
            "--duration", "0.5", "--json", str(out), "--fail-on-errors",
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["load"]["errors"] == 0
        assert payload["load"]["completed"] > 0
        assert payload["load"]["latency_ms"]["p99"] >= 0
        assert payload["metrics"]["serve.completed"] == payload["load"]["completed"]

    def test_smoke_preset_runs(self, tmp_path, capsys):
        out = tmp_path / "smoke.json"
        code = cli.main([
            "smoke", "--points", "2000", "--rate", "300",
            "--duration", "0.4", "--json", str(out),
        ])
        assert code == 0
        assert "errors 0" in capsys.readouterr().out
        assert out.exists()
