"""quicknn-serve CLI: subcommands, JSON artifacts, exit codes."""

import json

import pytest

from repro.serve import cli


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_bench_defaults(self):
        args = cli.build_parser().parse_args(["bench"])
        assert args.points == 30_000
        assert args.concurrency == 64

    def test_smoke_implies_fail_on_errors(self):
        args = cli.build_parser().parse_args(["smoke"])
        assert args.fail_on_errors is True


class TestBench:
    def test_small_bench_writes_json(self, tmp_path):
        out = tmp_path / "bench.json"
        code = cli.main([
            "bench", "--points", "2000", "--queries", "256",
            "--concurrency", "16", "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        bench = payload["bench"]
        assert bench["one_at_a_time"]["errors"] == 0
        assert bench["micro_batched"]["errors"] == 0
        assert bench["speedup"] > 0
        assert any(k.startswith("serve.") for k in payload["metrics"])


class TestLoad:
    def test_small_load_writes_json(self, tmp_path):
        out = tmp_path / "load.json"
        code = cli.main([
            "load", "--points", "2000", "--rate", "300",
            "--duration", "0.5", "--json", str(out), "--fail-on-errors",
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["load"]["errors"] == 0
        assert payload["load"]["completed"] > 0
        assert payload["load"]["latency_ms"]["p99"] >= 0
        assert payload["metrics"]["serve.completed"] == payload["load"]["completed"]

    def test_smoke_preset_runs(self, tmp_path, capsys):
        out = tmp_path / "smoke.json"
        code = cli.main([
            "smoke", "--points", "2000", "--rate", "300",
            "--duration", "0.4", "--json", str(out),
        ])
        assert code == 0
        assert "errors 0" in capsys.readouterr().out
        assert out.exists()
