"""Execution backends: registry, config surface, process/thread parity.

The process backend's contract is *bit-identity*: for any shard count,
any degradation budget, and any cloud (ties, off-origin frames), its
responses must equal the thread backend's — the compute path is the
same :meth:`ShardState.search` and the merge never leaves the
coordinator.  The lifecycle contract is *no leaks*: after ``close()``
(even with a SIGKILLed worker) no worker process and no shared-memory
segment survives.
"""

import glob
import os
import secrets
import signal
import time

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.serve import (
    ExecutionConfig,
    KnnServer,
    ServeConfig,
    available_backends,
)

@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(42)
    ref = uniform_cloud(3_000, rng=rng).xyz
    queries = uniform_cloud(128, rng=rng).xyz
    return ref, queries


def _unique_prefix() -> str:
    return f"qnnt-{secrets.token_hex(4)}"


def _segments(prefix: str) -> list[str]:
    return glob.glob(f"/dev/shm/{prefix}*")


def _process_config(prefix: str, **overrides) -> ServeConfig:
    defaults = dict(
        execution=ExecutionConfig(
            backend="process", processes=1, shm_prefix=prefix
        )
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestRegistry:
    def test_both_backends_registered(self):
        assert set(available_backends()) >= {"thread", "process"}

    def test_unknown_backend_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            ExecutionConfig(backend="bogus")

    def test_execution_config_validation(self):
        with pytest.raises(ValueError, match="processes"):
            ExecutionConfig(processes=0)
        with pytest.raises(ValueError, match="shm_prefix"):
            ExecutionConfig(shm_prefix="bad/name")
        with pytest.raises(ValueError, match="join_timeout_s"):
            ExecutionConfig(join_timeout_s=0)

    def test_processes_per_shard_inherits_replicas(self):
        assert ExecutionConfig().processes_per_shard(3) == 3
        assert ExecutionConfig(processes=2).processes_per_shard(3) == 2


class TestDeprecatedWorkerAlias:
    def test_worker_kwarg_warns_and_folds(self):
        with pytest.deprecated_call():
            config = ServeConfig(worker="process")
        assert config.execution.backend == "process"
        assert config.worker is None  # normalized, so replace() won't re-warn

    def test_worker_kwarg_still_validates(self):
        with pytest.deprecated_call():
            with pytest.raises(ValueError, match="unknown execution backend"):
                ServeConfig(worker="bogus")


class TestBackendEquivalence:
    """Process answers must be bit-identical to thread answers."""

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_bit_identical_across_shard_counts(self, cloud, n_shards):
        ref, queries = cloud
        with KnnServer(ref, ServeConfig(n_shards=n_shards)) as server:
            expected = server.query(queries, 8)
        prefix = _unique_prefix()
        config = _process_config(prefix, n_shards=n_shards)
        with KnnServer(ref, config) as server:
            got = server.query(queries, 8, timeout=60)
        assert np.array_equal(expected.indices, got.indices)
        assert np.array_equal(expected.distances, got.distances)
        assert not _segments(prefix)

    def test_bit_identical_on_duplicate_tie_cloud(self):
        # Exact duplicate points create distance ties; the canonical
        # merge must resolve them identically under both backends.
        rng = np.random.default_rng(3)
        base = uniform_cloud(500, rng=rng).xyz
        ref = np.concatenate([base, base, base], axis=0)
        queries = base[:64] + rng.normal(scale=1e-3, size=(64, 3))
        with KnnServer(ref, ServeConfig(n_shards=3)) as server:
            expected = server.query(queries, 6)
        prefix = _unique_prefix()
        with KnnServer(ref, _process_config(prefix, n_shards=3)) as server:
            got = server.query(queries, 6, timeout=60)
        assert np.array_equal(expected.indices, got.indices)
        assert np.array_equal(expected.distances, got.distances)

    def test_bit_identical_off_origin(self, cloud):
        # UTM-style coordinates: large offsets stress float cancellation,
        # results must still match bit for bit.
        ref, queries = cloud
        ref, queries = ref + 1e5, queries + 1e5
        with KnnServer(ref, ServeConfig(n_shards=2)) as server:
            expected = server.query(queries, 8)
        prefix = _unique_prefix()
        with KnnServer(ref, _process_config(prefix, n_shards=2)) as server:
            got = server.query(queries, 8, timeout=60)
        assert np.array_equal(expected.indices, got.indices)
        assert np.array_equal(expected.distances, got.distances)

    def test_approx_budget_identical(self, cloud):
        ref, queries = cloud
        with KnnServer(ref, ServeConfig(n_shards=2)) as server:
            expected = server.query(queries, 8, mode="approx")
        prefix = _unique_prefix()
        with KnnServer(ref, _process_config(prefix, n_shards=2)) as server:
            got = server.query(queries, 8, mode="approx", timeout=60)
        assert got.served == expected.served == "approx"
        assert got.budget == expected.budget
        assert np.array_equal(expected.indices, got.indices)
        assert np.array_equal(expected.distances, got.distances)


class TestProcessLifecycle:
    def test_warm_handoff_and_deferred_unlink(self, cloud):
        ref, queries = cloud
        rng = np.random.default_rng(11)
        ref2 = uniform_cloud(2_500, rng=rng).xyz
        prefix = _unique_prefix()
        with KnnServer(ref, _process_config(prefix, n_shards=2)) as server:
            before = server.query(queries, 8, timeout=60)
            assert before.generation == 0
            info = server.update_reference(ref2)
            assert info["generation"] == 1
            after = server.query(queries, 8, timeout=60)
            assert after.generation == 1
            # The new generation's answers match a fresh thread server
            # over the same points.
            with KnnServer(ref2, ServeConfig(n_shards=2)) as fresh:
                expected = fresh.query(queries, 8)
            assert np.array_equal(after.indices, expected.indices)
            assert np.array_equal(after.distances, expected.distances)
            # Generation 0 had no in-flight jobs left, so its segments
            # are already retired; generation 1's are live.
            deadline = time.time() + 10
            while _has_generation(prefix, 0) and time.time() < deadline:
                time.sleep(0.05)
            assert not _has_generation(prefix, 0)
            assert _has_generation(prefix, 1)
        assert not _segments(prefix)

    def test_close_reaps_processes_and_segments(self, cloud):
        ref, queries = cloud
        prefix = _unique_prefix()
        server = KnnServer(ref, _process_config(prefix, n_shards=2))
        server.query(queries, 8, timeout=60)
        pids = server.stats()["execution"]["pids"]
        assert pids and _segments(prefix)
        server.close()
        server.close()  # idempotent
        for pid in pids:
            assert not _pid_alive(pid)
        assert not _segments(prefix)

    def test_killed_worker_does_not_leak_or_wedge(self, cloud):
        # SIGKILL one replica; the surviving replica on the same shard
        # keeps serving, and close() still reaps and unlinks everything.
        ref, queries = cloud
        prefix = _unique_prefix()
        config = ServeConfig(
            n_shards=1,
            execution=ExecutionConfig(
                backend="process", processes=2, shm_prefix=prefix
            ),
        )
        with KnnServer(ref, config) as server:
            server.query(queries, 8, timeout=60)
            victim = server.stats()["execution"]["pids"][0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10
            while _pid_alive(victim) and time.time() < deadline:
                time.sleep(0.05)
            response = server.query(queries, 8, timeout=60)
            assert response.indices.shape == (queries.shape[0], 8)
            pids = server.stats()["execution"]["pids"]
        for pid in pids:
            assert not _pid_alive(pid)
        assert not _segments(prefix)

    def test_worker_counters_surface_in_stats(self, cloud):
        ref, queries = cloud
        prefix = _unique_prefix()
        with KnnServer(ref, _process_config(prefix, n_shards=1)) as server:
            server.query(queries, 8, timeout=60)
            deadline = time.time() + 10
            counters = {}
            while not counters and time.time() < deadline:
                counters = server.stats()["execution"]["worker_counters"]
                time.sleep(0.02)
        assert counters, "no worker counters arrived"
        worker = next(iter(counters.values()))
        assert worker["tasks"] >= 1
        assert worker["rows"] >= queries.shape[0]
        assert worker["attaches"] >= 1
        assert worker["pid"] > 0


def _has_generation(prefix: str, generation: int) -> bool:
    return any(f"-g{generation}-" in path for path in _segments(prefix))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    return True
