"""End-to-end serving observability: cross-process metric aggregation,
request tracing, and the live stats surface.

The acceptance bar: under the process backend the coordinator's
registry must report the *same* worker-side ``engine.*`` totals the
thread backend produces for the same workload (the compute path is
identical, only the process boundary differs), and a traced run must
produce one Chrome trace whose spans come from at least two distinct
pids, linked by request id.
"""

import os
import secrets
import signal
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.datasets.synthetic import uniform_cloud
from repro.serve import ExecutionConfig, KnnServer, ServeConfig


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(7)
    ref = uniform_cloud(3_000, rng=rng).xyz
    queries = uniform_cloud(96, rng=rng).xyz
    return ref, queries


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    obs.disable()


def _config(backend: str, **overrides) -> ServeConfig:
    defaults = dict(
        n_shards=2,
        request_timeout_s=60.0,
        execution=ExecutionConfig(
            backend=backend,
            processes=1,
            shm_prefix=f"qnnt-{secrets.token_hex(4)}",
        ),
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _run_workload(backend: str, cloud, *, trace: bool = False):
    """One deterministic workload; returns (registry, responses)."""
    ref, queries = cloud
    registry = obs.enable(trace=trace)
    try:
        with KnnServer(ref, _config(backend)) as server:
            exact = server.query(queries, 8, timeout=60)
            approx = server.query(queries[:16], 4, mode="approx", timeout=60)
    finally:
        obs.set_registry(None)
    return registry, (exact, approx)


class TestCrossProcessAggregation:
    def test_engine_counters_match_thread_backend(self, cloud):
        """The acceptance criterion: machine-wide engine.* truth."""
        thread_reg, thread_resp = _run_workload("thread", cloud)
        process_reg, process_resp = _run_workload("process", cloud)
        # Bit-identical answers first (the backend contract) ...
        for t, p in zip(thread_resp, process_resp):
            np.testing.assert_array_equal(t.indices, p.indices)
            np.testing.assert_array_equal(t.distances, p.distances)
        # ... then identical worker-side counter totals: every engine
        # counter the thread run recorded arrived over the pipes.
        thread_counters = {
            n: c.value for n, c in thread_reg._counters.items()
            if n.startswith("engine.")
        }
        process_counters = {
            n: c.value for n, c in process_reg._counters.items()
            if n.startswith("engine.")
        }
        assert thread_counters, "thread run recorded no engine counters"
        assert process_counters == thread_counters

    def test_per_worker_breakdown_present(self, cloud):
        registry, _ = _run_workload("process", cloud)
        flat = registry.as_dict()
        worker_ids = {
            name.split(".")[1]
            for name in flat
            if name.startswith("worker.")
        }
        assert len(worker_ids) == 2          # one worker per shard
        for worker_id in worker_ids:
            per_worker = {
                n: v for n, v in flat.items()
                if n.startswith(f"worker.{worker_id}.engine.")
            }
            assert per_worker, f"worker {worker_id} contributed no engine.*"
        # The per-worker engine.* query counts sum to the machine total.
        total = sum(
            v for n, v in flat.items()
            if n.startswith("worker.") and n.endswith("engine.exact.queries")
        )
        assert total == flat["engine.exact.queries"]

    def test_worker_histograms_merge(self, cloud):
        """Distribution/histogram state crosses the pipe, not just counters."""
        registry, _ = _run_workload("process", cloud)
        dists = {
            n for n in registry._distributions
            if n.startswith("engine.") or n.startswith("worker.")
        }
        assert any(n.startswith("engine.") for n in dists)

    def test_flushed_metrics_survive_sigkill(self, cloud):
        """A dead worker's already-flushed deltas persist; nothing hangs."""
        ref, queries = cloud
        registry = obs.enable()
        config = _config("process", n_shards=1)
        with KnnServer(ref, config) as server:
            server.query(queries, 8, timeout=60)
            # The reply that answered the query carried a flush; the
            # counters it shipped are merged before the future resolves.
            before = {
                n: c.value for n, c in registry._counters.items()
                if n.startswith("engine.")
            }
            assert before, "no worker metrics flushed before the kill"
            victim = server.stats()["execution"]["pids"][0]
            os.kill(victim, signal.SIGKILL)
            deadline = time.time() + 10
            while _pid_alive(victim) and time.time() < deadline:
                time.sleep(0.05)
            after = {
                n: c.value for n, c in registry._counters.items()
                if n.startswith("engine.")
            }
            assert after == before           # flushed deltas survived
        # close() returned: no hang, and the registry is still intact.
        assert {
            n: c.value for n, c in registry._counters.items()
            if n.startswith("engine.")
        } == before


class TestRequestTracing:
    def test_trace_spans_from_two_pids_linked_by_request_id(
        self, cloud, tmp_path
    ):
        """One request's fan-out renders across >=2 processes."""
        registry, (exact, _) = _run_workload("process", cloud, trace=True)
        path = tmp_path / "serve.trace.json"
        obs.write_chrome_trace(path, registry)
        import json

        doc = json.loads(path.read_text())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        rid = exact.request_id
        linked = [
            e for e in spans
            if "args" in e and (
                e["args"].get("request_id") == rid
                or rid in e["args"].get("request_ids", [])
            )
        ]
        pids = {e["pid"] for e in linked}
        assert len(pids) >= 2, f"spans for request {rid} span pids {pids}"
        names = {e["name"] for e in linked}
        assert {"serve.admit", "serve.dispatch",
                "serve.worker.search", "serve.merge"} <= names
        # Every process that contributed spans is labelled.
        meta_pids = {
            e["pid"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert {e["pid"] for e in spans} <= meta_pids

    def test_thread_backend_traces_the_same_stages(self, cloud):
        registry, (exact, _) = _run_workload("thread", cloud, trace=True)
        names = {
            e["name"] for e in registry.events
            if e["ph"] == "X" and "args" in e and (
                e["args"].get("request_id") == exact.request_id
                or exact.request_id in e["args"].get("request_ids", [])
            )
        }
        assert {"serve.admit", "serve.dispatch",
                "serve.worker.search", "serve.merge"} <= names

    def test_request_ids_are_distinct_and_reported(self, cloud):
        ref, queries = cloud
        with KnnServer(ref, _config("thread")) as server:
            a = server.query(queries[:4], 2, timeout=60)
            b = server.query(queries[:4], 2, timeout=60)
        assert a.request_id != b.request_id
        assert a.request_id >= 0 and b.request_id >= 0


class TestStatsSurface:
    def test_counters_live_without_observability(self, cloud):
        """stats() counters are server-maintained, not registry-backed."""
        ref, queries = cloud
        assert not obs.get_registry().enabled
        with KnnServer(ref, _config("thread")) as server:
            server.query(queries, 8, timeout=60)
            server.query(queries[:8], 4, timeout=60)
            stats = server.stats()
        counters = stats["counters"]
        assert counters["serve.requests"] == 2
        assert counters["serve.completed"] == 2
        assert counters["serve.rows"] == queries.shape[0] + 8
        assert counters["serve.batches"] >= 1
        assert stats["uptime_s"] > 0
        assert 0.0 <= stats["queue_fill"] <= 1.0


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, other user
        return True
    return True
