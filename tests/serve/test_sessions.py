"""Per-tenant sessions: lifecycle, zero-rebuild, spill identity, fairness."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.serve.config import ServeConfig
from repro.serve.errors import Overloaded, ServerClosed
from repro.serve.sessions import EVICTION, SessionConfig, SessionManager


def _frame(seed: int, n: int = 400) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(scale=5.0, size=(n, 3))


def _queries(seed: int, n: int = 16) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(scale=5.0, size=(n, 3))


def _fast(**kwargs) -> SessionConfig:
    kwargs.setdefault("serve", ServeConfig(max_delay_s=0.0))
    return SessionConfig(**kwargs)


class TestConfig:
    def test_rejects_sharded_template(self):
        with pytest.raises(ValueError, match="unsharded"):
            SessionConfig(serve=ServeConfig(n_shards=2))

    def test_rejects_unknown_eviction_policy_listing_choices(self):
        with pytest.raises(ValueError, match="unknown eviction policy"):
            SessionConfig(eviction="mru")
        with pytest.raises(ValueError, match="cost-aware.*lru"):
            SessionConfig(eviction="mru")

    def test_eviction_alias_folds(self):
        assert EVICTION.canonical("cost") == "cost-aware"

    def test_quota_rows(self):
        cfg = SessionConfig(max_outstanding_rows=100, tenant_share=0.25)
        assert cfg.quota_rows == 25

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            SessionConfig(max_resident=0)
        with pytest.raises(ValueError):
            SessionConfig(tenant_share=0.0)
        with pytest.raises(ValueError):
            SessionConfig(tenant_share=1.5)


class TestLifecycle:
    def test_create_then_incremental_updates(self):
        with SessionManager(_fast()) as m:
            first = m.observe_frame("t0", _frame(0))
            assert first["created"] and first["generation"] == 0
            assert first["update"] is None
            second = m.observe_frame("t0", _frame(1, n=80))
            assert not second["created"]
            assert second["generation"] == 1
            assert second["n_points"] == 80
            assert "n_merges" in second["update"]
            resp = m.query("t0", _queries(2), k=4)
            assert resp.indices.shape == (16, 4)
            assert resp.generation == 1

    def test_rejects_bad_tenant_names_and_unknown_tenants(self):
        with SessionManager(_fast()) as m:
            with pytest.raises(ValueError, match="tenant ids"):
                m.observe_frame("bad/name", _frame(0))
            with pytest.raises(KeyError, match="unknown tenant"):
                m.submit("ghost", _queries(0), k=2)

    def test_closed_manager_refuses(self):
        m = SessionManager(_fast())
        m.observe_frame("t0", _frame(0))
        m.close()
        with pytest.raises(ServerClosed):
            m.observe_frame("t0", _frame(1))

    def test_zero_rebuild_counters(self):
        registry = MetricsRegistry()
        with use_registry(registry), SessionManager(_fast()) as m:
            for i in range(4):
                m.observe_frame("t0", _frame(i, n=200))
            counters = registry.as_dict()
        assert counters["build.calls"] == 1
        assert counters["build.incremental.calls"] == 3


class TestSpillRestore:
    def test_residency_bound_spills_lru(self):
        with SessionManager(_fast(max_resident=2)) as m:
            for i, t in enumerate(("a", "b", "c")):
                m.observe_frame(t, _frame(i))
            stats = m.stats()
            assert stats["n_resident"] == 2
            assert stats["sessions"]["a"]["state"] == "spilled"
            # Touching the spilled session restores it (and evicts the
            # now-least-recent resident).
            m.query("a", _queries(9), k=2)
            stats = m.stats()
            assert stats["sessions"]["a"]["state"] == "resident"
            assert stats["n_resident"] == 2
            assert stats["counters"]["serve.sessions.restored"] == 1

    def test_restored_session_answers_bit_identical_to_never_evicted_twin(self):
        frames = {t: [_frame(i * 10 + j, n=300) for j in range(3)]
                  for i, t in enumerate(("a", "b"))}
        churn = SessionManager(_fast(max_resident=1))
        calm = SessionManager(_fast(max_resident=8))
        try:
            for j in range(3):
                for t in ("a", "b"):
                    churn.observe_frame(t, frames[t][j])
                    calm.observe_frame(t, frames[t][j])
            counters = churn.stats()["counters"]
            assert counters["serve.sessions.spilled"] >= 3
            assert counters["serve.sessions.restored"] >= 3
            for t in ("a", "b"):
                q = _queries(hash(t) % 1000, n=32)
                got = churn.query(t, q, k=8)
                want = calm.query(t, q, k=8)
                np.testing.assert_array_equal(got.indices, want.indices)
                np.testing.assert_array_equal(got.distances, want.distances)
        finally:
            churn.close()
            calm.close()

    def test_spill_dir_round_trip_survives_manager_restart(self, tmp_path):
        cfg = _fast(max_resident=8, spill_dir=tmp_path)
        with SessionManager(cfg) as m:
            m.observe_frame("t0", _frame(0))
            m.observe_frame("t0", _frame(1, n=100))
            before = m.query("t0", _queries(3), k=4)
            m.sweep()  # nothing idle-configured; keeps residency valid
            m._spill(m._sessions["t0"])  # force the disk round trip
            after = m.query("t0", _queries(3), k=4)
        np.testing.assert_array_equal(before.indices, after.indices)
        np.testing.assert_array_equal(before.distances, after.distances)
        assert (tmp_path / "t0.npz").exists()

    def test_restored_session_continues_incremental(self):
        registry = MetricsRegistry()
        with use_registry(registry), \
                SessionManager(_fast(max_resident=1)) as m:
            m.observe_frame("a", _frame(0))
            m.observe_frame("b", _frame(1))      # evicts a
            out = m.observe_frame("a", _frame(2, n=60))  # restores a
            assert out["restored"]
            counters = registry.as_dict()
        # The restore itself must not rebuild: two creates, one
        # incremental update, zero extra builds.
        assert counters["build.calls"] == 2
        assert counters["build.incremental.calls"] == 1

    def test_idle_sweep_with_fake_clock(self):
        now = [0.0]
        cfg = _fast(max_resident=8, idle_evict_s=10.0)
        with SessionManager(cfg, clock=lambda: now[0]) as m:
            m.observe_frame("a", _frame(0))
            m.observe_frame("b", _frame(1))
            assert m.sweep() == []
            now[0] = 30.0
            assert sorted(m.sweep()) == ["a", "b"]
            assert m.stats()["n_resident"] == 0
            # Queries transparently restore.
            resp = m.query("a", _queries(5), k=2)
            assert resp.indices.shape == (16, 2)

    def test_sweep_converges_over_budget_residency(self):
        with SessionManager(_fast(max_resident=1)) as m:
            m.observe_frame("a", _frame(0))
            m.observe_frame("b", _frame(1))
            # Simulate the busy-at-last-event state: b holds in-flight
            # rows while a is restored, so both end up resident.
            m._sessions["b"].outstanding_rows = 1
            m._resident("a", 0.0)
            m._sessions["b"].outstanding_rows = 0
            assert m.stats()["n_resident"] == 2
            evicted = m.sweep()
            assert len(evicted) == 1
            assert m.stats()["n_resident"] == 1

    def test_cost_aware_policy_prefers_big_idle_sessions(self):
        lru = EVICTION.resolve("lru")
        cost = EVICTION.resolve("cost-aware")

        class S:
            def __init__(self, last_active, nbytes):
                self.last_active = last_active
                self.nbytes = nbytes

        small_old = S(last_active=0.0, nbytes=10)
        big_newer = S(last_active=50.0, nbytes=10_000)
        now = 100.0
        # LRU evicts the older session; cost-aware the bigger idle one.
        assert lru(small_old, now) < lru(big_newer, now)
        assert cost(big_newer, now) < cost(small_old, now)


class TestFairness:
    def _config(self) -> SessionConfig:
        # quota = 16 rows; a slow batch-formation deadline keeps
        # submitted rows outstanding long enough to observe admission.
        return SessionConfig(
            serve=ServeConfig(
                max_delay_s=0.2, max_batch_size=512, request_timeout_s=None
            ),
            max_outstanding_rows=64,
            tenant_share=0.25,
        )

    def test_hot_tenant_sheds_at_quota_without_starving_others(self):
        registry = MetricsRegistry()
        with use_registry(registry), SessionManager(self._config()) as m:
            for t in ("hot", "cold"):
                m.observe_frame(t, _frame(ord(t[0])))
            futures = []
            # Hot fills its 16-row quota (2 x 8), then gets shed even
            # though the global 64-row budget has plenty left.
            for i in range(2):
                futures.append(
                    m.submit("hot", _queries(i, n=8), k=2, mode="approx")
                )
            with pytest.raises(Overloaded):
                m.submit("hot", _queries(2, n=8), k=2, mode="approx")
            # The cold tenant is admitted at the same moment.
            futures.append(
                m.submit("cold", _queries(3, n=2), k=2, mode="approx")
            )
            responses = [f.result(timeout=10.0) for f in futures]

            hot_responses = responses[:2]
            cold_response = responses[2]
            # The hot tenant's own quota-sized queue was full at batch
            # formation, so its answers degraded first; the cold
            # tenant's nearly-empty session served at full budget.
            assert all(r.degraded for r in hot_responses)
            assert not cold_response.degraded

            counters = m.stats()["counters"]
            assert counters["serve.tenant.hot.shed"] == 1
            assert counters.get("serve.tenant.cold.shed", 0) == 0
            assert counters["serve.tenant.hot.degraded"] == 2
            assert counters.get("serve.tenant.cold.degraded", 0) == 0
            # The same per-tenant counters flow through the obs
            # registry (and thus the cross-process aggregation).
            metrics = registry.as_dict()
            assert metrics["serve.tenant.hot.shed"] == 1
            assert "serve.tenant.cold.shed" not in metrics

    def test_global_budget_sheds_any_tenant(self):
        cfg = SessionConfig(
            serve=ServeConfig(
                max_delay_s=0.2, max_batch_size=512, request_timeout_s=None
            ),
            max_outstanding_rows=8,
            tenant_share=1.0,
        )
        with SessionManager(cfg) as m:
            for t in ("a", "b"):
                m.observe_frame(t, _frame(ord(t[0])))
            f = m.submit("a", _queries(0, n=8), k=2)
            with pytest.raises(Overloaded):
                m.submit("b", _queries(1, n=1), k=2)
            f.result(timeout=10.0)
