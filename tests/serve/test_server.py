"""KnnServer end-to-end: identity, degradation, failure handling, handoff."""

import threading
import time

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import build_flat, knn_approx_batched, knn_exact_batched
from repro.obs import MetricsRegistry, use_registry
from repro.serve import (
    KnnServer,
    Overloaded,
    RequestTimeout,
    ServeConfig,
    ServerClosed,
)


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(99)
    ref = uniform_cloud(4_000, rng=rng).xyz
    queries = uniform_cloud(256, rng=rng).xyz
    return ref, queries


#: A config that stalls dispatch long enough to pile a whole test's
#: submissions into one batch, with a queue sized to hit level 3.
def _pressure_config(**overrides):
    defaults = dict(
        max_queue=100, max_delay_s=0.3, max_batch_size=4096, approx_budget=4
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


class TestExactIdentity:
    @pytest.mark.parametrize("n_shards", [1, 3])
    @pytest.mark.parametrize("sharding", ["round-robin", "spatial"])
    def test_bit_identical_to_engine(self, cloud, n_shards, sharding):
        ref, queries = cloud
        flat, _ = build_flat(ref)
        truth, _ = knn_exact_batched(flat, queries, 8)
        config = ServeConfig(n_shards=n_shards, sharding=sharding)
        with KnnServer(ref, config) as server:
            response = server.query(queries, 8)
        assert np.array_equal(response.indices, truth.indices)
        assert np.array_equal(response.distances, truth.distances)
        assert response.served == "exact"
        assert response.degrade_level == 0
        assert response.budget is None

    def test_off_origin_identity(self, cloud):
        ref, queries = cloud
        ref, queries = ref + 1e5, queries + 1e5
        flat, _ = build_flat(ref)
        truth, _ = knn_exact_batched(flat, queries, 8)
        with KnnServer(ref, ServeConfig(n_shards=4)) as server:
            response = server.query(queries, 8)
        assert np.array_equal(response.indices, truth.indices)
        assert np.array_equal(response.distances, truth.distances)

    def test_concurrent_submitters_all_identical(self, cloud):
        ref, queries = cloud
        flat, _ = build_flat(ref)
        truth, _ = knn_exact_batched(flat, queries, 4)
        with KnnServer(ref, ServeConfig(n_shards=2)) as server:
            futures = [
                server.submit(queries[i:i + 8], 4) for i in range(0, 256, 8)
            ]
            for i, future in zip(range(0, 256, 8), futures):
                response = future.result(timeout=10)
                assert np.array_equal(response.indices, truth.indices[i:i + 8])
                assert np.array_equal(
                    response.distances, truth.distances[i:i + 8]
                )

    def test_submit_validation(self, cloud):
        ref, _ = cloud
        with KnnServer(ref) as server:
            with pytest.raises(ValueError, match="mode"):
                server.submit(np.zeros((1, 3)), 4, mode="fuzzy")
            with pytest.raises(ValueError, match="k"):
                server.submit(np.zeros((1, 3)), 0)
            with pytest.raises(ValueError, match="shape"):
                server.submit(np.zeros((1, 4)), 4)


class TestOverload:
    def test_typed_shed_never_wrong_answers(self, cloud):
        ref, queries = cloud
        config = ServeConfig(max_queue=32, max_delay_s=0.5, max_batch_size=4096)
        with KnnServer(ref, config) as server:
            futures, shed = [], 0
            for i in range(80):
                try:
                    futures.append(server.submit(queries[i % 256][None, :], 4))
                except Overloaded as exc:
                    shed += 1
                    assert exc.queue_depth <= exc.max_queue
            assert shed > 0
            # Every admitted request still gets a correct, typed answer.
            for future in futures:
                response = future.result(timeout=10)
                assert response.indices.shape == (1, 4)


class TestDegradation:
    def test_approx_budget_tightens_to_zero(self, cloud):
        ref, queries = cloud
        with KnnServer(ref, _pressure_config()) as server:
            futures = [
                server.submit(queries[:10], 4, mode="approx")
                for _ in range(10)  # 100 rows: queue full, level 3
            ]
            responses = [f.result(timeout=10) for f in futures]
        assert all(r.degrade_level == 3 for r in responses)
        assert all(r.budget == 0 and r.served == "degraded" for r in responses)

    def test_exact_without_optin_never_degrades(self, cloud):
        ref, queries = cloud
        flat, _ = build_flat(ref)
        truth, _ = knn_exact_batched(flat, queries[:10], 4)
        with KnnServer(ref, _pressure_config()) as server:
            futures = [
                server.submit(queries[:10], 4, mode="exact") for _ in range(10)
            ]
            responses = [f.result(timeout=10) for f in futures]
        for r in responses:
            assert r.served == "exact"
            assert r.budget is None
            assert r.degrade_level == 3  # under pressure, yet still exact
            assert np.array_equal(r.indices, truth.indices)
            assert np.array_equal(r.distances, truth.distances)

    def test_exact_with_optin_degrades_with_label(self, cloud):
        ref, queries = cloud
        with KnnServer(ref, _pressure_config()) as server:
            futures = [
                server.submit(
                    queries[:10], 4, mode="exact", allow_degraded=True
                )
                for _ in range(10)
            ]
            responses = [f.result(timeout=10) for f in futures]
        assert all(r.served == "degraded" and r.budget == 0 for r in responses)

    def test_level3_approx_equals_engine_approx(self, cloud):
        ref, queries = cloud
        approx = knn_approx_batched(build_flat(ref)[0], queries[:10], 4)
        with KnnServer(ref, _pressure_config()) as server:
            futures = [
                server.submit(queries[:10], 4, mode="approx")
                for _ in range(10)
            ]
            responses = [f.result(timeout=10) for f in futures]
        # Single shard at budget 0 is the engine's single-bucket answer
        # (canonical merge order: distances must match exactly).
        assert np.array_equal(responses[0].distances, approx.distances)

    def test_partial_pressure_intermediate_level(self, cloud):
        ref, queries = cloud
        config = _pressure_config(approx_budget=8)
        with KnnServer(ref, config) as server:
            futures = [
                server.submit(queries[:10], 4, mode="approx")
                for _ in range(6)  # 60/100 rows: level 1
            ]
            responses = [f.result(timeout=10) for f in futures]
        assert {r.degrade_level for r in responses} == {1}
        assert {r.budget for r in responses} == {4}  # halved from 8


class TestTimeout:
    def test_queued_request_times_out_promptly(self, cloud):
        ref, queries = cloud
        config = ServeConfig(
            request_timeout_s=0.05, max_delay_s=5.0, max_batch_size=10**6
        )
        with KnnServer(ref, config) as server:
            future = server.submit(queries[:4], 4)
            start = time.perf_counter()
            with pytest.raises(RequestTimeout) as excinfo:
                future.result(timeout=5)
            assert time.perf_counter() - start < 1.0
            assert excinfo.value.timeout_s == 0.05


class TestFailureHandling:
    def test_retry_recovers_from_transient_shard_failure(self, cloud):
        ref, queries = cloud
        server = KnnServer(ref, ServeConfig(max_retries=1, max_delay_s=0.001))
        original = server._shards[0].tree
        state = {"failures_left": 1}

        class FlakyTree:
            def __getattr__(self, name):
                return getattr(original, name)

            def flat(self):
                if state["failures_left"] > 0:
                    state["failures_left"] -= 1
                    raise RuntimeError("injected")
                return original.flat()

        object.__setattr__(server._shards[0], "tree", FlakyTree())
        try:
            response = server.query(queries[:4], 4, timeout=10)
            assert response.indices.shape == (4, 4)
        finally:
            server.close()

    def test_exhausted_retries_surface_the_error(self, cloud):
        ref, queries = cloud
        server = KnnServer(ref, ServeConfig(max_retries=0, max_delay_s=0.001))

        class DeadTree:
            def flat(self):
                raise RuntimeError("shard is dead")

        object.__setattr__(server._shards[0], "tree", DeadTree())
        try:
            with pytest.raises(RuntimeError, match="shard is dead"):
                server.query(queries[:4], 4, timeout=10)
        finally:
            server.close()

    def test_hedge_beats_a_stalled_replica(self, cloud):
        ref, queries = cloud
        config = ServeConfig(
            n_shards=2, n_replicas=2, hedge_delay_s=0.05, max_delay_s=0.001
        )
        server = KnnServer(ref, config)
        original = server._shards[0].tree
        lock = threading.Lock()
        calls = {"n": 0}

        class SlowOnceTree:
            def __getattr__(self, name):
                return getattr(original, name)

            def flat(self):
                with lock:
                    calls["n"] += 1
                    first = calls["n"] == 1
                if first:
                    time.sleep(0.5)
                return original.flat()

        object.__setattr__(server._shards[0], "tree", SlowOnceTree())
        try:
            start = time.perf_counter()
            response = server.query(queries[:4], 4, timeout=10)
            elapsed = time.perf_counter() - start
            assert elapsed < 0.4  # hedge answered before the 0.5s stall
            assert response.indices.shape == (4, 4)
        finally:
            server.close()


class TestWarmHandoff:
    def test_swap_changes_answers_atomically(self, cloud):
        ref, queries = cloud
        rng = np.random.default_rng(7)
        new_ref = uniform_cloud(3_000, rng=rng).xyz
        truth_new, _ = knn_exact_batched(build_flat(new_ref)[0], queries, 4)
        with KnnServer(ref, ServeConfig(n_shards=2)) as server:
            before = server.query(queries, 4)
            info = server.update_reference(new_ref)
            after = server.query(queries, 4)
        assert before.generation == 0
        assert after.generation == 1
        assert info["generation"] == 1
        assert info["n_points"] == 3_000
        assert np.array_equal(after.indices, truth_new.indices)
        assert np.array_equal(after.distances, truth_new.distances)

    def test_async_rebuild_serves_during_build(self, cloud):
        ref, queries = cloud
        rng = np.random.default_rng(8)
        new_ref = uniform_cloud(3_000, rng=rng).xyz
        with KnnServer(ref, ServeConfig(n_shards=2)) as server:
            rebuild = server.update_reference_async(new_ref)
            # Queries keep flowing while the rebuild runs.
            during = server.query(queries, 4)
            assert during.indices.shape == (256, 4)
            info = rebuild.result(timeout=30)
            assert info["generation"] == 1
            assert server.query(queries, 4).generation == 1


class TestSnapshots:
    def test_roundtrip_bit_identical(self, cloud, tmp_path):
        ref, queries = cloud
        with KnnServer(ref, ServeConfig(n_shards=3)) as server:
            paths = server.save_snapshots(tmp_path)
            original = server.query(queries, 4)
        assert [p.name for p in paths] == [
            "shard-000.npz", "shard-001.npz", "shard-002.npz"
        ]
        with KnnServer.from_snapshots(tmp_path) as restored:
            assert restored.n_shards == 3
            answer = restored.query(queries, 4)
        assert np.array_equal(answer.indices, original.indices)
        assert np.array_equal(answer.distances, original.distances)

    def test_shard_count_mismatch_rejected(self, cloud, tmp_path):
        ref, _ = cloud
        with KnnServer(ref, ServeConfig(n_shards=2)) as server:
            server.save_snapshots(tmp_path)
        with pytest.raises(ValueError, match="n_shards"):
            KnnServer.from_snapshots(tmp_path, ServeConfig(n_shards=3))

    def test_missing_snapshots_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            KnnServer.from_snapshots(tmp_path)


class TestLifecycle:
    def test_close_fails_pending_and_rejects_new(self, cloud):
        ref, queries = cloud
        config = ServeConfig(
            max_delay_s=5.0, max_batch_size=10**6, request_timeout_s=None
        )
        server = KnnServer(ref, config)
        future = server.submit(queries[:4], 4)
        server.close()
        with pytest.raises(ServerClosed):
            future.result(timeout=1)
        with pytest.raises(ServerClosed):
            server.submit(queries[:4], 4)
        server.close()  # idempotent

    def test_stats_shape(self, cloud):
        ref, _ = cloud
        with KnnServer(ref, ServeConfig(n_shards=2)) as server:
            stats = server.stats()
        assert stats["plan"]["n_shards"] == 2
        assert stats["generation"] == 0
        assert stats["queue_rows"] == 0
        assert stats["degrade_level"] == 0


class TestMetrics:
    def test_serve_counters_and_latency_histogram(self, cloud):
        ref, queries = cloud
        with use_registry(MetricsRegistry()) as registry:
            with KnnServer(ref, ServeConfig(n_shards=2)) as server:
                for i in range(8):
                    server.query(queries[i:i + 4], 4)
                try:
                    # Force at least one shed for the counter.
                    tiny = ServeConfig(
                        max_queue=1, max_delay_s=0.5, max_batch_size=4096
                    )
                    with KnnServer(ref, tiny) as tiny_server:
                        tiny_server.submit(queries[:1], 4)
                        tiny_server.submit(queries[:1], 4)
                except Overloaded:
                    pass
            metrics = registry.as_dict()
        assert metrics["serve.requests"] == 9
        assert metrics["serve.completed"] == 8
        assert metrics["serve.shed"] == 1
        assert metrics["serve.batches"] >= 1
        assert metrics["serve.latency_ms.count"] == 8
        assert metrics["serve.latency_ms.p99"] > 0
