"""Load generator: closed-loop, open-loop, and report accounting."""

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.serve import KnnServer, ServeConfig, run_closed_loop, run_open_loop
from repro.serve.loadgen import LoadgenReport


@pytest.fixture(scope="module")
def served():
    rng = np.random.default_rng(5)
    ref = uniform_cloud(3_000, rng=rng).xyz
    queries = uniform_cloud(128, rng=rng).xyz
    return ref, queries


class TestClosedLoop:
    def test_every_row_offered_once_and_answered(self, served):
        ref, queries = served
        with KnnServer(ref) as server:
            report = run_closed_loop(
                server, queries, 4, concurrency=4, rows_per_request=8
            )
        assert report.mode == "closed-loop"
        assert report.offered == 16  # 128 rows / 8 per request
        assert report.completed == 16
        assert report.rows_completed == 128
        assert report.shed == report.timed_out == report.errors == 0
        assert report.throughput_qps > 0
        assert len(report.latencies_ms) == 16

    def test_concurrency_one_is_sequential(self, served):
        ref, queries = served
        with KnnServer(ref) as server:
            report = run_closed_loop(server, queries[:16], 4, concurrency=1)
        assert report.completed == 16

    def test_rejects_bad_concurrency(self, served):
        ref, queries = served
        with KnnServer(ref) as server:
            with pytest.raises(ValueError, match="concurrency"):
                run_closed_loop(server, queries, 4, concurrency=0)


class TestOpenLoop:
    def test_poisson_load_completes(self, served):
        ref, queries = served
        with KnnServer(ref) as server:
            report = run_open_loop(
                server, queries, 4, rate_qps=400.0, duration_s=0.5, seed=1
            )
        assert report.mode == "open-loop"
        assert report.offered > 0
        assert report.completed > 0
        assert report.errors == 0
        assert report.completed + report.shed + report.timed_out <= report.offered

    def test_overload_sheds_typed(self, served):
        ref, queries = served
        config = ServeConfig(max_queue=8, request_timeout_s=None)
        with KnnServer(ref, config) as server:
            report = run_open_loop(
                server, queries, 4, rate_qps=20_000.0, duration_s=0.3, seed=2
            )
        assert report.shed > 0
        assert report.errors == 0  # overload is shed, never errored

    def test_rejects_bad_args(self, served):
        ref, queries = served
        with KnnServer(ref) as server:
            with pytest.raises(ValueError, match="rate_qps"):
                run_open_loop(server, queries, 4, rate_qps=0, duration_s=1)
            with pytest.raises(ValueError, match="duration_s"):
                run_open_loop(server, queries, 4, rate_qps=10, duration_s=0)


class TestReport:
    def test_percentiles_and_dict(self):
        report = LoadgenReport(
            mode="closed-loop", duration_s=2.0, offered=4, completed=4,
            shed=0, timed_out=0, errors=0, degraded=1, rows_completed=8,
            latencies_ms=[1.0, 2.0, 3.0, 4.0],
        )
        assert report.throughput_qps == 4.0
        assert report.percentile(50) == 2.5
        payload = report.as_dict()
        assert payload["latency_ms"]["p50"] == 2.5
        assert payload["latency_ms"]["mean"] == 2.5
        assert payload["degraded"] == 1

    def test_empty_report(self):
        report = LoadgenReport(
            mode="open-loop", duration_s=0.0, offered=0, completed=0,
            shed=0, timed_out=0, errors=0, degraded=0, rows_completed=0,
        )
        assert report.throughput_qps == 0.0
        assert report.percentile(99) == 0.0
        assert report.as_dict()["latency_ms"]["mean"] == 0.0
