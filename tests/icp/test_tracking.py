"""Unit tests for frame-to-frame trajectory tracking."""

import numpy as np
import pytest

from repro.datasets import DriveConfig, generate_drive
from repro.icp import FrameTracker, IcpConfig


@pytest.fixture(scope="module")
def drive_frames():
    config = DriveConfig(
        n_frames=4, target_points=4_000, ego_speed=3.0, ego_yaw_rate=0.1
    )
    return list(generate_drive(config, seed=2)), config


class TestFrameTracker:
    def test_first_frame_is_identity(self, drive_frames):
        frames, _ = drive_frames
        tracker = FrameTracker(IcpConfig(knn="approx", trim_fraction=0.3))
        pose = tracker.update(frames[0].sensor_cloud())
        assert np.allclose(pose.translation, 0.0)
        assert tracker.state.n_frames == 1

    def test_trajectory_tracks_ego_motion(self, drive_frames):
        frames, config = drive_frames
        tracker = FrameTracker(IcpConfig(knn="approx", trim_fraction=0.3))
        state = tracker.track(f.sensor_cloud() for f in frames)
        assert state.n_frames == len(frames)

        estimated = state.positions()
        truth = np.array([f.ego_pose.translation for f in frames])
        # Accumulated drift stays small over a short drive.
        final_error = np.linalg.norm(estimated[-1] - truth[-1])
        assert final_error < 0.3

    def test_headings_track_yaw(self, drive_frames):
        frames, config = drive_frames
        tracker = FrameTracker(IcpConfig(knn="approx", trim_fraction=0.3))
        state = tracker.track(f.sensor_cloud() for f in frames)
        true_final_yaw = frames[-1].ego_pose.yaw()
        assert state.headings()[-1] == pytest.approx(true_final_yaw, abs=0.02)

    def test_registrations_recorded(self, drive_frames):
        frames, _ = drive_frames
        tracker = FrameTracker(IcpConfig(knn="approx", trim_fraction=0.3))
        tracker.track(f.sensor_cloud() for f in frames[:3])
        assert len(tracker.state.registrations) == 2
