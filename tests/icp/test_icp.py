"""Unit tests for the ICP registration loop."""

import numpy as np
import pytest

from repro.datasets.synthetic import perturbed_pair
from repro.geometry import RigidTransform
from repro.icp import IcpConfig, icp_register
from repro.index import make_index


@pytest.mark.parametrize("backend", ["approx", "exact", "bruteforce"])
class TestBackends:
    def test_recovers_transform(self, rng, backend):
        ref, qry, true = perturbed_pair(1_000, rng=rng, noise_std=0.0)
        result = icp_register(ref, qry, IcpConfig(knn=backend))
        assert result.converged
        angle_err = abs(result.transform.yaw() - true.yaw())
        trans_err = np.linalg.norm(result.transform.translation - true.translation)
        assert angle_err < 1e-3
        assert trans_err < 1e-2


class TestRegistryBackends:
    def test_non_kdtree_backend_by_name(self, rng):
        """Any registered index name works — here the voxel grid."""
        ref, qry, true = perturbed_pair(800, rng=rng, noise_std=0.0)
        result = icp_register(ref, qry, IcpConfig(knn="grid"))
        assert result.converged
        trans_err = np.linalg.norm(result.transform.translation - true.translation)
        assert trans_err < 1e-2

    def test_prebuilt_index_is_rebound(self, rng):
        ref, qry, true = perturbed_pair(800, rng=rng, noise_std=0.0)
        # Built over an unrelated cloud; icp_register must rebind it to qry.
        prebuilt = make_index("bruteforce", np.zeros((10, 3)) + 50.0)
        result = icp_register(ref, qry, IcpConfig(knn=prebuilt))
        assert result.converged
        trans_err = np.linalg.norm(result.transform.translation - true.translation)
        assert trans_err < 1e-2


class TestBehaviour:
    def test_noise_tolerated(self, rng):
        ref, qry, true = perturbed_pair(1_500, rng=rng, noise_std=0.02)
        result = icp_register(ref, qry, IcpConfig(knn="approx"))
        trans_err = np.linalg.norm(result.transform.translation - true.translation)
        assert trans_err < 0.05

    def test_rms_decreases(self, rng):
        ref, qry, _ = perturbed_pair(800, rng=rng, noise_std=0.0)
        result = icp_register(ref, qry)
        rms = result.per_iteration_rms
        assert rms[-1] <= rms[0]

    def test_identity_converges_immediately(self, rng):
        ref, _, _ = perturbed_pair(500, rng=rng)
        result = icp_register(ref, ref, IcpConfig(knn="bruteforce", trim_fraction=0.0))
        assert result.converged
        assert result.iterations <= 2
        # Bounded by the brute-force distance kernel's cancellation noise.
        assert result.rms_error < 1e-5

    def test_iteration_cap_respected(self, rng):
        # A transform too large for ICP's convergence basin.
        big = RigidTransform.from_yaw(2.5, translation=(80.0, 0.0, 0.0))
        ref, qry, _ = perturbed_pair(300, rng=rng, transform=big)
        config = IcpConfig(max_iterations=5)
        result = icp_register(ref, qry, config)
        assert result.iterations <= 5

    def test_approximate_backend_close_to_exact(self, rng):
        """The paper's premise: approximate kNN barely hurts ICP."""
        ref, qry, _ = perturbed_pair(1_500, rng=rng, noise_std=0.01)
        exact = icp_register(ref, qry, IcpConfig(knn="bruteforce"))
        approx = icp_register(ref, qry, IcpConfig(knn="approx"))
        t_gap = np.linalg.norm(
            exact.transform.translation - approx.transform.translation
        )
        assert t_gap < 0.05


class TestValidation:
    def test_rejects_tiny_clouds(self):
        with pytest.raises(ValueError):
            icp_register(np.zeros((2, 3)), np.zeros((5, 3)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IcpConfig(max_iterations=0)
        with pytest.raises(ValueError):
            IcpConfig(trim_fraction=1.0)

    def test_unknown_backend(self, rng):
        ref, qry, _ = perturbed_pair(100, rng=rng)
        with pytest.raises(ValueError, match="knn"):
            icp_register(ref, qry, IcpConfig(knn="warp-drive"))  # type: ignore[arg-type]
