"""Unit tests for rigid-transform estimation."""

import numpy as np
import pytest

from repro.geometry import RigidTransform
from repro.icp import estimate_rigid_transform


class TestExactRecovery:
    def test_recovers_known_transform(self, rng):
        true = RigidTransform.from_euler(0.1, -0.2, 0.5, translation=(1, 2, 3))
        src = rng.normal(size=(50, 3))
        est = estimate_rigid_transform(src, true.apply(src))
        assert est.is_close(true, atol=1e-9)

    def test_identity_for_same_points(self, rng):
        pts = rng.normal(size=(20, 3))
        est = estimate_rigid_transform(pts, pts)
        assert est.is_close(RigidTransform.identity(), atol=1e-9)

    def test_pure_translation(self, rng):
        pts = rng.normal(size=(10, 3))
        est = estimate_rigid_transform(pts, pts + [1.0, -2.0, 0.5])
        assert np.allclose(est.translation, [1.0, -2.0, 0.5])
        assert np.allclose(est.rotation, np.eye(3))

    def test_never_returns_reflection(self, rng):
        # Near-planar data tempts the SVD into a reflection; the
        # determinant correction must prevent it.
        src = rng.normal(size=(30, 3))
        src[:, 2] *= 1e-9
        tgt = rng.normal(size=(30, 3))
        tgt[:, 2] *= 1e-9
        est = estimate_rigid_transform(src, tgt)
        assert np.linalg.det(est.rotation) == pytest.approx(1.0)


class TestWeights:
    def test_weights_downweight_outliers(self, rng):
        true = RigidTransform.from_yaw(0.3, translation=(2, 0, 0))
        src = rng.normal(size=(40, 3))
        tgt = true.apply(src)
        tgt[0] += 100.0  # gross outlier
        weights = np.ones(40)
        weights[0] = 0.0
        est = estimate_rigid_transform(src, tgt, weights)
        assert est.is_close(true, atol=1e-9)

    def test_rejects_bad_weights(self, rng):
        pts = rng.normal(size=(5, 3))
        with pytest.raises(ValueError):
            estimate_rigid_transform(pts, pts, np.ones(4))
        with pytest.raises(ValueError):
            estimate_rigid_transform(pts, pts, -np.ones(5))


class TestValidation:
    def test_rejects_mismatched_shapes(self, rng):
        with pytest.raises(ValueError):
            estimate_rigid_transform(rng.normal(size=(5, 3)), rng.normal(size=(6, 3)))

    def test_rejects_too_few_points(self, rng):
        pts = rng.normal(size=(2, 3))
        with pytest.raises(ValueError):
            estimate_rigid_transform(pts, pts)
