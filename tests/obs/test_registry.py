"""Unit tests for the metrics registry: instrument semantics, phase
timing, the no-op default, and the activation protocol."""

import pytest

from repro import obs
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("engine.calls")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_float_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        c.inc(0.5)
        c.inc(0.25)
        assert c.value == pytest.approx(0.75)


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3.0)
        g.set(7.0)
        assert g.value == 7.0


class TestDistribution:
    def test_summary_statistics(self):
        reg = MetricsRegistry()
        d = reg.distribution("latency")
        for v in (1.0, 2.0, 3.0):
            d.observe(v)
        stats = d.as_dict()
        assert stats["count"] == 3
        assert stats["total"] == pytest.approx(6.0)
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["last"] == 3.0

    def test_empty_distribution_reports_only_count(self):
        reg = MetricsRegistry()
        assert reg.distribution("nothing").as_dict() == {"count": 0}


class TestPhaseTiming:
    def test_phase_observes_seconds_distribution(self):
        reg = MetricsRegistry()
        with reg.phase("build"):
            pass
        stats = reg.distribution("build.seconds").as_dict()
        assert stats["count"] == 1
        assert stats["total"] >= 0.0

    def test_nested_phases_record_independently(self):
        reg = MetricsRegistry(trace=True)
        with reg.phase("outer"):
            with reg.phase("inner"):
                pass
            with reg.phase("inner"):
                pass
        assert reg.distribution("outer.seconds").as_dict()["count"] == 1
        assert reg.distribution("inner.seconds").as_dict()["count"] == 2
        # The outer span encloses both inner spans in the timeline.
        events = {e["name"]: e for e in reg.events}
        outer, inner = events["outer"], events["inner"]
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_timer_does_not_emit_trace_events(self):
        reg = MetricsRegistry(trace=True)
        with reg.timer("quiet"):
            pass
        assert reg.distribution("quiet.seconds").as_dict()["count"] == 1
        assert reg.events == []

    def test_phase_records_even_when_body_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.phase("doomed"):
                raise RuntimeError("boom")
        assert reg.distribution("doomed.seconds").as_dict()["count"] == 1


class TestSample:
    def test_sample_feeds_distribution(self):
        reg = MetricsRegistry()
        reg.sample("rms", 0.5)
        reg.sample("rms", 0.25)
        assert reg.distribution("rms").as_dict()["count"] == 2

    def test_sample_emits_counter_event_when_tracing(self):
        reg = MetricsRegistry(trace=True)
        reg.sample("rms", 0.5)
        (event,) = reg.events
        assert event["ph"] == "C"
        assert event["args"] == {"value": 0.5}


class TestIngest:
    def test_mapping_becomes_gauges(self):
        reg = MetricsRegistry()
        reg.ingest({"accesses": 10, "bytes": 640.0}, prefix="dram")
        assert reg.gauge("dram.accesses").value == 10.0
        assert reg.gauge("dram.bytes").value == 640.0

    def test_non_numeric_values_are_skipped(self):
        reg = MetricsRegistry()
        reg.ingest({"name": "ddr4", "ok": True, "cycles": 5})
        flat = reg.as_dict()
        assert "cycles" in flat
        assert "name" not in flat and "ok" not in flat


class TestViews:
    def test_as_dict_is_flat_and_expands_distributions(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1.5)
        reg.distribution("c").observe(4.0)
        flat = reg.as_dict()
        assert flat["a"] == 2
        assert flat["b"] == 1.5
        assert flat["c.count"] == 1
        assert flat["c.mean"] == 4.0

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert {"counters", "gauges", "distributions", "histograms"} <= set(snap)
        assert snap["counters"] == {"a": 1}

    def test_snapshot_identifies_the_recording_process(self):
        import os

        reg = MetricsRegistry(process_label="quicknn-worker-0-0")
        snap = reg.snapshot()
        assert snap["pid"] == os.getpid()
        assert snap["process_label"] == "quicknn-worker-0-0"
        assert isinstance(snap["t0"], float)

    def test_reset_clears_everything(self):
        reg = MetricsRegistry(trace=True)
        reg.counter("a").inc()
        with reg.phase("p"):
            pass
        reg.reset()
        assert reg.as_dict() == {}
        assert reg.events == []


class TestNullRegistry:
    def test_every_operation_is_a_silent_noop(self):
        reg = NullRegistry()
        assert not reg.enabled
        reg.counter("x").inc(5)
        reg.gauge("y").set(1.0)
        reg.distribution("z").observe(2.0)
        with reg.phase("p"):
            with reg.timer("t"):
                reg.sample("s", 3.0)
        reg.ingest({"a": 1})
        reg.histogram("h").observe(4.0)
        assert reg.histogram("h").percentile(50) == 0.0
        assert reg.as_dict() == {}
        assert reg.events == []
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "distributions": {}, "histograms": {}
        }


class TestSnapshotMergeRoundTrip:
    """The cross-process protocol: snapshot() -> merge_from() fidelity."""

    def _populated(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("engine.queries").inc(42)
        reg.gauge("serve.queue_depth").set(7.0)
        for v in (1.0, 2.0, 8.0):
            reg.distribution("engine.frontier").observe(v)
        for v in range(100):
            reg.histogram("serve.latency_ms").observe(float(v))
        return reg

    def test_snapshot_survives_json(self):
        import json

        snap = self._populated().snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_into_empty_reproduces_everything(self):
        src = self._populated()
        dst = MetricsRegistry()
        dst.merge_from(src.snapshot())
        assert dst.counter("engine.queries").value == 42
        assert dst.gauge("serve.queue_depth").value == 7.0
        d = dst.distribution("engine.frontier").as_dict()
        assert d["count"] == 3 and d["min"] == 1.0 and d["max"] == 8.0
        assert d["total"] == pytest.approx(11.0)
        h = dst.histogram("serve.latency_ms")
        assert h.count == 100
        assert h.total == pytest.approx(sum(range(100)))
        # The reservoir travelled with the snapshot: percentiles match.
        src_h = src.histogram("serve.latency_ms")
        assert h.percentile(50) == pytest.approx(src_h.percentile(50))
        assert h.percentile(99) == pytest.approx(src_h.percentile(99))

    def test_merge_accumulates_counters_and_summaries(self):
        a, b = self._populated(), self._populated()
        dst = MetricsRegistry()
        dst.merge_from(a.snapshot())
        dst.merge_from(b.snapshot())
        assert dst.counter("engine.queries").value == 84
        assert dst.distribution("engine.frontier").count == 6
        assert dst.histogram("serve.latency_ms").count == 200

    def test_merge_with_prefix_renames_and_keeps_unprefixed_separate(self):
        src = self._populated()
        dst = MetricsRegistry()
        payload = src.snapshot()
        dst.merge_from(payload)
        dst.merge_from(payload, prefix="worker.0-0")
        flat = dst.as_dict()
        assert flat["engine.queries"] == 42
        assert flat["worker.0-0.engine.queries"] == 42

    def test_histogram_reservoir_merge_is_bounded_and_weighted(self):
        dst = MetricsRegistry()
        h = dst.histogram("lat")
        for v in range(5000):
            h.observe(float(v))
        src = MetricsRegistry()
        for v in range(5000):
            src.histogram("lat").observe(10_000.0 + v)
        dst.merge_from(src.snapshot())
        assert h.count == 10_000
        assert len(h._reservoir) <= h.RESERVOIR_SIZE
        # Both halves are represented: the median sits between them and
        # the tails reach into each side's range.
        assert h.percentile(5) < 5_000
        assert h.percentile(95) > 10_000

    def test_empty_metric_entries_are_noops(self):
        dst = MetricsRegistry()
        dst.distribution("d").merge({"count": 0})
        dst.histogram("h").merge({"count": 0})
        assert dst.as_dict() == {"d.count": 0, "h.count": 0}


class TestFlushDelta:
    def test_first_flush_ships_everything_second_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.distribution("d").observe(1.0)
        first = reg.flush_delta()
        assert first["counters"] == {"c": 5}
        assert first["distributions"]["d"]["count"] == 1
        second = reg.flush_delta()
        assert second["counters"] == {}
        assert second["distributions"] == {}
        reg.counter("c").inc(2)
        third = reg.flush_delta()
        assert third["counters"] == {"c": 2}

    def test_gauge_delta_only_on_change(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3.0)
        assert reg.flush_delta()["gauges"] == {"g": 3.0}
        assert reg.flush_delta()["gauges"] == {}
        reg.gauge("g").set(3.0)   # same value -> still no delta
        assert reg.flush_delta()["gauges"] == {}
        reg.gauge("g").set(4.0)
        assert reg.flush_delta()["gauges"] == {"g": 4.0}

    def test_stream_of_deltas_converges_to_source_totals(self):
        src = MetricsRegistry()
        dst = MetricsRegistry()
        total = 0.0
        for round_no in range(5):
            for v in range(20):
                value = float(round_no * 20 + v)
                src.histogram("lat").observe(value)
                total += value
            src.counter("n").inc(20)
            dst.merge_from(src.flush_delta())
        assert dst.counter("n").value == 100
        h = dst.histogram("lat")
        assert h.count == 100
        assert h.total == pytest.approx(total)
        assert h.min == 0.0 and h.max == 99.0

    def test_histogram_delta_counts_beyond_reservoir(self):
        src = MetricsRegistry()
        n = src.histogram("lat").RESERVOIR_SIZE + 500
        for v in range(n):
            src.histogram("lat").observe(float(v))
        delta = src.flush_delta()["histograms"]["lat"]
        assert delta["count"] == n                     # exact, not sampled
        assert len(delta["samples"]) <= src.histogram("lat").RESERVOIR_SIZE
        dst = MetricsRegistry()
        dst.merge_from({"histograms": {"lat": delta}})
        assert dst.histogram("lat").count == n

    def test_trace_events_flush_once(self):
        reg = MetricsRegistry(trace=True)
        with reg.phase("p"):
            pass
        assert len(reg.flush_delta()["events"]) == 1
        assert reg.flush_delta()["events"] == []

    def test_merged_events_are_rebased_onto_local_clock(self):
        src = MetricsRegistry(trace=True)
        with src.phase("work"):
            pass
        dst = MetricsRegistry(trace=True)
        payload = src.snapshot()
        # Simulate a worker whose clock origin predates ours by 2s.
        payload["t0"] = dst._t0 - 2.0
        dst.merge_from(payload)
        (event,) = dst.events
        assert event["name"] == "work"
        assert event["ts"] <= -1.9e6   # shifted ~2s earlier, in µs

    def test_merge_records_foreign_process_labels(self):
        src = MetricsRegistry(process_label="quicknn-worker-1-0")
        src.counter("c").inc()
        payload = src.snapshot()
        payload["pid"] = 99999           # pretend it came from another pid
        dst = MetricsRegistry()
        dst.merge_from(payload)
        assert dst.process_labels == {99999: "quicknn-worker-1-0"}

    def test_null_registry_protocol_is_inert(self):
        reg = NullRegistry()
        delta = reg.flush_delta()
        assert delta["counters"] == {}
        reg.merge_from({"counters": {"c": 5}})
        assert reg.as_dict() == {}


class TestObserveThreadSafety:
    """Hammer test: concurrent observers never tear a summary."""

    N_THREADS = 8
    N_OBS = 2500

    def _hammer(self, observe):
        import threading

        start = threading.Barrier(self.N_THREADS)

        def run():
            start.wait()
            for v in range(self.N_OBS):
                observe(float(v % 100) + 1.0)

        threads = [threading.Thread(target=run) for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_distribution_observe_is_atomic(self):
        reg = MetricsRegistry()
        d = reg.distribution("hammered")
        self._hammer(d.observe)
        expected_total = self.N_THREADS * sum(
            float(v % 100) + 1.0 for v in range(self.N_OBS)
        )
        assert d.count == self.N_THREADS * self.N_OBS
        assert d.total == pytest.approx(expected_total)
        assert d.min == 1.0 and d.max == 100.0

    def test_histogram_observe_is_atomic_and_reservoir_bounded(self):
        reg = MetricsRegistry()
        h = reg.histogram("hammered")
        self._hammer(h.observe)
        assert h.count == self.N_THREADS * self.N_OBS
        assert len(h._reservoir) == h.RESERVOIR_SIZE
        assert 1.0 <= h.percentile(50) <= 100.0


class TestActivation:
    def test_default_is_disabled(self):
        assert isinstance(get_registry(), NullRegistry)
        assert not get_registry().enabled

    def test_enable_then_disable_roundtrip(self):
        reg = enable()
        try:
            assert get_registry() is reg
            assert reg.enabled
        finally:
            disable()
        assert isinstance(get_registry(), NullRegistry)

    def test_set_registry_returns_previous(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)

    def test_use_registry_restores_on_exit(self):
        mine = MetricsRegistry()
        with use_registry(mine) as reg:
            assert reg is mine
            assert get_registry() is mine
        assert isinstance(get_registry(), NullRegistry)

    def test_module_facade_exports_match(self):
        for name in ("enable", "disable", "get_registry", "MetricsRegistry"):
            assert hasattr(obs, name)
