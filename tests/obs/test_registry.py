"""Unit tests for the metrics registry: instrument semantics, phase
timing, the no-op default, and the activation protocol."""

import pytest

from repro import obs
from repro.obs import (
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("engine.calls")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_float_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("bytes")
        c.inc(0.5)
        c.inc(0.25)
        assert c.value == pytest.approx(0.75)


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(3.0)
        g.set(7.0)
        assert g.value == 7.0


class TestDistribution:
    def test_summary_statistics(self):
        reg = MetricsRegistry()
        d = reg.distribution("latency")
        for v in (1.0, 2.0, 3.0):
            d.observe(v)
        stats = d.as_dict()
        assert stats["count"] == 3
        assert stats["total"] == pytest.approx(6.0)
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0
        assert stats["last"] == 3.0

    def test_empty_distribution_reports_only_count(self):
        reg = MetricsRegistry()
        assert reg.distribution("nothing").as_dict() == {"count": 0}


class TestPhaseTiming:
    def test_phase_observes_seconds_distribution(self):
        reg = MetricsRegistry()
        with reg.phase("build"):
            pass
        stats = reg.distribution("build.seconds").as_dict()
        assert stats["count"] == 1
        assert stats["total"] >= 0.0

    def test_nested_phases_record_independently(self):
        reg = MetricsRegistry(trace=True)
        with reg.phase("outer"):
            with reg.phase("inner"):
                pass
            with reg.phase("inner"):
                pass
        assert reg.distribution("outer.seconds").as_dict()["count"] == 1
        assert reg.distribution("inner.seconds").as_dict()["count"] == 2
        # The outer span encloses both inner spans in the timeline.
        events = {e["name"]: e for e in reg.events}
        outer, inner = events["outer"], events["inner"]
        assert outer["ts"] <= inner["ts"]
        assert outer["ts"] + outer["dur"] >= inner["ts"] + inner["dur"]

    def test_timer_does_not_emit_trace_events(self):
        reg = MetricsRegistry(trace=True)
        with reg.timer("quiet"):
            pass
        assert reg.distribution("quiet.seconds").as_dict()["count"] == 1
        assert reg.events == []

    def test_phase_records_even_when_body_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.phase("doomed"):
                raise RuntimeError("boom")
        assert reg.distribution("doomed.seconds").as_dict()["count"] == 1


class TestSample:
    def test_sample_feeds_distribution(self):
        reg = MetricsRegistry()
        reg.sample("rms", 0.5)
        reg.sample("rms", 0.25)
        assert reg.distribution("rms").as_dict()["count"] == 2

    def test_sample_emits_counter_event_when_tracing(self):
        reg = MetricsRegistry(trace=True)
        reg.sample("rms", 0.5)
        (event,) = reg.events
        assert event["ph"] == "C"
        assert event["args"] == {"value": 0.5}


class TestIngest:
    def test_mapping_becomes_gauges(self):
        reg = MetricsRegistry()
        reg.ingest({"accesses": 10, "bytes": 640.0}, prefix="dram")
        assert reg.gauge("dram.accesses").value == 10.0
        assert reg.gauge("dram.bytes").value == 640.0

    def test_non_numeric_values_are_skipped(self):
        reg = MetricsRegistry()
        reg.ingest({"name": "ddr4", "ok": True, "cycles": 5})
        flat = reg.as_dict()
        assert "cycles" in flat
        assert "name" not in flat and "ok" not in flat


class TestViews:
    def test_as_dict_is_flat_and_expands_distributions(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1.5)
        reg.distribution("c").observe(4.0)
        flat = reg.as_dict()
        assert flat["a"] == 2
        assert flat["b"] == 1.5
        assert flat["c.count"] == 1
        assert flat["c.mean"] == 4.0

    def test_snapshot_groups_by_kind(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert set(snap) == {"counters", "gauges", "distributions", "histograms"}
        assert snap["counters"] == {"a": 1}

    def test_reset_clears_everything(self):
        reg = MetricsRegistry(trace=True)
        reg.counter("a").inc()
        with reg.phase("p"):
            pass
        reg.reset()
        assert reg.as_dict() == {}
        assert reg.events == []


class TestNullRegistry:
    def test_every_operation_is_a_silent_noop(self):
        reg = NullRegistry()
        assert not reg.enabled
        reg.counter("x").inc(5)
        reg.gauge("y").set(1.0)
        reg.distribution("z").observe(2.0)
        with reg.phase("p"):
            with reg.timer("t"):
                reg.sample("s", 3.0)
        reg.ingest({"a": 1})
        reg.histogram("h").observe(4.0)
        assert reg.histogram("h").percentile(50) == 0.0
        assert reg.as_dict() == {}
        assert reg.events == []
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "distributions": {}, "histograms": {}
        }


class TestActivation:
    def test_default_is_disabled(self):
        assert isinstance(get_registry(), NullRegistry)
        assert not get_registry().enabled

    def test_enable_then_disable_roundtrip(self):
        reg = enable()
        try:
            assert get_registry() is reg
            assert reg.enabled
        finally:
            disable()
        assert isinstance(get_registry(), NullRegistry)

    def test_set_registry_returns_previous(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)

    def test_use_registry_restores_on_exit(self):
        mine = MetricsRegistry()
        with use_registry(mine) as reg:
            assert reg is mine
            assert get_registry() is mine
        assert isinstance(get_registry(), NullRegistry)

    def test_module_facade_exports_match(self):
        for name in ("enable", "disable", "get_registry", "MetricsRegistry"):
            assert hasattr(obs, name)
