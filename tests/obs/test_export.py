"""Exporter tests: Chrome trace validity, profile payload shape, and
the Prometheus text exposition golden format."""

import json

from repro.obs import (
    MetricsRegistry,
    chrome_trace,
    profile_payload,
    prometheus_text,
    write_chrome_trace,
    write_profile,
    write_prometheus,
)


class TestChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        reg = MetricsRegistry(trace=True)
        with reg.phase("engine.query"):
            reg.sample("engine.frontier", 12.0)
        path = tmp_path / "out.trace.json"
        write_chrome_trace(path, reg)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_events_carry_required_keys(self):
        reg = MetricsRegistry(trace=True)
        with reg.phase("engine.query"):
            pass
        doc = chrome_trace(reg)
        phases = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        (event,) = phases
        assert event["name"] == "engine.query"
        assert event["cat"] == "engine"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert {"pid", "tid"} <= set(event)

    def test_metadata_event_names_the_process(self):
        import os

        doc = chrome_trace(MetricsRegistry(trace=True))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"
        assert meta[0]["pid"] == os.getpid()

    def test_merged_registry_emits_metadata_per_pid(self):
        """A registry that absorbed worker deltas labels every pid."""
        dst = MetricsRegistry(trace=True)
        src = MetricsRegistry(trace=True, process_label="quicknn-worker-0-0")
        with src.phase("serve.worker.search"):
            pass
        payload = src.snapshot()
        payload["pid"] = 424242                    # a foreign worker pid
        for event in payload["events"]:
            event["pid"] = 424242
        dst.merge_from(payload)
        doc = chrome_trace(dst)
        meta = {e["pid"]: e["args"]["name"]
                for e in doc["traceEvents"] if e["ph"] == "M"}
        assert meta[424242] == "quicknn-worker-0-0"
        assert len(meta) == 2                      # us + the worker
        span_pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert 424242 in span_pids

    def test_span_args_survive_export(self):
        reg = MetricsRegistry(trace=True)
        with reg.phase("serve.dispatch", args={"request_ids": [3, 4]}):
            pass
        (event,) = [e for e in chrome_trace(reg)["traceEvents"]
                    if e["ph"] == "X"]
        assert event["args"]["request_ids"] == [3, 4]

    def test_trace_disabled_registry_exports_no_spans(self):
        reg = MetricsRegistry()  # trace defaults off
        with reg.phase("p"):
            pass
        doc = chrome_trace(reg)
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []


class TestProfilePayload:
    def test_sections_plus_metrics(self):
        reg = MetricsRegistry()
        reg.counter("engine.calls").inc(3)
        payload = profile_payload(reg, command="run fig3", total_seconds=1.5)
        assert payload["command"] == "run fig3"
        assert payload["total_seconds"] == 1.5
        assert payload["metrics"]["engine.calls"] == 3

    def test_write_profile_is_valid_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.distribution("d").observe(2.0)
        path = tmp_path / "prof.json"
        write_profile(path, reg, experiments=[{"exp_id": "fig3"}])
        doc = json.loads(path.read_text())
        assert doc["experiments"] == [{"exp_id": "fig3"}]
        assert doc["metrics"]["d.count"] == 1


class TestPrometheusText:
    def test_golden_exposition(self):
        """Byte-exact format: TYPE lines, _total counters, summaries."""
        reg = MetricsRegistry()
        reg.counter("engine.exact.queries").inc(42)
        reg.gauge("serve.queue_depth").set(7.0)
        reg.distribution("engine.frontier").observe(2.0)
        reg.distribution("engine.frontier").observe(4.0)
        assert prometheus_text(reg) == (
            "# TYPE engine_exact_queries_total counter\n"
            "engine_exact_queries_total 42\n"
            "# TYPE serve_queue_depth gauge\n"
            "serve_queue_depth 7.0\n"
            "# TYPE engine_frontier summary\n"
            "engine_frontier_count 2\n"
            "engine_frontier_sum 6.0\n"
        )

    def test_histogram_exports_quantiles(self):
        reg = MetricsRegistry()
        for v in range(1, 101):
            reg.histogram("serve.latency_ms").observe(float(v))
        text = prometheus_text(reg)
        assert "# TYPE serve_latency_ms summary" in text
        assert 'serve_latency_ms{quantile="0.5"}' in text
        assert 'serve_latency_ms{quantile="0.99"}' in text
        assert "serve_latency_ms_count 100" in text
        assert "serve_latency_ms_sum 5050.0" in text

    def test_empty_registry_exports_empty_document(self):
        assert prometheus_text(MetricsRegistry()) == "\n"

    def test_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.counter("worker.0-0.engine.queries").inc(1)
        text = prometheus_text(reg)
        assert "worker_0_0_engine_queries_total 1" in text

    def test_write_prometheus_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        path = tmp_path / "metrics.prom"
        write_prometheus(path, reg)
        assert path.read_text() == prometheus_text(reg)
