"""Exporter tests: Chrome trace validity and profile payload shape."""

import json

from repro.obs import (
    MetricsRegistry,
    chrome_trace,
    profile_payload,
    write_chrome_trace,
    write_profile,
)


class TestChromeTrace:
    def test_round_trips_through_json(self, tmp_path):
        reg = MetricsRegistry(trace=True)
        with reg.phase("engine.query"):
            reg.sample("engine.frontier", 12.0)
        path = tmp_path / "out.trace.json"
        write_chrome_trace(path, reg)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list)

    def test_events_carry_required_keys(self):
        reg = MetricsRegistry(trace=True)
        with reg.phase("engine.query"):
            pass
        doc = chrome_trace(reg)
        phases = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        (event,) = phases
        assert event["name"] == "engine.query"
        assert event["cat"] == "engine"
        assert event["ts"] >= 0.0
        assert event["dur"] >= 0.0
        assert {"pid", "tid"} <= set(event)

    def test_metadata_event_names_the_process(self):
        doc = chrome_trace(MetricsRegistry(trace=True))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "process_name"

    def test_trace_disabled_registry_exports_no_spans(self):
        reg = MetricsRegistry()  # trace defaults off
        with reg.phase("p"):
            pass
        doc = chrome_trace(reg)
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []


class TestProfilePayload:
    def test_sections_plus_metrics(self):
        reg = MetricsRegistry()
        reg.counter("engine.calls").inc(3)
        payload = profile_payload(reg, command="run fig3", total_seconds=1.5)
        assert payload["command"] == "run fig3"
        assert payload["total_seconds"] == 1.5
        assert payload["metrics"]["engine.calls"] == 3

    def test_write_profile_is_valid_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.distribution("d").observe(2.0)
        path = tmp_path / "prof.json"
        write_profile(path, reg, experiments=[{"exp_id": "fig3"}])
        doc = json.loads(path.read_text())
        assert doc["experiments"] == [{"exp_id": "fig3"}]
        assert doc["metrics"]["d.count"] == 1
