"""Instrumented components emit their documented metric names.

These are regression tests for the names in docs/observability.md —
renaming a metric must be a deliberate, test-visible act.
"""

import numpy as np
import pytest

from repro.datasets import lidar_frame_pair
from repro.kdtree import KdTreeConfig, build_tree
from repro.kdtree.engine import knn_approx_batched, knn_exact_batched
from repro.obs import MetricsRegistry, use_registry


@pytest.fixture(scope="module")
def workload():
    ref, qry = lidar_frame_pair(2_000, seed=7)
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=64))
    return tree, qry.xyz[:200]


class TestEngineMetrics:
    def test_approx_path_emits_documented_names(self, workload):
        tree, queries = workload
        with use_registry(MetricsRegistry()) as reg:
            knn_approx_batched(tree.flat(), queries, 4)
        flat = reg.as_dict()
        assert flat["engine.approx.calls"] == 1
        assert flat["engine.approx.queries"] == queries.shape[0]
        assert flat["engine.leaf_groups"] > 0
        assert flat["engine.approx.seconds.count"] == 1

    def test_exact_path_emits_documented_names(self, workload):
        tree, queries = workload
        with use_registry(MetricsRegistry()) as reg:
            knn_exact_batched(tree, queries, 4)
        flat = reg.as_dict()
        assert flat["engine.exact.calls"] == 1
        assert flat["engine.exact.queries"] == queries.shape[0]
        assert flat["engine.exact.bucket_scans"] > 0
        assert flat["engine.exact.frontier.count"] >= 1
        assert flat["engine.exact.seconds.count"] == 1

    def test_disabled_registry_observes_nothing(self, workload):
        tree, queries = workload
        # The default registry is the shared no-op: queries leave no trace.
        result, _ = knn_exact_batched(tree, queries, 4)
        assert result.n_queries == queries.shape[0]


class TestBuildMetrics:
    def test_builders_emit_documented_names(self):
        ref, _ = lidar_frame_pair(2_000, seed=9)
        with use_registry(MetricsRegistry()) as reg:
            build_tree(ref, KdTreeConfig(bucket_capacity=64, builder="vectorized"))
            build_tree(ref, KdTreeConfig(bucket_capacity=64, builder="legacy"))
        flat = reg.as_dict()
        assert flat["build.calls"] == 2
        assert flat["build.calls.vectorized"] == 1
        assert flat["build.calls.legacy"] == 1
        assert flat["build.points"] == 2 * ref.xyz.shape[0]
        assert flat["build.sorted_elements"] > 0
        assert flat["build.placement_traversals"] == 2 * ref.xyz.shape[0]
        assert flat["build.sample_size.count"] == 2
        assert flat["build.vectorized.seconds.count"] == 1
        assert flat["build.legacy.seconds.count"] == 1

    def test_incremental_update_emits_documented_names(self):
        from repro.kdtree import update_tree

        ref, qry = lidar_frame_pair(2_000, seed=10)
        config = KdTreeConfig(bucket_capacity=64)
        tree, _ = build_tree(ref, config)
        with use_registry(MetricsRegistry()) as reg:
            update_tree(tree, qry.xyz[:300], config)
        flat = reg.as_dict()
        assert flat["build.incremental.calls"] == 1
        assert flat["build.incremental.points"] == 300
        assert flat["build.incremental.seconds.count"] == 1


class TestSimMetrics:
    def test_dram_model_counts_accesses(self):
        from repro.sim import DramModel

        with use_registry(MetricsRegistry()) as reg:
            dram = DramModel()
            dram.access("Rd1", 0, 256, write=False)
            dram.access("Wr", 4096, 64, write=True)
        flat = reg.as_dict()
        assert flat["dram.accesses"] == dram.stats.accesses
        assert flat["dram.bytes"] == dram.stats.bytes
        assert flat["dram.data_cycles"] > 0

    def test_dram_built_before_enable_is_unobserved(self):
        from repro.sim import DramModel

        dram = DramModel()  # constructed with obs off -> handles not cached
        with use_registry(MetricsRegistry()) as reg:
            dram.access("Rd1", 0, 64, write=False)
        assert reg.as_dict() == {}

    def test_gather_caches_use_their_labels(self):
        from repro.arch.gather import ReadGatherCache, WriteGatherCache

        with use_registry(MetricsRegistry()) as reg:
            wg = WriteGatherCache(n_slots=1, slot_capacity=2)
            wg.insert(0)
            wg.insert(0)  # fills the slot -> natural flush
            wg.drain()
            rg = ReadGatherCache(n_slots=2, slot_capacity=4)
            rg.insert(1)
            rg.drain()
        flat = reg.as_dict()
        assert flat["cache.write_gather.inserts"] == 2
        assert flat["cache.write_gather.flushes"] >= 1
        assert flat["cache.read_gather.inserts"] == 1
        assert flat["cache.read_gather.flushed_items"] == 1

    def test_traversal_reports_aggregates(self):
        from repro.arch import BankedTreeCache, TreeCacheConfig, simulate_traversal
        from repro.datasets.synthetic import uniform_cloud

        rng = np.random.default_rng(9)
        cloud = uniform_cloud(500, rng=rng)
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=32))
        cache = BankedTreeCache(tree, TreeCacheConfig(replicated_levels=2), rng=rng)
        with use_registry(MetricsRegistry()) as reg:
            report = simulate_traversal(tree, cloud.xyz, cache, n_workers=2)
        flat = reg.as_dict()
        assert flat["arch.traversal.runs"] == 1
        assert flat["arch.traversal.points"] == 500
        assert flat["arch.traversal.cycles"] == report.cycles


class TestIcpMetrics:
    def test_registration_emits_convergence_trace(self):
        from repro.datasets.synthetic import perturbed_pair
        from repro.icp import IcpConfig, icp_register

        rng = np.random.default_rng(0)
        ref, qry, _ = perturbed_pair(500, rng=rng, noise_std=0.0)
        with use_registry(MetricsRegistry()) as reg:
            result = icp_register(ref, qry, IcpConfig(knn="bruteforce"))
        flat = reg.as_dict()
        assert flat["icp.registrations"] == 1
        assert flat["icp.iterations"] == result.iterations
        assert flat["icp.rms.count"] == result.iterations
        assert flat["icp.rms.last"] == pytest.approx(result.rms_error)
        assert flat["icp.converged"] == 1.0
        assert flat["icp.correspondences"] > 0
        assert flat["icp.register.seconds.count"] == 1


class TestDeprecatedAccessors:
    """Every renamed accessor still works but warns."""

    def test_dram_busy_cycles(self):
        from repro.sim import DramModel

        dram = DramModel()
        dram.access("Rd1", 0, 64, write=False)
        with pytest.deprecated_call():
            busy = dram.busy_cycles
        assert busy == dram.stats.busy_cycles

    def test_gather_mean_fill_at_flush(self):
        from repro.arch.gather import WriteGatherCache

        cache = WriteGatherCache(n_slots=1, slot_capacity=2)
        cache.insert(0)
        cache.drain()
        with pytest.deprecated_call():
            legacy = cache.stats.mean_fill_at_flush
        assert legacy == cache.stats.mean_fill

    def test_build_trace_total_sorted_elements(self):
        ref, _ = lidar_frame_pair(500, seed=2)
        _, trace = build_tree(ref, KdTreeConfig(bucket_capacity=64))
        with pytest.deprecated_call():
            legacy = trace.total_sorted_elements
        assert legacy == trace.sorted_elements

    def test_update_trace_total_sorted_elements(self):
        from repro.kdtree import update_tree

        ref, qry = lidar_frame_pair(500, seed=2)
        tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=64))
        _, trace = update_tree(tree, qry.xyz[:50])
        with pytest.deprecated_call():
            legacy = trace.total_sorted_elements
        assert legacy == trace.sorted_elements


class TestAsDictConvention:
    """Each stats object exposes the flat as_dict() view."""

    def test_dram_stats(self):
        from repro.sim import DramModel

        dram = DramModel()
        dram.access("Rd1", 0, 64, write=False)
        flat = dram.stats.as_dict()
        assert flat["accesses"] == 1
        assert any(key.startswith("streams.Rd1.") for key in flat)
        assert all(np.isscalar(v) for v in flat.values())

    def test_build_trace(self):
        ref, _ = lidar_frame_pair(500, seed=2)
        _, trace = build_tree(ref, KdTreeConfig(bucket_capacity=64))
        flat = trace.as_dict()
        assert flat["sorted_elements"] == trace.sorted_elements
        assert flat["n_sorts"] == len(trace.sort_sizes)

    def test_tree_stats(self):
        from repro.kdtree.stats import tree_stats

        ref, _ = lidar_frame_pair(500, seed=2)
        tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=64))
        flat = tree_stats(tree).as_dict()
        assert flat["n_points"] == 500
        assert "imbalance" in flat
