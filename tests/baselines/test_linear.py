"""Unit tests for the brute-force kNN reference."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.baselines import knn_bruteforce
from repro.datasets.synthetic import uniform_cloud
from repro.kdtree.search import PAD_INDEX


class TestCorrectness:
    def test_matches_scipy(self, rng):
        ref = uniform_cloud(500, rng=rng)
        qry = uniform_cloud(50, rng=rng)
        ours = knn_bruteforce(ref, qry, 7)
        d, i = cKDTree(ref.xyz).query(qry.xyz, k=7)
        assert np.allclose(ours.distances, d, atol=1e-9)
        assert np.array_equal(ours.indices, i)

    def test_chunking_invariant(self, rng):
        ref = uniform_cloud(300, rng=rng)
        qry = uniform_cloud(97, rng=rng)
        small = knn_bruteforce(ref, qry, 4, chunk_size=8)
        big = knn_bruteforce(ref, qry, 4, chunk_size=10_000)
        assert np.array_equal(small.indices, big.indices)

    def test_k_exceeds_reference(self, rng):
        ref = uniform_cloud(3, rng=rng)
        qry = uniform_cloud(5, rng=rng)
        result = knn_bruteforce(ref, qry, 6)
        assert (result.indices[:, 3:] == PAD_INDEX).all()
        assert np.isinf(result.distances[:, 3:]).all()
        assert (result.indices[:, :3] != PAD_INDEX).all()

    def test_single_query(self, rng):
        ref = uniform_cloud(50, rng=rng)
        result = knn_bruteforce(ref, ref.xyz[0], 1)
        assert result.indices[0, 0] == 0
        assert result.distances[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_ties_produce_valid_ordering(self):
        ref = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [-1.0, 0.0, 0.0]])
        result = knn_bruteforce(ref, np.array([0.0, 0.0, 0.0]), 3)
        assert result.indices[0, 0] == 0
        assert set(result.indices[0, 1:].tolist()) == {1, 2}


class TestValidation:
    def test_rejects_empty_reference(self, rng):
        with pytest.raises(ValueError, match="empty"):
            knn_bruteforce(np.empty((0, 3)), uniform_cloud(5, rng=rng), 1)

    def test_rejects_bad_k(self, rng):
        cloud = uniform_cloud(5, rng=rng)
        with pytest.raises(ValueError):
            knn_bruteforce(cloud, cloud, 0)

    def test_rejects_bad_chunk(self, rng):
        cloud = uniform_cloud(5, rng=rng)
        with pytest.raises(ValueError):
            knn_bruteforce(cloud, cloud, 1, chunk_size=0)

    def test_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            knn_bruteforce(np.zeros((5, 2)), np.zeros((5, 3)), 1)
