"""Unit tests for the uniform-grid kNN index."""

import numpy as np
import pytest

from repro.baselines import GridConfig, GridIndex, knn_bruteforce
from repro.datasets.synthetic import gaussian_clusters, uniform_cloud
from repro.kdtree.search import PAD_INDEX


class TestExactness:
    def test_matches_bruteforce_uniform(self, rng):
        ref = uniform_cloud(800, rng=rng)
        qry = uniform_cloud(60, rng=rng)
        result = GridIndex(ref, GridConfig(cell_size=10.0)).query(qry, 5)
        truth = knn_bruteforce(ref, qry, 5)
        assert np.allclose(result.distances, truth.distances, atol=1e-9)

    def test_matches_bruteforce_clustered(self, rng):
        """Non-uniform density stresses the ring expansion."""
        ref = gaussian_clusters(1_000, rng=rng)
        qry = uniform_cloud(40, rng=rng)  # queries often far from data
        result = GridIndex(ref, GridConfig(cell_size=3.0)).query(qry, 4)
        truth = knn_bruteforce(ref, qry, 4)
        assert np.allclose(result.distances, truth.distances, atol=1e-9)

    def test_cell_size_does_not_change_answers(self, rng):
        ref = uniform_cloud(500, rng=rng)
        qry = uniform_cloud(30, rng=rng)
        small = GridIndex(ref, GridConfig(cell_size=1.0)).query(qry, 3)
        large = GridIndex(ref, GridConfig(cell_size=25.0)).query(qry, 3)
        assert np.allclose(small.distances, large.distances, atol=1e-9)

    def test_self_query(self, rng):
        ref = uniform_cloud(200, rng=rng)
        result = GridIndex(ref).query(ref.xyz[:10], 1)
        assert (result.distances[:, 0] == 0.0).all()

    def test_k_exceeds_n_pads(self, rng):
        ref = uniform_cloud(3, rng=rng)
        result = GridIndex(ref).query(ref.xyz[:1], 6)
        assert (result.indices[0, 3:] == PAD_INDEX).all()
        assert (result.indices[0, :3] != PAD_INDEX).all()


class TestMechanics:
    def test_ring_cells_counts(self):
        home = (0, 0, 0)
        assert len(list(GridIndex._ring_cells(home, 0))) == 1
        assert len(list(GridIndex._ring_cells(home, 1))) == 26
        assert len(list(GridIndex._ring_cells(home, 2))) == 98  # 5^3 - 3^3

    def test_occupancy_stats(self, rng):
        ref = uniform_cloud(500, rng=rng)
        n_cells, mean, peak = GridIndex(ref, GridConfig(cell_size=20.0)).occupancy_stats()
        assert n_cells >= 1
        assert peak >= mean >= 1.0
        assert n_cells * mean == pytest.approx(500)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            GridConfig(cell_size=0.0)
        with pytest.raises(ValueError):
            GridIndex(np.empty((0, 3)))
        with pytest.raises(ValueError):
            GridIndex(uniform_cloud(5, rng=rng)).query(np.zeros((1, 3)), 0)
