"""Unit tests for the LSH index."""

import numpy as np
import pytest

from repro.baselines import LshConfig, LshIndex, knn_bruteforce
from repro.datasets.synthetic import uniform_cloud
from repro.kdtree.search import PAD_INDEX


class TestConfig:
    def test_rejects_bad_tables(self):
        with pytest.raises(ValueError):
            LshConfig(n_tables=0)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            LshConfig(bucket_width=0.0)

    def test_rejects_bad_candidates(self):
        with pytest.raises(ValueError):
            LshConfig(max_candidates=0)


class TestIndex:
    def test_self_query_hits_own_bucket(self, rng):
        ref = uniform_cloud(500, rng=rng)
        index = LshIndex(ref, rng=rng)
        result = index.query(ref.xyz[:30], 1)
        assert (result.distances[:, 0] == 0.0).all()

    def test_more_tables_no_worse(self, rng):
        ref = uniform_cloud(800, rng=rng)
        qry = uniform_cloud(100, rng=rng)
        exact = knn_bruteforce(ref, qry, 3)

        def recall(config):
            result = LshIndex(ref, config, rng=np.random.default_rng(1)).query(qry, 3)
            return np.mean([
                len(set(result.indices[i]) & set(exact.indices[i])) / 3
                for i in range(len(qry))
            ])

        one = recall(LshConfig(n_tables=1, bucket_width=2.0))
        four = recall(LshConfig(n_tables=4, bucket_width=2.0))
        # Different table counts redraw all projections, so allow a small
        # per-seed fluctuation around the statistically expected gain.
        assert four >= one - 0.05

    def test_wider_buckets_more_candidates(self, rng):
        ref = uniform_cloud(800, rng=rng)
        narrow = LshIndex(ref, LshConfig(bucket_width=0.5), rng=np.random.default_rng(0))
        wide = LshIndex(ref, LshConfig(bucket_width=8.0), rng=np.random.default_rng(0))
        assert wide.mean_bucket_size() > narrow.mean_bucket_size()

    def test_miss_pads_result(self, rng):
        ref = uniform_cloud(100, rng=rng, lo=(0, 0, 0), hi=(1, 1, 1))
        index = LshIndex(ref, LshConfig(bucket_width=0.5), rng=rng)
        # A query far outside the data hashes to an empty bucket.
        result = index.query(np.array([[500.0, 500.0, 500.0]]), 3)
        assert (result.indices == PAD_INDEX).all()

    def test_max_candidates_cap(self, rng):
        ref = uniform_cloud(500, rng=rng)
        capped = LshIndex(
            ref, LshConfig(bucket_width=50.0, max_candidates=5), rng=rng
        )
        result = capped.query(ref.xyz[:5], 3)
        assert result.indices.shape == (5, 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            LshIndex(np.empty((0, 3)))

    def test_rejects_bad_k(self, rng):
        ref = uniform_cloud(10, rng=rng)
        with pytest.raises(ValueError):
            LshIndex(ref, rng=rng).query(ref, 0)
