"""Unit tests for the hierarchical k-means tree."""

import numpy as np
import pytest

from repro.baselines import KMeansTree, KMeansTreeConfig, knn_bruteforce
from repro.datasets.synthetic import gaussian_clusters, uniform_cloud


class TestConfig:
    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            KMeansTreeConfig(branching=1)

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            KMeansTreeConfig(leaf_size=0)


class TestBuild:
    def test_leaves_partition_points(self, rng):
        cloud = uniform_cloud(1000, rng=rng)
        index = KMeansTree(cloud, KMeansTreeConfig(leaf_size=64), rng=rng)
        assert int(index.leaf_sizes().sum()) == 1000

    def test_leaf_sizes_bounded(self, rng):
        cloud = gaussian_clusters(2000, rng=rng)
        index = KMeansTree(cloud, KMeansTreeConfig(leaf_size=100, branching=4), rng=rng)
        sizes = index.leaf_sizes()
        # Clusters can exceed leaf_size only in degenerate duplicate data.
        assert sizes.max() <= 100

    def test_small_cloud_is_single_leaf(self, rng):
        cloud = uniform_cloud(10, rng=rng)
        index = KMeansTree(cloud, KMeansTreeConfig(leaf_size=64), rng=rng)
        assert len(index.leaf_sizes()) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KMeansTree(np.empty((0, 3)))

    def test_duplicate_points_terminate(self):
        points = np.tile([[3.0, 3.0, 3.0]], (400, 1))
        index = KMeansTree(points, KMeansTreeConfig(leaf_size=32))
        assert int(index.leaf_sizes().sum()) == 400


class TestQuery:
    def test_high_recall_on_clusters(self, rng):
        ref = gaussian_clusters(1500, rng=rng)
        qry = gaussian_clusters(150, rng=rng)
        index = KMeansTree(ref, rng=rng)
        result = index.query(qry, 5)
        exact = knn_bruteforce(ref, qry, 5)
        recall = np.mean([
            len(set(result.indices[i]) & set(exact.indices[i])) / 5
            for i in range(len(qry))
        ])
        assert recall > 0.6

    def test_self_query_finds_self(self, rng):
        ref = uniform_cloud(500, rng=rng)
        index = KMeansTree(ref, rng=rng)
        result = index.query(ref.xyz[:20], 1)
        assert (result.distances[:, 0] == 0.0).all()

    def test_rejects_bad_k(self, rng):
        ref = uniform_cloud(50, rng=rng)
        with pytest.raises(ValueError):
            KMeansTree(ref, rng=rng).query(ref, 0)

    def test_build_cost_counter_increases(self, rng):
        ref = uniform_cloud(1000, rng=rng)
        index = KMeansTree(ref, rng=rng)
        assert index.n_lloyd_updates > 0
