"""Surface normals and FPS downsampling over the query modalities."""

import numpy as np
import pytest

from repro.index import make_index
from repro.perception import downsample_fps, estimate_normals
from repro.query import sample_fps_reference


@pytest.fixture(scope="module")
def tilted_plane():
    """A dense plane with a known normal, plus a few isolated points."""
    rng = np.random.default_rng(13)
    u = rng.uniform(-5.0, 5.0, size=(1_500, 2))
    normal = np.array([1.0, 2.0, 2.0]) / 3.0
    e1 = np.array([2.0, -1.0, 0.0]) / np.sqrt(5.0)
    e2 = np.cross(normal, e1)
    plane = u[:, :1] * e1 + u[:, 1:] * e2
    isolated = np.array([[40.0, 40.0, 40.0], [-40.0, 40.0, -40.0]])
    return np.concatenate([plane, isolated]), normal


class TestNormals:
    def test_plane_normals_recovered(self, tilted_plane):
        xyz, normal = tilted_plane
        result = estimate_normals(xyz, radius=1.0)
        fitted = result.normals[:-2]
        dots = np.abs(fitted @ normal)
        assert np.nanmedian(dots) > 0.999
        assert np.nanmax(result.curvature[:-2]) < 0.05

    def test_isolated_points_are_nan(self, tilted_plane):
        xyz, _ = tilted_plane
        result = estimate_normals(xyz, radius=1.0)
        assert np.isnan(result.normals[-2:]).all()
        assert np.isnan(result.curvature[-2:]).all()
        assert result.n_valid == xyz.shape[0] - 2
        assert (result.n_neighbors[-2:] == 1).all()

    def test_orientation_faces_viewpoint(self, tilted_plane):
        xyz, _ = tilted_plane
        view = np.array([100.0, 0.0, 0.0])
        result = estimate_normals(xyz, radius=1.0, viewpoint=view)
        valid = ~np.isnan(result.curvature)
        toward = view[None, :] - xyz[valid]
        assert ((result.normals[valid] * toward).sum(axis=1) >= 0.0).all()

    def test_reuses_supplied_index(self, tilted_plane):
        xyz, _ = tilted_plane
        index = make_index("kd-exact", xyz)
        a = estimate_normals(xyz, radius=1.0, index=index)
        b = estimate_normals(xyz, radius=1.0)
        np.testing.assert_array_equal(a.n_neighbors, b.n_neighbors)
        np.testing.assert_array_equal(a.normals, b.normals)

    def test_max_neighbors_cap_applies(self, tilted_plane):
        xyz, _ = tilted_plane
        result = estimate_normals(xyz, radius=2.0, max_neighbors=16)
        assert (result.n_neighbors <= 16).all()


class TestDownsample:
    def test_matches_reference(self, tilted_plane):
        xyz, _ = tilted_plane
        np.testing.assert_array_equal(
            downsample_fps(xyz, 64), sample_fps_reference(xyz, 64)
        )

    def test_index_route_identical(self, tilted_plane):
        xyz, _ = tilted_plane
        index = make_index("kd-exact", xyz)
        np.testing.assert_array_equal(
            downsample_fps(xyz, 64, index=index), downsample_fps(xyz, 64)
        )
