"""Unit tests for Euclidean clustering."""

import numpy as np
import pytest

from repro.geometry import PointCloud
from repro.perception import euclidean_clusters


def blob(center, n, std, rng):
    return np.asarray(center) + rng.normal(0, std, size=(n, 3))


class TestClustering:
    def test_separates_two_blobs(self, rng):
        cloud = PointCloud(np.vstack([
            blob([0, 0, 1], 80, 0.2, rng),
            blob([10, 0, 1], 60, 0.2, rng),
        ]))
        clusters = euclidean_clusters(cloud, tolerance=0.7, min_points=10)
        assert len(clusters) == 2
        sizes = sorted(c.n_points for c in clusters)
        assert sizes == [60, 80]

    def test_merges_connected_chain(self, rng):
        # A chain of overlapping blobs should form ONE cluster.
        centers = [[i * 0.5, 0, 1] for i in range(10)]
        cloud = PointCloud(np.vstack([blob(c, 20, 0.1, rng) for c in centers]))
        clusters = euclidean_clusters(cloud, tolerance=0.7, min_points=10)
        assert len(clusters) == 1
        assert clusters[0].n_points == 200

    def test_min_points_filters_noise(self, rng):
        cloud = PointCloud(np.vstack([
            blob([0, 0, 1], 50, 0.2, rng),
            np.array([[100.0, 100.0, 1.0]]),  # lone return
        ]))
        clusters = euclidean_clusters(cloud, tolerance=0.7, min_points=5)
        assert len(clusters) == 1

    def test_max_points_filters_walls(self, rng):
        cloud = PointCloud(np.vstack([
            blob([0, 0, 1], 500, 0.3, rng),   # "wall"
            blob([30, 0, 1], 40, 0.2, rng),   # "car"
        ]))
        clusters = euclidean_clusters(
            cloud, tolerance=0.7, min_points=10, max_points=100
        )
        assert len(clusters) == 1
        assert clusters[0].n_points == 40

    def test_cluster_geometry(self, rng):
        pts = blob([5, -3, 1.5], 100, 0.3, rng)
        clusters = euclidean_clusters(PointCloud(pts), tolerance=0.7)
        cluster = clusters[0]
        assert np.allclose(cluster.centroid, pts.mean(axis=0))
        assert cluster.bounds.contains(pts).all()
        length, width = cluster.footprint
        assert length >= width > 0

    def test_indices_partition_points(self, rng):
        cloud = PointCloud(np.vstack([
            blob([0, 0, 1], 50, 0.2, rng),
            blob([20, 0, 1], 50, 0.2, rng),
        ]))
        clusters = euclidean_clusters(cloud, tolerance=0.7, min_points=5)
        all_indices = np.concatenate([c.indices for c in clusters])
        assert np.unique(all_indices).size == all_indices.size

    def test_sorted_by_size(self, rng):
        cloud = PointCloud(np.vstack([
            blob([0, 0, 1], 30, 0.2, rng),
            blob([15, 0, 1], 90, 0.2, rng),
        ]))
        clusters = euclidean_clusters(cloud, tolerance=0.7, min_points=5)
        assert clusters[0].n_points >= clusters[-1].n_points

    def test_empty_cloud(self):
        assert euclidean_clusters(PointCloud.empty()) == []

    def test_validation(self, rng):
        cloud = PointCloud(blob([0, 0, 0], 10, 0.1, rng))
        with pytest.raises(ValueError):
            euclidean_clusters(cloud, tolerance=0.0)
        with pytest.raises(ValueError):
            euclidean_clusters(cloud, min_points=0)
