"""Unit tests for the multi-object tracker."""

import numpy as np
import pytest

from repro.geometry import Aabb
from repro.perception import Cluster, MultiObjectTracker


def cluster_at(x, y, z=1.0, n=50):
    center = np.array([x, y, z], dtype=float)
    return Cluster(
        indices=np.arange(n),
        centroid=center,
        bounds=Aabb(center - 0.5, center + 0.5),
    )


class TestAssociation:
    def test_track_follows_moving_object(self):
        tracker = MultiObjectTracker()
        for step in range(5):
            tracker.update([cluster_at(step * 1.0, 0.0)], time=step * 0.1)
        assert len(tracker.tracks) == 1
        track = tracker.tracks[0]
        assert track.age == 5
        assert track.speed == pytest.approx(10.0, rel=0.05)
        assert np.allclose(track.velocity()[:2], [10.0, 0.0], atol=0.5)

    def test_static_object_zero_speed(self):
        tracker = MultiObjectTracker()
        for step in range(4):
            tracker.update([cluster_at(3.0, -2.0)], time=step * 0.1)
        assert tracker.tracks[0].speed == pytest.approx(0.0, abs=1e-9)

    def test_two_objects_two_tracks(self):
        tracker = MultiObjectTracker()
        for step in range(4):
            tracker.update(
                [cluster_at(step * 0.5, 0.0), cluster_at(-step * 0.5, 10.0)],
                time=step * 0.1,
            )
        assert len(tracker.tracks) == 2
        ids = {t.track_id for t in tracker.tracks}
        assert len(ids) == 2

    def test_gate_prevents_wild_association(self):
        tracker = MultiObjectTracker(gate_distance=2.0)
        tracker.update([cluster_at(0.0, 0.0)], time=0.0)
        tracker.update([cluster_at(50.0, 0.0)], time=0.1)  # a jump, not motion
        # Original track missed; a new one spawned for the far cluster.
        assert len(tracker.tracks) == 2

    def test_prediction_extends_gate_for_fast_objects(self):
        tracker = MultiObjectTracker(gate_distance=2.0)
        # 15 m/s object: consecutive detections are 1.5 m apart, and the
        # constant-velocity prediction keeps the association locked.
        for step in range(6):
            tracker.update([cluster_at(step * 1.5, 0.0)], time=step * 0.1)
        assert len(tracker.tracks) == 1
        assert tracker.tracks[0].age == 6


class TestLifecycle:
    def test_track_dropped_after_misses(self):
        tracker = MultiObjectTracker(max_missed=2)
        tracker.update([cluster_at(0, 0)], time=0.0)
        for step in range(1, 5):
            tracker.update([], time=step * 0.1)
        assert tracker.tracks == []

    def test_confirmed_requires_age(self):
        tracker = MultiObjectTracker(min_age_confirmed=3)
        tracker.update([cluster_at(0, 0)], time=0.0)
        assert tracker.confirmed_tracks() == []
        tracker.update([cluster_at(0.1, 0)], time=0.1)
        tracker.update([cluster_at(0.2, 0)], time=0.2)
        assert len(tracker.confirmed_tracks()) == 1

    def test_moving_filter(self):
        tracker = MultiObjectTracker()
        for step in range(4):
            tracker.update(
                [cluster_at(step * 1.0, 0.0), cluster_at(5.0, 5.0)],
                time=step * 0.1,
            )
        moving = tracker.moving_tracks(min_speed=1.0)
        assert len(moving) == 1
        assert moving[0].speed > 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiObjectTracker(gate_distance=0.0)
        with pytest.raises(ValueError):
            MultiObjectTracker(max_missed=-1)
        with pytest.raises(ValueError):
            MultiObjectTracker(min_age_confirmed=0)


class TestEndToEnd:
    def test_detects_scene_vehicles_over_a_drive(self):
        from repro.datasets import DriveConfig, generate_drive
        from repro.perception import euclidean_clusters

        frames = list(generate_drive(
            DriveConfig(n_frames=5, target_points=6_000), seed=0
        ))
        tracker = MultiObjectTracker()
        for frame in frames:
            clusters = euclidean_clusters(
                frame.cloud, tolerance=0.8, min_points=15, max_points=3_000
            )
            tracker.update(clusters, frame.time)
        # The street scene contains 4 moving cars; the tracker should
        # find at least a couple of genuinely moving objects.
        moving = tracker.moving_tracks(min_speed=3.0)
        assert len(moving) >= 2
