"""Unit tests for RigidTransform."""

import numpy as np
import pytest

from repro.geometry import RigidTransform


class TestConstruction:
    def test_identity(self):
        t = RigidTransform.identity()
        p = np.array([1.0, 2.0, 3.0])
        assert np.allclose(t.apply(p), p)

    def test_rejects_non_orthonormal(self):
        with pytest.raises(ValueError, match="orthonormal"):
            RigidTransform(np.eye(3) * 2.0, np.zeros(3))

    def test_rejects_reflection(self):
        reflection = np.diag([1.0, 1.0, -1.0])
        with pytest.raises(ValueError, match="reflection"):
            RigidTransform(reflection, np.zeros(3))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            RigidTransform(np.eye(2), np.zeros(3))
        with pytest.raises(ValueError):
            RigidTransform(np.eye(3), np.zeros(2))

    def test_from_yaw(self):
        t = RigidTransform.from_yaw(np.pi / 2)
        assert np.allclose(t.apply(np.array([1.0, 0.0, 0.0])), [0.0, 1.0, 0.0])

    def test_from_euler_matches_yaw_only(self):
        a = RigidTransform.from_yaw(0.3, translation=(1, 2, 3))
        b = RigidTransform.from_euler(0.0, 0.0, 0.3, translation=(1, 2, 3))
        assert a.is_close(b)

    def test_from_translation(self):
        t = RigidTransform.from_translation([1.0, 0.0, -1.0])
        assert np.allclose(t.apply(np.zeros(3)), [1.0, 0.0, -1.0])


class TestAlgebra:
    def test_apply_batch_shape(self, rng):
        t = RigidTransform.from_euler(0.1, 0.2, 0.3, translation=(1, 1, 1))
        pts = rng.normal(size=(10, 3))
        out = t.apply(pts)
        assert out.shape == (10, 3)

    def test_apply_single_shape(self):
        t = RigidTransform.from_yaw(0.5)
        assert t.apply(np.zeros(3)).shape == (3,)

    def test_compose_order(self):
        # self.compose(other): other first, then self.
        rot = RigidTransform.from_yaw(np.pi / 2)
        shift = RigidTransform.from_translation([1.0, 0.0, 0.0])
        rotate_then_shift = shift.compose(rot)
        p = np.array([1.0, 0.0, 0.0])
        assert np.allclose(rotate_then_shift.apply(p), [1.0, 1.0, 0.0])

    def test_inverse_roundtrip(self, rng):
        t = RigidTransform.from_euler(0.2, -0.1, 1.3, translation=(4, -2, 0.5))
        pts = rng.normal(size=(20, 3))
        back = t.inverse().apply(t.apply(pts))
        assert np.allclose(back, pts)

    def test_compose_with_inverse_is_identity(self):
        t = RigidTransform.from_euler(0.2, 0.1, -0.4, translation=(1, 2, 3))
        ident = t.compose(t.inverse())
        assert ident.is_close(RigidTransform.identity(), atol=1e-9)


class TestIntrospection:
    def test_yaw_roundtrip(self):
        assert RigidTransform.from_yaw(0.7).yaw() == pytest.approx(0.7)

    def test_magnitude(self):
        t = RigidTransform.from_yaw(0.5, translation=(3.0, 4.0, 0.0))
        angle, dist = t.magnitude()
        assert angle == pytest.approx(0.5)
        assert dist == pytest.approx(5.0)

    def test_magnitude_identity(self):
        angle, dist = RigidTransform.identity().magnitude()
        assert angle == pytest.approx(0.0)
        assert dist == 0.0
