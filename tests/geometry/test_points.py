"""Unit tests for PointCloud."""

import numpy as np
import pytest

from repro.geometry import PointCloud


class TestConstruction:
    def test_from_list(self):
        cloud = PointCloud([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        assert len(cloud) == 2
        assert cloud.xyz.dtype == np.float64

    def test_copies_input_by_default(self):
        arr = np.zeros((3, 3))
        cloud = PointCloud(arr)
        arr[0, 0] = 99.0
        assert cloud.xyz[0, 0] == 0.0

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            PointCloud(np.zeros((4, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            PointCloud([[0.0, np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="non-finite"):
            PointCloud([[np.inf, 0.0, 0.0]])

    def test_empty(self):
        assert len(PointCloud.empty()) == 0

    def test_concatenate(self):
        a = PointCloud([[0.0, 0.0, 0.0]])
        b = PointCloud([[1.0, 1.0, 1.0], [2.0, 2.0, 2.0]])
        joined = PointCloud.concatenate([a, b])
        assert len(joined) == 3
        assert np.array_equal(joined.xyz[0], a.xyz[0])

    def test_concatenate_nothing(self):
        assert len(PointCloud.concatenate([])) == 0


class TestProtocol:
    def test_iteration(self):
        cloud = PointCloud([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
        points = list(cloud)
        assert len(points) == 2
        assert np.array_equal(points[1], [4.0, 5.0, 6.0])

    def test_getitem_slice(self):
        cloud = PointCloud(np.arange(30, dtype=float).reshape(10, 3))
        sub = cloud[2:5]
        assert isinstance(sub, PointCloud)
        assert len(sub) == 3

    def test_getitem_single_returns_cloud(self):
        cloud = PointCloud(np.arange(9, dtype=float).reshape(3, 3))
        assert len(cloud[1]) == 1

    def test_equality(self):
        a = PointCloud([[1.0, 2.0, 3.0]])
        b = PointCloud([[1.0, 2.0, 3.0]])
        c = PointCloud([[1.0, 2.0, 4.0]])
        assert a == b
        assert a != c

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(PointCloud([[0.0, 0.0, 0.0]]))

    def test_repr(self):
        assert "n=2" in repr(PointCloud(np.zeros((2, 3))))


class TestGeometry:
    def test_bounds(self):
        cloud = PointCloud([[0.0, 1.0, -2.0], [3.0, -1.0, 5.0]])
        box = cloud.bounds()
        assert np.array_equal(box.lo, [0.0, -1.0, -2.0])
        assert np.array_equal(box.hi, [3.0, 1.0, 5.0])

    def test_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            PointCloud.empty().bounds()

    def test_centroid(self):
        cloud = PointCloud([[0.0, 0.0, 0.0], [2.0, 4.0, 6.0]])
        assert np.allclose(cloud.centroid(), [1.0, 2.0, 3.0])

    def test_distances_to(self):
        cloud = PointCloud([[0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])
        d = cloud.distances_to(np.zeros(3))
        assert np.allclose(d, [0.0, 5.0])

    def test_distances_to_bad_shape(self):
        cloud = PointCloud([[0.0, 0.0, 0.0]])
        with pytest.raises(ValueError):
            cloud.distances_to(np.zeros(2))

    def test_subsample(self, rng):
        cloud = PointCloud(rng.normal(size=(100, 3)))
        sub = cloud.subsample(10, rng)
        assert len(sub) == 10

    def test_subsample_too_many(self, rng):
        cloud = PointCloud(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            cloud.subsample(6, rng)

    def test_translated(self):
        cloud = PointCloud([[1.0, 1.0, 1.0]])
        moved = cloud.translated(np.array([1.0, -1.0, 0.5]))
        assert np.allclose(moved.xyz, [[2.0, 0.0, 1.5]])
        # Original is unchanged.
        assert np.allclose(cloud.xyz, [[1.0, 1.0, 1.0]])

    def test_filter(self):
        cloud = PointCloud(np.arange(9, dtype=float).reshape(3, 3))
        kept = cloud.filter(np.array([True, False, True]))
        assert len(kept) == 2

    def test_filter_bad_mask(self):
        cloud = PointCloud(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            cloud.filter(np.array([True]))
