"""Property-based tests of rigid-transform algebra (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import RigidTransform

angle = st.floats(-3.1, 3.1, allow_nan=False)
coord = st.floats(-100.0, 100.0, allow_nan=False, width=32)

transforms = st.builds(
    lambda r, p, y, tx, ty, tz: RigidTransform.from_euler(
        r, p, y, translation=(tx, ty, tz)
    ),
    angle, angle, angle, coord, coord, coord,
)

common = settings(max_examples=60, deadline=None)


class TestGroupLaws:
    @common
    @given(t=transforms)
    def test_inverse_is_two_sided(self, t):
        assert t.compose(t.inverse()).is_close(RigidTransform.identity(), atol=1e-7)
        assert t.inverse().compose(t).is_close(RigidTransform.identity(), atol=1e-7)

    @common
    @given(a=transforms, b=transforms, c=transforms)
    def test_composition_associative(self, a, b, c):
        left = a.compose(b).compose(c)
        right = a.compose(b.compose(c))
        assert left.is_close(right, atol=1e-6)

    @common
    @given(t=transforms)
    def test_identity_is_neutral(self, t):
        ident = RigidTransform.identity()
        assert t.compose(ident).is_close(t, atol=1e-9)
        assert ident.compose(t).is_close(t, atol=1e-9)

    @common
    @given(a=transforms, b=transforms)
    def test_apply_respects_composition(self, a, b):
        point = np.array([1.0, -2.0, 3.0])
        via_compose = a.compose(b).apply(point)
        via_sequence = a.apply(b.apply(point))
        assert np.allclose(via_compose, via_sequence, atol=1e-6)


class TestIsometry:
    @common
    @given(t=transforms)
    def test_distances_preserved(self, t):
        p = np.array([[0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])
        moved = t.apply(p)
        original = np.linalg.norm(p[1] - p[0])
        transformed = np.linalg.norm(moved[1] - moved[0])
        assert transformed == pytest_approx(original)

    @common
    @given(t=transforms)
    def test_magnitude_nonnegative_and_bounded(self, t):
        rotation_angle, distance = t.magnitude()
        assert 0.0 <= rotation_angle <= np.pi + 1e-9
        assert distance >= 0.0


def pytest_approx(value, tol=1e-6):
    import pytest

    return pytest.approx(value, abs=tol)
