"""Unit tests for Aabb."""

import numpy as np
import pytest

from repro.geometry import Aabb


class TestConstruction:
    def test_basic(self):
        box = Aabb([0, 0, 0], [1, 2, 3])
        assert np.array_equal(box.extent, [1, 2, 3])
        assert np.array_equal(box.center, [0.5, 1.0, 1.5])

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="inverted"):
            Aabb([1, 0, 0], [0, 1, 1])

    def test_degenerate_allowed(self):
        box = Aabb([1, 1, 1], [1, 2, 2])
        assert box.extent[0] == 0.0

    def test_infinite(self):
        box = Aabb.infinite()
        assert np.isinf(box.lo).all() and np.isinf(box.hi).all()

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Aabb([0, 0], [1, 1])


class TestQueries:
    def test_contains_inside_and_boundary(self):
        box = Aabb([0, 0, 0], [1, 1, 1])
        pts = np.array([[0.5, 0.5, 0.5], [1.0, 1.0, 1.0], [1.1, 0.5, 0.5]])
        assert box.contains(pts).tolist() == [True, True, False]

    def test_distance_sq_inside_is_zero(self):
        box = Aabb([0, 0, 0], [2, 2, 2])
        assert box.distance_sq_to(np.array([1.0, 1.0, 1.0])) == 0.0

    def test_distance_sq_outside(self):
        box = Aabb([0, 0, 0], [1, 1, 1])
        # 3-4-0 offset from the (1,1,z) corner region.
        assert box.distance_sq_to(np.array([4.0, 5.0, 0.5])) == pytest.approx(25.0)

    def test_intersects_sphere(self):
        box = Aabb([0, 0, 0], [1, 1, 1])
        assert box.intersects_sphere(np.array([2.0, 0.5, 0.5]), 1.0)
        assert not box.intersects_sphere(np.array([3.0, 0.5, 0.5]), 1.0)

    def test_union(self):
        a = Aabb([0, 0, 0], [1, 1, 1])
        b = Aabb([-1, 0.5, 0], [0.5, 2, 1])
        u = a.union(b)
        assert np.array_equal(u.lo, [-1, 0, 0])
        assert np.array_equal(u.hi, [1, 2, 1])

    def test_equality(self):
        assert Aabb([0, 0, 0], [1, 1, 1]) == Aabb([0, 0, 0], [1, 1, 1])
        assert Aabb([0, 0, 0], [1, 1, 1]) != Aabb([0, 0, 0], [1, 1, 2])


class TestSplit:
    def test_split_partitions(self):
        box = Aabb([0, 0, 0], [2, 2, 2])
        below, above = box.split(0, 0.5)
        assert below.hi[0] == 0.5
        assert above.lo[0] == 0.5
        assert np.array_equal(below.lo, box.lo)
        assert np.array_equal(above.hi, box.hi)

    def test_split_outside_raises(self):
        box = Aabb([0, 0, 0], [1, 1, 1])
        with pytest.raises(ValueError, match="threshold"):
            box.split(1, 2.0)

    def test_split_infinite_box(self):
        below, above = Aabb.infinite().split(2, 0.0)
        assert below.hi[2] == 0.0
        assert np.isinf(below.lo[2])
        assert above.lo[2] == 0.0
