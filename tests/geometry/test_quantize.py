"""Unit tests for fixed-point quantization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.quantize import (
    DEFAULT_FORMAT,
    FixedPointFormat,
    dequantize,
    quantization_error_bound,
    quantize,
    roundtrip,
)


class TestFormat:
    def test_default_is_32_bit(self):
        assert DEFAULT_FORMAT.total_bits == 32
        assert DEFAULT_FORMAT.bytes_per_value == 4

    def test_scale(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=8)
        assert fmt.scale == pytest.approx(1.0 / 256.0)

    def test_range(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=0)
        assert fmt.max_value == 127
        assert fmt.min_value == -128

    def test_rejects_zero_integer_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=0, fraction_bits=8)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=60, fraction_bits=8)


class TestQuantize:
    def test_roundtrip_error_bounded(self, rng):
        values = rng.uniform(-100, 100, size=1000)
        err = np.abs(roundtrip(values) - values)
        assert err.max() <= quantization_error_bound() + 1e-12

    def test_exact_on_grid(self):
        fmt = FixedPointFormat(integer_bits=8, fraction_bits=4)
        values = np.array([0.0, 0.25, -1.5, 3.0625])
        assert np.array_equal(roundtrip(values, fmt), values)

    def test_saturates(self):
        fmt = FixedPointFormat(integer_bits=4, fraction_bits=0)
        assert quantize(np.array([1000.0]), fmt)[0] == 7
        assert quantize(np.array([-1000.0]), fmt)[0] == -8

    def test_dequantize_inverse_of_quantize_in_range(self):
        codes = np.array([-5, 0, 17], dtype=np.int64)
        fmt = FixedPointFormat(integer_bits=16, fraction_bits=8)
        assert np.array_equal(quantize(dequantize(codes, fmt), fmt), codes)

    @given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
    def test_roundtrip_property(self, value):
        err = abs(float(roundtrip(np.array([value]))[0]) - value)
        assert err <= quantization_error_bound() + 1e-9
