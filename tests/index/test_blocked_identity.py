"""Blocked-index exactness: bit-identical to the monolithic engine.

The blocked router's acceptance bar is stricter than a recall floor —
its answers must match a single monolithic ``build_flat`` +
``knn_exact_batched`` run bit for bit, for every partitioner.  Two
workloads are the classic ways to get that wrong:

* **Duplicate ties** — exact-duplicate coordinates straddling a block
  boundary produce equal distances whose winner depends on merge
  order.  The repo contract (same as the serve shard merge): distance
  rows are always bit-identical; index rows may differ only where the
  referenced coordinates are exact duplicates of each other.
* **Off-origin frames** — UTM-style coordinates (hundreds of km from
  the origin) shrink the float spacing relative to block extents; a
  sloppy AABB lower bound would start pruning blocks that still hold
  the true neighbor.  Here the answers must be fully bit-identical,
  indices included.
"""

import numpy as np
import pytest

from repro.index import make_index
from repro.kdtree import BlockedBuildConfig, build_blocked, build_flat
from repro.kdtree.engine import knn_exact_batched

PARTITIONER_NAMES = ["grid", "kd-cut"]


def _monolithic(xyz, queries, k):
    flat, _ = build_flat(xyz)
    result, _visits = knn_exact_batched(flat, queries, k)
    return result


def _assert_tie_identical(result, exact, xyz):
    """Distances bit-identical; index swaps only among duplicate coords."""
    np.testing.assert_array_equal(result.distances, exact.distances)
    differs = result.indices != exact.indices
    if differs.any():
        a = result.indices[differs]
        b = exact.indices[differs]
        assert (a >= 0).all() and (b >= 0).all()
        np.testing.assert_array_equal(xyz[a], xyz[b])


@pytest.fixture(scope="module")
def duplicate_cloud():
    """A cloud where ~a third of the points are exact duplicates."""
    rng = np.random.default_rng(11)
    base = rng.uniform(-60.0, 60.0, size=(4_000, 3))
    dupes = base[rng.integers(0, len(base), size=2_000)]
    xyz = np.concatenate([base, dupes])
    queries = np.concatenate(
        [rng.uniform(-60.0, 60.0, size=(300, 3)), xyz[rng.integers(0, len(xyz), 100)]]
    )
    return xyz, queries


@pytest.mark.parametrize("partitioner", PARTITIONER_NAMES)
def test_duplicate_ties_match_monolithic(duplicate_cloud, partitioner, tmp_path):
    xyz, queries = duplicate_cloud
    k = 8
    index = build_blocked(
        xyz,
        BlockedBuildConfig(n_blocks=6, partitioner=partitioner),
        block_dir=tmp_path / partitioner,
    )
    _assert_tie_identical(index.query(queries, k), _monolithic(xyz, queries, k), xyz)


@pytest.mark.parametrize("partitioner", PARTITIONER_NAMES)
@pytest.mark.parametrize("offset", [1e3, 5e5])
def test_off_origin_utm_frame_bit_identical(partitioner, offset, tmp_path):
    # UTM-style frame: a ~200 m scene translated far from the origin.
    rng = np.random.default_rng(7)
    xyz = rng.uniform(-100.0, 100.0, size=(5_000, 3)) + offset
    queries = rng.uniform(-100.0, 100.0, size=(400, 3)) + offset
    k = 6
    index = build_blocked(
        xyz,
        BlockedBuildConfig(n_blocks=5, partitioner=partitioner),
        block_dir=tmp_path / f"{partitioner}-{offset:g}",
    )
    result = index.query(queries, k)
    exact = _monolithic(xyz, queries, k)
    np.testing.assert_array_equal(result.distances, exact.distances)
    np.testing.assert_array_equal(result.indices, exact.indices)


def test_registry_backend_is_exact(small_frame_pair):
    # The make_index("kd-blocked") default (4 blocks) honors the same bar.
    ref, qry = small_frame_pair
    index = make_index("kd-blocked", ref)
    q = qry.xyz[:200]
    _assert_tie_identical(index.query(q, 5), _monolithic(ref.xyz, q, 5), ref.xyz)
