"""Modality conformance: every backend answers or refuses, honestly.

The :class:`~repro.index.NeighborIndex` protocol grew two optional
modalities (radius search and FPS sampling) behind capability flags.
The contract checked here, for every registered backend:

* flags exist and are plain booleans; the ``supporting_backends``
  registry agrees with the per-instance flags;
* a backend with the flag set answers natively and bit-identically to
  the oracle (brute-force radius / naive FPS);
* a backend without the flag raises the typed :class:`UnsupportedQuery`
  — never ``AttributeError``, never a silent wrong answer — and the
  message names the backends that do support the modality, mirroring
  the registry's unknown-name errors.
"""

import numpy as np
import pytest

from repro.index import (
    UnsupportedQuery,
    available_indexes,
    make_index,
    supporting_backends,
)
from repro.kdtree.blocked import BlockedBuildConfig
from repro.query import sample_fps_reference
from repro.query.radius import radius_bruteforce

BACKENDS = sorted(available_indexes())
RADIUS = 4.0
CAP = 8


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request, small_frame_pair):
    ref, _ = small_frame_pair
    return make_index(request.param, ref)


def _assert_same_ragged(a, b):
    np.testing.assert_array_equal(a.offsets, b.offsets)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.distances, b.distances)


def test_flags_are_booleans(backend):
    assert isinstance(backend.supports_radius, bool)
    assert isinstance(backend.supports_sample, bool)


def test_registry_agrees_with_flags(small_frame_pair):
    ref, _ = small_frame_pair
    for modality in ("radius", "sample"):
        declared = set(supporting_backends(modality))
        actual = {
            name
            for name in BACKENDS
            if getattr(make_index(name, ref), f"supports_{modality}")
        }
        assert declared == actual, modality


def test_radius_native_or_typed_refusal(backend, small_frame_pair):
    ref, qry = small_frame_pair
    queries = qry.xyz[:150]
    if backend.supports_radius:
        result = backend.query_radius(queries, RADIUS, max_neighbors=CAP)
        oracle = radius_bruteforce(ref.xyz, queries, RADIUS, max_neighbors=CAP)
        _assert_same_ragged(result, oracle)
    else:
        with pytest.raises(UnsupportedQuery) as err:
            backend.query_radius(queries, RADIUS, max_neighbors=CAP)
        message = str(err.value)
        assert backend.name in message
        for name in supporting_backends("radius"):
            assert name in message


def test_sample_native_or_typed_refusal(backend, small_frame_pair):
    ref, _ = small_frame_pair
    if backend.supports_sample:
        picks = backend.sample(60, start=3)
        np.testing.assert_array_equal(
            picks, sample_fps_reference(ref.xyz, 60, start=3)
        )
    else:
        with pytest.raises(UnsupportedQuery) as err:
            backend.sample(60)
        message = str(err.value)
        assert backend.name in message
        for name in supporting_backends("sample"):
            assert name in message


def test_refusal_is_typeerror_not_attributeerror(small_frame_pair):
    ref, _ = small_frame_pair
    for name in BACKENDS:
        index = make_index(name, ref)
        assert callable(index.query_radius)
        assert callable(index.sample)
        if not index.supports_radius:
            assert issubclass(UnsupportedQuery, TypeError)
            with pytest.raises(TypeError):
                index.query_radius(ref.xyz[:2], 1.0)


def test_error_carries_backend_and_modality(small_frame_pair):
    ref, _ = small_frame_pair
    unsupported = [
        n for n in BACKENDS
        if not make_index(n, ref).supports_radius
    ]
    assert unsupported, "expected at least one non-supporting backend"
    index = make_index(unsupported[0], ref)
    with pytest.raises(UnsupportedQuery) as err:
        index.query_radius(ref.xyz[:2], 1.0)
    assert err.value.backend == index.name
    assert err.value.modality == "radius"


class TestBlockedIdentity:
    """The out-of-core router must match the monolithic kernel bit for bit."""

    def test_radius_matches_monolithic(self, small_frame_pair):
        ref, qry = small_frame_pair
        queries = qry.xyz[:200]
        blocked = make_index(
            "kd-blocked", ref, config=BlockedBuildConfig(target_block_points=600)
        )
        mono = make_index("kd-exact", ref)
        _assert_same_ragged(
            blocked.query_radius(queries, RADIUS, max_neighbors=CAP),
            mono.query_radius(queries, RADIUS, max_neighbors=CAP),
        )

    def test_sample_matches_monolithic(self, small_frame_pair):
        ref, _ = small_frame_pair
        blocked = make_index(
            "kd-blocked", ref, config=BlockedBuildConfig(target_block_points=600)
        )
        np.testing.assert_array_equal(
            blocked.sample(120, start=5),
            sample_fps_reference(ref.xyz, 120, start=5),
        )

    def test_off_origin_radius_matches(self, small_frame_pair):
        ref, qry = small_frame_pair
        shift = np.array([500_000.0, 4_000_000.0, 1_000.0])
        xyz = ref.xyz + shift
        queries = qry.xyz[:100] + shift
        blocked = make_index(
            "kd-blocked", xyz, config=BlockedBuildConfig(target_block_points=600)
        )
        _assert_same_ragged(
            blocked.query_radius(queries, RADIUS, max_neighbors=CAP),
            radius_bruteforce(xyz, queries, RADIUS, max_neighbors=CAP),
        )
