"""Conformance suite: every registered backend honors the NeighborIndex contract.

One parametrized battery over all backends checks the output invariants
(sorted distances, padding discipline, shapes) and recall floors; the
rest of the module covers the registry itself (aliases, error messages,
rebinding prebuilt indexes).
"""

import numpy as np
import pytest

from repro.analysis import knn_recall
from repro.baselines import knn_bruteforce
from repro.index import NeighborIndex, available_indexes, make_index
from repro.kdtree.search import PAD_INDEX

BACKENDS = [
    "bruteforce",
    "kd-approx",
    "kd-exact",
    "kd-bbf",
    "kd-blocked",
    "forest",
    "grid",
    "kmeans",
    "lsh",
]

#: Exact backends must agree with brute force; approximate ones only
#: need a sane floor on this easy workload.  LSH is known-terrible in
#: 3D (that is the point of its Table 1 row), so it gets a token floor.
MIN_RECALL = {
    "bruteforce": 0.999,
    "kd-exact": 0.999,
    "kd-blocked": 0.999,
    "grid": 0.999,
    "kd-approx": 0.5,
    "kd-bbf": 0.5,
    "forest": 0.5,
    "kmeans": 0.5,
    "lsh": 0.01,
}


@pytest.fixture(scope="module", params=BACKENDS)
def backend(request, small_frame_pair):
    ref, _ = small_frame_pair
    return make_index(request.param, ref)


def test_registry_covers_all_conformance_backends():
    assert set(BACKENDS) == set(available_indexes())


def test_satisfies_protocol(backend):
    assert isinstance(backend, NeighborIndex)
    assert isinstance(backend.name, str) and backend.name


def test_query_shape_and_padding(backend, small_frame_pair):
    _, qry = small_frame_pair
    k = 6
    result = backend.query(qry.xyz[:100], k)
    assert result.indices.shape == (100, k)
    assert result.distances.shape == (100, k)
    assert result.indices.dtype == np.int64
    # Padding discipline: -1 indices carry inf distances and vice versa.
    pad = result.indices == PAD_INDEX
    assert (np.isinf(result.distances) == pad).all()
    # Real hits index into the reference set.
    n_ref = backend.stats()["n_reference"]
    assert (result.indices[~pad] >= 0).all()
    assert (result.indices[~pad] < n_ref).all()


def test_distances_sorted_ascending(backend, small_frame_pair):
    _, qry = small_frame_pair
    result = backend.query(qry.xyz[:100], 6)
    # Rows are non-decreasing; inf - inf inside the padding tail is nan.
    with np.errstate(invalid="ignore"):
        steps = np.diff(result.distances, axis=1)
    assert ((steps >= 0) | np.isnan(steps)).all()


def test_k_larger_than_reference(small_frame_pair):
    ref, qry = small_frame_pair
    tiny = ref.xyz[:5]
    for name in BACKENDS:
        index = make_index(name, tiny)
        result = index.query(qry.xyz[:10], 8)
        assert result.indices.shape == (10, 8)
        assert (result.indices[:, 5:] == PAD_INDEX).all(), name
        assert np.isinf(result.distances[:, 5:]).all(), name


def test_empty_query_batch(backend):
    result = backend.query(np.empty((0, 3)), 4)
    assert result.indices.shape == (0, 4)
    assert result.distances.shape == (0, 4)


def test_stats_reports_reference_size(backend, small_frame_pair):
    ref, _ = small_frame_pair
    stats = backend.stats()
    assert isinstance(stats, dict)
    assert stats["n_reference"] == ref.xyz.shape[0]


def test_recall_against_bruteforce(backend, small_frame_pair):
    ref, qry = small_frame_pair
    k = 5
    q = qry.xyz[:300]
    exact = knn_bruteforce(ref, q, k)
    recall = knn_recall(backend.query(q, k), exact, k)
    assert recall >= MIN_RECALL[backend.name], (backend.name, recall)


def test_aliases_resolve_to_canonical(small_frame_pair):
    ref, _ = small_frame_pair
    assert make_index("approx", ref).name == "kd-approx"
    assert make_index("exact", ref).name == "kd-exact"
    assert make_index("bbf", ref).name == "kd-bbf"
    assert make_index("linear", ref).name == "bruteforce"
    assert make_index("kd_blocked", ref).name == "kd-blocked"


def test_unknown_name_lists_available(small_frame_pair):
    ref, _ = small_frame_pair
    with pytest.raises(ValueError, match="unknown knn index 'flann'"):
        make_index("flann", ref)


def test_build_rebinds_reference(small_frame_pair, backend):
    ref, qry = small_frame_pair
    # Fresh instance: rebinding the module-scoped fixture would leak a
    # 400-point index into later tests if an assertion failed mid-test.
    index = make_index(backend.name, ref)
    rebound = index.build(ref.xyz[:400])
    result = rebound.query(qry.xyz[:20], 3)
    valid = result.indices != PAD_INDEX
    assert (result.indices[valid] < 400).all()
    assert rebound.stats()["n_reference"] == 400
