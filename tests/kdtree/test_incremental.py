"""Unit tests for static reuse and incremental tree update."""

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import (
    KdTreeConfig,
    build_tree,
    check_tree,
    knn_exact,
    reuse_tree,
    update_tree,
)


@pytest.fixture
def base(rng):
    cloud = uniform_cloud(4000, rng=rng)
    tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=64))
    return tree, cloud, rng


class TestReuse:
    def test_same_structure_new_points(self, base):
        tree, cloud, rng = base
        shifted = cloud.translated(np.array([0.5, 0.0, 0.0]))
        reused = reuse_tree(tree, shifted)
        assert reused.n_nodes == tree.n_nodes
        assert [n.threshold for n in reused.nodes] == [n.threshold for n in tree.nodes]
        assert int(reused.bucket_sizes().sum()) == len(shifted)
        check_tree(reused)

    def test_original_untouched(self, base):
        tree, cloud, rng = base
        before = [b.copy() for b in tree.buckets]
        reuse_tree(tree, cloud.translated(np.array([5.0, 0.0, 0.0])))
        for a, b in zip(before, tree.buckets):
            assert np.array_equal(a, b)

    def test_shift_unbalances(self, base):
        tree, cloud, rng = base
        shifted = cloud.translated(np.array([20.0, 0.0, 0.0]))
        reused = reuse_tree(tree, shifted)
        before, after = tree.bucket_sizes(), reused.bucket_sizes()
        spread = lambda s: s.max() / max(s.min(), 1)
        assert spread(after) > spread(before)


class TestUpdate:
    def test_same_distribution_few_changes(self, base):
        tree, cloud, rng = base
        similar = uniform_cloud(4000, rng=rng)
        updated, trace = update_tree(tree, similar, KdTreeConfig(bucket_capacity=64))
        check_tree(updated)
        assert trace.n_merges + trace.n_splits <= tree.n_leaves // 2

    def test_bounds_enforced_after_shift(self, base):
        tree, cloud, rng = base
        config = KdTreeConfig(bucket_capacity=64)
        shifted = cloud.translated(np.array([30.0, 0.0, 0.0]))
        updated, trace = update_tree(tree, shifted, config)
        check_tree(updated)
        sizes = updated.bucket_sizes()
        assert sizes.max() <= 2 * 64
        assert trace.n_merges + trace.n_splits > 0

    def test_update_preserves_searchability(self, base):
        tree, cloud, rng = base
        moved = cloud.translated(np.array([3.0, 1.0, 0.0]))
        updated, _ = update_tree(tree, moved, KdTreeConfig(bucket_capacity=64))
        queries = moved.xyz[:50]
        result = knn_exact(updated, queries, k=1)
        assert (result.distances[:, 0] == 0.0).all()

    def test_custom_bounds(self, base):
        tree, cloud, rng = base
        grown = uniform_cloud(8000, rng=rng)
        updated, _ = update_tree(
            tree, grown, KdTreeConfig(bucket_capacity=64),
            lower_bound=16, upper_bound=96,
        )
        check_tree(updated)
        assert updated.bucket_sizes().max() <= 96

    def test_rejects_bad_bounds(self, base):
        tree, cloud, rng = base
        with pytest.raises(ValueError):
            update_tree(tree, cloud, lower_bound=100, upper_bound=50)

    def test_trace_sorts_smaller_than_full_build(self, base):
        """The paper's point: incremental sorting touches far fewer points."""
        tree, cloud, rng = base
        shifted = cloud.translated(np.array([5.0, 0.0, 0.0]))
        _, trace = update_tree(tree, shifted, KdTreeConfig(bucket_capacity=64))
        _, full_trace = build_tree(
            shifted, KdTreeConfig(bucket_capacity=64, sample_size=len(shifted))
        )
        assert trace.sorted_elements < full_trace.sorted_elements

    def test_duplicate_heavy_input_terminates(self, rng):
        points = np.tile([[1.0, 1.0, 1.0]], (1000, 1))
        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=32))
        updated, _ = update_tree(tree, points, KdTreeConfig(bucket_capacity=32))
        check_tree(updated)
        assert int(updated.bucket_sizes().sum()) == 1000
