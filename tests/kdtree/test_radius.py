"""Unit tests for exact radius search."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import KdTreeConfig, build_tree, radius_search


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(17)
    cloud = uniform_cloud(1_500, rng=rng)
    tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=32))
    return tree, cloud


class TestRadiusSearch:
    def test_matches_scipy(self, setup):
        tree, cloud = setup
        query = np.array([0.0, 0.0, 5.0])
        idx, dst = radius_search(tree, query, 10.0)
        expected = sorted(cKDTree(cloud.xyz).query_ball_point(query, 10.0))
        assert sorted(idx.tolist()) == expected

    def test_distances_sorted_and_within_radius(self, setup):
        tree, _ = setup
        idx, dst = radius_search(tree, np.array([5.0, -3.0, 2.0]), 8.0)
        assert (np.diff(dst) >= 0).all()
        assert (dst <= 8.0).all()
        assert idx.size == dst.size

    def test_zero_radius_finds_exact_point(self, setup):
        tree, cloud = setup
        idx, dst = radius_search(tree, cloud.xyz[42], 0.0)
        assert 42 in idx
        assert (dst == 0.0).all()

    def test_empty_result(self, setup):
        tree, _ = setup
        idx, dst = radius_search(tree, np.array([1e6, 1e6, 1e6]), 1.0)
        assert idx.size == 0 and dst.size == 0

    def test_radius_monotone(self, setup):
        tree, _ = setup
        q = np.array([0.0, 0.0, 5.0])
        small, _ = radius_search(tree, q, 5.0)
        large, _ = radius_search(tree, q, 15.0)
        assert set(small.tolist()) <= set(large.tolist())

    def test_validation(self, setup):
        tree, _ = setup
        with pytest.raises(ValueError):
            radius_search(tree, np.zeros(3), -1.0)
        with pytest.raises(ValueError):
            radius_search(tree, np.zeros((2, 3)), 1.0)
