"""Unit tests for the tree invariant checker (it must catch corruption)."""

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import KdTreeConfig, TreeInvariantError, build_tree, check_tree


@pytest.fixture
def tree(rng):
    cloud = uniform_cloud(1000, rng=rng)
    tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=64))
    return tree


class TestAcceptsValid:
    def test_valid_tree_passes(self, tree):
        check_tree(tree)

    def test_unplaced_tree_with_flag(self, rng):
        cloud = uniform_cloud(500, rng=rng)
        unplaced, _ = build_tree(cloud, place=False)
        check_tree(unplaced, require_all_points=False)
        with pytest.raises(TreeInvariantError, match="points"):
            check_tree(unplaced)


class TestCatchesCorruption:
    def test_bad_index(self, tree):
        tree.nodes[3].index = 99
        with pytest.raises(TreeInvariantError, match="index"):
            check_tree(tree)

    def test_bad_parent_pointer(self, tree):
        victim = next(n for n in tree.nodes if n.parent != -1)
        victim.parent = victim.index  # self-parent
        with pytest.raises(TreeInvariantError, match="parent"):
            check_tree(tree)

    def test_leaf_with_children(self, tree):
        leaf = next(n for n in tree.nodes if n.is_leaf)
        leaf.left = 0
        with pytest.raises(TreeInvariantError, match="children"):
            check_tree(tree)

    def test_internal_with_bad_dim(self, tree):
        internal = next(n for n in tree.nodes if not n.is_leaf)
        internal.dim = 5
        with pytest.raises(TreeInvariantError, match="dim"):
            check_tree(tree)

    def test_internal_with_nan_threshold(self, tree):
        internal = next(n for n in tree.nodes if not n.is_leaf)
        internal.threshold = float("nan")
        with pytest.raises(TreeInvariantError, match="threshold"):
            check_tree(tree)

    def test_duplicate_bucket_ownership(self, tree):
        leaves = [n for n in tree.nodes if n.is_leaf]
        leaves[1].bucket_id = leaves[0].bucket_id
        with pytest.raises(TreeInvariantError, match="bucket"):
            check_tree(tree)

    def test_point_in_two_buckets(self, tree):
        donor = next(b for b in tree.buckets if b.size > 0)
        receiver_id = next(
            i for i, b in enumerate(tree.buckets) if b is not donor
        )
        tree.buckets[receiver_id] = np.append(tree.buckets[receiver_id], donor[0])
        with pytest.raises(TreeInvariantError, match="two buckets"):
            check_tree(tree)

    def test_point_outside_region(self, tree):
        # Swap the contents of two non-empty buckets: points end up in
        # leaves whose regions do not contain them.
        full = [i for i, b in enumerate(tree.buckets) if b.size > 0]
        a, b = full[0], full[-1]
        tree.buckets[a], tree.buckets[b] = tree.buckets[b], tree.buckets[a]
        with pytest.raises(TreeInvariantError, match="outside"):
            check_tree(tree)

    def test_out_of_range_point_index(self, tree):
        bucket_id = next(i for i, b in enumerate(tree.buckets) if b.size > 0)
        tree.buckets[bucket_id] = tree.buckets[bucket_id].copy()
        tree.buckets[bucket_id][0] = tree.n_points + 5
        with pytest.raises(TreeInvariantError, match="out-of-range"):
            check_tree(tree)
