"""Tests for the batched vectorized query engine (repro.kdtree.engine).

The engine's contract is strict: not just "close", but element-for-
element identical results to the per-query loop paths, for both the
approximate and the exact search.
"""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.datasets import lidar_frame_pair
from repro.kdtree import (
    FlatKdTree,
    KdTreeConfig,
    build_tree,
    knn_approx,
    knn_approx_loop,
    knn_exact,
    update_tree,
)
from repro.kdtree.engine import knn_approx_batched, knn_exact_batched


@pytest.fixture(scope="module")
def workload():
    ref, qry = lidar_frame_pair(4_000, seed=3)
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=128))
    return tree, ref, qry.xyz[:1_000]


class TestFlatLayout:
    def test_descend_matches_tree(self, workload):
        tree, _, queries = workload
        assert np.array_equal(tree.flat().descend(queries), tree.descend_batch(queries))

    def test_csr_buckets_match_tree(self, workload):
        tree, _, _ = workload
        flat = tree.flat()
        assert flat.n_buckets == len(tree.buckets)
        for bucket_id, members in enumerate(tree.buckets):
            assert np.array_equal(flat.bucket(bucket_id), members)

    def test_cached_and_invalidated(self, workload):
        tree, _, _ = workload
        assert tree.flat() is tree.flat()
        tree.invalidate_caches()
        assert isinstance(tree.flat(), FlatKdTree)

    def test_stats(self, workload):
        tree, _, _ = workload
        stats = tree.flat().stats()
        assert stats["n_points"] == tree.n_points
        assert stats["n_leaves"] == tree.n_leaves

    def test_rejects_empty_tree(self, workload):
        _, ref, _ = workload
        from repro.kdtree.node import KdTree

        with pytest.raises(ValueError):
            FlatKdTree.from_tree(KdTree(points=ref.xyz))


class TestApproxIdentity:
    @pytest.mark.parametrize("k", [1, 4, 8, 16])
    def test_identical_to_loop(self, workload, k):
        tree, _, queries = workload
        fast = knn_approx(tree, queries, k)
        slow = knn_approx_loop(tree, queries, k)
        assert np.array_equal(fast.indices, slow.indices)
        assert np.array_equal(fast.distances, slow.distances)

    def test_identical_when_k_exceeds_buckets(self, workload):
        tree, _, queries = workload
        # k far beyond the bucket capacity: every row ends in padding.
        fast = knn_approx(tree, queries, 200)
        slow = knn_approx_loop(tree, queries, 200)
        assert np.array_equal(fast.indices, slow.indices)
        assert np.array_equal(fast.distances, slow.distances)

    def test_direct_entrypoint(self, workload):
        tree, _, queries = workload
        result = knn_approx_batched(tree.flat(), queries, 4)
        assert np.array_equal(result.indices, knn_approx_loop(tree, queries, 4).indices)

    def test_rejects_bad_k(self, workload):
        tree, _, queries = workload
        with pytest.raises(ValueError):
            knn_approx_batched(tree.flat(), queries, 0)


class TestOffsetCloudIdentity:
    """Regression: frames far from the origin (UTM-style coordinates).

    The BLAS selection expansion's cancellation error grows with
    ``|q|^2`` on raw coordinates, which used to corrupt candidate
    selection for off-origin clouds; the engine now centers the
    selection stage on the cloud centroid, so the identity contract
    must hold at any offset.
    """

    @pytest.fixture(scope="class", params=[100.0, 1_000.0, 1e5])
    def offset_workload(self, request):
        ref, qry = lidar_frame_pair(3_000, seed=7)
        shift = np.full(3, request.param)
        tree, _ = build_tree(ref.xyz + shift, KdTreeConfig(bucket_capacity=64))
        return tree, ref.xyz + shift, qry.xyz[:600] + shift

    def test_approx_identical_to_loop(self, offset_workload):
        tree, _, queries = offset_workload
        fast = knn_approx(tree, queries, 8)
        slow = knn_approx_loop(tree, queries, 8)
        assert np.array_equal(fast.indices, slow.indices)
        assert np.array_equal(fast.distances, slow.distances)

    def test_exact_identical_to_loop(self, offset_workload):
        tree, _, queries = offset_workload
        fast = knn_exact(tree, queries, 5)
        slow = knn_exact(tree, queries, 5, engine=False)
        assert np.array_equal(fast.indices, slow.indices)
        assert np.array_equal(fast.distances, slow.distances)

    def test_exact_matches_scipy(self, offset_workload):
        tree, ref_xyz, queries = offset_workload
        result = knn_exact(tree, queries, k=4)
        d, _ = cKDTree(ref_xyz).query(queries, k=4)
        assert np.allclose(result.distances, d)


class TestExactIdentity:
    @pytest.mark.parametrize("k", [1, 5, 8])
    def test_identical_to_loop(self, workload, k):
        tree, _, queries = workload
        fast = knn_exact(tree, queries, k)
        slow = knn_exact(tree, queries, k, engine=False)
        assert np.array_equal(fast.indices, slow.indices)
        assert np.array_equal(fast.distances, slow.distances)

    def test_matches_scipy(self, workload):
        tree, ref, queries = workload
        result = knn_exact(tree, queries, k=5)
        d, _ = cKDTree(ref.xyz).query(queries, k=5)
        assert np.allclose(result.distances, d)

    def test_visit_counts(self, workload):
        tree, _, queries = workload
        _, visits = knn_exact_batched(tree, queries, 8)
        assert (visits >= 1).all()
        # The radius test must settle at least some queries in one bucket.
        assert (visits == 1).any()

    def test_after_incremental_update(self, workload):
        tree, _, queries = workload
        _, qry2 = lidar_frame_pair(4_000, seed=11)
        new_tree, _ = update_tree(tree, qry2, KdTreeConfig(bucket_capacity=128))
        fast = knn_approx(new_tree, queries, 4)
        slow = knn_approx_loop(new_tree, queries, 4)
        assert np.array_equal(fast.indices, slow.indices)
        assert np.array_equal(fast.distances, slow.distances)


class TestVisitBudget:
    """The max_visits knob: bounded backtracking for graceful degradation."""

    def test_zero_budget_equals_approx(self, workload):
        tree, _, queries = workload
        budgeted, _ = knn_exact_batched(tree, queries, 8, max_visits=0)
        approx = knn_approx_batched(tree.flat(), queries, 8)
        assert np.array_equal(budgeted.indices, approx.indices)
        assert np.array_equal(budgeted.distances, approx.distances)

    def test_unbounded_budget_is_exact(self, workload):
        tree, _, queries = workload
        exact, _ = knn_exact_batched(tree, queries, 8)
        huge, _ = knn_exact_batched(tree, queries, 8, max_visits=10**9)
        assert np.array_equal(exact.indices, huge.indices)
        assert np.array_equal(exact.distances, huge.distances)

    def test_recall_monotone_in_budget(self, workload):
        tree, ref, queries = workload
        exact, _ = knn_exact_batched(tree, queries, 8)
        recalls = []
        for budget in (0, 1, 4, 16):
            got, _ = knn_exact_batched(tree, queries, 8, max_visits=budget)
            hits = sum(
                np.intersect1d(got.indices[i], exact.indices[i]).size
                for i in range(queries.shape[0])
            )
            recalls.append(hits / exact.indices.size)
        assert recalls == sorted(recalls)
        assert recalls[-1] > recalls[0]

    def test_budget_bounds_visits(self, workload):
        tree, _, queries = workload
        _, visits = knn_exact_batched(tree, queries, 8, max_visits=3)
        # home leaf + at most 3 budgeted extra buckets
        assert visits.max() <= 4

    def test_negative_budget_rejected(self, workload):
        tree, _, queries = workload
        with pytest.raises(ValueError, match="max_visits"):
            knn_exact_batched(tree, queries, 8, max_visits=-1)


class TestSelectionTieOverflow:
    """Boundary ties wider than SELECT_PAD must not drop a true neighbor.

    An unsplittable bucket of duplicates collapses to one float32
    selection score; with more tied candidates than the pad holds,
    argpartition used to pick an arbitrary subset and could exclude a
    strictly closer point whose margin (here 2^-9 in z) is representable
    in float64 but below float32 resolution at the centered magnitude.
    """

    @pytest.fixture()
    def degenerate(self):
        g = np.float64(2.0) ** -9
        points = np.full((128, 3), g)
        points[0] = [g, g, 0.0]            # the strictly nearest point
        points[1] = [-997.0, 69.0, 0.0]    # outlier: inflates the centered scale
        points[2] = [-322.0, 1.0, g]
        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=8))
        return points, tree

    def test_approx_self_query_finds_duplicate_buried_point(self, degenerate):
        points, tree = degenerate
        result = knn_approx_batched(tree.flat(), points[0][None, :], 1)
        assert result.indices[0, 0] == 0
        assert result.distances[0, 0] == 0.0

    def test_exact_self_query_finds_duplicate_buried_point(self, degenerate):
        points, tree = degenerate
        result, _ = knn_exact_batched(tree, points[0][None, :], 1)
        assert result.indices[0, 0] == 0
        assert result.distances[0, 0] == 0.0

    def test_exact_matches_loop_path_on_duplicate_cloud(self, degenerate):
        points, tree = degenerate
        batched, _ = knn_exact_batched(tree, points[:8], 4)
        loop = knn_exact(tree, points[:8], 4, engine=False)
        assert np.array_equal(batched.distances, loop.distances)
