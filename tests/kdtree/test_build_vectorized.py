"""Equivalence suite: vectorized builder vs the recursive reference.

The vectorized pipeline (`repro.kdtree.flat_build`) must be
bit-identical to the legacy builder under the shared tie-break rule
(equal coordinates go left, stable sample order): same tree shape,
same bucket membership in the same order, same ``BuildTrace`` totals.
These tests pin that contract across seeds, degenerate geometry, and
configuration corners, plus the batched incremental fast path and the
``build.*`` observability counters.
"""

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.datasets.synthetic import gaussian_clusters, uniform_cloud
from repro.kdtree import (
    FlatKdTree,
    KdForest,
    KdForestConfig,
    KdTreeConfig,
    build_flat,
    build_tree,
    build_tree_vectorized,
    check_tree,
    update_tree,
)
from repro.kdtree.incremental import reuse_tree


def legacy_config(**kwargs) -> KdTreeConfig:
    return KdTreeConfig(builder="legacy", **kwargs)


def vectorized_config(**kwargs) -> KdTreeConfig:
    return KdTreeConfig(builder="vectorized", **kwargs)


def assert_trees_identical(a, b):
    """Node-for-node, bucket-for-bucket equality (order included)."""
    assert len(a.nodes) == len(b.nodes)
    for na, nb in zip(a.nodes, b.nodes):
        assert na == nb
    assert len(a.buckets) == len(b.buckets)
    for ba, bb in zip(a.buckets, b.buckets):
        assert np.array_equal(ba, bb)


def assert_flats_identical(a: FlatKdTree, b: FlatKdTree):
    for name in ("dim", "threshold", "left", "right", "is_leaf",
                 "bucket_id", "bucket_offsets", "bucket_members"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


def build_both(points, **cfg_kwargs):
    legacy, trace_l = build_tree(points, legacy_config(**cfg_kwargs))
    vect, trace_v = build_tree(points, vectorized_config(**cfg_kwargs))
    return legacy, trace_l, vect, trace_v


CONFIG_CORNERS = [
    {},
    {"bucket_capacity": 4},
    {"bucket_capacity": 64},
    {"min_samples_per_leaf": 8},
    {"max_depth": 3},
    {"split_dims": (2, 0)},
    {"sample_size": 333},
    {"bucket_capacity": 16, "split_dims": (1,), "min_samples_per_leaf": 4},
]


class TestBitIdentity:
    @pytest.mark.parametrize("cfg_kwargs", CONFIG_CORNERS)
    def test_config_corners(self, cfg_kwargs):
        cloud = gaussian_clusters(3_000, rng=np.random.default_rng(11))
        legacy, trace_l, vect, trace_v = build_both(cloud, **cfg_kwargs)
        assert_trees_identical(legacy, vect)
        assert trace_l.as_dict() == trace_v.as_dict()
        assert trace_l.sort_sizes == trace_v.sort_sizes
        check_tree(vect)

    @pytest.mark.parametrize("seed", [0, 1, 7, 23, 99])
    def test_seeds(self, seed):
        rng = np.random.default_rng(seed)
        cloud = uniform_cloud(2_500, rng=rng)
        legacy, _, vect, _ = build_both(cloud, bucket_capacity=32)
        assert_trees_identical(legacy, vect)

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 64, 257])
    def test_tiny_inputs(self, n):
        xyz = np.random.default_rng(n).normal(size=(n, 3))
        legacy, _, vect, _ = build_both(xyz, bucket_capacity=4)
        assert_trees_identical(legacy, vect)

    def test_duplicate_coordinates(self):
        # Many exact duplicates force the tie-break rule to matter.
        rng = np.random.default_rng(3)
        base = rng.normal(size=(40, 3))
        xyz = base[rng.integers(0, 40, size=4_000)]
        legacy, _, vect, _ = build_both(xyz, bucket_capacity=16)
        assert_trees_identical(legacy, vect)

    def test_degenerate_axis(self):
        # One constant coordinate: every split on it ties everywhere.
        rng = np.random.default_rng(4)
        xyz = rng.normal(size=(2_000, 3))
        xyz[:, 1] = 7.25
        legacy, _, vect, _ = build_both(xyz, bucket_capacity=16)
        assert_trees_identical(legacy, vect)

    def test_off_origin_utm_frame(self):
        # UTM-style coordinates: large offsets, small spreads.
        rng = np.random.default_rng(5)
        xyz = rng.normal(size=(3_000, 3)) * [8.0, 8.0, 2.0]
        xyz += [4.5e5, 5.1e6, 120.0]
        legacy, _, vect, _ = build_both(xyz, bucket_capacity=32)
        assert_trees_identical(legacy, vect)

    def test_place_false_matches(self):
        cloud = gaussian_clusters(2_000, rng=np.random.default_rng(6))
        legacy, trace_l = build_tree(cloud, legacy_config(), place=False)
        vect, trace_v = build_tree(cloud, vectorized_config(), place=False)
        assert_trees_identical(legacy, vect)
        assert trace_l.placement_traversals == trace_v.placement_traversals == 0

    def test_rng_stream_consumed_identically(self):
        # Same generator state afterwards: downstream draws line up.
        cloud = uniform_cloud(5_000, rng=np.random.default_rng(8))
        rng_a, rng_b = np.random.default_rng(13), np.random.default_rng(13)
        build_tree(cloud, legacy_config(sample_size=512), rng=rng_a)
        build_tree(cloud, vectorized_config(sample_size=512), rng=rng_b)
        assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)


class TestBuildFlat:
    def test_matches_from_tree_conversion(self):
        cloud = gaussian_clusters(4_000, rng=np.random.default_rng(9))
        config = KdTreeConfig(bucket_capacity=64)
        legacy, _ = build_tree(cloud, legacy_config(bucket_capacity=64))
        flat, _ = build_flat(cloud, config)
        assert_flats_identical(FlatKdTree.from_tree(legacy), flat)

    def test_attached_flat_reused_by_tree(self):
        cloud = gaussian_clusters(1_000, rng=np.random.default_rng(10))
        tree, _ = build_tree_vectorized(cloud, KdTreeConfig(bucket_capacity=32))
        assert tree.flat() is tree.flat()
        assert_flats_identical(tree.flat(), FlatKdTree.from_tree(tree))

    def test_queries_agree_between_builders(self):
        from repro.kdtree import knn_approx_batched

        cloud = gaussian_clusters(3_000, rng=np.random.default_rng(12))
        queries = gaussian_clusters(200, rng=np.random.default_rng(13)).xyz
        legacy, _ = build_tree(cloud, legacy_config(bucket_capacity=64))
        flat, _ = build_flat(cloud, KdTreeConfig(bucket_capacity=64))
        res_l = knn_approx_batched(FlatKdTree.from_tree(legacy), queries, 5)
        res_v = knn_approx_batched(flat, queries, 5)
        assert np.array_equal(res_l.indices, res_v.indices)


class TestTraceSerialization:
    def test_sort_sizes_are_plain_ints(self):
        cloud = gaussian_clusters(2_000, rng=np.random.default_rng(14))
        for config in (legacy_config(), vectorized_config()):
            _, trace = build_tree(cloud, config)
            assert all(type(s) is int for s in trace.sort_sizes)
            assert type(trace.sample_size) is int

    def test_as_dict_is_json_serializable(self):
        cloud = gaussian_clusters(2_000, rng=np.random.default_rng(15))
        for config in (legacy_config(), vectorized_config()):
            _, trace = build_tree(cloud, config)
            payload = json.loads(json.dumps(trace.as_dict()))
            assert payload["sorted_elements"] == trace.sorted_elements

    def test_update_trace_json_serializable(self):
        cloud = gaussian_clusters(1_500, rng=np.random.default_rng(16))
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=32))
        extra = gaussian_clusters(300, rng=np.random.default_rng(17)).xyz
        _, trace = update_tree(tree, extra, KdTreeConfig(bucket_capacity=32))
        json.dumps(trace.as_dict())


class TestIncrementalBatched:
    def setup_method(self):
        self.config = KdTreeConfig(bucket_capacity=32)
        self.cloud = gaussian_clusters(2_000, rng=np.random.default_rng(18))
        self.tree, _ = build_tree(self.cloud, self.config)
        self.extra = gaussian_clusters(400, rng=np.random.default_rng(19)).xyz

    def test_update_tree_batched_matches_scalar(self):
        fast, trace_f = update_tree(self.tree, self.extra, self.config, batched=True)
        slow, trace_s = update_tree(self.tree, self.extra, self.config, batched=False)
        assert_trees_identical(fast, slow)
        assert trace_f.as_dict() == trace_s.as_dict()

    def test_reuse_tree_batched_matches_scalar(self):
        fast = reuse_tree(self.tree, self.extra, batched=True)
        slow = reuse_tree(self.tree, self.extra, batched=False)
        assert_trees_identical(fast, slow)

    def test_chained_updates_stay_identical(self):
        fast, slow = self.tree, self.tree
        for seed in (20, 21):
            chunk = gaussian_clusters(250, rng=np.random.default_rng(seed)).xyz
            fast, _ = update_tree(fast, chunk, self.config, batched=True)
            slow, _ = update_tree(slow, chunk, self.config, batched=False)
        assert_trees_identical(fast, slow)


class TestForestBuilder:
    def test_vectorized_forest_valid_and_covers_points(self):
        ref = gaussian_clusters(2_000, rng=np.random.default_rng(22))
        forest = KdForest(
            ref,
            KdForestConfig(n_trees=3, bucket_capacity=64, builder="vectorized"),
            rng=np.random.default_rng(1),
        )
        n = ref.xyz.shape[0]
        for tree in forest.trees:
            check_tree(tree)
            members = np.concatenate([b for b in tree.buckets if b.size])
            assert np.array_equal(np.sort(members), np.arange(n))

    def test_forest_builder_validation_and_stats(self):
        with pytest.raises(ValueError):
            KdForestConfig(builder="nope")
        ref = gaussian_clusters(500, rng=np.random.default_rng(24))
        forest = KdForest(ref, KdForestConfig(n_trees=1, builder="vectorized"))
        assert forest.stats()["builder"] == "vectorized"


class TestObservability:
    def test_build_counters_recorded(self):
        cloud = gaussian_clusters(1_000, rng=np.random.default_rng(25))
        registry = obs.enable()
        try:
            build_tree(cloud, vectorized_config(bucket_capacity=32))
            build_tree(cloud, legacy_config(bucket_capacity=32))
            snap = registry.snapshot()
        finally:
            obs.disable()
        counters = snap["counters"]
        assert counters["build.calls"] == 2
        assert counters["build.calls.vectorized"] == 1
        assert counters["build.calls.legacy"] == 1
        assert counters["build.points"] == 2_000
        assert counters["build.placement_traversals"] == 2_000
        assert counters["build.sorted_elements"] > 0
        assert "build.sample_size" in snap["distributions"]

    def test_config_rejects_unknown_builder(self):
        with pytest.raises(ValueError):
            KdTreeConfig(builder="fancy")
