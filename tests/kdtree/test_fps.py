"""Build-fused FPS: exact sequence identity with the naive loop.

Farthest point sampling is greedy and deterministic: given the cloud
and the start index, the selected sequence is unique up to the
tie-break, which the repo fixes as numpy-argmax order (first index
attaining the max).  The fused implementation prunes whole buckets
with AABB lower bounds, so the test bar is exact: the same index
sequence as :func:`sample_fps_reference` on every workload, including
the tie-heavy ones where a sloppy bound or a different tie-break shows
up immediately.
"""

import numpy as np
import pytest

from repro.kdtree import KdTreeConfig, build_flat
from repro.query import sample_fps, sample_fps_reference


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(41)
    return rng.uniform(-50.0, 50.0, size=(4_000, 3))


class TestSequenceIdentity:
    @pytest.mark.parametrize("m", [1, 2, 64, 500])
    def test_matches_reference(self, cloud, m):
        np.testing.assert_array_equal(
            sample_fps(cloud, m), sample_fps_reference(cloud, m)
        )

    @pytest.mark.parametrize("start", [0, 7, 3_999])
    def test_start_index_respected(self, cloud, start):
        fused = sample_fps(cloud, 50, start=start)
        assert fused[0] == start
        np.testing.assert_array_equal(
            fused, sample_fps_reference(cloud, 50, start=start)
        )

    def test_prebuilt_tree_identical(self, cloud):
        flat, _ = build_flat(cloud, KdTreeConfig(bucket_capacity=48))
        np.testing.assert_array_equal(
            sample_fps(cloud, 128, flat=flat),
            sample_fps_reference(cloud, 128),
        )

    def test_duplicate_heavy_cloud(self):
        rng = np.random.default_rng(5)
        base = rng.uniform(-10.0, 10.0, size=(600, 3))
        xyz = np.concatenate([base, base, base])  # every point triplicated
        np.testing.assert_array_equal(
            sample_fps(xyz, 200), sample_fps_reference(xyz, 200)
        )

    def test_collinear_tie_cloud(self):
        # Symmetric grid: many points share the exact max distance every
        # round, so the argmax tie-break is exercised on most selections.
        g = np.arange(8, dtype=np.float64)
        xyz = np.stack(np.meshgrid(g, g, g), axis=-1).reshape(-1, 3)
        np.testing.assert_array_equal(
            sample_fps(xyz, 100), sample_fps_reference(xyz, 100)
        )

    def test_off_origin_utm_frame(self, cloud):
        shift = np.array([500_000.0, 4_000_000.0, 1_000.0])
        np.testing.assert_array_equal(
            sample_fps(cloud + shift, 150),
            sample_fps_reference(cloud + shift, 150),
        )


class TestProperties:
    def test_selects_m_unique_indices(self, cloud):
        picks = sample_fps(cloud, 300)
        assert picks.shape == (300,)
        assert picks.dtype == np.int64
        assert np.unique(picks).size == 300

    def test_m_equals_n(self):
        rng = np.random.default_rng(9)
        xyz = rng.uniform(size=(40, 3))
        picks = sample_fps(xyz, 40)
        np.testing.assert_array_equal(np.sort(picks), np.arange(40))


class TestValidation:
    def test_m_zero_rejected(self, cloud):
        with pytest.raises(ValueError):
            sample_fps(cloud, 0)

    def test_m_above_n_rejected(self, cloud):
        with pytest.raises(ValueError):
            sample_fps(cloud, cloud.shape[0] + 1)

    def test_bad_start_rejected(self, cloud):
        with pytest.raises(ValueError):
            sample_fps(cloud, 10, start=-1)
        with pytest.raises(ValueError):
            sample_fps(cloud, 10, start=cloud.shape[0])
