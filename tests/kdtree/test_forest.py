"""Unit tests for the randomized k-d tree forest."""

import numpy as np
import pytest

from repro.analysis.accuracy import knn_recall
from repro.baselines import knn_bruteforce
from repro.datasets.synthetic import gaussian_clusters, uniform_cloud
from repro.kdtree import KdForest, KdForestConfig, check_tree


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(23)
    ref = gaussian_clusters(2_000, rng=rng)
    queries = gaussian_clusters(150, rng=rng).xyz
    return ref, queries


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            KdForestConfig(n_trees=0)
        with pytest.raises(ValueError):
            KdForestConfig(top_variance_dims=0)
        with pytest.raises(ValueError):
            KdForestConfig(bucket_capacity=0)


class TestBuild:
    def test_trees_are_valid_and_distinct(self, setup):
        ref, _ = setup
        forest = KdForest(ref, KdForestConfig(n_trees=4, bucket_capacity=64))
        assert len(forest.trees) == 4
        for tree in forest.trees:
            check_tree(tree)
        # Randomized splits: at least two trees differ structurally.
        signatures = {
            tuple((n.dim, round(n.threshold, 6)) for n in t.nodes if not n.is_leaf)
            for t in forest.trees
        }
        assert len(signatures) > 1

    def test_single_tree_forest(self, setup):
        ref, queries = setup
        forest = KdForest(ref, KdForestConfig(n_trees=1))
        result = forest.query(queries, 3, max_leaves=1)
        assert result.indices.shape == (len(queries), 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KdForest(np.empty((0, 3)))


class TestQuery:
    def test_recall_grows_with_budget(self, setup):
        ref, queries = setup
        exact = knn_bruteforce(ref, queries, 5)
        forest = KdForest(
            ref, KdForestConfig(n_trees=4, bucket_capacity=64),
            rng=np.random.default_rng(1),
        )

        def recall(budget):
            return knn_recall(forest.query(queries, 5, max_leaves=budget), exact, 5)

        r2, r4, r8 = recall(2), recall(4), recall(8)
        assert r2 <= r4 <= r8
        assert r8 > 0.9

    def test_single_tree_wins_in_3d(self, setup):
        """In 3D, one tree with the whole leaf budget beats a forest —
        randomized forests pay off in high dimensions, which is exactly
        why the paper's hardware uses a single tree."""
        ref, queries = setup
        exact = knn_bruteforce(ref, queries, 5)

        def recall(n_trees):
            forest = KdForest(
                ref, KdForestConfig(n_trees=n_trees, bucket_capacity=64),
                rng=np.random.default_rng(1),
            )
            return knn_recall(forest.query(queries, 5, max_leaves=4), exact, 5)

        assert recall(1) >= recall(4) - 0.02

    def test_large_budget_nearly_exact(self, setup):
        ref, queries = setup
        exact = knn_bruteforce(ref, queries, 5)
        forest = KdForest(ref, KdForestConfig(n_trees=2, bucket_capacity=64))
        result = forest.query(queries, 5, max_leaves=64)
        assert knn_recall(result, exact, 5) > 0.95

    def test_no_duplicate_results_across_trees(self, setup):
        ref, queries = setup
        forest = KdForest(ref, KdForestConfig(n_trees=4))
        result = forest.query(queries, 8, max_leaves=8)
        for row in result.indices:
            real = row[row >= 0]
            assert len(set(real.tolist())) == real.size

    def test_validation(self, setup):
        ref, queries = setup
        forest = KdForest(ref)
        with pytest.raises(ValueError):
            forest.query(queries, 0)
        with pytest.raises(ValueError):
            forest.query(queries, 1, max_leaves=0)
