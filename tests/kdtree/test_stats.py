"""Unit tests for tree statistics."""

import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import KdTreeConfig, build_tree, node_access_probability, tree_stats


class TestTreeStats:
    def test_counts_consistent(self, rng):
        cloud = uniform_cloud(2048, rng=rng)
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=128))
        stats = tree_stats(tree)
        assert stats.n_points == 2048
        assert stats.n_leaves == tree.n_leaves
        assert stats.bucket_min <= stats.bucket_mean <= stats.bucket_max
        assert stats.bucket_mean == pytest.approx(2048 / stats.n_leaves)

    def test_imbalance_of_balanced_tree(self, rng):
        cloud = uniform_cloud(4096, rng=rng)
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=256))
        stats = tree_stats(tree)
        assert 1.0 <= stats.imbalance < 3.0

    def test_empty_bucket_count(self, rng):
        cloud = uniform_cloud(1000, rng=rng)
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=64))
        assert tree_stats(tree).empty_buckets == int((tree.bucket_sizes() == 0).sum())


class TestAccessProbability:
    def test_halves_per_level(self):
        assert node_access_probability(0) == 1.0
        assert node_access_probability(3) == pytest.approx(0.125)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            node_access_probability(-1)

    def test_level_sums_to_one(self):
        # 2^i nodes at level i, each hit with probability 2^-i.
        for depth in range(5):
            assert 2**depth * node_access_probability(depth) == pytest.approx(1.0)
