"""Property-based tests of the k-d tree invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kdtree import (
    KdTreeConfig,
    build_tree,
    check_tree,
    knn_approx,
    knn_exact,
    update_tree,
)

finite_coord = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def clouds(min_points=4, max_points=200):
    return arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(min_points, max_points), st.just(3)),
        elements=finite_coord,
    )


common = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestStructuralInvariants:
    @common
    @given(points=clouds(), bucket=st.integers(1, 64))
    def test_any_cloud_builds_valid_tree(self, points, bucket):
        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=bucket))
        check_tree(tree)

    @common
    @given(points=clouds())
    def test_every_point_reaches_its_own_bucket(self, points):
        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=16))
        leaf_ids = tree.descend_batch(points)
        for i, leaf in enumerate(leaf_ids):
            bucket = tree.buckets[tree.nodes[int(leaf)].bucket_id]
            assert i in bucket

    @common
    @given(points=clouds(min_points=8), bucket=st.integers(2, 32))
    def test_update_preserves_invariants(self, points, bucket):
        config = KdTreeConfig(bucket_capacity=bucket)
        tree, _ = build_tree(points, config)
        # Shift the frame, as a moving scene would.
        moved = points + np.array([1.5, -0.5, 0.25])
        updated, _ = update_tree(tree, moved, config)
        check_tree(updated)
        assert int(updated.bucket_sizes().sum()) == points.shape[0]


class TestSearchInvariants:
    @common
    @given(points=clouds(min_points=10), k=st.integers(1, 8))
    def test_exact_matches_bruteforce_distances(self, points, k):
        from repro.baselines import knn_bruteforce

        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=8))
        queries = points[:5]
        exact = knn_exact(tree, queries, k)
        brute = knn_bruteforce(points, queries, k)
        # atol covers the |q|^2 - 2 q.r + |r|^2 cancellation error in the
        # chunked brute force at coordinate magnitudes up to 1e3.
        assert np.allclose(exact.distances, brute.distances, atol=1e-4)

    @common
    @given(points=clouds(min_points=10), k=st.integers(1, 6))
    def test_approx_never_beats_exact(self, points, k):
        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=8))
        queries = points[::3][:10]
        approx = knn_approx(tree, queries, k)
        exact = knn_exact(tree, queries, k)
        finite = ~np.isinf(approx.distances)
        assert (approx.distances[finite] >= exact.distances[finite] - 1e-9).all()

    @common
    @given(points=clouds(min_points=6))
    def test_self_query_distance_zero(self, points):
        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=8))
        result = knn_approx(tree, points[:10], k=1)
        assert np.allclose(result.distances[:, 0], 0.0)

    @common
    @given(points=clouds(min_points=10), k=st.integers(1, 5))
    def test_result_rows_sorted_and_unique(self, points, k):
        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=8))
        result = knn_exact(tree, points[:8], k)
        for row_d, row_i in zip(result.distances, result.indices):
            finite = ~np.isinf(row_d)
            assert (np.diff(row_d[finite]) >= -1e-12).all()
            real = row_i[row_i >= 0]
            assert len(set(real.tolist())) == real.size
