"""Blocked out-of-core build + router (repro.kdtree.blocked).

The exactness bar (bit-identity against a monolithic build) lives in
``tests/index/test_blocked_identity.py``; this module covers the
machinery around it: partitioners, the chunked out-of-core staging
path, worker-process fan-out determinism, the persisted manifest, the
bounded resident-block cache, and the serving adapter.
"""

import json

import numpy as np
import pytest

from repro.kdtree import (
    BlockedBuildConfig,
    BlockedIndex,
    build_blocked,
    build_flat,
    knn_exact_batched,
)
from repro.kdtree.blocked import PARTITIONERS, _merge_rows
from repro.kdtree.search import PAD_INDEX


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(3)
    xyz = np.concatenate([
        rng.uniform(-80.0, 80.0, size=(6_000, 3)),
        rng.normal(scale=5.0, size=(2_000, 3)) + [40.0, -30.0, 5.0],
    ])
    queries = rng.uniform(-90.0, 90.0, size=(400, 3))
    return xyz, queries


def _exact(xyz, queries, k):
    flat, _ = build_flat(xyz)
    result, _ = knn_exact_batched(flat, queries, k)
    return result


def _assert_matches_monolithic(result, exact, xyz):
    np.testing.assert_array_equal(result.distances, exact.distances)
    differs = result.indices != exact.indices
    if differs.any():
        np.testing.assert_array_equal(
            xyz[result.indices[differs]], xyz[exact.indices[differs]]
        )


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
class TestPartitioners:
    def test_registry_has_both(self):
        assert {"grid", "kd-cut"} <= set(PARTITIONERS.available())

    @pytest.mark.parametrize("name", ["grid", "kd-cut"])
    def test_fit_covers_all_points(self, name, cloud):
        xyz, _ = cloud
        lo, hi = xyz.min(axis=0), xyz.max(axis=0)
        n_cells, assign = PARTITIONERS.resolve(name)(xyz[:2_000], lo, hi, 6)
        labels = assign(xyz)
        assert labels.shape == (xyz.shape[0],)
        assert labels.min() >= 0 and labels.max() < n_cells
        assert n_cells >= 6 or name == "kd-cut"

    @pytest.mark.parametrize("name", ["grid", "kd-cut"])
    def test_degenerate_cloud_single_cell(self, name):
        xyz = np.ones((50, 3)) * 7.5
        lo, hi = xyz.min(axis=0), xyz.max(axis=0)
        n_cells, assign = PARTITIONERS.resolve(name)(xyz, lo, hi, 4)
        labels = assign(xyz)
        assert (labels >= 0).all() and (labels < n_cells).all()
        # All duplicates land in one cell: nothing to split on.
        assert np.unique(labels).size == 1


# ----------------------------------------------------------------------
# Build paths
# ----------------------------------------------------------------------
class TestBuild:
    @pytest.mark.parametrize("partitioner", ["grid", "kd-cut"])
    def test_exact_vs_monolithic(self, cloud, tmp_path, partitioner):
        xyz, queries = cloud
        index = build_blocked(
            xyz,
            BlockedBuildConfig(n_blocks=7, partitioner=partitioner),
            block_dir=tmp_path / partitioner,
        )
        assert index.n_blocks >= 2
        _assert_matches_monolithic(
            index.query(queries, 8), _exact(xyz, queries, 8), xyz
        )

    def test_out_of_core_npy_source(self, cloud, tmp_path):
        """A .npy path + tiny chunks: staging memmaps, then cleanup."""
        xyz, queries = cloud
        src = tmp_path / "cloud.npy"
        np.save(src, xyz)
        index = build_blocked(
            str(src),
            BlockedBuildConfig(n_blocks=5, chunk_points=1_000),
            block_dir=tmp_path / "blocks",
        )
        # Staging buffers are deleted once the block snapshots exist.
        assert not (tmp_path / "blocks" / "staging").exists()
        _assert_matches_monolithic(
            index.query(queries, 6), _exact(xyz, queries, 6), xyz
        )

    def test_parallel_build_bit_identical_to_inline(self, cloud, tmp_path):
        """workers=2 must write byte-identical block files to workers=1."""
        xyz, queries = cloud
        inline = build_blocked(
            xyz, BlockedBuildConfig(n_blocks=4, workers=1),
            block_dir=tmp_path / "inline",
        )
        fanned = build_blocked(
            xyz, BlockedBuildConfig(n_blocks=4, workers=2),
            block_dir=tmp_path / "fanned",
        )
        for name in inline.manifest["files"]:
            a = (tmp_path / "inline" / name).read_bytes()
            b = (tmp_path / "fanned" / name).read_bytes()
            assert a == b, name
        want = inline.query(queries, 5)
        got = fanned.query(queries, 5)
        np.testing.assert_array_equal(want.indices, got.indices)
        np.testing.assert_array_equal(want.distances, got.distances)

    def test_manifest_contents(self, cloud, tmp_path):
        xyz, _ = cloud
        build_blocked(
            xyz, BlockedBuildConfig(n_blocks=3), block_dir=tmp_path
        )
        doc = json.loads((tmp_path / "manifest.json").read_text())
        assert doc["version"] == 1
        assert doc["n_points"] == xyz.shape[0]
        assert sum(doc["block_points"]) == xyz.shape[0]
        assert len(doc["files"]) == doc["n_blocks"] == len(doc["block_points"])
        assert doc["config"]["partitioner"] == "grid"
        assert len(doc["build"]["blocks"]) == doc["n_blocks"]
        assert doc["build"]["total_s"] > 0

    def test_tiny_cloud_fewer_blocks_than_requested(self, tmp_path):
        xyz = np.random.default_rng(0).normal(size=(5, 3))
        index = build_blocked(
            xyz, BlockedBuildConfig(n_blocks=4), block_dir=tmp_path
        )
        result = index.query(xyz, 8)
        assert (result.indices[:, 5:] == PAD_INDEX).all()
        assert np.isinf(result.distances[:, 5:]).all()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="unknown partitioner 'nope'"):
            BlockedBuildConfig(partitioner="nope")
        with pytest.raises(ValueError, match="n_blocks"):
            BlockedBuildConfig(n_blocks=0)
        with pytest.raises(ValueError, match="workers"):
            BlockedBuildConfig(workers=0)
        with pytest.raises(ValueError, match="chunk_points"):
            BlockedBuildConfig(chunk_points=0)
        with pytest.raises(ValueError, match="shape"):
            build_blocked(np.zeros((4, 2)))
        with pytest.raises(ValueError, match="empty"):
            build_blocked(np.zeros((0, 3)))


# ----------------------------------------------------------------------
# Reopen + resident-block cache
# ----------------------------------------------------------------------
class TestResidency:
    @pytest.fixture(scope="class")
    def built_dir(self, cloud, tmp_path_factory):
        xyz, _ = cloud
        block_dir = tmp_path_factory.mktemp("blocks")
        build_blocked(
            xyz, BlockedBuildConfig(n_blocks=8), block_dir=block_dir
        )
        return block_dir

    def test_reopen_from_manifest(self, cloud, built_dir):
        xyz, queries = cloud
        index = BlockedIndex(built_dir)
        assert index.n_points == xyz.shape[0]
        _assert_matches_monolithic(
            index.query(queries, 6), _exact(xyz, queries, 6), xyz
        )

    @pytest.mark.parametrize("eviction", ["lru", "cost-aware"])
    def test_block_budget_evicts_and_stays_exact(
        self, cloud, built_dir, eviction
    ):
        xyz, queries = cloud
        index = BlockedIndex(
            built_dir, max_resident_blocks=2, eviction=eviction
        )
        _assert_matches_monolithic(
            index.query(queries, 6), _exact(xyz, queries, 6), xyz
        )
        stats = index.stats()
        assert stats["resident_blocks"] <= 2
        assert stats["block_loads"] >= index.n_blocks
        assert stats["block_evictions"] >= stats["block_loads"] - 2
        assert stats["block_visits"] > 0

    def test_byte_budget_evicts(self, cloud, built_dir):
        xyz, queries = cloud
        index = BlockedIndex(built_dir, max_resident_bytes=1)
        _assert_matches_monolithic(
            index.query(queries[:50], 4), _exact(xyz, queries[:50], 4), xyz
        )
        # A 1-byte budget keeps exactly the block being searched.
        assert index.stats()["resident_blocks"] == 1
        assert index.stats()["block_evictions"] > 0

    def test_pruning_skips_far_blocks(self, cloud, built_dir):
        xyz, queries = cloud
        index = BlockedIndex(built_dir)
        index.query(queries, 4)
        stats = index.stats()
        # AABB pruning must beat the visit-everything worst case.
        assert stats["block_visits"] < queries.shape[0] * index.n_blocks

    def test_blocks_are_memory_mapped(self, built_dir):
        import mmap

        index = BlockedIndex(built_dir)
        resident = index._get_block(0)
        base = resident.tree.points
        seen = []
        while getattr(base, "base", None) is not None:
            base = base.base
            seen.append(base)
        assert any(isinstance(b, (np.memmap, mmap.mmap)) for b in seen)

    def test_missing_manifest_guidance(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="build_blocked"):
            BlockedIndex(tmp_path)

    def test_bad_budget_and_policy(self, built_dir):
        with pytest.raises(ValueError, match="max_resident_blocks"):
            BlockedIndex(built_dir, max_resident_blocks=0)
        with pytest.raises(ValueError, match="unknown eviction policy"):
            BlockedIndex(built_dir, eviction="nope")


# ----------------------------------------------------------------------
# Serving integration
# ----------------------------------------------------------------------
class TestServing:
    def test_blocked_shard_serves_exactly(self, cloud, tmp_path):
        from repro.serve import KnnServer, ServeConfig

        xyz, queries = cloud
        index = build_blocked(
            xyz, BlockedBuildConfig(n_blocks=6), block_dir=tmp_path
        )
        with KnnServer.from_shards(
            [index.as_shard()], ServeConfig(max_delay_s=0.0)
        ) as server:
            response = server.query(queries[:150], 6)
        _assert_matches_monolithic(response, _exact(xyz, queries[:150], 6), xyz)

    def test_degraded_budget_stays_in_home_block(self, cloud, tmp_path):
        xyz, queries = cloud
        index = build_blocked(
            xyz, BlockedBuildConfig(n_blocks=6), block_dir=tmp_path
        )
        shard = index.as_shard()
        idx, dst = shard.search(queries[:40], 4, budget=0)
        assert idx.shape == (40, 4)
        pad = idx == PAD_INDEX
        assert np.isinf(dst[pad]).all()
        # A real (budgeted) hit still references the global cloud.
        assert (idx[~pad] >= 0).all() and (idx[~pad] < xyz.shape[0]).all()

    def test_snapshot_refused(self, cloud, tmp_path):
        xyz, _ = cloud
        index = build_blocked(
            xyz, BlockedBuildConfig(n_blocks=2), block_dir=tmp_path
        )
        with pytest.raises(NotImplementedError, match="thread execution"):
            index.as_shard().snapshot()


# ----------------------------------------------------------------------
# Merge helper
# ----------------------------------------------------------------------
def test_merge_rows_matches_serve_merge():
    from repro.serve.sharding import merge_topk

    rng = np.random.default_rng(5)
    k = 6
    parts = []
    for _ in range(2):
        dst = np.sort(rng.uniform(0, 10, size=(30, k)), axis=1)
        idx = rng.integers(0, 1000, size=(30, k))
        dst[:, -2:] = np.inf
        idx[np.isinf(dst)] = PAD_INDEX
        parts.append((idx.astype(np.int64), dst))
    (ia, da), (ib, db) = parts
    got_idx, got_dst = _merge_rows(ia, da, ib, db, k)
    want_idx, want_dst = merge_topk([ia, ib], [da, db], k)
    np.testing.assert_array_equal(got_idx, want_idx)
    np.testing.assert_array_equal(got_dst, want_dst)
