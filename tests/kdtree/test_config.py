"""Unit tests for KdTreeConfig."""

import pytest

from repro.kdtree import KdTreeConfig


class TestValidation:
    def test_defaults(self):
        cfg = KdTreeConfig()
        assert cfg.bucket_capacity == 256

    def test_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            KdTreeConfig(bucket_capacity=0)

    def test_rejects_bad_sample(self):
        with pytest.raises(ValueError):
            KdTreeConfig(sample_size=0)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            KdTreeConfig(split_dims=(0, 3))
        with pytest.raises(ValueError):
            KdTreeConfig(split_dims=())


class TestTargetDepth:
    def test_matches_paper_formula(self):
        # d = log2(N / B_N): 30k points, 256/bucket -> ~128 leaves -> depth 7.
        assert KdTreeConfig(bucket_capacity=256).target_depth(30_000) == 7

    def test_small_input_is_depth_zero(self):
        assert KdTreeConfig(bucket_capacity=256).target_depth(100) == 0

    def test_max_depth_caps(self):
        cfg = KdTreeConfig(bucket_capacity=4, max_depth=3)
        assert cfg.target_depth(10_000) == 3

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            KdTreeConfig().target_depth(0)


class TestSampling:
    def test_sample_capped_at_n(self):
        cfg = KdTreeConfig(sample_size=5000)
        assert cfg.effective_sample_size(100) == 100

    def test_default_scales_with_leaves(self):
        cfg = KdTreeConfig(bucket_capacity=256)
        assert cfg.effective_sample_size(30_000) == 16 * 128

    def test_explicit_sample_size(self):
        cfg = KdTreeConfig(sample_size=333)
        assert cfg.effective_sample_size(30_000) == 333


class TestDimCycle:
    def test_cycles_x_y_z(self):
        cfg = KdTreeConfig()
        assert [cfg.dim_at_depth(d) for d in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_custom_cycle(self):
        cfg = KdTreeConfig(split_dims=(2, 0))
        assert [cfg.dim_at_depth(d) for d in range(4)] == [2, 0, 2, 0]
