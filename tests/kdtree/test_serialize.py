"""Unit tests for k-d tree serialization."""

import io

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import (
    KdTreeConfig,
    build_tree,
    check_tree,
    knn_approx,
    load_tree,
    save_tree,
    tree_from_arrays,
    tree_to_arrays,
)


@pytest.fixture
def tree(rng):
    cloud = uniform_cloud(1_000, rng=rng)
    tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=64))
    return tree


class TestArrays:
    def test_roundtrip_preserves_structure(self, tree):
        clone = tree_from_arrays(tree_to_arrays(tree))
        check_tree(clone)
        assert clone.n_nodes == tree.n_nodes
        assert clone.n_leaves == tree.n_leaves
        for a, b in zip(tree.nodes, clone.nodes):
            assert (a.dim, a.left, a.right, a.bucket_id) == (
                b.dim, b.left, b.right, b.bucket_id
            )
            assert a.threshold == b.threshold or (
                np.isnan(a.threshold) and np.isnan(b.threshold)
            )

    def test_roundtrip_preserves_search(self, tree, rng):
        clone = tree_from_arrays(tree_to_arrays(tree))
        queries = uniform_cloud(50, rng=rng).xyz
        original = knn_approx(tree, queries, 5)
        restored = knn_approx(clone, queries, 5)
        assert np.array_equal(original.indices, restored.indices)

    def test_version_check(self, tree):
        arrays = tree_to_arrays(tree)
        arrays["version"] = np.array([99], dtype=np.int64)
        with pytest.raises(ValueError, match="version"):
            tree_from_arrays(arrays)

    def test_empty_bucket_roundtrip(self, rng):
        # Degenerate data produces empty buckets; they must survive.
        points = np.tile([[0.0, 0.0, 0.0]], (100, 1))
        degenerate, _ = build_tree(points, KdTreeConfig(bucket_capacity=16))
        clone = tree_from_arrays(tree_to_arrays(degenerate))
        assert int(clone.bucket_sizes().sum()) == 100


class TestFileIo:
    def test_save_load_stream(self, tree):
        buffer = io.BytesIO()
        save_tree(tree, buffer)
        buffer.seek(0)
        clone = load_tree(buffer)
        check_tree(clone)
        assert clone.n_points == tree.n_points

    def test_save_load_path(self, tree, tmp_path):
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        clone = load_tree(path)
        assert clone.n_nodes == tree.n_nodes
