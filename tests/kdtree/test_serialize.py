"""Unit tests for k-d tree serialization."""

import io

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import (
    KdTreeConfig,
    build_flat,
    build_tree,
    check_tree,
    flat_from_arrays,
    flat_to_arrays,
    knn_approx,
    knn_exact_batched,
    load_flat,
    load_tree,
    save_flat,
    save_tree,
    tree_from_arrays,
    tree_to_arrays,
)


@pytest.fixture
def tree(rng):
    cloud = uniform_cloud(1_000, rng=rng)
    tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=64))
    return tree


class TestArrays:
    def test_roundtrip_preserves_structure(self, tree):
        clone = tree_from_arrays(tree_to_arrays(tree))
        check_tree(clone)
        assert clone.n_nodes == tree.n_nodes
        assert clone.n_leaves == tree.n_leaves
        for a, b in zip(tree.nodes, clone.nodes):
            assert (a.dim, a.left, a.right, a.bucket_id) == (
                b.dim, b.left, b.right, b.bucket_id
            )
            assert a.threshold == b.threshold or (
                np.isnan(a.threshold) and np.isnan(b.threshold)
            )

    def test_roundtrip_preserves_search(self, tree, rng):
        clone = tree_from_arrays(tree_to_arrays(tree))
        queries = uniform_cloud(50, rng=rng).xyz
        original = knn_approx(tree, queries, 5)
        restored = knn_approx(clone, queries, 5)
        assert np.array_equal(original.indices, restored.indices)

    def test_version_check(self, tree):
        arrays = tree_to_arrays(tree)
        arrays["version"] = np.array([99], dtype=np.int64)
        with pytest.raises(ValueError, match="version"):
            tree_from_arrays(arrays)

    def test_empty_bucket_roundtrip(self, rng):
        # Degenerate data produces empty buckets; they must survive.
        points = np.tile([[0.0, 0.0, 0.0]], (100, 1))
        degenerate, _ = build_tree(points, KdTreeConfig(bucket_capacity=16))
        clone = tree_from_arrays(tree_to_arrays(degenerate))
        assert int(clone.bucket_sizes().sum()) == 100


class TestFileIo:
    def test_save_load_stream(self, tree):
        buffer = io.BytesIO()
        save_tree(tree, buffer)
        buffer.seek(0)
        clone = load_tree(buffer)
        check_tree(clone)
        assert clone.n_points == tree.n_points

    def test_save_load_path(self, tree, tmp_path):
        path = tmp_path / "tree.npz"
        save_tree(tree, path)
        clone = load_tree(path)
        assert clone.n_nodes == tree.n_nodes


class TestFlatSnapshots:
    @pytest.fixture
    def flat(self, rng):
        cloud = uniform_cloud(1_500, rng=rng)
        flat, _ = build_flat(cloud, KdTreeConfig(bucket_capacity=64))
        return flat

    def test_arrays_roundtrip_bit_identical(self, flat):
        clone = flat_from_arrays(flat_to_arrays(flat))
        for name in ("points", "dim", "threshold", "left", "right",
                     "is_leaf", "bucket_id", "bucket_offsets", "bucket_members"):
            a, b = getattr(flat, name), getattr(clone, name)
            assert a.dtype == b.dtype
            assert np.array_equal(a, b), name

    def test_file_roundtrip_bit_identical(self, flat, tmp_path):
        path = tmp_path / "flat.npz"
        save_flat(flat, path)
        clone = load_flat(path)
        for name in ("points", "threshold", "bucket_members"):
            assert np.array_equal(getattr(flat, name), getattr(clone, name))

    def test_loaded_flat_answers_identically(self, flat, rng, tmp_path):
        path = tmp_path / "flat.npz"
        save_flat(flat, path)
        clone = load_flat(path)
        queries = uniform_cloud(200, rng=rng).xyz
        a, _ = knn_exact_batched(flat, queries, 6)
        b, _ = knn_exact_batched(clone, queries, 6)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.distances, b.distances)

    def test_extras_roundtrip(self, flat, tmp_path):
        path = tmp_path / "flat.npz"
        ids = np.arange(0, 1_500, 3, dtype=np.int64)
        save_flat(flat, path, extra={"global_ids": ids})
        clone, extras = load_flat(path, with_extra=True)
        assert np.array_equal(extras["global_ids"], ids)
        assert np.array_equal(clone.points, flat.points)
        # Default load ignores extras.
        assert isinstance(load_flat(path), type(flat))

    def test_extra_name_collision_rejected(self, flat, tmp_path):
        with pytest.raises(ValueError, match="collides"):
            save_flat(flat, tmp_path / "x.npz", extra={"points": np.zeros(3)})

    def test_version_check(self, flat):
        arrays = flat_to_arrays(flat)
        arrays["flat_version"] = np.array([99], dtype=np.int64)
        with pytest.raises(ValueError, match="version"):
            flat_from_arrays(arrays)

    def test_stream_roundtrip(self, flat):
        buffer = io.BytesIO()
        save_flat(flat, buffer)
        buffer.seek(0)
        clone = load_flat(buffer)
        assert np.array_equal(clone.bucket_offsets, flat.bucket_offsets)


class TestIndexSnapshots:
    @pytest.fixture
    def reference(self, rng):
        return uniform_cloud(1_200, rng=rng).xyz

    @pytest.mark.parametrize("name", ["kd-approx", "kd-exact"])
    def test_adapter_roundtrip_identical(self, name, reference, rng, tmp_path):
        from repro.index import make_index

        index = make_index(name, reference)
        path = tmp_path / "snap.npz"
        index.save_snapshot(path)
        restored = type(index).from_snapshot(path)
        queries = uniform_cloud(100, rng=rng).xyz
        a = index.query(queries, 5)
        b = restored.query(queries, 5)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.distances, b.distances)
        assert restored.stats()["n_reference"] == 1_200

    def test_bbf_snapshot_unsupported(self, reference, tmp_path):
        from repro.index import make_index
        from repro.index.adapters import KdBbfIndex

        index = make_index("kd-bbf", reference)
        path = tmp_path / "snap.npz"
        index.save_snapshot(path)  # saving works: the flat layout exists
        with pytest.raises(NotImplementedError, match="kd-bbf"):
            KdBbfIndex.from_snapshot(path)
