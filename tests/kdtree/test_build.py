"""Unit tests for tree construction and point placement."""

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import KdTreeConfig, build_tree, check_tree, place_points
from repro.kdtree.node import NO_NODE


class TestBuild:
    def test_small_cloud_single_leaf(self, rng):
        cloud = uniform_cloud(50, rng=rng)
        tree, trace = build_tree(cloud, KdTreeConfig(bucket_capacity=256))
        assert tree.n_nodes == 1
        assert tree.nodes[0].is_leaf
        assert trace.sort_sizes == []

    def test_balanced_node_count(self, rng):
        # Depth-d full tree has 2^(d+1) - 1 nodes.
        cloud = uniform_cloud(4096, rng=rng)
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=256))
        assert tree.depth() == 4
        assert tree.n_nodes == 2**5 - 1
        assert tree.n_leaves == 16

    def test_all_points_placed(self, rng):
        cloud = uniform_cloud(3000, rng=rng)
        tree, _ = build_tree(cloud)
        assert int(tree.bucket_sizes().sum()) == 3000
        check_tree(tree)

    def test_place_false_leaves_buckets_empty(self, rng):
        cloud = uniform_cloud(3000, rng=rng)
        tree, _ = build_tree(cloud, place=False)
        assert int(tree.bucket_sizes().sum()) == 0
        check_tree(tree, require_all_points=False)

    def test_trace_records_sorts(self, rng):
        cloud = uniform_cloud(4096, rng=rng)
        tree, trace = build_tree(cloud, KdTreeConfig(bucket_capacity=256))
        n_internal = tree.n_nodes - tree.n_leaves
        assert len(trace.sort_sizes) == n_internal
        assert trace.sorted_elements == sum(trace.sort_sizes)
        assert trace.placement_traversals == 4096

    def test_deterministic_given_rng(self, rng):
        cloud = uniform_cloud(2000, rng=rng)
        t1, _ = build_tree(cloud, rng=np.random.default_rng(3))
        t2, _ = build_tree(cloud, rng=np.random.default_rng(3))
        assert [n.threshold for n in t1.nodes] == [n.threshold for n in t2.nodes]

    def test_dims_cycle_by_depth(self, rng):
        cloud = uniform_cloud(4096, rng=rng)
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=256))
        for node in tree.nodes:
            if not node.is_leaf:
                assert node.dim == node.depth % 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_tree(np.empty((0, 3)))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            build_tree(np.zeros((5, 2)))

    def test_duplicate_points_all_placed(self):
        points = np.tile([[1.0, 2.0, 3.0]], (500, 1))
        tree, _ = build_tree(points, KdTreeConfig(bucket_capacity=64))
        assert int(tree.bucket_sizes().sum()) == 500
        check_tree(tree)


class TestDescend:
    def test_descend_batch_matches_scalar(self, rng):
        cloud = uniform_cloud(2000, rng=rng)
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=64))
        queries = uniform_cloud(100, rng=rng).xyz
        batch = tree.descend_batch(queries)
        for i in range(100):
            assert tree.descend(queries[i]).index == batch[i]

    def test_descend_path_ends_at_leaf(self, small_tree):
        point = small_tree.points[0]
        path = small_tree.descend_path(point)
        assert path[0] == small_tree.ROOT
        assert small_tree.nodes[path[-1]].is_leaf
        assert len(path) == small_tree.nodes[path[-1]].depth + 1

    def test_threshold_point_goes_left(self, rng):
        cloud = uniform_cloud(1024, rng=rng)
        tree, _ = build_tree(cloud, KdTreeConfig(bucket_capacity=256))
        root = tree.nodes[tree.ROOT]
        probe = np.array([root.threshold, 0.0, 0.0])
        path = tree.descend_path(probe)
        assert path[1] == root.left


class TestReplacement:
    def test_place_points_is_idempotent(self, rng):
        cloud = uniform_cloud(1500, rng=rng)
        tree, _ = build_tree(cloud)
        before = [b.copy() for b in tree.buckets]
        place_points(tree)
        for a, b in zip(before, tree.buckets):
            assert np.array_equal(a, b)

    def test_parent_pointers(self, small_tree):
        for node in small_tree.nodes:
            if node.index == small_tree.ROOT:
                assert node.parent == NO_NODE
            else:
                parent = small_tree.nodes[node.parent]
                assert node.index in (parent.left, parent.right)
