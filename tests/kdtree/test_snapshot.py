"""Unit tests for the unified Snapshot handle (repro.kdtree.snapshot)."""

import io

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import KdTreeConfig, Snapshot, build_flat, knn_exact_batched
from repro.kdtree.snapshot import FLAT_FIELDS, FORMAT_VERSION


@pytest.fixture
def flat(rng):
    cloud = uniform_cloud(1_500, rng=rng)
    flat, _ = build_flat(cloud, KdTreeConfig(bucket_capacity=64))
    return flat


class TestRoundTrips:
    def test_flat_roundtrip_bit_identical(self, flat):
        clone = Snapshot.from_flat(flat).to_flat()
        for name in FLAT_FIELDS:
            a, b = getattr(flat, name), getattr(clone, name)
            assert a.dtype == b.dtype
            assert np.array_equal(a, b), name

    def test_payload_roundtrip(self, flat):
        snap = Snapshot.from_flat(flat, extra={"tag": np.arange(4)})
        clone = Snapshot.from_payload(snap.to_payload())
        assert clone.version == FORMAT_VERSION
        assert np.array_equal(clone.extras["tag"], np.arange(4))
        assert np.array_equal(clone.arrays["points"], flat.points)

    def test_file_roundtrip_answers_identically(self, flat, rng, tmp_path):
        path = tmp_path / "snap.npz"
        Snapshot.from_flat(flat).save(path)
        clone = Snapshot.load(path).to_flat()
        queries = uniform_cloud(200, rng=rng).xyz
        a, _ = knn_exact_batched(flat, queries, 6)
        b, _ = knn_exact_batched(clone, queries, 6)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.distances, b.distances)

    def test_stream_roundtrip(self, flat):
        buffer = io.BytesIO()
        Snapshot.from_flat(flat).save(buffer)
        buffer.seek(0)
        clone = Snapshot.load(buffer)
        assert np.array_equal(clone.arrays["bucket_offsets"], flat.bucket_offsets)


class TestWireCompat:
    """Old save_flat files and new Snapshot files must interoperate."""

    def test_legacy_save_flat_file_loads(self, flat, tmp_path):
        from repro.kdtree.serialize import save_flat

        path = tmp_path / "legacy.npz"
        ids = np.arange(0, 1_500, 3, dtype=np.int64)
        with pytest.deprecated_call():
            save_flat(flat, path, extra={"global_ids": ids})
        snap = Snapshot.load(path)
        assert np.array_equal(snap.extras["global_ids"], ids)
        assert np.array_equal(snap.to_flat().points, flat.points)

    def test_snapshot_file_loads_via_legacy_reader(self, flat, tmp_path):
        from repro.kdtree.serialize import load_flat

        path = tmp_path / "new.npz"
        ids = np.arange(7, dtype=np.int64)
        Snapshot.from_flat(flat, extra={"global_ids": ids}).save(path)
        with pytest.deprecated_call():
            clone, extras = load_flat(path, with_extra=True)
        assert np.array_equal(extras["global_ids"], ids)
        assert np.array_equal(clone.points, flat.points)


class TestValidation:
    def test_missing_field_rejected(self, flat):
        payload = Snapshot.from_flat(flat).to_payload()
        del payload["threshold"]
        with pytest.raises(ValueError, match="missing"):
            Snapshot.from_payload(payload)

    def test_extra_collision_rejected(self, flat):
        with pytest.raises(ValueError, match="collides"):
            Snapshot.from_flat(flat, extra={"points": np.zeros(3)})

    def test_version_check(self, flat):
        payload = Snapshot.from_flat(flat).to_payload()
        payload["flat_version"] = np.array([99], dtype=np.int64)
        with pytest.raises(ValueError, match="version"):
            Snapshot.from_payload(payload)

    def test_missing_version_header_rejected(self, flat):
        payload = Snapshot.from_flat(flat).to_payload()
        del payload["flat_version"]
        with pytest.raises(ValueError, match="version"):
            Snapshot.from_payload(payload)


class TestIntrospection:
    def test_n_points_and_nbytes(self, flat):
        snap = Snapshot.from_flat(flat)
        assert snap.n_points == 1_500
        assert snap.nbytes > flat.points.nbytes

    def test_from_flat_takes_no_copies(self, flat):
        snap = Snapshot.from_flat(flat)
        assert snap.arrays["points"] is flat.points


class TestMmapLoad:
    """``load(mmap_mode=...)``: lazy page-in, bit-identical answers."""

    def _saved(self, flat, tmp_path, **save_kw):
        path = tmp_path / "mapped.npz"
        ids = np.arange(1_500, dtype=np.int64)
        Snapshot.from_flat(flat, extra={"global_ids": ids}).save(path, **save_kw)
        return path

    def test_arrays_bit_identical_and_mapped(self, flat, tmp_path):
        path = self._saved(flat, tmp_path, compressed=False)
        snap = Snapshot.load(path, mmap_mode="r")
        assert snap.is_mapped
        for name in FLAT_FIELDS:
            a, b = getattr(flat, name), snap.arrays[name]
            assert a.dtype == b.dtype
            assert np.array_equal(a, b), name
        assert not snap.arrays["points"].flags.writeable
        assert np.array_equal(snap.extras["global_ids"], np.arange(1_500))

    def test_served_answers_bit_identical_under_mmap(self, flat, rng, tmp_path):
        from repro.serve import KnnServer, ServeConfig
        from repro.serve.sharding import ShardState

        path = self._saved(flat, tmp_path, compressed=False)
        queries = uniform_cloud(200, rng=rng).xyz
        config = ServeConfig(max_delay_s=0.0)
        shard_mem = ShardState.from_snapshot(Snapshot.load(path))
        shard_map = ShardState.from_snapshot(Snapshot.load(path, mmap_mode="r"))
        with KnnServer.from_shards([shard_mem], config) as server:
            want = server.query(queries, 6)
        with KnnServer.from_shards([shard_map], config) as server:
            got = server.query(queries, 6)
        assert np.array_equal(want.indices, got.indices)
        assert np.array_equal(want.distances, got.distances)

    def test_default_load_unchanged(self, flat, tmp_path):
        path = self._saved(flat, tmp_path, compressed=False)
        snap = Snapshot.load(path)
        assert not snap.is_mapped
        assert snap.arrays["points"].flags.writeable

    def test_compressed_snapshot_refused_with_guidance(self, flat, tmp_path):
        path = self._saved(flat, tmp_path)  # compressed default
        with pytest.raises(ValueError, match="compressed=False"):
            Snapshot.load(path, mmap_mode="r")

    def test_stream_and_bad_mode_rejected(self, flat, tmp_path):
        path = self._saved(flat, tmp_path, compressed=False)
        with pytest.raises(ValueError, match="mmap_mode"):
            Snapshot.load(path, mmap_mode="r+")
        with pytest.raises(TypeError, match="filesystem path"):
            Snapshot.load(io.BytesIO(path.read_bytes()), mmap_mode="r")
