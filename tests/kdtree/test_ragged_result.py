"""RaggedResult CSR contract: canonical order, dtypes, serialization.

Companion to ``test_snapshot.py``: the ragged container is the wire
format for every radius answer, so its dtype stability (int64
indices/offsets, float64 distances) must survive both the JSON-style
``as_dict``/``from_dict`` round trip and a ``Snapshot`` extras round
trip through an ``.npz`` file — the path a pipeline takes when it
persists precomputed neighborhoods next to the tree they came from.
"""

import numpy as np
import pytest

from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import KdTreeConfig, Snapshot, build_flat
from repro.query import RaggedResult, radius_batched
from repro.query.result import build_ragged


@pytest.fixture
def result(rng):
    cloud = uniform_cloud(800, rng=rng)
    flat, _ = build_flat(cloud, KdTreeConfig(bucket_capacity=32))
    return radius_batched(flat, cloud.xyz[:100], 6.0, max_neighbors=12)


class TestContract:
    def test_dtypes(self, result):
        assert result.indices.dtype == np.int64
        assert result.offsets.dtype == np.int64
        assert result.distances.dtype == np.float64

    def test_construction_coerces_dtypes(self):
        r = RaggedResult(
            indices=[0, 1], distances=[0.5, 1.5], offsets=[0, 1, 2]
        )
        assert r.indices.dtype == np.int64
        assert r.offsets.dtype == np.int64
        assert r.distances.dtype == np.float64
        assert r.n_queries == 2 and r.n_pairs == 2

    def test_row_views_and_counts(self, result):
        counts = result.counts()
        assert counts.sum() == result.n_pairs
        idx, dst = result.row(0)
        assert idx.size == counts[0] == dst.size

    def test_invalid_csr_rejected(self):
        with pytest.raises(ValueError):
            RaggedResult(indices=[0], distances=[0.0], offsets=[0, 2])
        with pytest.raises(ValueError):
            RaggedResult(indices=[0, 1], distances=[0.0, 0.0],
                         offsets=[0, 2, 1, 2])
        with pytest.raises(ValueError):
            RaggedResult(indices=[0], distances=[0.0, 1.0], offsets=[0, 1])

    def test_build_ragged_canonical_order(self):
        # Loose pairs in scrambled order; ties on distance break by index.
        qid = np.array([1, 0, 1, 0, 1], dtype=np.int64)
        idx = np.array([9, 4, 2, 7, 5], dtype=np.int64)
        dst = np.array([2.0, 1.0, 2.0, 0.5, 1.0])
        r = build_ragged(qid, idx, dst, 2)
        np.testing.assert_array_equal(r.offsets, [0, 2, 5])
        np.testing.assert_array_equal(r.indices, [7, 4, 5, 2, 9])
        np.testing.assert_array_equal(r.distances, [0.5, 1.0, 1.0, 2.0, 2.0])
        capped = build_ragged(qid, idx, dst, 2, max_neighbors=2)
        np.testing.assert_array_equal(capped.indices, [7, 4, 5, 2])


class TestSerialization:
    def test_dict_roundtrip_bit_identical(self, result):
        clone = RaggedResult.from_dict(result.as_dict())
        assert clone.indices.dtype == np.int64
        assert clone.offsets.dtype == np.int64
        assert clone.distances.dtype == np.float64
        np.testing.assert_array_equal(clone.offsets, result.offsets)
        np.testing.assert_array_equal(clone.indices, result.indices)
        np.testing.assert_array_equal(clone.distances, result.distances)

    def test_empty_roundtrip(self):
        empty = RaggedResult(
            indices=np.empty(0, dtype=np.int64),
            distances=np.empty(0),
            offsets=np.zeros(4, dtype=np.int64),
        )
        clone = RaggedResult.from_dict(empty.as_dict())
        assert clone.n_queries == 3 and clone.n_pairs == 0
        assert clone.indices.dtype == np.int64
        assert clone.offsets.dtype == np.int64

    def test_snapshot_extras_roundtrip(self, rng, result, tmp_path):
        """CSR arrays persist losslessly next to the tree they came from."""
        cloud = uniform_cloud(800, rng=rng)
        flat, _ = build_flat(cloud, KdTreeConfig(bucket_capacity=32))
        path = tmp_path / "tree_with_neighborhoods.npz"
        Snapshot.from_flat(
            flat,
            extra={
                "radius_indices": result.indices,
                "radius_distances": result.distances,
                "radius_offsets": result.offsets,
            },
        ).save(path)
        snap = Snapshot.load(path)
        clone = RaggedResult(
            indices=snap.extras["radius_indices"],
            distances=snap.extras["radius_distances"],
            offsets=snap.extras["radius_offsets"],
        )
        assert snap.extras["radius_offsets"].dtype == np.int64
        assert snap.extras["radius_indices"].dtype == np.int64
        assert snap.extras["radius_distances"].dtype == np.float64
        np.testing.assert_array_equal(clone.offsets, result.offsets)
        np.testing.assert_array_equal(clone.indices, result.indices)
        np.testing.assert_array_equal(clone.distances, result.distances)
