"""Batched radius search: bit-identity and degenerate workloads.

The batched kernel's acceptance bar matches the blocked router's: its
answer must equal the per-query reference loop bit for bit — same
pairs, same distances, same canonical (distance, index) row order,
same ``max_neighbors`` cap — and both must equal brute force.  The
degenerate workloads here are the classic ways a vectorized rewrite
drifts: zero radius, all-duplicate clouds, rows with no neighbors at
all, and off-origin UTM frames where sloppy AABB lower bounds start
pruning buckets that still hold in-ball members.
"""

import numpy as np
import pytest

from repro.kdtree import KdTreeConfig, build_flat
from repro.query import (
    RaggedResult,
    radius_batched,
    radius_reference,
)
from repro.query.radius import radius_bruteforce


def _assert_same(a: RaggedResult, b: RaggedResult):
    np.testing.assert_array_equal(a.offsets, b.offsets)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.distances, b.distances)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(23)
    xyz = rng.uniform(-40.0, 40.0, size=(3_000, 3))
    queries = np.concatenate(
        [rng.uniform(-40.0, 40.0, size=(250, 3)), xyz[:50]]
    )
    flat, _ = build_flat(xyz, KdTreeConfig(bucket_capacity=48))
    return xyz, queries, flat


class TestBitIdentity:
    @pytest.mark.parametrize("radius", [0.5, 3.0, 12.0])
    def test_matches_reference_loop(self, workload, radius):
        _, queries, flat = workload
        _assert_same(
            radius_batched(flat, queries, radius),
            radius_reference(flat, queries, radius),
        )

    @pytest.mark.parametrize("cap", [1, 4, 17])
    def test_cap_matches_reference(self, workload, cap):
        _, queries, flat = workload
        batched = radius_batched(flat, queries, 6.0, max_neighbors=cap)
        _assert_same(
            batched,
            radius_reference(flat, queries, 6.0, max_neighbors=cap),
        )
        assert (batched.counts() <= cap).all()

    def test_matches_bruteforce(self, workload):
        xyz, queries, flat = workload
        _assert_same(
            radius_batched(flat, queries, 5.0, max_neighbors=8),
            radius_bruteforce(xyz, queries, 5.0, max_neighbors=8),
        )

    def test_rows_in_canonical_order(self, workload):
        _, queries, flat = workload
        result = radius_batched(flat, queries, 8.0)
        for i in range(result.n_queries):
            idx, dst = result.row(i)
            order = np.lexsort((idx, dst))
            np.testing.assert_array_equal(order, np.arange(idx.size))


class TestDegenerateWorkloads:
    def test_zero_radius_self_query(self, workload):
        xyz, _, flat = workload
        result = radius_batched(flat, xyz[:200], 0.0)
        assert (result.counts() == 1).all()
        np.testing.assert_array_equal(result.indices, np.arange(200))
        assert (result.distances == 0.0).all()

    def test_all_duplicate_cloud(self):
        xyz = np.tile([[1.0, -2.0, 3.0]], (500, 1))
        flat, _ = build_flat(xyz, KdTreeConfig(bucket_capacity=32))
        queries = xyz[:10]
        result = radius_batched(flat, queries, 0.0)
        assert (result.counts() == 500).all()
        # Ties break by ascending index within every row.
        for i in range(result.n_queries):
            idx, dst = result.row(i)
            np.testing.assert_array_equal(idx, np.arange(500))
            assert (dst == 0.0).all()
        capped = radius_batched(flat, queries, 0.0, max_neighbors=3)
        assert (capped.counts() == 3).all()
        _assert_same(capped, radius_reference(flat, queries, 0.0,
                                              max_neighbors=3))

    def test_empty_rows(self, workload):
        xyz, _, flat = workload
        far = np.array([[1e4, 1e4, 1e4], [-1e4, 0.0, 0.0]])
        result = radius_batched(flat, far, 1.0)
        assert result.n_pairs == 0
        assert (result.counts() == 0).all()
        _assert_same(result, radius_reference(flat, far, 1.0))

    def test_empty_query_batch(self, workload):
        _, _, flat = workload
        result = radius_batched(flat, np.empty((0, 3)), 2.0)
        assert result.n_queries == 0
        assert result.n_pairs == 0

    @pytest.mark.parametrize(
        "offset", [[500_000.0, 4_000_000.0, 1_000.0], [-750_000.0, 0.0, 0.0]]
    )
    def test_off_origin_utm_frame(self, workload, offset):
        xyz, queries, _ = workload
        shift = np.asarray(offset)
        flat, _ = build_flat(xyz + shift, KdTreeConfig(bucket_capacity=48))
        _assert_same(
            radius_batched(flat, queries + shift, 4.0, max_neighbors=6),
            radius_bruteforce(xyz + shift, queries + shift, 4.0,
                              max_neighbors=6),
        )


class TestValidation:
    def test_negative_radius_rejected(self, workload):
        _, queries, flat = workload
        with pytest.raises(ValueError, match="radius"):
            radius_batched(flat, queries, -1.0)

    def test_nonpositive_cap_rejected(self, workload):
        _, queries, flat = workload
        with pytest.raises(ValueError, match="max_neighbors"):
            radius_batched(flat, queries, 1.0, max_neighbors=0)

    def test_bad_query_shape_rejected(self, workload):
        _, _, flat = workload
        with pytest.raises(ValueError):
            radius_batched(flat, np.zeros((4, 2)), 1.0)
