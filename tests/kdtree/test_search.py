"""Unit tests for approximate, best-bin-first, and exact search."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.baselines import knn_bruteforce
from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import BbfConfig, KdTreeConfig, build_tree, knn_approx, knn_bbf, knn_exact
from repro.kdtree.search import PAD_INDEX


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(42)
    ref = uniform_cloud(2000, rng=rng)
    queries = uniform_cloud(200, rng=rng).xyz
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=64))
    return tree, ref, queries


class TestExact:
    def test_matches_scipy(self, setup):
        tree, ref, queries = setup
        result = knn_exact(tree, queries, k=5)
        d, i = cKDTree(ref.xyz).query(queries, k=5)
        assert np.allclose(result.distances, d)

    def test_k_one(self, setup):
        tree, ref, queries = setup
        result = knn_exact(tree, queries, k=1)
        d, _ = cKDTree(ref.xyz).query(queries, k=1)
        assert np.allclose(result.distances[:, 0], d)

    def test_k_larger_than_n_pads(self, rng):
        ref = uniform_cloud(5, rng=rng)
        tree, _ = build_tree(ref)
        result = knn_exact(tree, ref.xyz[:2], k=10)
        assert (result.indices[:, 5:] == PAD_INDEX).all()
        assert np.isinf(result.distances[:, 5:]).all()
        assert (result.indices[:, :5] != PAD_INDEX).all()

    def test_query_on_reference_point_finds_itself(self, setup):
        tree, ref, _ = setup
        result = knn_exact(tree, ref.xyz[7], k=1)
        assert result.indices[0, 0] == 7
        assert result.distances[0, 0] == 0.0


class TestApprox:
    def test_distances_sorted(self, setup):
        tree, _, queries = setup
        result = knn_approx(tree, queries, k=8)
        valid = result.distances[~np.isinf(result.distances).any(axis=1)]
        assert (np.diff(valid, axis=1) >= 0).all()

    def test_results_come_from_own_bucket(self, setup):
        tree, _, queries = setup
        result = knn_approx(tree, queries, k=3)
        leaf_ids = tree.descend_batch(queries)
        for qi in range(len(queries)):
            bucket = set(tree.buckets[tree.nodes[int(leaf_ids[qi])].bucket_id].tolist())
            found = result.indices[qi]
            assert all(int(f) in bucket for f in found if f != PAD_INDEX)

    def test_never_beats_exact(self, setup):
        tree, _, queries = setup
        approx = knn_approx(tree, queries, k=4)
        exact = knn_exact(tree, queries, k=4)
        finite = ~np.isinf(approx.distances)
        assert (approx.distances[finite] >= exact.distances[finite] - 1e-12).all()

    def test_majority_recall_on_uniform(self, setup):
        tree, ref, queries = setup
        approx = knn_approx(tree, queries, k=5)
        exact = knn_bruteforce(ref, queries, 5)
        hits = np.mean([
            len(set(approx.indices[i]) & set(exact.indices[i])) / 5
            for i in range(len(queries))
        ])
        assert hits > 0.5

    def test_single_query_shape(self, setup):
        tree, _, queries = setup
        result = knn_approx(tree, queries[0], k=2)
        assert result.indices.shape == (1, 2)

    def test_rejects_bad_k(self, setup):
        tree, _, queries = setup
        with pytest.raises(ValueError):
            knn_approx(tree, queries, k=0)


class TestBbf:
    def test_one_leaf_equals_approx(self, setup):
        tree, _, queries = setup
        bbf = knn_bbf(tree, queries, k=5, config=BbfConfig(max_leaves=1))
        approx = knn_approx(tree, queries, k=5)
        assert np.array_equal(bbf.indices, approx.indices)

    def test_more_leaves_more_accurate(self, setup):
        tree, ref, queries = setup
        exact = knn_bruteforce(ref, queries, 5)

        def recall(result):
            return np.mean([
                len(set(result.indices[i]) & set(exact.indices[i])) / 5
                for i in range(len(queries))
            ])

        r1 = recall(knn_bbf(tree, queries, k=5, config=BbfConfig(max_leaves=1)))
        r4 = recall(knn_bbf(tree, queries, k=5, config=BbfConfig(max_leaves=4)))
        assert r4 >= r1

    def test_unbounded_budget_is_exact(self, setup):
        tree, _, queries = setup
        bbf = knn_bbf(tree, queries, k=5, config=BbfConfig(max_leaves=tree.n_leaves))
        exact = knn_exact(tree, queries, k=5)
        assert np.allclose(bbf.distances, exact.distances)

    def test_rejects_bad_budget(self, setup):
        tree, _, queries = setup
        with pytest.raises(ValueError):
            knn_bbf(tree, queries, k=5, config=BbfConfig(max_leaves=0))

    def test_deprecated_max_leaves_keyword(self, setup):
        tree, _, queries = setup
        with pytest.warns(DeprecationWarning):
            old = knn_bbf(tree, queries, k=5, max_leaves=2)
        new = knn_bbf(tree, queries, k=5, config=BbfConfig(max_leaves=2))
        assert np.array_equal(old.indices, new.indices)

    def test_rejects_config_and_deprecated_keyword(self, setup):
        tree, _, queries = setup
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            knn_bbf(tree, queries, k=5, config=BbfConfig(), max_leaves=2)
