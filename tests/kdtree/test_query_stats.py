"""Unit tests for the approximate-search miss diagnosis."""

import numpy as np
import pytest

from repro.baselines import knn_bruteforce
from repro.datasets.synthetic import uniform_cloud
from repro.kdtree import (
    KdTreeConfig,
    boundary_distances,
    build_tree,
    diagnose_misses,
    knn_approx,
    leaf_regions,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(31)
    ref = uniform_cloud(3_000, rng=rng)
    queries = uniform_cloud(400, rng=rng).xyz
    tree, _ = build_tree(ref, KdTreeConfig(bucket_capacity=64))
    approx = knn_approx(tree, queries, 5)
    exact = knn_bruteforce(ref, queries, 5)
    return tree, ref, queries, approx, exact


class TestLeafRegions:
    def test_one_region_per_leaf(self, setup):
        tree, *_ = setup
        regions = leaf_regions(tree)
        assert len(regions) == tree.n_leaves

    def test_regions_contain_their_buckets(self, setup):
        tree, *_ = setup
        regions = leaf_regions(tree)
        for leaf_index, region in regions.items():
            members = tree.buckets[tree.nodes[leaf_index].bucket_id]
            if members.size:
                assert region.contains(tree.points[members]).all()

    def test_every_query_lands_in_its_region(self, setup):
        tree, _, queries, *_ = setup
        regions = leaf_regions(tree)
        leaves = tree.descend_batch(queries)
        for i, leaf in enumerate(leaves):
            assert regions[int(leaf)].contains(queries[i])[0]


class TestBoundaryDistances:
    def test_nonnegative_and_finite_mostly(self, setup):
        tree, _, queries, *_ = setup
        distances = boundary_distances(tree, queries)
        assert (distances >= 0).all()
        assert np.isfinite(distances).all()

    def test_point_on_root_threshold_distance_zero(self, setup):
        tree, *_ = setup
        root = tree.nodes[tree.ROOT]
        probe = np.array([[0.0, 0.0, 5.0]])
        probe[0, root.dim] = root.threshold
        assert boundary_distances(tree, probe)[0] == pytest.approx(0.0)


class TestDiagnosis:
    def test_misses_concentrate_near_boundaries(self, setup):
        tree, _, queries, approx, exact = setup
        diagnosis = diagnose_misses(tree, queries, approx, exact)
        assert 0.5 < diagnosis.recall < 1.0
        assert diagnosis.miss_rate_near_boundary > diagnosis.miss_rate_far_from_boundary

    def test_recall_matches_metric(self, setup):
        from repro.analysis.accuracy import knn_recall

        tree, _, queries, approx, exact = setup
        diagnosis = diagnose_misses(tree, queries, approx, exact)
        assert diagnosis.recall == pytest.approx(knn_recall(approx, exact, 5), abs=1e-9)

    def test_bigger_buckets_fewer_boundary_limited(self, setup):
        tree_small, ref, queries, _, exact = setup
        tree_big, _ = build_tree(ref, KdTreeConfig(bucket_capacity=512))
        approx_small = knn_approx(tree_small, queries, 5)
        approx_big = knn_approx(tree_big, queries, 5)
        d_small = diagnose_misses(tree_small, queries, approx_small, exact)
        d_big = diagnose_misses(tree_big, queries, approx_big, exact)
        assert d_big.boundary_limited_fraction < d_small.boundary_limited_fraction
        assert d_big.recall >= d_small.recall

    def test_summary_text(self, setup):
        tree, _, queries, approx, exact = setup
        text = diagnose_misses(tree, queries, approx, exact).summary()
        assert "recall" in text and "boundary" in text

    def test_validation(self, setup):
        tree, _, queries, approx, exact = setup
        with pytest.raises(ValueError):
            diagnose_misses(tree, queries[:10], approx, exact)
