"""Shared fixtures: deterministic RNGs and cached small workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import lidar_frame, lidar_frame_pair
from repro.kdtree import KdTreeConfig, build_tree


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_frame():
    """One 2k-point ground-removed LiDAR frame (cached for the session)."""
    return lidar_frame(2_000, seed=7)


@pytest.fixture(scope="session")
def small_frame_pair():
    """A 2k-point successive-frame (reference, query) pair."""
    return lidar_frame_pair(2_000, seed=7)


@pytest.fixture(scope="session")
def small_tree(small_frame):
    """A placed k-d tree with 64-point buckets over the small frame."""
    tree, _ = build_tree(small_frame, KdTreeConfig(bucket_capacity=64))
    return tree
