"""QuickNN reproduction: k-d tree kNN search for 3D point clouds.

A full-stack Python reproduction of *QuickNN: Memory and Performance
Optimization of k-d Tree Based Nearest Neighbor Search for 3D Point
Clouds* (Pinkham, Zeng, Zhang — HPCA 2020):

* :mod:`repro.kdtree` — the bucketed k-d tree algorithms (build,
  placement, approximate and exact search, incremental update),
* :mod:`repro.arch` — transaction-level models of the QuickNN
  accelerator and its hardware baselines over a DDR4 timing model,
* :mod:`repro.baselines` — brute-force, k-means tree, and LSH searches,
* :mod:`repro.datasets` — the synthetic LiDAR stand-in for KITTI/Ford,
* :mod:`repro.icp` — the ICP application layer,
* :mod:`repro.analysis` — accuracy metrics, platform cost models, and
  the FPGA resource/power model,
* :mod:`repro.harness` — regenerators for every table and figure in
  the paper's evaluation.

Sixty-second tour::

    import repro

    ref, qry = repro.lidar_frame_pair(30_000, seed=0)   # successive frames
    tree, _ = repro.build_tree(ref)                      # bucketed k-d tree
    result = repro.knn_approx(tree, qry, k=8)            # approximate kNN

    accel = repro.QuickNN(repro.QuickNNConfig(n_fus=64)) # the accelerator
    hw_result, report = accel.run(ref, qry, k=8)
    print(report.fps, report.bandwidth_utilization)
"""

from repro.analysis import CPU_MODEL, GPU_MODEL, knn_recall, top1_containment
from repro.arch import (
    FrameReport,
    LinearArch,
    LinearArchConfig,
    QuickNN,
    QuickNNConfig,
    SimpleKdArch,
    SimpleKdConfig,
)
from repro.baselines import KMeansTree, LshIndex, knn_bruteforce
from repro.datasets import (
    DriveConfig,
    generate_drive,
    lidar_frame,
    lidar_frame_pair,
)
from repro.geometry import Aabb, PointCloud, RigidTransform
from repro.icp import IcpConfig, IcpResult, icp_register
from repro.index import (
    NeighborIndex,
    UnsupportedQuery,
    available_indexes,
    make_index,
)
from repro.kdtree import (
    BbfConfig,
    FlatKdTree,
    KdTree,
    KdTreeConfig,
    QueryResult,
    build_flat,
    build_tree,
    knn_approx,
    knn_exact,
    reuse_tree,
    tree_stats,
    update_tree,
)
from repro.query import RaggedResult, radius_batched, sample_fps
from repro.sim import DramModel, DramTimingParams

__version__ = "1.0.0"

__all__ = [
    "Aabb",
    "BbfConfig",
    "CPU_MODEL",
    "DramModel",
    "DramTimingParams",
    "DriveConfig",
    "FlatKdTree",
    "FrameReport",
    "GPU_MODEL",
    "IcpConfig",
    "IcpResult",
    "KMeansTree",
    "KdTree",
    "KdTreeConfig",
    "LinearArch",
    "LinearArchConfig",
    "LshIndex",
    "NeighborIndex",
    "PointCloud",
    "QueryResult",
    "QuickNN",
    "QuickNNConfig",
    "RaggedResult",
    "RigidTransform",
    "SimpleKdArch",
    "SimpleKdConfig",
    "UnsupportedQuery",
    "available_indexes",
    "build_flat",
    "build_tree",
    "generate_drive",
    "icp_register",
    "knn_approx",
    "knn_bruteforce",
    "knn_exact",
    "knn_recall",
    "lidar_frame",
    "lidar_frame_pair",
    "make_index",
    "radius_batched",
    "reuse_tree",
    "sample_fps",
    "top1_containment",
    "tree_stats",
    "update_tree",
]
