"""Iterative Closest Point — the application wrapped around kNN.

The paper motivates QuickNN with ICP-based object tracking: "75% of the
ICP is spent on kNN search", and the error tolerance of the ICP loop is
what licenses the *approximate* k-d tree search.  This package closes
that loop: a point-to-point ICP whose correspondence step is a
pluggable kNN backend, so the examples can demonstrate end-to-end
motion estimation with exact or approximate search and measure the
accuracy impact the paper argues is negligible.
"""

from repro.icp.icp import IcpConfig, IcpResult, icp_register
from repro.icp.kabsch import estimate_rigid_transform
from repro.icp.tracking import FrameTracker, TrackerState

__all__ = [
    "FrameTracker",
    "IcpConfig",
    "IcpResult",
    "TrackerState",
    "estimate_rigid_transform",
    "icp_register",
]
