"""Point-to-point ICP with a pluggable kNN backend.

Each iteration finds, for every source point, its nearest neighbor in
the target cloud (through any backend implementing the library's kNN
interface), optionally rejects the worst matches, solves for the rigid
transform with Kabsch, and applies it.  Convergence is declared when
the incremental transform becomes negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud, RigidTransform
from repro.icp.kabsch import estimate_rigid_transform
from repro.index import NeighborIndex, make_index
from repro.kdtree import KdTreeConfig
from repro.obs import get_registry

#: Registered backend names that take the k-d tree config.
_TREE_CONFIGURED = {"approx", "exact", "bbf", "kd-approx", "kd-exact", "kd-bbf"}


@dataclass(frozen=True)
class IcpConfig:
    """ICP loop parameters.

    ``knn`` picks the correspondence backend: any name registered with
    :mod:`repro.index` (``"approx"`` — the paper's accelerated mode —
    ``"exact"``, ``"bruteforce"``, ``"grid"``, ``"forest"``, ...) or a
    prebuilt :class:`~repro.index.NeighborIndex`, which is rebound to
    the target cloud with ``build``.  ``tree`` configures the k-d tree
    for the tree-based names and is ignored by the others; its
    ``builder`` field selects the construction pipeline for every
    per-frame rebuild inside the loop (vectorized by default — see
    :class:`~repro.kdtree.KdTreeConfig`).
    ``trim_fraction`` discards that fraction of the worst-residual
    correspondences each iteration (robustness against non-overlapping
    geometry).
    """

    max_iterations: int = 30
    translation_tolerance: float = 1e-4
    rotation_tolerance: float = 1e-5
    trim_fraction: float = 0.2
    knn: str | NeighborIndex = "approx"
    tree: KdTreeConfig = KdTreeConfig(bucket_capacity=128)

    def __post_init__(self):
        if self.max_iterations < 1:
            raise ValueError("need at least one iteration")
        if not (0.0 <= self.trim_fraction < 1.0):
            raise ValueError("trim_fraction must be in [0, 1)")
        if self.translation_tolerance < 0 or self.rotation_tolerance < 0:
            raise ValueError("tolerances must be non-negative")


@dataclass(frozen=True)
class IcpResult:
    """Outcome of one registration."""

    transform: RigidTransform
    iterations: int
    converged: bool
    rms_error: float
    per_iteration_rms: tuple[float, ...]


def icp_register(
    source: PointCloud | np.ndarray,
    target: PointCloud | np.ndarray,
    config: IcpConfig | None = None,
) -> IcpResult:
    """Estimate the rigid transform aligning ``source`` onto ``target``.

    Returns the transform such that ``transform.apply(source) ≈ target``
    over the overlapping geometry.
    """
    config = config or IcpConfig()
    src = source.xyz if isinstance(source, PointCloud) else np.asarray(source, dtype=np.float64)
    tgt = target.xyz if isinstance(target, PointCloud) else np.asarray(target, dtype=np.float64)
    if src.ndim != 2 or src.shape[1] != 3 or tgt.ndim != 2 or tgt.shape[1] != 3:
        raise ValueError("source and target must have shape (N, 3)")
    if src.shape[0] < 3 or tgt.shape[0] < 3:
        raise ValueError("clouds must contain at least 3 points")

    obs = get_registry()
    backend = _make_backend(tgt, config)
    transform = RigidTransform.identity()
    moved = src.copy()
    rms_history: list[float] = []
    converged = False
    iterations = 0

    with obs.phase("icp.register"):
        for iterations in range(1, config.max_iterations + 1):
            result = backend.query(moved, 1)
            matched = result.indices[:, 0]
            valid = matched >= 0
            residuals = result.distances[valid, 0]
            pairs_src = moved[valid]
            pairs_tgt = tgt[matched[valid]]

            if config.trim_fraction > 0.0 and residuals.size > 10:
                keep = residuals <= np.quantile(residuals, 1.0 - config.trim_fraction)
                pairs_src, pairs_tgt = pairs_src[keep], pairs_tgt[keep]
                residuals = residuals[keep]

            rms_history.append(float(np.sqrt(np.mean(residuals**2))))
            if obs.enabled:
                obs.counter("icp.iterations").inc()
                obs.counter("icp.correspondences").inc(int(residuals.size))
                obs.sample("icp.rms", rms_history[-1])
            step = estimate_rigid_transform(pairs_src, pairs_tgt)
            moved = step.apply(moved)
            transform = step.compose(transform)

            angle, dist = step.magnitude()
            if angle < config.rotation_tolerance and dist < config.translation_tolerance:
                converged = True
                break

    if obs.enabled:
        obs.counter("icp.registrations").inc()
        obs.gauge("icp.converged").set(1.0 if converged else 0.0)
    return IcpResult(
        transform=transform,
        iterations=iterations,
        converged=converged,
        rms_error=rms_history[-1],
        per_iteration_rms=tuple(rms_history),
    )


def _make_backend(target: np.ndarray, config: IcpConfig) -> NeighborIndex:
    """Bind the chosen kNN method to the fixed target cloud."""
    if isinstance(config.knn, str):
        if config.knn in _TREE_CONFIGURED:
            return make_index(config.knn, target, tree=config.tree)
        return make_index(config.knn, target)
    return config.knn.build(target)
