"""Frame-to-frame trajectory tracking on top of ICP.

Chains per-frame ICP registrations into an ego trajectory — the
object-tracking/odometry loop the paper's introduction motivates kNN
acceleration with.  The tracker registers each new sensor-frame cloud
against the previous one and accumulates the resulting incremental
transforms into world poses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry import PointCloud, RigidTransform
from repro.icp.icp import IcpConfig, IcpResult, icp_register


@dataclass
class TrackerState:
    """Accumulated trajectory of a :class:`FrameTracker`."""

    poses: list[RigidTransform] = field(default_factory=list)
    registrations: list[IcpResult] = field(default_factory=list)

    @property
    def n_frames(self) -> int:
        return len(self.poses)

    def positions(self) -> np.ndarray:
        """Ego positions over time, shape ``(n_frames, 3)``."""
        return np.array([p.translation for p in self.poses])

    def headings(self) -> np.ndarray:
        """Ego yaw over time, shape ``(n_frames,)``."""
        return np.array([p.yaw() for p in self.poses])


class FrameTracker:
    """Incremental scan-matching odometry.

    Feed sensor-frame clouds in order with :meth:`update`; the tracker
    estimates each frame's pose in the world frame anchored at the
    first frame.
    """

    def __init__(self, config: IcpConfig | None = None):
        self.config = config or IcpConfig()
        self.state = TrackerState()
        self._previous: PointCloud | None = None

    def update(self, cloud: PointCloud) -> RigidTransform:
        """Ingest the next sensor frame; returns its estimated world pose."""
        if self._previous is None:
            pose = RigidTransform.identity()
        else:
            # ICP maps the new frame onto the previous frame's coordinates;
            # composing with the previous pose lifts it to the world frame.
            result = icp_register(cloud, self._previous, self.config)
            self.state.registrations.append(result)
            pose = self.state.poses[-1].compose(result.transform)
        self.state.poses.append(pose)
        self._previous = cloud
        return pose

    def track(self, clouds) -> TrackerState:
        """Convenience: run a whole sequence through :meth:`update`."""
        for cloud in clouds:
            self.update(cloud)
        return self.state
