"""Rigid-transform estimation from point correspondences (Kabsch/SVD).

Given matched point pairs, find the rotation and translation minimizing
the sum of squared residuals — the inner solve of every ICP iteration.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import RigidTransform


def estimate_rigid_transform(
    source: np.ndarray,
    target: np.ndarray,
    weights: np.ndarray | None = None,
) -> RigidTransform:
    """Least-squares rigid transform mapping ``source`` onto ``target``.

    Solves ``argmin_{R,t} sum_i w_i |R s_i + t - t_i|^2`` via the SVD of
    the weighted cross-covariance, with the determinant correction that
    guarantees a proper rotation (no reflection).
    """
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.shape != target.shape or source.ndim != 2 or source.shape[1] != 3:
        raise ValueError("source and target must both have shape (N, 3)")
    n = source.shape[0]
    if n < 3:
        raise ValueError("need at least 3 correspondences")

    if weights is None:
        weights = np.ones(n)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ValueError(f"weights must have shape ({n},)")
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
    w = weights / weights.sum()

    centroid_s = (w[:, None] * source).sum(axis=0)
    centroid_t = (w[:, None] * target).sum(axis=0)
    src = source - centroid_s
    tgt = target - centroid_t

    covariance = (w[:, None] * src).T @ tgt
    u, _, vt = np.linalg.svd(covariance)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, d])
    rotation = vt.T @ correction @ u.T
    translation = centroid_t - rotation @ centroid_s
    return RigidTransform(rotation, translation)
