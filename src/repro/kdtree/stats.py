"""Tree balance statistics.

The incremental-update experiment (Figure 10) is entirely about these
numbers: how far the largest and smallest bucket drift from the mean as
a tree is reused across frames.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kdtree.node import KdTree


@dataclass(frozen=True)
class TreeStats:
    """Summary of a tree's shape and bucket-size distribution."""

    n_points: int
    n_nodes: int
    n_leaves: int
    depth: int
    bucket_min: int
    bucket_max: int
    bucket_mean: float
    bucket_std: float
    empty_buckets: int

    @property
    def imbalance(self) -> float:
        """max/mean bucket-size ratio; 1.0 is a perfectly even tree."""
        return self.bucket_max / self.bucket_mean if self.bucket_mean > 0 else np.inf

    def as_dict(self) -> dict:
        """Flat scalar view (the repo-wide stats convention)."""
        return {
            "n_points": self.n_points,
            "n_nodes": self.n_nodes,
            "n_leaves": self.n_leaves,
            "depth": self.depth,
            "bucket_min": self.bucket_min,
            "bucket_max": self.bucket_max,
            "bucket_mean": self.bucket_mean,
            "bucket_std": self.bucket_std,
            "empty_buckets": self.empty_buckets,
            "imbalance": float(self.imbalance),
        }


def tree_stats(tree: KdTree) -> TreeStats:
    """Compute :class:`TreeStats` for a placed tree."""
    sizes = tree.bucket_sizes()
    if sizes.size == 0:
        raise ValueError("tree has no leaves")
    return TreeStats(
        n_points=tree.n_points,
        n_nodes=tree.n_nodes,
        n_leaves=int(sizes.size),
        depth=tree.depth(),
        bucket_min=int(sizes.min()),
        bucket_max=int(sizes.max()),
        bucket_mean=float(sizes.mean()),
        bucket_std=float(sizes.std()),
        empty_buckets=int((sizes == 0).sum()),
    )


def node_access_probability(depth: int) -> float:
    """Probability a traversal touches a *given* node at ``depth``.

    With a balanced tree and uniformly routed points this is ``2^-i``
    at level ``i`` — the observation behind the paper's partial tree
    replication (Section 4.3): upper levels are contended, lower levels
    are not.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return 2.0 ** (-depth)
