"""k-d tree construction parameters.

The paper's tree (Section 2.2) is built in two steps: a *construction*
phase that sorts and median-splits a sampled subset of points until a
target depth / minimum occupancy is reached, and a *placement* phase
that routes every point of the frame into a leaf bucket.  This module
captures the knobs of that process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.kdtree.builders import BUILDERS


@dataclass(frozen=True)
class KdTreeConfig:
    """Parameters for building a bucketed k-d tree.

    Parameters
    ----------
    bucket_capacity:
        Target number of points per leaf bucket (the paper's ``B_N``).
        The tree depth is chosen so a balanced tree yields buckets of
        roughly this size.  The paper's accuracy operating point is 256.
    sample_size:
        Number of points sampled to estimate split thresholds (the
        paper's ``n < N``).  ``None`` picks ``min(N, 16 * n_leaves)``,
        enough for stable medians at every level.
    min_samples_per_leaf:
        Construction stops splitting a branch when fewer sample points
        than this would land on a side (the paper's "minimum occupancy").
    max_depth:
        Hard cap on tree depth; ``None`` derives it from
        ``bucket_capacity`` (``log2(N / B_N)``, the paper's ``d``).
    split_dims:
        Cycle of dimensions used at successive levels, as in the paper's
        Figure 2 (x, then y, then z, then x again ...).
    builder:
        Construction strategy, mirroring the query engine's ``engine=``
        knob.  ``"vectorized"`` (the default) runs the level-synchronous
        direct-to-flat pipeline in :mod:`repro.kdtree.flat_build`;
        ``"legacy"`` keeps the per-node recursive reference builder.
        Both produce bit-identical trees, buckets, and
        :class:`~repro.kdtree.build.BuildTrace` totals.
    """

    bucket_capacity: int = 256
    sample_size: int | None = None
    min_samples_per_leaf: int = 2
    max_depth: int | None = None
    split_dims: tuple[int, ...] = (0, 1, 2)
    builder: str = "vectorized"

    def __post_init__(self):
        BUILDERS.check(self.builder)
        if self.bucket_capacity < 1:
            raise ValueError("bucket_capacity must be positive")
        if self.sample_size is not None and self.sample_size < 1:
            raise ValueError("sample_size must be positive when given")
        if self.min_samples_per_leaf < 1:
            raise ValueError("min_samples_per_leaf must be positive")
        if self.max_depth is not None and self.max_depth < 0:
            raise ValueError("max_depth must be non-negative when given")
        if not self.split_dims or any(d not in (0, 1, 2) for d in self.split_dims):
            raise ValueError("split_dims must be a non-empty cycle over {0, 1, 2}")

    def target_depth(self, n_points: int) -> int:
        """Depth giving ~``bucket_capacity`` points per leaf for ``n_points``.

        This is the paper's ``d = log2(N / B_N)``, rounded to the nearest
        whole level and floored at zero.
        """
        if n_points < 1:
            raise ValueError("n_points must be positive")
        if self.max_depth is not None:
            derived = self._derived_depth(n_points)
            return min(self.max_depth, derived)
        return self._derived_depth(n_points)

    def _derived_depth(self, n_points: int) -> int:
        ratio = n_points / self.bucket_capacity
        if ratio <= 1.0:
            return 0
        return max(0, round(math.log2(ratio)))

    def effective_sample_size(self, n_points: int) -> int:
        """Sample count used for construction (``n`` in the paper)."""
        if self.sample_size is not None:
            return min(self.sample_size, n_points)
        n_leaves = 2 ** self.target_depth(n_points)
        return min(n_points, max(64, 16 * n_leaves))

    def dim_at_depth(self, depth: int) -> int:
        """Split dimension used at a given tree level."""
        return self.split_dims[depth % len(self.split_dims)]
