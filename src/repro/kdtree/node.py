"""k-d tree node and tree containers.

The layout deliberately mirrors the paper's hardware data structure
(Section 4.1): each tree node carries a threshold, a dimension
indicator, and parent/child pointers; each leaf points at a bucket of
points.  Nodes live in a flat list and reference each other by index —
the software analogue of the word-addressable tree cache — which lets
the architecture models map nodes directly onto cache words and banks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

NO_NODE = -1


@dataclass
class KdNode:
    """One tree node.  Internal nodes split; leaf nodes own a bucket.

    ``dim``/``threshold``/``left``/``right`` are meaningful for internal
    nodes; ``bucket_id`` for leaves.  Exactly one of the two roles is
    active, enforced by :meth:`validate_role`.
    """

    index: int
    parent: int = NO_NODE
    depth: int = 0
    dim: int = -1
    threshold: float = np.nan
    left: int = NO_NODE
    right: int = NO_NODE
    bucket_id: int = NO_NODE

    @property
    def is_leaf(self) -> bool:
        return self.bucket_id != NO_NODE

    def validate_role(self) -> None:
        """Raise if the node is neither a proper leaf nor a proper split."""
        if self.is_leaf:
            if self.left != NO_NODE or self.right != NO_NODE:
                raise ValueError(f"leaf node {self.index} has children")
        else:
            if self.left == NO_NODE or self.right == NO_NODE:
                raise ValueError(f"internal node {self.index} missing a child")
            if self.dim not in (0, 1, 2):
                raise ValueError(f"internal node {self.index} has invalid dim {self.dim}")
            if not np.isfinite(self.threshold):
                raise ValueError(f"internal node {self.index} has invalid threshold")


@dataclass
class KdTree:
    """A bucketed k-d tree over a fixed reference point set.

    Attributes
    ----------
    points:
        The ``(N, 3)`` reference points the buckets index into.
    nodes:
        Flat node list; ``nodes[i].index == i``.  ``root`` is node 0.
    buckets:
        One integer index array per bucket, indexing into ``points``.
        ``nodes[j].bucket_id`` selects the bucket of leaf ``j``.
    """

    points: np.ndarray
    nodes: list[KdNode] = field(default_factory=list)
    buckets: list[np.ndarray] = field(default_factory=list)

    ROOT = 0

    def __post_init__(self):
        self.points = np.asarray(self.points, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError("tree points must have shape (N, 3)")
        self._arrays: _NodeArrays | None = None
        self._flat = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return self.points.shape[0]

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def leaves(self) -> list[KdNode]:
        return [n for n in self.nodes if n.is_leaf]

    @property
    def n_leaves(self) -> int:
        return sum(1 for n in self.nodes if n.is_leaf)

    def depth(self) -> int:
        """Maximum leaf depth (root alone is depth 0)."""
        if not self.nodes:
            raise ValueError("tree has no nodes")
        return max(n.depth for n in self.nodes if n.is_leaf)

    def bucket_sizes(self) -> np.ndarray:
        """Points per leaf bucket, in leaf order."""
        return np.array(
            [len(self.buckets[n.bucket_id]) for n in self.nodes if n.is_leaf],
            dtype=np.int64,
        )

    def bucket_points(self, bucket_id: int) -> np.ndarray:
        """Coordinates of the points in one bucket, shape ``(B, 3)``."""
        return self.points[self.buckets[bucket_id]]

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def descend(self, point: np.ndarray) -> KdNode:
        """Walk from the root to the leaf whose region contains ``point``."""
        node = self.nodes[self.ROOT]
        while not node.is_leaf:
            child = node.left if point[node.dim] <= node.threshold else node.right
            node = self.nodes[child]
        return node

    def descend_path(self, point: np.ndarray) -> list[int]:
        """Node indices visited from root to leaf (inclusive)."""
        path = [self.ROOT]
        node = self.nodes[self.ROOT]
        while not node.is_leaf:
            child = node.left if point[node.dim] <= node.threshold else node.right
            path.append(child)
            node = self.nodes[child]
        return path

    def descend_batch(self, points: np.ndarray) -> np.ndarray:
        """Leaf node index for each of ``(M, 3)`` points, vectorized."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        arrays = self._node_arrays()
        current = np.zeros(points.shape[0], dtype=np.int64)
        active = ~arrays.is_leaf[current]
        while active.any():
            idx = current[active]
            dims = arrays.dim[idx]
            thresholds = arrays.threshold[idx]
            go_left = points[active, dims] <= thresholds
            current[active] = np.where(go_left, arrays.left[idx], arrays.right[idx])
            active = ~arrays.is_leaf[current]
        return current

    def invalidate_caches(self) -> None:
        """Must be called after structural edits (incremental update)."""
        self._arrays = None
        self._flat = None

    def flat(self):
        """The cached :class:`~repro.kdtree.engine.FlatKdTree` view.

        Built on first use and reused by every batched query until
        :meth:`invalidate_caches` is called.
        """
        if self._flat is None:
            from repro.kdtree.engine import FlatKdTree

            self._flat = FlatKdTree.from_tree(self)
        return self._flat

    def _node_arrays(self) -> "_NodeArrays":
        if self._arrays is None:
            self._arrays = _NodeArrays.from_nodes(self.nodes)
        return self._arrays


@dataclass
class _NodeArrays:
    """Structure-of-arrays mirror of the node list, for vectorized descent."""

    dim: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    is_leaf: np.ndarray

    @classmethod
    def from_nodes(cls, nodes: list[KdNode]) -> "_NodeArrays":
        n = len(nodes)
        dim = np.zeros(n, dtype=np.int64)
        threshold = np.zeros(n, dtype=np.float64)
        left = np.full(n, NO_NODE, dtype=np.int64)
        right = np.full(n, NO_NODE, dtype=np.int64)
        is_leaf = np.zeros(n, dtype=bool)
        for node in nodes:
            i = node.index
            is_leaf[i] = node.is_leaf
            if not node.is_leaf:
                dim[i] = node.dim
                threshold[i] = node.threshold
                left[i] = node.left
                right[i] = node.right
        return cls(dim, threshold, left, right, is_leaf)
