"""Blocked out-of-core build + query: million-point clouds on a budget.

Every other layer of the repo measures KITTI-frame scale (~30k points);
accumulated maps are 1M-100M.  Following FractalCloud's
partition-parallel, locality-first argument, this module splits a huge
cloud spatially, builds one :class:`~repro.kdtree.engine.FlatKdTree`
per block with the level-synchronous builder — optionally fanned out
across worker processes with points handed over through
:mod:`repro.serve.shm` segments — and stitches the blocks under a
top-level :class:`BlockedIndex` router:

* **Partitioning** is a string knob (:data:`PARTITIONERS`): ``"grid"``
  bins into a uniform cell grid sized to the cloud's extents;
  ``"kd-cut"`` runs shallow median cuts over a sample, so blocks track
  the density rather than the bounding box.  Both label points
  chunk-wise, so the source cloud is never required in RAM — a path to
  a ``.npy`` file is read through ``np.load(..., mmap_mode="r")``.
* **Per-block trees** persist as uncompressed
  :class:`~repro.kdtree.snapshot.Snapshot` files that queries load
  with ``mmap_mode="r"`` — only the pages a search touches are
  resident — behind a bounded block cache evicted through the shared
  :data:`repro.eviction.EVICTION` registry.
* **Queries stay exact.**  Each query visits blocks in ascending order
  of squared AABB lower bound and stops as soon as the next bound
  exceeds its current k-th distance; merged rows use the serve layer's
  canonical order (ascending distance, ties by ascending global id),
  so answers match a monolithic exact build the same way sharded
  serving does: distance rows bit-identical always, index rows
  bit-identical except among exact-duplicate coordinates (which are
  interchangeable by construction).

Typical use::

    from repro.kdtree import BlockedBuildConfig, build_blocked

    index = build_blocked(
        "map_1M.npy",
        BlockedBuildConfig(target_block_points=250_000, workers=4),
        block_dir="blocks/",
    )
    result = index.query(queries, k=8)
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.eviction import EVICTION
from repro.geometry import PointCloud
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.engine import FlatKdTree, knn_approx_batched, knn_exact_batched
from repro.kdtree.flat_build import build_flat
from repro.kdtree.search import PAD_INDEX, QueryResult
from repro.kdtree.snapshot import Snapshot
from repro.obs import get_registry
from repro.registry import Registry

__all__ = [
    "PARTITIONERS",
    "BlockedBuildConfig",
    "BlockedIndex",
    "build_blocked",
]

#: Manifest schema version written by :func:`build_blocked`.
MANIFEST_VERSION = 1
_MANIFEST_NAME = "manifest.json"

#: Relative slack applied to the k-th squared distance before pruning a
#: block: rounding in the engine's float64 distance recomputation can
#: make a boundary candidate's squared distance land an ulp under its
#: AABB lower bound, and extra visits are correct while a wrong prune
#: is not.
_PRUNE_SLACK = 1e-12

#: Estimated resident bytes per point of the engine's lazily derived
#: selection arrays (``points_c`` f64x3, ``point_sq_c`` f64,
#: ``bucket_xyz32`` f32x3, ``bucket_sq32`` f32).  Unlike the mapped
#: structural arrays these are always heap-allocated on first query, so
#: the block cache budgets for them explicitly.
_DERIVED_BYTES_PER_POINT = 48


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------
#: Spatial partitioners: ``fit(sample, lo, hi, n_blocks) -> (n_cells,
#: assign)`` where ``assign(chunk_xyz) -> labels`` in ``[0, n_cells)``.
#: Cells left empty by the full cloud are dropped afterwards, so a
#: partitioner only has to cover space, not balance exactly.
PARTITIONERS: Registry = Registry("partitioner")

Assign = Callable[[np.ndarray], np.ndarray]


@PARTITIONERS.register("grid")
def _grid_fit(
    sample: np.ndarray, lo: np.ndarray, hi: np.ndarray, n_blocks: int
) -> tuple[int, Assign]:
    """Uniform cells, per-axis counts proportional to the extents."""
    extent = np.maximum(hi - lo, 0.0)
    counts = np.ones(3, dtype=np.int64)
    # Greedily split the axis whose current cell edge is longest until
    # the grid has capacity for the requested block count.
    while counts.prod() < n_blocks:
        edge = np.where(extent > 0, extent / counts, -1.0)
        axis = int(np.argmax(edge))
        if edge[axis] <= 0:  # degenerate cloud (all points coincide)
            break
        counts[axis] += 1
    span = np.where(extent > 0, extent, 1.0)
    strides = np.array(
        [counts[1] * counts[2], counts[2], 1], dtype=np.int64
    )

    def assign(chunk: np.ndarray) -> np.ndarray:
        scaled = (chunk - lo) / span * counts
        cells = np.clip(scaled.astype(np.int64), 0, counts - 1)
        return cells @ strides

    return int(counts.prod()), assign


@PARTITIONERS.register("kd-cut")
def _kd_cut_fit(
    sample: np.ndarray, lo: np.ndarray, hi: np.ndarray, n_blocks: int
) -> tuple[int, Assign]:
    """Shallow median cuts over the sample, widest extent first.

    The leaf with the most sample points is split at its median along
    its widest dimension until there are ``n_blocks`` leaves (or no
    splittable leaf remains), the same recursion the serve layer's
    ``spatial`` shard strategy uses — but expressed as a tiny array
    tree so assignment of an arbitrary chunk is a vectorized descent.
    """
    dims = [0]
    thresholds = [0.0]
    left: list[int] = [-1]
    right: list[int] = [-1]
    members: dict[int, np.ndarray] = {0: sample}

    while len(members) < n_blocks:
        splittable = {
            node: pts for node, pts in members.items() if pts.shape[0] > 1
        }
        if not splittable:
            break
        node = max(splittable, key=lambda n: splittable[n].shape[0])
        pts = members.pop(node)
        spread = pts.max(axis=0) - pts.min(axis=0)
        dim = int(np.argmax(spread))
        if spread[dim] <= 0:
            members[node] = pts  # all duplicates; nothing to cut
            break
        threshold = float(np.median(pts[:, dim]))
        mask = pts[:, dim] < threshold
        if not mask.any() or mask.all():
            # Median coincides with the extreme: split on the mean so
            # both sides are non-empty.
            threshold = float(pts[:, dim].mean(dtype=np.float64))
            mask = pts[:, dim] < threshold
        if not mask.any() or mask.all():
            members[node] = pts
            break
        dims[node] = dim
        thresholds[node] = threshold
        for child_mask in (mask, ~mask):
            child = len(dims)
            dims.append(0)
            thresholds.append(0.0)
            left.append(-1)
            right.append(-1)
            members[child] = pts[child_mask]
            if left[node] == -1:
                left[node] = child
            else:
                right[node] = child

    leaf_ids = {node: i for i, node in enumerate(sorted(members))}
    dim_arr = np.array(dims, dtype=np.int64)
    thr_arr = np.array(thresholds, dtype=np.float64)
    left_arr = np.array(left, dtype=np.int64)
    right_arr = np.array(right, dtype=np.int64)
    leaf_arr = np.full(len(dims), -1, dtype=np.int64)
    for node, block in leaf_ids.items():
        leaf_arr[node] = block

    def assign(chunk: np.ndarray) -> np.ndarray:
        current = np.zeros(chunk.shape[0], dtype=np.int64)
        active = leaf_arr[current] == -1
        while active.any():
            nodes = current[active]
            go_left = (
                chunk[active, dim_arr[nodes]] < thr_arr[nodes]
            )
            current[active] = np.where(
                go_left, left_arr[nodes], right_arr[nodes]
            )
            active = leaf_arr[current] == -1
        return leaf_arr[current]

    return len(leaf_ids), assign


# ----------------------------------------------------------------------
# Build configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BlockedBuildConfig:
    """Knobs of :func:`build_blocked`.

    Parameters
    ----------
    target_block_points:
        Aimed-for points per block; the block count defaults to
        ``ceil(n / target_block_points)``.
    n_blocks:
        Explicit block count (overrides ``target_block_points``).
    partitioner:
        Spatial split, from :data:`PARTITIONERS` (``"grid"`` or
        ``"kd-cut"``).
    workers:
        Worker processes for the per-block tree builds.  ``1`` builds
        inline; more fan blocks out over shared-memory point handoff.
        Results are bit-identical for any worker count.
    tree:
        Per-block :class:`~repro.kdtree.config.KdTreeConfig`.
    sample_size:
        Points sampled to fit the partitioner.
    chunk_points:
        Points staged per labeling/gather chunk — the build's RAM
        high-water mark scales with this plus one block, not the cloud.
    """

    target_block_points: int = 250_000
    n_blocks: int | None = None
    partitioner: str = "grid"
    workers: int = 1
    tree: KdTreeConfig = field(default_factory=KdTreeConfig)
    sample_size: int = 65_536
    chunk_points: int = 1_000_000

    def __post_init__(self):
        PARTITIONERS.check(self.partitioner)
        if self.target_block_points < 1:
            raise ValueError("target_block_points must be positive")
        if self.n_blocks is not None and self.n_blocks < 1:
            raise ValueError("n_blocks must be positive when given")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.sample_size < 1:
            raise ValueError("sample_size must be positive")
        if self.chunk_points < 1:
            raise ValueError("chunk_points must be positive")

    def resolve_n_blocks(self, n_points: int) -> int:
        if self.n_blocks is not None:
            return min(self.n_blocks, max(1, n_points))
        return max(1, -(-n_points // self.target_block_points))

    def to_manifest(self) -> dict:
        return {
            "target_block_points": self.target_block_points,
            "n_blocks": self.n_blocks,
            "partitioner": self.partitioner,
            "workers": self.workers,
            "sample_size": self.sample_size,
            "chunk_points": self.chunk_points,
            "bucket_capacity": self.tree.bucket_capacity,
        }

    @classmethod
    def from_manifest(cls, doc: dict) -> "BlockedBuildConfig":
        return cls(
            target_block_points=int(doc["target_block_points"]),
            n_blocks=doc["n_blocks"],
            partitioner=doc["partitioner"],
            workers=int(doc["workers"]),
            sample_size=int(doc["sample_size"]),
            chunk_points=int(doc["chunk_points"]),
            tree=KdTreeConfig(bucket_capacity=int(doc["bucket_capacity"])),
        )


# ----------------------------------------------------------------------
# Source handling: in-RAM arrays and .npy paths look the same
# ----------------------------------------------------------------------
def _as_source(points) -> np.ndarray:
    """Resolve the reference to an ``(N, 3)`` float64 array-like.

    A ``str`` / ``Path`` names an ``.npy`` file opened with
    ``mmap_mode="r"`` — the out-of-core path: chunked passes touch a
    bounded window of it at a time.
    """
    if isinstance(points, (str, Path)):
        source = np.load(os.fspath(points), mmap_mode="r")
    elif isinstance(points, PointCloud):
        source = points.xyz
    else:
        source = np.asarray(points)
    if source.ndim != 2 or source.shape[1] != 3:
        raise ValueError("reference must have shape (N, 3)")
    if source.shape[0] < 1:
        raise ValueError("reference cloud is empty")
    return source


def _chunks(source, chunk_points: int) -> Iterator[tuple[int, np.ndarray]]:
    for start in range(0, source.shape[0], chunk_points):
        stop = min(start + chunk_points, source.shape[0])
        yield start, np.asarray(source[start:stop], dtype=np.float64)


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
def build_blocked(
    points,
    config: BlockedBuildConfig | None = None,
    *,
    block_dir: str | Path | None = None,
    rng: np.random.Generator | None = None,
    **index_kwargs,
) -> "BlockedIndex":
    """Partition, build per-block trees, and return the stitched index.

    ``points`` is an ``(N, 3)`` array, a :class:`PointCloud`, or a path
    to an ``.npy`` file (memory-mapped, so the cloud never has to fit
    in RAM).  ``block_dir`` is where block snapshots and the manifest
    persist; ``None`` uses a managed temporary directory owned by the
    returned index.  ``index_kwargs`` (resident-block budget, eviction
    policy, ...) pass through to :class:`BlockedIndex`.
    """
    config = config or BlockedBuildConfig()
    rng = rng or np.random.default_rng(0)
    source = _as_source(points)
    n = source.shape[0]
    n_blocks = config.resolve_n_blocks(n)

    t_start = time.perf_counter()
    owned_tmp = None
    if block_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="qknn-blocked-")
        block_dir = owned_tmp.name
    block_dir = Path(block_dir)
    block_dir.mkdir(parents=True, exist_ok=True)

    # Pass 0: exact bounds + partitioner sample (both chunked).
    lo = np.full(3, np.inf)
    hi = np.full(3, -np.inf)
    for _, chunk in _chunks(source, config.chunk_points):
        np.minimum(lo, chunk.min(axis=0), out=lo)
        np.maximum(hi, chunk.max(axis=0), out=hi)
    take = min(config.sample_size, n)
    sample_ids = np.sort(rng.choice(n, size=take, replace=False))
    sample = np.asarray(source[sample_ids], dtype=np.float64)

    fit = PARTITIONERS.resolve(config.partitioner)
    n_cells, assign = fit(sample, lo, hi, n_blocks)

    # Pass 1: per-cell occupancy; empty cells are dropped so block ids
    # are dense.
    cell_counts = np.zeros(n_cells, dtype=np.int64)
    for _, chunk in _chunks(source, config.chunk_points):
        cell_counts += np.bincount(assign(chunk), minlength=n_cells)
    used = np.flatnonzero(cell_counts)
    cell_to_block = np.full(n_cells, -1, dtype=np.int64)
    cell_to_block[used] = np.arange(used.size)
    block_counts = cell_counts[used]
    n_blocks = used.size

    # Pass 2: gather points and global ids per block.  Staging buffers
    # are per-block memmaps when the cloud exceeds one chunk (the
    # out-of-core case) and plain arrays otherwise.
    staged = _stage_blocks(
        source, assign, cell_to_block, block_counts, block_dir, config
    )

    # Pass 3: build one flat tree per block and snapshot it.  Each
    # block's builder rng is seeded by block id, so results are
    # identical whether blocks build inline or on worker processes.
    seed0 = int(rng.integers(0, 2**31 - 1))
    files = [f"block_{b:05d}.npz" for b in range(n_blocks)]
    if config.workers > 1 and n_blocks > 1:
        build_stats = _build_blocks_parallel(
            staged, files, block_dir, config, seed0
        )
    else:
        build_stats = [
            _build_one_block(
                staged.points(b), staged.ids(b), block_dir / files[b],
                config.tree, seed0 + b,
            )
            for b in range(n_blocks)
        ]
    staged.cleanup()

    manifest = {
        "version": MANIFEST_VERSION,
        "n_points": int(n),
        "n_blocks": int(n_blocks),
        "files": files,
        "block_points": [int(c) for c in block_counts],
        "aabb_lo": staged.aabb_lo.tolist(),
        "aabb_hi": staged.aabb_hi.tolist(),
        "config": config.to_manifest(),
        "build": {
            "workers": config.workers,
            "total_s": time.perf_counter() - t_start,
            "blocks": build_stats,
        },
    }
    with open(block_dir / _MANIFEST_NAME, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)

    index = BlockedIndex(block_dir, **index_kwargs)
    index._config = config
    index._owned_tmp = owned_tmp
    return index


class _Stager:
    """Per-block gather buffers + running AABBs for pass 2."""

    def __init__(self, block_counts, block_dir: Path, out_of_core: bool):
        self.aabb_lo = np.full((block_counts.size, 3), np.inf)
        self.aabb_hi = np.full((block_counts.size, 3), -np.inf)
        self._fill = np.zeros(block_counts.size, dtype=np.int64)
        self._staging_dir = None
        self._pts: list[np.ndarray] = []
        self._ids: list[np.ndarray] = []
        if out_of_core:
            self._staging_dir = block_dir / "staging"
            self._staging_dir.mkdir(exist_ok=True)
        for b, count in enumerate(block_counts):
            shape = (int(count), 3)
            if out_of_core:
                self._pts.append(np.lib.format.open_memmap(
                    self._staging_dir / f"pts_{b:05d}.npy",
                    mode="w+", dtype=np.float64, shape=shape,
                ))
                self._ids.append(np.lib.format.open_memmap(
                    self._staging_dir / f"ids_{b:05d}.npy",
                    mode="w+", dtype=np.int64, shape=(int(count),),
                ))
            else:
                self._pts.append(np.empty(shape, dtype=np.float64))
                self._ids.append(np.empty(int(count), dtype=np.int64))

    def append(self, block: int, pts: np.ndarray, ids: np.ndarray) -> None:
        start = self._fill[block]
        stop = start + pts.shape[0]
        self._pts[block][start:stop] = pts
        self._ids[block][start:stop] = ids
        self._fill[block] = stop
        np.minimum(self.aabb_lo[block], pts.min(axis=0),
                   out=self.aabb_lo[block])
        np.maximum(self.aabb_hi[block], pts.max(axis=0),
                   out=self.aabb_hi[block])

    def points(self, block: int) -> np.ndarray:
        return self._pts[block]

    def ids(self, block: int) -> np.ndarray:
        return self._ids[block]

    def cleanup(self) -> None:
        self._pts = []
        self._ids = []
        if self._staging_dir is not None:
            for path in self._staging_dir.glob("*.npy"):
                path.unlink()
            self._staging_dir.rmdir()


def _stage_blocks(
    source, assign, cell_to_block, block_counts, block_dir, config
) -> _Stager:
    out_of_core = source.shape[0] > config.chunk_points
    stager = _Stager(block_counts, block_dir, out_of_core)
    for start, chunk in _chunks(source, config.chunk_points):
        labels = cell_to_block[assign(chunk)]
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        present, run_starts = np.unique(sorted_labels, return_index=True)
        run_stops = np.append(run_starts[1:], sorted_labels.size)
        for block, a, z in zip(present, run_starts, run_stops):
            rows = order[a:z]
            stager.append(
                int(block),
                chunk[rows],
                (start + rows).astype(np.int64),
            )
    return stager


def _tree_resident_nbytes(arrays: dict[str, np.ndarray], n_points: int) -> int:
    """Structural bytes plus the engine's derived selection arrays."""
    structural = sum(a.nbytes for a in arrays.values())
    return int(structural + _DERIVED_BYTES_PER_POINT * n_points)


def _build_one_block(
    pts, ids, out_path: Path, tree_config: KdTreeConfig, seed: int
) -> dict:
    t0 = time.perf_counter()
    pts = np.ascontiguousarray(pts, dtype=np.float64)
    flat, trace = build_flat(
        pts, tree_config, rng=np.random.default_rng(seed)
    )
    snapshot = Snapshot.from_flat(
        flat, extra={"global_ids": np.ascontiguousarray(ids, dtype=np.int64)}
    )
    snapshot.save(out_path, compressed=False)
    return {
        "file": out_path.name,
        "n_points": int(pts.shape[0]),
        "n_leaves": int(flat.is_leaf.sum()),
        "build_s": time.perf_counter() - t0,
    }


# ----------------------------------------------------------------------
# Parallel per-block build over shared-memory point handoff
# ----------------------------------------------------------------------
def _block_build_worker(task_queue, result_queue) -> None:
    """Worker loop: attach the block's segment, build, snapshot, reply."""
    from repro.serve.shm import attach_segment, close_attachment

    while True:
        task = task_queue.get()
        if task is None:
            return
        block, segment, out_path, tree_config, seed = task
        try:
            payload, shm = attach_segment(segment)
            try:
                stats = _build_one_block(
                    payload["points"], payload["global_ids"],
                    Path(out_path), tree_config, seed,
                )
            finally:
                del payload
                close_attachment(shm)
            result_queue.put((block, stats, None))
        except BaseException as exc:  # noqa: BLE001 - relayed to coordinator
            result_queue.put((block, None, repr(exc)))


def _build_blocks_parallel(
    staged: _Stager, files, block_dir: Path, config, seed0: int
) -> list[dict]:
    """Fan per-block builds over worker processes.

    The coordinator keeps at most ``workers + 1`` blocks' points alive
    in shared-memory segments at a time (the PR 6 handoff machinery),
    so peak memory stays a bounded window rather than the whole cloud.
    """
    import multiprocessing
    import queue as queue_mod

    from repro.serve.shm import create_segment, unlink_segment

    ctx = multiprocessing.get_context("spawn")
    n_blocks = len(files)
    workers = min(config.workers, n_blocks)
    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_block_build_worker,
            args=(task_queue, result_queue),
            daemon=True,
        )
        for _ in range(workers)
    ]
    for proc in procs:
        proc.start()

    prefix = f"qknn-blk-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    segments: dict[int, object] = {}
    stats: dict[int, dict] = {}
    failures: list[str] = []
    next_block = 0

    def submit(block: int) -> None:
        name = f"{prefix}-{block}"
        segments[block] = create_segment(name, {
            "points": np.ascontiguousarray(
                staged.points(block), dtype=np.float64
            ),
            "global_ids": np.ascontiguousarray(
                staged.ids(block), dtype=np.int64
            ),
        })
        task_queue.put((
            block, name, str(block_dir / files[block]),
            config.tree, seed0 + block,
        ))

    try:
        while next_block < n_blocks and len(segments) <= workers:
            submit(next_block)
            next_block += 1
        while len(stats) + len(failures) < n_blocks:
            try:
                block, block_stats, error = result_queue.get(timeout=5.0)
            except queue_mod.Empty:
                # A worker killed mid-build (OOM, signal) never replies;
                # surface that instead of waiting forever.
                if not any(proc.is_alive() for proc in procs):
                    raise RuntimeError(
                        "all blocked-build workers died without reporting "
                        f"results ({len(stats)}/{n_blocks} blocks built)"
                    ) from None
                continue
            unlink_segment(segments.pop(block))
            if error is not None:
                failures.append(f"block {block}: {error}")
            else:
                stats[block] = block_stats
            if next_block < n_blocks and not failures:
                submit(next_block)
                next_block += 1
    finally:
        for _ in procs:
            task_queue.put(None)
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for shm in segments.values():
            unlink_segment(shm)
    if failures:
        raise RuntimeError(
            "blocked build failed on worker processes: "
            + "; ".join(failures)
        )
    return [stats[b] for b in range(n_blocks)]


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------
@dataclass
class _ResidentBlock:
    """One loaded block: what the eviction policies key off."""

    block: int
    tree: FlatKdTree
    global_ids: np.ndarray
    nbytes: int
    last_active: float


class BlockedIndex:
    """Top-level router over per-block trees; a :class:`NeighborIndex`.

    Opens the manifest written by :func:`build_blocked` and serves
    exact k-NN by visiting blocks in ascending AABB-lower-bound order,
    stopping per query once the next bound exceeds its current k-th
    distance.  Block trees are memory-mapped on first touch and cached
    under ``max_resident_blocks`` / ``max_resident_bytes``, with
    victims chosen by the shared eviction registry — so a cloud larger
    than RAM serves from however many blocks the budget allows.
    """

    name = "kd-blocked"

    def __init__(
        self,
        block_dir: str | Path,
        *,
        max_resident_blocks: int | None = None,
        max_resident_bytes: int | None = None,
        eviction: str = "lru",
        mmap_mode: str | None = "r",
    ):
        if max_resident_blocks is not None and max_resident_blocks < 1:
            raise ValueError("max_resident_blocks must be positive")
        EVICTION.check(eviction)
        self.block_dir = Path(block_dir)
        self.max_resident_blocks = max_resident_blocks
        self.max_resident_bytes = max_resident_bytes
        self.eviction = eviction
        self.mmap_mode = mmap_mode
        self._config: BlockedBuildConfig | None = None
        self._owned_tmp = None
        self._clock = time.monotonic
        self._load_manifest()

    def _load_manifest(self) -> None:
        path = self.block_dir / _MANIFEST_NAME
        if not path.exists():
            raise FileNotFoundError(
                f"{self.block_dir} has no {_MANIFEST_NAME}; build one with "
                "build_blocked(points, ..., block_dir=...)"
            )
        with open(path, encoding="utf-8") as fh:
            self.manifest = json.load(fh)
        if self.manifest.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported blocked manifest version "
                f"{self.manifest.get('version')!r}"
            )
        self.n_points = int(self.manifest["n_points"])
        self.n_blocks = int(self.manifest["n_blocks"])
        self._files = [self.block_dir / f for f in self.manifest["files"]]
        self._aabb_lo = np.asarray(self.manifest["aabb_lo"], dtype=np.float64)
        self._aabb_hi = np.asarray(self.manifest["aabb_hi"], dtype=np.float64)
        self._resident: dict[int, _ResidentBlock] = {}
        self._loads = 0
        self._evictions = 0
        self._block_visits = 0

    # -- NeighborIndex protocol ---------------------------------------
    def build(self, reference) -> "BlockedIndex":
        """Rebind to a new cloud: rebuild the blocks with this config."""
        rebuilt = build_blocked(
            reference,
            self._config or BlockedBuildConfig.from_manifest(
                self.manifest["config"]
            ),
            max_resident_blocks=self.max_resident_blocks,
            max_resident_bytes=self.max_resident_bytes,
            eviction=self.eviction,
            mmap_mode=self.mmap_mode,
        )
        self.__dict__.update(rebuilt.__dict__)
        return self

    def query(self, queries, k: int) -> QueryResult:
        """Exact k-NN over all blocks, AABB-pruned per query."""
        q = queries.xyz if isinstance(queries, PointCloud) else np.asarray(
            queries, dtype=np.float64
        )
        if q.ndim != 2 or q.shape[1] != 3:
            raise ValueError("queries must have shape (M, 3)")
        if k < 1:
            raise ValueError("k must be positive")
        m = q.shape[0]
        run_idx = np.full((m, k), PAD_INDEX, dtype=np.int64)
        run_dst = np.full((m, k), np.inf, dtype=np.float64)
        if m == 0:
            return QueryResult(indices=run_idx, distances=run_dst)

        # Squared lower bound from every query to every block's AABB.
        below = np.maximum(self._aabb_lo[None, :, :] - q[:, None, :], 0.0)
        above = np.maximum(q[:, None, :] - self._aabb_hi[None, :, :], 0.0)
        lb = (below * below + above * above).sum(axis=2)
        order = np.argsort(lb, axis=1, kind="stable")
        lb_sorted = np.take_along_axis(lb, order, axis=1)

        obs = get_registry()
        obs.counter("blocked.queries").inc(m)
        alive = np.arange(m)
        for round_no in range(self.n_blocks):
            # A block stays interesting while its bound does not beat
            # the query's current k-th distance (non-strict, so exact
            # ties are still visited and merges stay canonical).
            kth_sq = run_dst[alive, k - 1] ** 2
            keep = lb_sorted[alive, round_no] <= kth_sq * (1.0 + _PRUNE_SLACK)
            alive = alive[keep]
            if alive.size == 0:
                break
            blocks = order[alive, round_no]
            for block in np.unique(blocks):
                rows = alive[blocks == block]
                idx_part, dst_part = self._search_block(
                    int(block), q[rows], k
                )
                merged_idx, merged_dst = _merge_rows(
                    run_idx[rows], run_dst[rows], idx_part, dst_part, k
                )
                run_idx[rows] = merged_idx
                run_dst[rows] = merged_dst
            self._block_visits += int(alive.size)
            obs.counter("blocked.block_visits").inc(int(alive.size))
        return QueryResult(indices=run_idx, distances=run_dst)

    # -- non-kNN modalities (native) ----------------------------------
    supports_radius = True
    supports_sample = True

    def query_radius(
        self,
        queries,
        radius: float,
        *,
        max_neighbors: int | None = None,
    ) -> "RaggedResult":
        """Exact batched radius search, AABB-pruned per block.

        Visits every block whose squared AABB lower bound is within the
        ball (under the same slack as :meth:`query` — extra visits only
        cost time), runs the vectorized
        :func:`~repro.query.radius.radius_batched` kernel on the
        relevant query rows, translates hits to global ids, and funnels
        all pairs through the one canonical CSR sort.  The cap is
        applied after the global merge, never per block, so the result
        is bit-identical to a monolithic tree over the same cloud.
        """
        from repro.query.radius import (
            _as_query_array,
            _check_radius,
            radius_batched,
        )
        from repro.query.result import build_ragged

        radius = _check_radius(radius)
        q = _as_query_array(queries)
        m = q.shape[0]
        obs = get_registry()
        obs.counter("blocked.queries").inc(m)
        pair_q: list[np.ndarray] = []
        pair_i: list[np.ndarray] = []
        pair_d: list[np.ndarray] = []
        if m:
            below = np.maximum(self._aabb_lo[None, :, :] - q[:, None, :], 0.0)
            above = np.maximum(q[:, None, :] - self._aabb_hi[None, :, :], 0.0)
            lb = (below * below + above * above).sum(axis=2)
            within = lb <= (radius * radius) * (1.0 + _PRUNE_SLACK)
            for block in range(self.n_blocks):
                rows = np.flatnonzero(within[:, block])
                if rows.size == 0:
                    continue
                resident = self._get_block(block)
                part = radius_batched(resident.tree, q[rows], radius)
                if part.n_pairs:
                    pair_q.append(np.repeat(rows, part.counts()))
                    pair_i.append(resident.global_ids[part.indices])
                    pair_d.append(part.distances)
                self._block_visits += int(rows.size)
                obs.counter("blocked.block_visits").inc(int(rows.size))
        qid = (
            np.concatenate(pair_q) if pair_q
            else np.empty(0, dtype=np.int64)
        )
        idx = (
            np.concatenate(pair_i) if pair_i
            else np.empty(0, dtype=np.int64)
        )
        dst = (
            np.concatenate(pair_d) if pair_d
            else np.empty(0, dtype=np.float64)
        )
        return build_ragged(qid, idx, dst, m, max_neighbors=max_neighbors)

    def sample(self, m: int, *, start: int = 0) -> np.ndarray:
        """Two-level farthest point sampling across blocks.

        One :class:`~repro.query.fps.BucketFpsState` per block carries
        the fused-FPS bucket pruning; on top, a whole block is skipped
        when its point-AABB lower bound to the new sample already meets
        or exceeds the block's own maximum distance-to-sample (then no
        member's minimum can change — the same no-op proof as the
        bucket level, one level up).  Selection takes the global max,
        ties by ascending global id; per-block ids ascend with local
        ids (the stager appends chunks in scan order), so the sequence
        is bit-identical to :func:`~repro.query.fps.sample_fps_reference`
        over the whole cloud.
        """
        from repro.query.fps import BucketFpsState, _check_sample_args

        _check_sample_args(self.n_points, m, start)
        obs = get_registry()
        with obs.timer("build.fps"):
            states: list[BucketFpsState] = []
            gids_all: list[np.ndarray] = []
            los: list[np.ndarray] = []
            his: list[np.ndarray] = []
            for block in range(self.n_blocks):
                resident = self._get_block(block)
                xyz = np.asarray(resident.tree.points, dtype=np.float64)
                states.append(BucketFpsState(resident.tree, xyz))
                gids_all.append(
                    np.asarray(resident.global_ids, dtype=np.int64)
                )
                los.append(xyz.min(axis=0))
                his.append(xyz.max(axis=0))
            sel = np.empty(m, dtype=np.int64)
            sel[0] = start
            cur_block, cur_local = self._locate(gids_all, start)
            block_visits = 0
            block_pruned = 0
            for i in range(1, m):
                s = states[cur_block].xyz[cur_local]
                for b, state in enumerate(states):
                    if b == cur_block:
                        state.update(s, cur_local)
                        block_visits += 1
                        continue
                    delta = np.maximum(
                        np.maximum(los[b] - s, s - his[b]), 0.0
                    )
                    if float((delta * delta).sum()) < float(
                        state.bucket_max.max()
                    ):
                        state.update(s)
                        block_visits += 1
                    else:
                        block_pruned += 1
                best_val = -np.inf
                best_gid = -1
                for b, state in enumerate(states):
                    val, arg = state.peek()
                    if val == -np.inf:
                        continue
                    gid = int(gids_all[b][arg])
                    if val > best_val or (
                        val == best_val and gid < best_gid
                    ):
                        best_val = val
                        best_gid = gid
                        cur_block, cur_local = b, arg
                sel[i] = best_gid
        if obs.enabled:
            obs.counter("build.fps.calls").inc()
            obs.counter("build.fps.samples").inc(m)
            obs.counter("build.fps.bucket_visits").inc(
                sum(s.visited for s in states)
            )
            obs.counter("build.fps.bucket_pruned").inc(
                sum(s.pruned for s in states)
            )
            obs.counter("blocked.fps.block_visits").inc(block_visits)
            obs.counter("blocked.fps.block_pruned").inc(block_pruned)
        return sel

    @staticmethod
    def _locate(
        gids_all: list[np.ndarray], global_id: int
    ) -> tuple[int, int]:
        """Map a global point id to its (block, local index)."""
        for b, gids in enumerate(gids_all):
            pos = int(np.searchsorted(gids, global_id))
            if pos < gids.size and gids[pos] == global_id:
                return b, pos
        raise ValueError(f"global id {global_id} not found in any block")

    def stats(self) -> dict:
        sizes = self.manifest["block_points"]
        return {
            "n_reference": self.n_points,
            "n_blocks": self.n_blocks,
            "partitioner": self.manifest["config"]["partitioner"],
            "resident_blocks": len(self._resident),
            "resident_bytes": sum(
                r.nbytes for r in self._resident.values()
            ),
            "block_loads": self._loads,
            "block_evictions": self._evictions,
            "block_visits": self._block_visits,
            "min_block_points": int(min(sizes)),
            "max_block_points": int(max(sizes)),
        }

    # -- block cache ---------------------------------------------------
    def _search_block(
        self, block: int, q: np.ndarray, k: int, budget: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        resident = self._get_block(block)
        if budget is None:
            result, _ = knn_exact_batched(resident.tree, q, k)
        elif budget == 0:
            result = knn_approx_batched(resident.tree, q, k)
        else:
            result, _ = knn_exact_batched(
                resident.tree, q, k, max_visits=budget
            )
        local = result.indices
        translated = resident.global_ids[local]
        translated[local == PAD_INDEX] = PAD_INDEX
        return translated, result.distances

    def _get_block(self, block: int) -> _ResidentBlock:
        entry = self._resident.get(block)
        now = self._clock()
        if entry is None:
            snap = Snapshot.load(self._files[block], mmap_mode=self.mmap_mode)
            entry = _ResidentBlock(
                block=block,
                tree=snap.to_flat(),
                global_ids=np.asarray(
                    snap.extras["global_ids"], dtype=np.int64
                ),
                nbytes=_tree_resident_nbytes(snap.arrays, snap.n_points),
                last_active=now,
            )
            self._resident[block] = entry
            self._loads += 1
            get_registry().counter("blocked.block_loads").inc()
            self._enforce_residency(now, keep=block)
        entry.last_active = now
        return entry

    def _enforce_residency(self, now: float, *, keep: int) -> None:
        policy = EVICTION.resolve(self.eviction)

        def over_budget() -> bool:
            if (self.max_resident_blocks is not None
                    and len(self._resident) > self.max_resident_blocks):
                return True
            return (
                self.max_resident_bytes is not None
                and len(self._resident) > 1
                and sum(r.nbytes for r in self._resident.values())
                > self.max_resident_bytes
            )

        while over_budget():
            victims = [r for b, r in self._resident.items() if b != keep]
            if not victims:
                break
            victim = min(victims, key=lambda r: policy(r, now))
            del self._resident[victim.block]
            self._evictions += 1
            get_registry().counter("blocked.block_evictions").inc()

    # -- serving integration ------------------------------------------
    def as_shard(self) -> "BlockedShard":
        """Adapter so this index can back a serving shard.

        The returned object satisfies the thread execution backend's
        shard contract (``search(q, k, budget)`` + ``global_ids``);
        hand it to :meth:`repro.serve.server.KnnServer.from_shards`.
        The process backend snapshots shards into shared memory — that
        would materialize every block, so it is refused.
        """
        return BlockedShard(self)


class BlockedShard:
    """Duck-typed :class:`~repro.serve.sharding.ShardState` over a
    :class:`BlockedIndex` — thread execution backend only."""

    def __init__(self, index: BlockedIndex):
        self.index = index
        self.global_ids = np.arange(index.n_points, dtype=np.int64)

    def search(
        self, q: np.ndarray, k: int, budget: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The serving ladder's budgets, mapped to the blocked router.

        ``None`` is the full exact routed search.  A degraded budget
        (``0`` or a ``max_visits`` bound) applies to the query's *home*
        block only — the approximate answer stays local, mirroring the
        single-tree ladder's locality.
        """
        if budget is None:
            result = self.index.query(q, k)
            return result.indices, result.distances
        below = np.maximum(self.index._aabb_lo[None] - q[:, None], 0.0)
        above = np.maximum(q[:, None] - self.index._aabb_hi[None], 0.0)
        home = ((below * below + above * above).sum(axis=2)).argmin(axis=1)
        idx = np.full((q.shape[0], k), PAD_INDEX, dtype=np.int64)
        dst = np.full((q.shape[0], k), np.inf, dtype=np.float64)
        for block in np.unique(home):
            rows = home == block
            idx[rows], dst[rows] = self.index._search_block(
                int(block), q[rows], k, budget=budget
            )
        return idx, dst

    def search_radius(
        self, q: np.ndarray, radius: float, k: int | None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Radius rows for the serving layer, as a global CSR triplet.

        Same ``(indices, distances, offsets)`` contract as
        :meth:`repro.serve.sharding.ShardState.search_radius`; ids are
        already global here.  Radius requests never degrade, so there
        is no budget parameter.
        """
        result = self.index.query_radius(q, radius, max_neighbors=k)
        return result.indices, result.distances, result.offsets

    def snapshot(self):
        raise NotImplementedError(
            "a blocked shard cannot be snapshotted into shared memory "
            "(that would materialize every block); serve a BlockedIndex "
            "with the thread execution backend"
        )


def _merge_rows(
    idx_a: np.ndarray, dst_a: np.ndarray,
    idx_b: np.ndarray, dst_b: np.ndarray, k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Canonical row-wise merge of two top-k lists.

    Same order as :func:`repro.serve.sharding.merge_topk` — ascending
    distance, ties by ascending global id, padding last — via two
    stable argsorts.  Blocks partition the points, so no id repeats.
    """
    cat_idx = np.concatenate([idx_a, idx_b], axis=1)
    cat_dst = np.concatenate([dst_a, dst_b], axis=1)
    o1 = np.argsort(cat_idx, axis=1, kind="stable")
    o2 = np.argsort(
        np.take_along_axis(cat_dst, o1, axis=1), axis=1, kind="stable"
    )
    order = np.take_along_axis(o1, o2, axis=1)[:, :k]
    idx = np.take_along_axis(cat_idx, order, axis=1)
    dst = np.take_along_axis(cat_dst, order, axis=1)
    idx[np.isinf(dst)] = PAD_INDEX
    return idx, dst
