"""Registry of tree-construction strategies (the ``builder=`` knob).

:class:`~repro.kdtree.config.KdTreeConfig` validates its ``builder``
field against this registry, and :func:`repro.kdtree.build.build_tree`
dispatches through it — one source of truth for which builders exist,
with the repo-wide ``unknown tree builder ...; available: ...`` error.

Each entry is called as ``builder(points, config, rng=rng, place=place)``
and returns ``(KdTree, BuildTrace)``.  The bodies import lazily so this
module stays importable from ``config.py`` without a cycle
(``config -> builders -> registry`` only).
"""

from __future__ import annotations

from repro.registry import Registry

BUILDERS: Registry = Registry("tree builder")


@BUILDERS.register("vectorized")
def _vectorized(points, config, *, rng, place):
    from repro.kdtree.build import _build_vectorized

    return _build_vectorized(points, config, rng=rng, place=place)


@BUILDERS.register("legacy")
def _legacy(points, config, *, rng, place):
    from repro.kdtree.build import _build_legacy

    return _build_legacy(points, config, rng=rng, place=place)
