"""Randomized k-d tree forest (FLANN's multi-tree search).

The FLANN library the paper benchmarks on the CPU does not search one
k-d tree: it builds several *randomized* trees (each choosing its split
dimension randomly among the highest-variance axes) and runs a shared
best-bin-first search across all of them.  Multiple de-correlated
partitions make it much less likely that a true neighbor hides behind a
cell boundary in every tree at once.

This module provides that structure for completeness of the software
baseline: :class:`KdForest` builds ``n_trees`` randomized trees over
the same points and searches them jointly under one leaf budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.node import NO_NODE, KdNode, KdTree
from repro.kdtree.search import PAD_INDEX, QueryResult, _insert_bounded


@dataclass(frozen=True)
class KdForestConfig:
    """Forest parameters.

    ``top_variance_dims`` is FLANN's randomization knob: each split
    picks uniformly among that many highest-variance dimensions (in 3D,
    2 is the sweet spot — pure random over 3 axes degrades balance).
    """

    n_trees: int = 4
    bucket_capacity: int = 64
    top_variance_dims: int = 2

    def __post_init__(self):
        if self.n_trees < 1:
            raise ValueError("forest needs at least one tree")
        if self.bucket_capacity < 1:
            raise ValueError("bucket_capacity must be positive")
        if not (1 <= self.top_variance_dims <= 3):
            raise ValueError("top_variance_dims must be in [1, 3]")


class KdForest:
    """Several randomized k-d trees over one reference set."""

    name = "forest"

    def __init__(
        self,
        reference: PointCloud | np.ndarray,
        config: KdForestConfig | None = None,
        *,
        rng: np.random.Generator | None = None,
    ):
        self.config = config or KdForestConfig()
        self._rng = rng or np.random.default_rng(0)
        self.build(reference)

    def build(self, reference: PointCloud | np.ndarray) -> "KdForest":
        """Rebuild every randomized tree over a new reference; returns self."""
        self.points = (
            reference.xyz if isinstance(reference, PointCloud)
            else np.asarray(reference, dtype=np.float64)
        )
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError("reference must have shape (N, 3)")
        if self.points.shape[0] == 0:
            raise ValueError("reference set is empty")
        self.trees = [
            self._build_randomized(self._rng) for _ in range(self.config.n_trees)
        ]
        return self

    def stats(self) -> dict:
        return {
            "n_reference": int(self.points.shape[0]),
            "n_trees": self.config.n_trees,
            "bucket_capacity": self.config.bucket_capacity,
            "top_variance_dims": self.config.top_variance_dims,
        }

    # ------------------------------------------------------------------
    def _build_randomized(self, rng: np.random.Generator) -> KdTree:
        """One tree with random split dimensions among top-variance axes."""
        cfg = KdTreeConfig(bucket_capacity=self.config.bucket_capacity)
        tree = KdTree(points=self.points)
        n = self.points.shape[0]
        target_depth = cfg.target_depth(n)
        all_points = np.arange(n, dtype=np.int64)

        def construct(members: np.ndarray, depth: int, parent: int) -> int:
            index = len(tree.nodes)
            if depth >= target_depth or members.size <= self.config.bucket_capacity:
                bucket_id = len(tree.buckets)
                tree.buckets.append(members)
                tree.nodes.append(
                    KdNode(index=index, parent=parent, depth=depth, bucket_id=bucket_id)
                )
                return index
            coords = self.points[members]
            variances = coords.var(axis=0)
            candidates = np.argsort(variances, kind="stable")[::-1][
                : self.config.top_variance_dims
            ]
            dim = int(rng.choice(candidates))
            values = coords[:, dim]
            threshold = float(np.median(values))
            go_left = values <= threshold
            if go_left.all() or not go_left.any():
                bucket_id = len(tree.buckets)
                tree.buckets.append(members)
                tree.nodes.append(
                    KdNode(index=index, parent=parent, depth=depth, bucket_id=bucket_id)
                )
                return index
            node = KdNode(index=index, parent=parent, depth=depth,
                          dim=dim, threshold=threshold)
            tree.nodes.append(node)
            node.left = construct(members[go_left], depth + 1, index)
            node.right = construct(members[~go_left], depth + 1, index)
            return index

        construct(all_points, 0, NO_NODE)
        tree.invalidate_caches()
        return tree

    # ------------------------------------------------------------------
    def query(self, queries: PointCloud | np.ndarray, k: int,
              *, max_leaves: int = 8) -> QueryResult:
        """Joint best-bin-first search across all trees.

        One shared priority queue orders cells from every tree by their
        lower-bound distance; at most ``max_leaves`` buckets are scanned
        per query in total (the FLANN "checks" budget).
        """
        if k < 1:
            raise ValueError("k must be positive")
        if max_leaves < 1:
            raise ValueError("max_leaves must be positive")
        q = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
        q = np.atleast_2d(q)
        m = q.shape[0]
        indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
        distances = np.full((m, k), np.inf)

        for i in range(m):
            point = q[i]
            best_idx: list[int] = []
            best_dst: list[float] = []
            seen: set[int] = set()
            heap: list[tuple[float, int, int, int]] = [
                (0.0, t, 0, tree.ROOT) for t, tree in enumerate(self.trees)
            ]
            heapq.heapify(heap)
            counter = len(self.trees)
            visited = 0
            while heap and visited < max_leaves:
                bound, t, _, node_index = heapq.heappop(heap)
                if len(best_dst) == k and bound >= best_dst[-1]:
                    break
                tree = self.trees[t]
                node = tree.nodes[node_index]
                while not node.is_leaf:
                    delta = point[node.dim] - node.threshold
                    near, far = (
                        (node.left, node.right) if delta <= 0
                        else (node.right, node.left)
                    )
                    heapq.heappush(heap, (max(bound, abs(delta)), t, counter, far))
                    counter += 1
                    node = tree.nodes[near]
                visited += 1
                members = tree.buckets[node.bucket_id]
                if members.size == 0:
                    continue
                diffs = self.points[members] - point
                dists = np.sqrt((diffs * diffs).sum(axis=1))
                for ci, cd in zip(members, dists):
                    ci = int(ci)
                    if ci in seen:
                        continue
                    seen.add(ci)
                    _insert_bounded(best_idx, best_dst, ci, float(cd), k)
            indices[i, : len(best_idx)] = best_idx
            distances[i, : len(best_dst)] = best_dst
        return QueryResult(indices=indices, distances=distances)

    # ------------------------------------------------------------------
    def query_batched(self, queries: PointCloud | np.ndarray, k: int) -> QueryResult:
        """Multi-tree single-bucket search on the batched engine.

        Every tree answers the whole batch with
        :func:`~repro.kdtree.engine.knn_approx_batched`; the per-tree
        top-k lists are then merged per query — duplicates (the same
        point found by several trees) are collapsed by sorting each row
        by point id and masking repeats — and the best k survive.
        A vectorized alternative to :meth:`query` when the leaf budget
        per tree is 1.
        """
        from repro.kdtree.engine import knn_approx_batched

        if k < 1:
            raise ValueError("k must be positive")
        q = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
        q = np.atleast_2d(q)
        per_tree = [knn_approx_batched(t.flat(), q, k) for t in self.trees]
        idx = np.concatenate([r.indices for r in per_tree], axis=1)
        dst = np.concatenate([r.distances for r in per_tree], axis=1)

        rows = np.arange(q.shape[0])[:, None]
        by_id = np.argsort(idx, axis=1, kind="stable")
        sidx = idx[rows, by_id]
        sdst = dst[rows, by_id]
        dup = (sidx[:, 1:] == sidx[:, :-1]) & (sidx[:, 1:] != PAD_INDEX)
        sdst[:, 1:][dup] = np.inf

        by_dist = np.argsort(sdst, axis=1, kind="stable")[:, :k]
        out_idx = sidx[rows, by_dist]
        out_dst = sdst[rows, by_dist]
        out_idx[np.isinf(out_dst)] = PAD_INDEX
        return QueryResult(indices=out_idx, distances=out_dst)
