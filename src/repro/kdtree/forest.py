"""Randomized k-d tree forest (FLANN's multi-tree search).

The FLANN library the paper benchmarks on the CPU does not search one
k-d tree: it builds several *randomized* trees (each choosing its split
dimension randomly among the highest-variance axes) and runs a shared
best-bin-first search across all of them.  Multiple de-correlated
partitions make it much less likely that a true neighbor hides behind a
cell boundary in every tree at once.

This module provides that structure for completeness of the software
baseline: :class:`KdForest` builds ``n_trees`` randomized trees over
the same points and searches them jointly under one leaf budget.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud
from repro.modality import UnsupportedQueryMixin
from repro.kdtree.builders import BUILDERS
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.node import NO_NODE, KdNode, KdTree
from repro.kdtree.search import PAD_INDEX, QueryResult, _insert_bounded
from repro.obs import get_registry


@dataclass(frozen=True)
class KdForestConfig:
    """Forest parameters.

    ``top_variance_dims`` is FLANN's randomization knob: each split
    picks uniformly among that many highest-variance dimensions (in 3D,
    2 is the sweet spot — pure random over 3 axes degrades balance).

    ``builder`` mirrors ``KdTreeConfig.builder``: ``"legacy"`` (the
    default) is the per-node recursive build; ``"vectorized"`` runs a
    level-synchronous build that sorts every level with radix passes
    over presorted per-dimension ranks.  The two draw random split
    dimensions in a different order, so trees differ between builders
    (each is deterministic for a given rng); bucket *membership* logic
    is identical.
    """

    n_trees: int = 4
    bucket_capacity: int = 64
    top_variance_dims: int = 2
    builder: str = "legacy"

    def __post_init__(self):
        if self.n_trees < 1:
            raise ValueError("forest needs at least one tree")
        if self.bucket_capacity < 1:
            raise ValueError("bucket_capacity must be positive")
        if not (1 <= self.top_variance_dims <= 3):
            raise ValueError("top_variance_dims must be in [1, 3]")
        BUILDERS.check(self.builder)


class KdForest(UnsupportedQueryMixin):
    """Several randomized k-d trees over one reference set.

    Radius / FPS queries are unsupported (the randomized trees share no
    single exact bound structure) and raise the typed
    :class:`~repro.index.protocol.UnsupportedQuery`.
    """

    name = "forest"

    def __init__(
        self,
        reference: PointCloud | np.ndarray,
        config: KdForestConfig | None = None,
        *,
        rng: np.random.Generator | None = None,
    ):
        self.config = config or KdForestConfig()
        self._rng = rng or np.random.default_rng(0)
        self.build(reference)

    def build(self, reference: PointCloud | np.ndarray) -> "KdForest":
        """Rebuild every randomized tree over a new reference; returns self."""
        self.points = (
            reference.xyz if isinstance(reference, PointCloud)
            else np.asarray(reference, dtype=np.float64)
        )
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError("reference must have shape (N, 3)")
        if self.points.shape[0] == 0:
            raise ValueError("reference set is empty")
        with get_registry().timer(f"build.forest.{self.config.builder}"):
            if self.config.builder == "vectorized":
                ranks = self._dimension_ranks()
                self.trees = [
                    self._build_randomized_vectorized(self._rng, ranks)
                    for _ in range(self.config.n_trees)
                ]
            else:
                self.trees = [
                    self._build_randomized(self._rng)
                    for _ in range(self.config.n_trees)
                ]
        return self

    def stats(self) -> dict:
        return {
            "n_reference": int(self.points.shape[0]),
            "n_trees": self.config.n_trees,
            "bucket_capacity": self.config.bucket_capacity,
            "top_variance_dims": self.config.top_variance_dims,
            "builder": self.config.builder,
        }

    # ------------------------------------------------------------------
    def _build_randomized(self, rng: np.random.Generator) -> KdTree:
        """One tree with random split dimensions among top-variance axes."""
        cfg = KdTreeConfig(bucket_capacity=self.config.bucket_capacity)
        tree = KdTree(points=self.points)
        n = self.points.shape[0]
        target_depth = cfg.target_depth(n)
        all_points = np.arange(n, dtype=np.int64)

        def construct(members: np.ndarray, depth: int, parent: int) -> int:
            index = len(tree.nodes)
            if depth >= target_depth or members.size <= self.config.bucket_capacity:
                bucket_id = len(tree.buckets)
                tree.buckets.append(members)
                tree.nodes.append(
                    KdNode(index=index, parent=parent, depth=depth, bucket_id=bucket_id)
                )
                return index
            coords = self.points[members]
            variances = coords.var(axis=0)
            candidates = np.argsort(variances, kind="stable")[::-1][
                : self.config.top_variance_dims
            ]
            dim = int(rng.choice(candidates))
            values = coords[:, dim]
            threshold = float(np.median(values))
            go_left = values <= threshold
            if go_left.all() or not go_left.any():
                bucket_id = len(tree.buckets)
                tree.buckets.append(members)
                tree.nodes.append(
                    KdNode(index=index, parent=parent, depth=depth, bucket_id=bucket_id)
                )
                return index
            node = KdNode(index=index, parent=parent, depth=depth,
                          dim=dim, threshold=threshold)
            tree.nodes.append(node)
            node.left = construct(members[go_left], depth + 1, index)
            node.right = construct(members[~go_left], depth + 1, index)
            return index

        construct(all_points, 0, NO_NODE)
        tree.invalidate_caches()
        return tree

    # ------------------------------------------------------------------
    def _dimension_ranks(self) -> np.ndarray:
        """Per-dimension ranks of every point, shared by all trees.

        Sorting a level by a point's precomputed integer rank is
        equivalent to a stable sort by its coordinate, but runs as a
        radix pass (int16 whenever N fits) instead of a float64
        comparison sort — the main cost of the level loop.
        """
        n = self.points.shape[0]
        dtype = np.int16 if n <= np.iinfo(np.int16).max else np.int32
        ranks = np.empty((3, n), dtype=dtype)
        for d in range(3):
            order = np.argsort(self.points[:, d], kind="stable")
            ranks[d, order] = np.arange(n, dtype=dtype)
        return ranks

    def _build_randomized_vectorized(
        self, rng: np.random.Generator, ranks: np.ndarray
    ) -> KdTree:
        """Level-synchronous randomized build (one sort pass per level).

        Produces the same kind of tree as :meth:`_build_randomized`
        (random split dim among the ``top_variance_dims``
        highest-variance axes, median threshold, ``<=`` goes left,
        degenerate splits become leaves) but processes all nodes of a
        level at once.  Split dimensions are drawn in level order rather
        than depth-first, so for a given rng the trees differ from the
        legacy builder's — both are deterministic.  Bucket members come
        out sorted by the last split coordinate instead of by point id;
        search never depends on bucket order.
        """
        cfg = KdTreeConfig(bucket_capacity=self.config.bucket_capacity)
        tree = KdTree(points=self.points)
        n = self.points.shape[0]
        target_depth = cfg.target_depth(n)
        cap = self.config.bucket_capacity
        top_k = self.config.top_variance_dims

        # Active segments: contiguous runs of `perm`, one per un-emitted
        # node, with P/R the point columns / rank columns physically
        # permuted to match.
        perm = np.arange(n, dtype=np.int64)
        pts = np.ascontiguousarray(self.points.T)
        rnk = np.ascontiguousarray(ranks)
        sizes = np.array([n], dtype=np.int64)
        parents = np.array([NO_NODE], dtype=np.int64)
        right_child = np.array([False])
        depth = 0

        def emit(parent: int, is_right: bool, members: np.ndarray | None,
                 dim: int = NO_NODE, threshold: float = 0.0) -> int:
            index = len(tree.nodes)
            if members is not None:
                bucket_id = len(tree.buckets)
                tree.buckets.append(members)
                tree.nodes.append(KdNode(index=index, parent=parent,
                                         depth=depth, bucket_id=bucket_id))
            else:
                tree.nodes.append(KdNode(index=index, parent=parent, depth=depth,
                                         dim=dim, threshold=threshold))
            if parent != NO_NODE:
                if is_right:
                    tree.nodes[parent].right = index
                else:
                    tree.nodes[parent].left = index
            return index

        while sizes.size:
            nseg = sizes.size
            starts = np.zeros(nseg + 1, dtype=np.int64)
            np.cumsum(sizes, out=starts[1:])
            leaf = (sizes <= cap) | (depth >= target_depth)
            for j in np.flatnonzero(leaf):
                emit(int(parents[j]), bool(right_child[j]),
                     perm[starts[j]:starts[j + 1]].copy())
            if leaf.all():
                break

            keep = ~leaf
            keep_rep = np.repeat(keep, sizes)
            perm = perm[keep_rep]
            pts = pts[:, keep_rep]
            rnk = rnk[:, keep_rep]
            sizes = sizes[keep]
            parents = parents[keep]
            right_child = right_child[keep]
            nseg = sizes.size
            starts = np.zeros(nseg + 1, dtype=np.int64)
            np.cumsum(sizes, out=starts[1:])
            n_active = int(starts[-1])

            # Split dimension: random among the top-variance axes, with
            # variances computed per segment via reduceat on the
            # centered coordinates (robust to off-origin frames).
            variances = np.empty((nseg, 3))
            inv = 1.0 / sizes
            for d in range(3):
                row = pts[d]
                mean = np.add.reduceat(row, starts[:-1]) * inv
                centered = row - np.repeat(mean, sizes)
                variances[:, d] = (
                    np.add.reduceat(centered * centered, starts[:-1]) * inv
                )
            candidates = np.argsort(variances, axis=1, kind="stable")[:, ::-1][:, :top_k]
            draws = rng.integers(0, top_k, size=nseg)
            dims = candidates[np.arange(nseg), draws]

            # One stable segment sort by the chosen dimension's rank:
            # radix by rank, then radix by segment id.
            seg_dtype = np.int16 if nseg <= np.iinfo(np.int16).max else np.int64
            seg_rep = np.repeat(np.arange(nseg, dtype=seg_dtype), sizes)
            dims_rep = np.repeat(dims, sizes)
            keys = rnk[dims_rep, np.arange(n_active)]
            by_key = np.argsort(keys, kind="stable")
            flat = by_key[np.argsort(seg_rep[by_key], kind="stable")]
            perm = perm[flat]
            pts = pts[:, flat]
            rnk = rnk[:, flat]

            # Median threshold (np.median semantics) and left counts.
            vals = pts[dims_rep, np.arange(n_active)]
            mid = starts[:-1] + sizes // 2
            hi = vals[mid]
            lo = vals[np.maximum(mid - 1, 0)]
            thresholds = np.where(sizes % 2 == 1, hi, 0.5 * (lo + hi))
            below = np.concatenate(
                ([0], np.cumsum(vals <= np.repeat(thresholds, sizes)))
            )
            cnt_left = below[starts[1:]] - below[starts[:-1]]

            # A split that puts everything on one side degenerates to a
            # leaf, as in the recursive builder.
            degenerate = (cnt_left == 0) | (cnt_left == sizes)
            node_ids = np.empty(nseg, dtype=np.int64)
            for j in range(nseg):
                if degenerate[j]:
                    node_ids[j] = emit(int(parents[j]), bool(right_child[j]),
                                       perm[starts[j]:starts[j + 1]].copy())
                else:
                    node_ids[j] = emit(int(parents[j]), bool(right_child[j]), None,
                                       dim=int(dims[j]),
                                       threshold=float(thresholds[j]))

            split = ~degenerate
            if degenerate.any():
                keep_rep = np.repeat(split, sizes)
                perm = perm[keep_rep]
                pts = pts[:, keep_rep]
                rnk = rnk[:, keep_rep]
            n_split = int(split.sum())
            next_sizes = np.empty(2 * n_split, dtype=np.int64)
            next_sizes[0::2] = cnt_left[split]
            next_sizes[1::2] = sizes[split] - cnt_left[split]
            parents = np.repeat(node_ids[split], 2)
            right_child = np.tile([False, True], n_split)
            sizes = next_sizes
            depth += 1

        tree.invalidate_caches()
        return tree

    # ------------------------------------------------------------------
    def query(self, queries: PointCloud | np.ndarray, k: int,
              *, max_leaves: int = 8) -> QueryResult:
        """Joint best-bin-first search across all trees.

        One shared priority queue orders cells from every tree by their
        lower-bound distance; at most ``max_leaves`` buckets are scanned
        per query in total (the FLANN "checks" budget).
        """
        if k < 1:
            raise ValueError("k must be positive")
        if max_leaves < 1:
            raise ValueError("max_leaves must be positive")
        q = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
        q = np.atleast_2d(q)
        m = q.shape[0]
        indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
        distances = np.full((m, k), np.inf)

        for i in range(m):
            point = q[i]
            best_idx: list[int] = []
            best_dst: list[float] = []
            seen: set[int] = set()
            heap: list[tuple[float, int, int, int]] = [
                (0.0, t, 0, tree.ROOT) for t, tree in enumerate(self.trees)
            ]
            heapq.heapify(heap)
            counter = len(self.trees)
            visited = 0
            while heap and visited < max_leaves:
                bound, t, _, node_index = heapq.heappop(heap)
                if len(best_dst) == k and bound >= best_dst[-1]:
                    break
                tree = self.trees[t]
                node = tree.nodes[node_index]
                while not node.is_leaf:
                    delta = point[node.dim] - node.threshold
                    near, far = (
                        (node.left, node.right) if delta <= 0
                        else (node.right, node.left)
                    )
                    heapq.heappush(heap, (max(bound, abs(delta)), t, counter, far))
                    counter += 1
                    node = tree.nodes[near]
                visited += 1
                members = tree.buckets[node.bucket_id]
                if members.size == 0:
                    continue
                diffs = self.points[members] - point
                dists = np.sqrt((diffs * diffs).sum(axis=1))
                for ci, cd in zip(members, dists):
                    ci = int(ci)
                    if ci in seen:
                        continue
                    seen.add(ci)
                    _insert_bounded(best_idx, best_dst, ci, float(cd), k)
            indices[i, : len(best_idx)] = best_idx
            distances[i, : len(best_dst)] = best_dst
        return QueryResult(indices=indices, distances=distances)

    # ------------------------------------------------------------------
    def query_batched(self, queries: PointCloud | np.ndarray, k: int) -> QueryResult:
        """Multi-tree single-bucket search on the batched engine.

        Every tree answers the whole batch with
        :func:`~repro.kdtree.engine.knn_approx_batched`; the per-tree
        top-k lists are then merged per query — duplicates (the same
        point found by several trees) are collapsed by sorting each row
        by point id and masking repeats — and the best k survive.
        A vectorized alternative to :meth:`query` when the leaf budget
        per tree is 1.
        """
        from repro.kdtree.engine import knn_approx_batched

        if k < 1:
            raise ValueError("k must be positive")
        q = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
        q = np.atleast_2d(q)
        per_tree = [knn_approx_batched(t.flat(), q, k) for t in self.trees]
        idx = np.concatenate([r.indices for r in per_tree], axis=1)
        dst = np.concatenate([r.distances for r in per_tree], axis=1)

        rows = np.arange(q.shape[0])[:, None]
        by_id = np.argsort(idx, axis=1, kind="stable")
        sidx = idx[rows, by_id]
        sdst = dst[rows, by_id]
        dup = (sidx[:, 1:] == sidx[:, :-1]) & (sidx[:, 1:] != PAD_INDEX)
        sdst[:, 1:][dup] = np.inf

        by_dist = np.argsort(sdst, axis=1, kind="stable")[:, :k]
        out_idx = sidx[rows, by_dist]
        out_dst = sdst[rows, by_dist]
        out_idx[np.isinf(out_dst)] = PAD_INDEX
        return QueryResult(indices=out_idx, distances=out_dst)
