"""Incremental tree update (Section 4.4 of the paper).

Rebuilding the k-d tree from scratch for every frame wastes work when
successive frames are similar; reusing a stale tree unbalances it (the
paper's Figure 10).  Incremental update is the middle road:

1. **Reuse** — the new frame's points are placed into the previous
   tree's buckets (thresholds unchanged).
2. **Merge** — leaves whose bucket fell below a lower bound are marked
   *delinquent*; the subtree under each delinquent leaf's parent is
   collapsed and rebuilt from its points.
3. **Split** — leaves whose bucket rose above an upper bound are marked
   *oversized* and replaced by a freshly constructed subtree.

The result is a tree whose bucket sizes stay within the bounds, at a
fraction of the from-scratch build cost (only the rebuilt subtrees are
sorted).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.node import NO_NODE, KdNode, KdTree
from repro.obs import get_registry


@dataclass
class UpdateTrace:
    """Work accounting for one incremental update."""

    n_merges: int = 0
    n_splits: int = 0
    points_rebuilt: int = 0
    sort_sizes: list[int] = field(default_factory=list)

    @property
    def sorted_elements(self) -> int:
        """Total elements sorted while rebuilding subtrees."""
        return int(sum(self.sort_sizes))

    @property
    def total_sorted_elements(self) -> int:
        """Deprecated: renamed to :attr:`sorted_elements`."""
        warnings.warn(
            "UpdateTrace.total_sorted_elements is deprecated; use "
            "UpdateTrace.sorted_elements (or as_dict()['sorted_elements'])",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.sorted_elements

    def as_dict(self) -> dict:
        """Flat scalar view (the repo-wide stats convention)."""
        return {
            "n_merges": self.n_merges,
            "n_splits": self.n_splits,
            "points_rebuilt": self.points_rebuilt,
            "n_sorts": len(self.sort_sizes),
            "sorted_elements": self.sorted_elements,
        }


def _route_batch(tree: KdTree, xyz: np.ndarray, *, batched: bool) -> np.ndarray:
    """Leaf node index for every row of ``xyz``.

    The batched fast path reuses the engine's level-synchronous descent
    (one gather + compare per level for the whole frame); the fallback
    is the per-node masked walk.  Both return identical leaf ids.
    """
    if batched:
        return tree.flat().descend_fast(xyz)
    return tree.descend_batch(xyz)


def _group_by_leaf(leaf_ids: np.ndarray, n_nodes: int) -> dict[int, np.ndarray]:
    """``{leaf node index: ascending point indices}`` for the new frame.

    One stable argsort over narrow leaf ids replaces the per-leaf
    ``np.flatnonzero`` scans; members stay ascending within each leaf,
    so the grouping is identical to the scan-based one.
    """
    if leaf_ids.size == 0:
        return {}
    if n_nodes <= np.iinfo(np.int16).max:
        key = leaf_ids.astype(np.int16)
    elif n_nodes <= np.iinfo(np.int32).max:
        key = leaf_ids.astype(np.int32)
    else:
        key = leaf_ids
    order = np.argsort(key, kind="stable")
    sorted_leaves = leaf_ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_leaves)) + 1
    groups = np.split(order, boundaries)
    uniques = sorted_leaves[np.concatenate(([0], boundaries))]
    return {int(leaf): members for leaf, members in zip(uniques, groups)}


def reuse_tree(
    tree: KdTree,
    new_points: PointCloud | np.ndarray,
    *,
    batched: bool = True,
) -> KdTree:
    """The *static* strategy: same thresholds, re-bucket the new frame.

    This is the baseline Figure 10 shows diverging: as the scene moves,
    a frozen partition fits the data worse and worse.  ``batched``
    selects the level-parallel placement fast path.
    """
    xyz = _as_points(new_points)
    new_tree = KdTree(points=xyz)
    new_tree.nodes = [KdNode(**vars(n)) for n in tree.nodes]
    new_tree.buckets = [np.empty(0, dtype=np.int64) for _ in tree.buckets]
    # Thresholds are unchanged, so route through the *old* tree's flat
    # view — usually already cached by the previous frame's queries.
    leaf_ids = _route_batch(tree, xyz, batched=batched)
    for leaf, members in _group_by_leaf(leaf_ids, new_tree.n_nodes).items():
        new_tree.buckets[new_tree.nodes[leaf].bucket_id] = members
    return new_tree


def update_tree(
    tree: KdTree,
    new_points: PointCloud | np.ndarray,
    config: KdTreeConfig | None = None,
    *,
    lower_bound: int | None = None,
    upper_bound: int | None = None,
    batched: bool = True,
) -> tuple[KdTree, UpdateTrace]:
    """Incremental update: re-bucket, then merge/split out-of-bound leaves.

    Bounds default to half and twice the configured bucket capacity,
    the operating point of the paper's Figure 10.  ``batched`` routes
    the whole new frame through the engine's level-parallel descent
    (identical leaf assignment, one kernel per level); ``False`` keeps
    the per-node masked walk.
    """
    config = config or KdTreeConfig()
    lower = lower_bound if lower_bound is not None else config.bucket_capacity // 2
    upper = upper_bound if upper_bound is not None else 2 * config.bucket_capacity
    if lower < 0 or upper <= lower:
        raise ValueError(f"need 0 <= lower < upper, got [{lower}, {upper}]")

    with get_registry().timer("build.incremental"):
        new_tree, trace = _update_tree(
            tree, new_points, config, lower=lower, upper=upper, batched=batched
        )
    _record_update_metrics(trace, n_points=new_tree.n_points)
    return new_tree, trace


def _record_update_metrics(trace: UpdateTrace, *, n_points: int) -> None:
    """Register one incremental update in :mod:`repro.obs`."""
    obs = get_registry()
    if not obs.enabled:
        return
    obs.counter("build.incremental.calls").inc()
    obs.counter("build.incremental.points").inc(n_points)
    obs.counter("build.incremental.points_rebuilt").inc(trace.points_rebuilt)
    obs.counter("build.incremental.merges").inc(trace.n_merges)
    obs.counter("build.incremental.splits").inc(trace.n_splits)
    obs.counter("build.incremental.sorted_elements").inc(trace.sorted_elements)


def _update_tree(
    tree: KdTree,
    new_points: PointCloud | np.ndarray,
    config: KdTreeConfig,
    *,
    lower: int,
    upper: int,
    batched: bool,
) -> tuple[KdTree, UpdateTrace]:
    xyz = _as_points(new_points)
    trace = UpdateTrace()

    # Step 1: place the new frame through the old structure.
    leaf_ids = _route_batch(tree, xyz, batched=batched)
    points_by_node = _group_by_leaf(leaf_ids, tree.n_nodes)

    # Subtree point counts, bottom-up.
    counts = _subtree_counts(tree, points_by_node)

    # Step 2/3: decide which subtrees to rebuild.
    rebuild = set()
    for node in tree.nodes:
        if not node.is_leaf:
            continue
        size = counts[node.index]
        if size < lower and node.parent != NO_NODE:
            rebuild.add(node.parent)      # merge: collapse the parent
            trace.n_merges += 1
        elif size > upper:
            rebuild.add(node.index)       # split: subdivide the leaf
            trace.n_splits += 1
    rebuild = _drop_dominated(tree, rebuild)

    # Build the output tree by structural copy + local reconstruction.
    new_tree = KdTree(points=xyz)

    def subtree_point_indices(root: int) -> np.ndarray:
        stack, collected = [root], []
        while stack:
            node = tree.nodes[stack.pop()]
            if node.is_leaf:
                collected.append(points_by_node.get(node.index, np.empty(0, dtype=np.int64)))
            else:
                stack.extend((node.left, node.right))
        return np.concatenate(collected) if collected else np.empty(0, dtype=np.int64)

    def copy(old_index: int, parent: int, depth: int) -> int:
        old = tree.nodes[old_index]
        if old_index in rebuild:
            members = subtree_point_indices(old_index)
            trace.points_rebuilt += members.size
            return _construct_subtree(
                new_tree, xyz, members, parent=parent, depth=depth,
                config=config, upper=upper, trace=trace,
            )
        index = len(new_tree.nodes)
        if old.is_leaf:
            bucket_id = len(new_tree.buckets)
            new_tree.buckets.append(
                points_by_node.get(old_index, np.empty(0, dtype=np.int64))
            )
            new_tree.nodes.append(
                KdNode(index=index, parent=parent, depth=depth, bucket_id=bucket_id)
            )
            return index
        node = KdNode(index=index, parent=parent, depth=depth,
                      dim=old.dim, threshold=old.threshold)
        new_tree.nodes.append(node)
        node.left = copy(old.left, index, depth + 1)
        node.right = copy(old.right, index, depth + 1)
        return index

    copy(tree.ROOT, NO_NODE, 0)
    new_tree.invalidate_caches()
    return new_tree, trace


def _construct_subtree(
    tree: KdTree,
    xyz: np.ndarray,
    members: np.ndarray,
    *,
    parent: int,
    depth: int,
    config: KdTreeConfig,
    upper: int,
    trace: UpdateTrace,
) -> int:
    """Median-split ``members`` until every bucket fits under ``upper``.

    Uses the same sort-and-split method as from-scratch construction,
    but over the actual points (the collapsed region is small, so no
    sampling is needed — matching the paper's note that incremental
    sorts involve "far fewer points than N").
    """
    index = len(tree.nodes)
    if members.size <= upper:
        bucket_id = len(tree.buckets)
        tree.buckets.append(members.astype(np.int64))
        tree.nodes.append(KdNode(index=index, parent=parent, depth=depth, bucket_id=bucket_id))
        return index

    dim = config.dim_at_depth(depth)
    values = xyz[members, dim]
    order = np.argsort(values, kind="stable")
    # Plain int at append time: numpy scalars leak into as_dict() and
    # break json.dumps downstream.
    trace.sort_sizes.append(int(members.size))
    sorted_members = members[order]
    median = members.size // 2
    threshold = float(values[order[median - 1]])

    node = KdNode(index=index, parent=parent, depth=depth, dim=dim, threshold=threshold)
    tree.nodes.append(node)
    # Points equal to the threshold must go left to match descend().
    left_members = sorted_members[values[order] <= threshold]
    right_members = sorted_members[values[order] > threshold]
    if left_members.size == 0 or right_members.size == 0:
        # Degenerate coordinates (all identical on this axis): fall back
        # to an oversized leaf rather than recursing forever.
        tree.nodes.pop()
        bucket_id = len(tree.buckets)
        tree.buckets.append(members.astype(np.int64))
        tree.nodes.append(KdNode(index=index, parent=parent, depth=depth, bucket_id=bucket_id))
        return index
    node.left = _construct_subtree(tree, xyz, left_members, parent=index, depth=depth + 1,
                                   config=config, upper=upper, trace=trace)
    node.right = _construct_subtree(tree, xyz, right_members, parent=index, depth=depth + 1,
                                    config=config, upper=upper, trace=trace)
    return index


def _subtree_counts(tree: KdTree, points_by_node: dict[int, np.ndarray]) -> dict[int, int]:
    """Number of (newly placed) points under every node."""
    counts = {i: 0 for i in range(tree.n_nodes)}
    # Children precede nothing in particular, so do an explicit post-order.
    stack = [(tree.ROOT, False)]
    while stack:
        index, expanded = stack.pop()
        node = tree.nodes[index]
        if node.is_leaf:
            counts[index] = int(points_by_node.get(index, np.empty(0)).size)
        elif not expanded:
            stack.append((index, True))
            stack.append((node.left, False))
            stack.append((node.right, False))
        else:
            counts[index] = counts[node.left] + counts[node.right]
    return counts


def _drop_dominated(tree: KdTree, rebuild: set[int]) -> set[int]:
    """Remove marks that sit inside another marked subtree."""
    kept = set()
    for index in rebuild:
        ancestor = tree.nodes[index].parent
        dominated = False
        while ancestor != NO_NODE:
            if ancestor in rebuild:
                dominated = True
                break
            ancestor = tree.nodes[ancestor].parent
        if not dominated:
            kept.add(index)
    return kept


def _as_points(points: PointCloud | np.ndarray) -> np.ndarray:
    xyz = points.xyz if isinstance(points, PointCloud) else np.asarray(points, dtype=np.float64)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError("points must have shape (N, 3)")
    return xyz
