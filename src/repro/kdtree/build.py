"""Tree construction and point placement.

Implements the two-step build from Section 2.2 of the paper:

1. *Construction* — a sampled subset of the frame is recursively
   sorted along the cycling split dimension and split at the median,
   forming internal nodes, until the target depth or minimum occupancy
   is reached (Figure 2 of the paper).
2. *Placement* — every point of the frame descends the finished tree
   and lands in a leaf bucket.

Construction also records a :class:`BuildTrace` — the sizes of every
sort and the number of placement traversals — which the architecture
models consume to charge sorter and traversal cycles without re-running
the algorithm.

Two interchangeable builders implement the algorithm, selected by
``KdTreeConfig.builder``: the per-node recursive reference path in this
module (``"legacy"``) and the level-synchronous vectorized pipeline in
:mod:`repro.kdtree.flat_build` (``"vectorized"``, the default).  They
are bit-identical in tree shape, bucket contents, and trace totals.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.builders import BUILDERS
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.node import NO_NODE, KdNode, KdTree
from repro.obs import get_registry


@dataclass
class BuildTrace:
    """Operation counts gathered during construction and placement.

    ``sort_sizes`` holds the length of every array handed to the sorter
    (one entry per internal node created); ``placement_traversals``
    counts root-to-leaf walks in the placement phase.
    """

    sample_size: int = 0
    sort_sizes: list[int] = field(default_factory=list)
    placement_traversals: int = 0

    @property
    def sorted_elements(self) -> int:
        """Total elements handed to the sorter across all splits."""
        return int(sum(self.sort_sizes))

    @property
    def total_sorted_elements(self) -> int:
        """Deprecated: renamed to :attr:`sorted_elements`."""
        warnings.warn(
            "BuildTrace.total_sorted_elements is deprecated; use "
            "BuildTrace.sorted_elements (or as_dict()['sorted_elements'])",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.sorted_elements

    def as_dict(self) -> dict:
        """Flat scalar view (the repo-wide stats convention)."""
        return {
            "sample_size": self.sample_size,
            "n_sorts": len(self.sort_sizes),
            "sorted_elements": self.sorted_elements,
            "placement_traversals": self.placement_traversals,
        }


def record_build_metrics(trace: BuildTrace, *, n_points: int, builder: str) -> None:
    """Register one build's trace in :mod:`repro.obs` (``build.*``)."""
    obs = get_registry()
    if not obs.enabled:
        return
    obs.counter("build.calls").inc()
    obs.counter(f"build.calls.{builder}").inc()
    obs.counter("build.points").inc(n_points)
    obs.counter("build.sorted_elements").inc(trace.sorted_elements)
    obs.counter("build.placement_traversals").inc(trace.placement_traversals)
    obs.distribution("build.sample_size").observe(trace.sample_size)
    obs.distribution("build.n_sorts").observe(len(trace.sort_sizes))


def build_tree(
    points: PointCloud | np.ndarray,
    config: KdTreeConfig | None = None,
    *,
    rng: np.random.Generator | None = None,
    place: bool = True,
) -> tuple[KdTree, BuildTrace]:
    """Build a bucketed k-d tree over ``points``.

    Parameters
    ----------
    points:
        The reference frame.
    config:
        Construction parameters; defaults to :class:`KdTreeConfig()`.
        ``config.builder`` selects the construction strategy — the
        vectorized level-synchronous pipeline by default, or the
        recursive reference path with ``builder="legacy"``.
    rng:
        Source of randomness for the construction sample.  ``None``
        uses a fixed seed, making the build deterministic.
    place:
        If true (the default), run the placement phase so every point
        ends up in a bucket.  Architecture models that account placement
        separately pass ``False`` and call :func:`place_points`.

    Returns
    -------
    (tree, trace):
        The finished tree and the operation-count trace.
    """
    config = config or KdTreeConfig()
    builder = BUILDERS.resolve(config.builder)
    return builder(points, config, rng=rng, place=place)


def _build_vectorized(
    points: PointCloud | np.ndarray,
    config: KdTreeConfig,
    *,
    rng: np.random.Generator | None,
    place: bool,
) -> tuple[KdTree, BuildTrace]:
    from repro.kdtree.flat_build import build_tree_vectorized

    with get_registry().timer("build.vectorized"):
        tree, trace = build_tree_vectorized(points, config, rng=rng, place=place)
    record_build_metrics(trace, n_points=tree.n_points, builder="vectorized")
    return tree, trace


def _build_legacy(
    points: PointCloud | np.ndarray,
    config: KdTreeConfig,
    *,
    rng: np.random.Generator | None,
    place: bool,
) -> tuple[KdTree, BuildTrace]:
    rng = rng or np.random.default_rng(0)
    xyz = points.xyz if isinstance(points, PointCloud) else np.asarray(points, dtype=np.float64)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError("points must have shape (N, 3)")
    n = xyz.shape[0]
    if n == 0:
        raise ValueError("cannot build a k-d tree over zero points")

    trace = BuildTrace()
    sample_n = int(config.effective_sample_size(n))
    trace.sample_size = sample_n
    with get_registry().timer("build.legacy"):
        sample_idx = rng.choice(n, size=sample_n, replace=False) if sample_n < n else np.arange(n)
        sample = xyz[sample_idx]

        tree = KdTree(points=xyz)
        target_depth = config.target_depth(n)
        _construct(tree, sample, depth=0, parent=NO_NODE, config=config,
                   target_depth=target_depth, trace=trace)

        if place:
            place_points(tree, trace=trace)
    record_build_metrics(trace, n_points=n, builder="legacy")
    return tree, trace


def _construct(
    tree: KdTree,
    sample: np.ndarray,
    *,
    depth: int,
    parent: int,
    config: KdTreeConfig,
    target_depth: int,
    trace: BuildTrace,
) -> int:
    """Recursively construct nodes over ``sample``; returns the node index."""
    index = len(tree.nodes)
    stop = (
        depth >= target_depth
        or sample.shape[0] < 2 * config.min_samples_per_leaf
    )
    if stop:
        bucket_id = len(tree.buckets)
        tree.buckets.append(np.empty(0, dtype=np.int64))
        tree.nodes.append(
            KdNode(index=index, parent=parent, depth=depth, bucket_id=bucket_id)
        )
        return index

    dim = config.dim_at_depth(depth)
    order = np.argsort(sample[:, dim], kind="stable")
    # Plain int at append time: numpy scalars leak into as_dict() and
    # break json.dumps downstream.
    trace.sort_sizes.append(int(sample.shape[0]))
    sorted_sample = sample[order]
    median = sample.shape[0] // 2
    threshold = float(sorted_sample[median - 1, dim])

    node = KdNode(index=index, parent=parent, depth=depth, dim=dim, threshold=threshold)
    tree.nodes.append(node)

    below = sorted_sample[:median]
    above = sorted_sample[median:]
    node.left = _construct(tree, below, depth=depth + 1, parent=index, config=config,
                           target_depth=target_depth, trace=trace)
    node.right = _construct(tree, above, depth=depth + 1, parent=index, config=config,
                            target_depth=target_depth, trace=trace)
    return index


def place_points(tree: KdTree, *, trace: BuildTrace | None = None) -> None:
    """Placement phase: route every tree point into its leaf bucket.

    Overwrites any existing bucket contents.  Points exactly on a
    threshold go left, matching :meth:`KdTree.descend`.
    """
    tree.invalidate_caches()
    leaf_ids = tree.descend_batch(tree.points)
    order = np.argsort(leaf_ids, kind="stable")
    sorted_leaves = leaf_ids[order]
    boundaries = np.flatnonzero(np.diff(sorted_leaves)) + 1
    groups = np.split(order, boundaries)
    group_leaves = sorted_leaves[np.concatenate(([0], boundaries))] if len(order) else []

    for bucket in range(len(tree.buckets)):
        tree.buckets[bucket] = np.empty(0, dtype=np.int64)
    for leaf_index, members in zip(group_leaves, groups):
        bucket_id = tree.nodes[int(leaf_index)].bucket_id
        tree.buckets[bucket_id] = members.astype(np.int64)

    if trace is not None:
        trace.placement_traversals += tree.n_points
