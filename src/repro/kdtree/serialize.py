"""k-d tree (de)serialization.

Flattens a tree into plain numpy arrays and back, for saving to ``.npz``
or shipping across processes.  The array layout mirrors the hardware's
word-addressable tree cache: one fixed-width record per node.

Two formats live here:

* :func:`save_tree` / :func:`load_tree` — the node-and-pointer
  :class:`~repro.kdtree.node.KdTree` (object graph reconstructed on
  load; what the arch models and per-query searches consume).
* :func:`save_flat` / :func:`load_flat` — a
  :class:`~repro.kdtree.engine.FlatKdTree` snapshot, stored exactly as
  the engine's structure-of-arrays layout so the round trip is
  bit-identical array for array.  This is the warm-start path: a
  serving worker (or an index adapter via
  :meth:`repro.index.KdApproxIndex.from_snapshot`) loads the arrays
  and is immediately queryable, no rebuild.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.kdtree.engine import FlatKdTree
from repro.kdtree.node import KdNode, KdTree

_FORMAT_VERSION = 1
_FLAT_FORMAT_VERSION = 1

#: The structural arrays of a FlatKdTree, in constructor order.
_FLAT_FIELDS = (
    "points",
    "dim",
    "threshold",
    "left",
    "right",
    "is_leaf",
    "bucket_id",
    "bucket_offsets",
    "bucket_members",
)

#: Prefix for caller-supplied side arrays in a flat snapshot (the serve
#: layer stores each shard's global point ids this way).
_EXTRA_PREFIX = "extra_"


def tree_to_arrays(tree: KdTree) -> dict[str, np.ndarray]:
    """Flatten a tree into a dict of arrays (the ``.npz`` payload)."""
    n = tree.n_nodes
    parent = np.empty(n, dtype=np.int64)
    depth = np.empty(n, dtype=np.int64)
    dim = np.empty(n, dtype=np.int64)
    threshold = np.empty(n, dtype=np.float64)
    left = np.empty(n, dtype=np.int64)
    right = np.empty(n, dtype=np.int64)
    bucket_id = np.empty(n, dtype=np.int64)
    for node in tree.nodes:
        i = node.index
        parent[i], depth[i] = node.parent, node.depth
        dim[i], threshold[i] = node.dim, node.threshold
        left[i], right[i], bucket_id[i] = node.left, node.right, node.bucket_id

    # Buckets become one concatenated array plus offsets (ragged layout).
    offsets = np.zeros(len(tree.buckets) + 1, dtype=np.int64)
    for b, members in enumerate(tree.buckets):
        offsets[b + 1] = offsets[b] + members.size
    members = (
        np.concatenate(tree.buckets)
        if tree.buckets and offsets[-1] > 0
        else np.empty(0, dtype=np.int64)
    )

    return {
        "version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "points": tree.points,
        "parent": parent,
        "depth": depth,
        "dim": dim,
        "threshold": threshold,
        "left": left,
        "right": right,
        "bucket_id": bucket_id,
        "bucket_offsets": offsets,
        "bucket_members": members.astype(np.int64),
    }


def tree_from_arrays(arrays: dict[str, np.ndarray]) -> KdTree:
    """Rebuild a tree from :func:`tree_to_arrays` output."""
    version = int(arrays["version"][0])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported tree format version {version}")
    tree = KdTree(points=np.asarray(arrays["points"], dtype=np.float64))
    n = arrays["parent"].shape[0]
    for i in range(n):
        tree.nodes.append(
            KdNode(
                index=i,
                parent=int(arrays["parent"][i]),
                depth=int(arrays["depth"][i]),
                dim=int(arrays["dim"][i]),
                threshold=float(arrays["threshold"][i]),
                left=int(arrays["left"][i]),
                right=int(arrays["right"][i]),
                bucket_id=int(arrays["bucket_id"][i]),
            )
        )
    offsets = arrays["bucket_offsets"]
    members = arrays["bucket_members"]
    for b in range(offsets.shape[0] - 1):
        tree.buckets.append(members[offsets[b]: offsets[b + 1]].astype(np.int64))
    tree.invalidate_caches()
    return tree


def save_tree(tree: KdTree, path: str | Path | io.IOBase) -> None:
    """Write a tree to an ``.npz`` file (or writable binary stream)."""
    np.savez_compressed(path, **tree_to_arrays(tree))


def load_tree(path: str | Path | io.IOBase) -> KdTree:
    """Read a tree written by :func:`save_tree`."""
    with np.load(path) as payload:
        return tree_from_arrays({key: payload[key] for key in payload.files})


# ----------------------------------------------------------------------
# FlatKdTree snapshots (warm-start format)
# ----------------------------------------------------------------------
def flat_to_arrays(flat: FlatKdTree) -> dict[str, np.ndarray]:
    """Flatten a :class:`FlatKdTree` into its ``.npz`` payload.

    The payload holds the structural arrays verbatim (the lazy
    selection-stage artifacts are derived, so they are not stored) —
    :func:`flat_from_arrays` gives back bit-identical arrays.
    """
    out = {"flat_version": np.array([_FLAT_FORMAT_VERSION], dtype=np.int64)}
    for name in _FLAT_FIELDS:
        out[name] = getattr(flat, name)
    return out


def flat_from_arrays(arrays: dict[str, np.ndarray]) -> FlatKdTree:
    """Rebuild a :class:`FlatKdTree` from :func:`flat_to_arrays` output."""
    version = int(arrays["flat_version"][0])
    if version != _FLAT_FORMAT_VERSION:
        raise ValueError(f"unsupported flat tree format version {version}")
    return FlatKdTree.from_arrays(**{name: arrays[name] for name in _FLAT_FIELDS})


def save_flat(
    flat: FlatKdTree,
    path: str | Path | io.IOBase,
    *,
    extra: dict[str, np.ndarray] | None = None,
) -> None:
    """Write a flat-tree snapshot to an ``.npz`` file (or stream).

    ``extra`` attaches caller-owned side arrays (returned by
    ``load_flat(path, with_extra=True)``); names must not collide with
    the structural fields.
    """
    payload = flat_to_arrays(flat)
    for name, value in (extra or {}).items():
        if name in payload:
            raise ValueError(f"extra array name {name!r} collides with a flat field")
        payload[_EXTRA_PREFIX + name] = np.asarray(value)
    np.savez_compressed(path, **payload)


def load_flat(
    path: str | Path | io.IOBase, *, with_extra: bool = False
) -> FlatKdTree | tuple[FlatKdTree, dict[str, np.ndarray]]:
    """Read a snapshot written by :func:`save_flat`.

    With ``with_extra=True`` returns ``(flat, extras)`` where
    ``extras`` maps the names passed to ``save_flat(extra=...)`` back
    to their arrays.
    """
    with np.load(path) as payload:
        arrays = {key: payload[key] for key in payload.files}
    flat = flat_from_arrays(arrays)
    if not with_extra:
        return flat
    extras = {
        key[len(_EXTRA_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_EXTRA_PREFIX)
    }
    return flat, extras
