"""k-d tree (de)serialization.

Flattens a tree into plain numpy arrays and back, for saving to ``.npz``
or shipping across processes.  The array layout mirrors the hardware's
word-addressable tree cache: one fixed-width record per node.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.kdtree.node import KdNode, KdTree

_FORMAT_VERSION = 1


def tree_to_arrays(tree: KdTree) -> dict[str, np.ndarray]:
    """Flatten a tree into a dict of arrays (the ``.npz`` payload)."""
    n = tree.n_nodes
    parent = np.empty(n, dtype=np.int64)
    depth = np.empty(n, dtype=np.int64)
    dim = np.empty(n, dtype=np.int64)
    threshold = np.empty(n, dtype=np.float64)
    left = np.empty(n, dtype=np.int64)
    right = np.empty(n, dtype=np.int64)
    bucket_id = np.empty(n, dtype=np.int64)
    for node in tree.nodes:
        i = node.index
        parent[i], depth[i] = node.parent, node.depth
        dim[i], threshold[i] = node.dim, node.threshold
        left[i], right[i], bucket_id[i] = node.left, node.right, node.bucket_id

    # Buckets become one concatenated array plus offsets (ragged layout).
    offsets = np.zeros(len(tree.buckets) + 1, dtype=np.int64)
    for b, members in enumerate(tree.buckets):
        offsets[b + 1] = offsets[b] + members.size
    members = (
        np.concatenate(tree.buckets)
        if tree.buckets and offsets[-1] > 0
        else np.empty(0, dtype=np.int64)
    )

    return {
        "version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "points": tree.points,
        "parent": parent,
        "depth": depth,
        "dim": dim,
        "threshold": threshold,
        "left": left,
        "right": right,
        "bucket_id": bucket_id,
        "bucket_offsets": offsets,
        "bucket_members": members.astype(np.int64),
    }


def tree_from_arrays(arrays: dict[str, np.ndarray]) -> KdTree:
    """Rebuild a tree from :func:`tree_to_arrays` output."""
    version = int(arrays["version"][0])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported tree format version {version}")
    tree = KdTree(points=np.asarray(arrays["points"], dtype=np.float64))
    n = arrays["parent"].shape[0]
    for i in range(n):
        tree.nodes.append(
            KdNode(
                index=i,
                parent=int(arrays["parent"][i]),
                depth=int(arrays["depth"][i]),
                dim=int(arrays["dim"][i]),
                threshold=float(arrays["threshold"][i]),
                left=int(arrays["left"][i]),
                right=int(arrays["right"][i]),
                bucket_id=int(arrays["bucket_id"][i]),
            )
        )
    offsets = arrays["bucket_offsets"]
    members = arrays["bucket_members"]
    for b in range(offsets.shape[0] - 1):
        tree.buckets.append(members[offsets[b]: offsets[b + 1]].astype(np.int64))
    tree.invalidate_caches()
    return tree


def save_tree(tree: KdTree, path: str | Path | io.IOBase) -> None:
    """Write a tree to an ``.npz`` file (or writable binary stream)."""
    np.savez_compressed(path, **tree_to_arrays(tree))


def load_tree(path: str | Path | io.IOBase) -> KdTree:
    """Read a tree written by :func:`save_tree`."""
    with np.load(path) as payload:
        return tree_from_arrays({key: payload[key] for key in payload.files})
