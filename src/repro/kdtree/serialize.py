"""k-d tree (de)serialization.

Flattens a tree into plain numpy arrays and back, for saving to ``.npz``
or shipping across processes.  The array layout mirrors the hardware's
word-addressable tree cache: one fixed-width record per node.

Two formats live here:

* :func:`save_tree` / :func:`load_tree` — the node-and-pointer
  :class:`~repro.kdtree.node.KdTree` (object graph reconstructed on
  load; what the arch models and per-query searches consume).
* :func:`save_flat` / :func:`load_flat` — **deprecated** wrappers over
  :class:`repro.kdtree.snapshot.Snapshot`, the unified flat-tree
  snapshot handle both the disk and shared-memory transports consume.
  The wrappers keep reading and writing the identical ``.npz`` format,
  so existing snapshot files (and code) keep working while emitting a
  ``DeprecationWarning``.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.kdtree.engine import FlatKdTree
from repro.kdtree.node import KdNode, KdTree
from repro.kdtree.snapshot import Snapshot
from repro.registry import warn_deprecated_alias

_FORMAT_VERSION = 1


def tree_to_arrays(tree: KdTree) -> dict[str, np.ndarray]:
    """Flatten a tree into a dict of arrays (the ``.npz`` payload)."""
    n = tree.n_nodes
    parent = np.empty(n, dtype=np.int64)
    depth = np.empty(n, dtype=np.int64)
    dim = np.empty(n, dtype=np.int64)
    threshold = np.empty(n, dtype=np.float64)
    left = np.empty(n, dtype=np.int64)
    right = np.empty(n, dtype=np.int64)
    bucket_id = np.empty(n, dtype=np.int64)
    for node in tree.nodes:
        i = node.index
        parent[i], depth[i] = node.parent, node.depth
        dim[i], threshold[i] = node.dim, node.threshold
        left[i], right[i], bucket_id[i] = node.left, node.right, node.bucket_id

    # Buckets become one concatenated array plus offsets (ragged layout).
    offsets = np.zeros(len(tree.buckets) + 1, dtype=np.int64)
    for b, members in enumerate(tree.buckets):
        offsets[b + 1] = offsets[b] + members.size
    members = (
        np.concatenate(tree.buckets)
        if tree.buckets and offsets[-1] > 0
        else np.empty(0, dtype=np.int64)
    )

    return {
        "version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "points": tree.points,
        "parent": parent,
        "depth": depth,
        "dim": dim,
        "threshold": threshold,
        "left": left,
        "right": right,
        "bucket_id": bucket_id,
        "bucket_offsets": offsets,
        "bucket_members": members.astype(np.int64),
    }


def tree_from_arrays(arrays: dict[str, np.ndarray]) -> KdTree:
    """Rebuild a tree from :func:`tree_to_arrays` output."""
    version = int(arrays["version"][0])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported tree format version {version}")
    tree = KdTree(points=np.asarray(arrays["points"], dtype=np.float64))
    n = arrays["parent"].shape[0]
    for i in range(n):
        tree.nodes.append(
            KdNode(
                index=i,
                parent=int(arrays["parent"][i]),
                depth=int(arrays["depth"][i]),
                dim=int(arrays["dim"][i]),
                threshold=float(arrays["threshold"][i]),
                left=int(arrays["left"][i]),
                right=int(arrays["right"][i]),
                bucket_id=int(arrays["bucket_id"][i]),
            )
        )
    offsets = arrays["bucket_offsets"]
    members = arrays["bucket_members"]
    for b in range(offsets.shape[0] - 1):
        tree.buckets.append(members[offsets[b]: offsets[b + 1]].astype(np.int64))
    tree.invalidate_caches()
    return tree


def save_tree(tree: KdTree, path: str | Path | io.IOBase) -> None:
    """Write a tree to an ``.npz`` file (or writable binary stream)."""
    np.savez_compressed(path, **tree_to_arrays(tree))


def load_tree(path: str | Path | io.IOBase) -> KdTree:
    """Read a tree written by :func:`save_tree`."""
    with np.load(path) as payload:
        return tree_from_arrays({key: payload[key] for key in payload.files})


# ----------------------------------------------------------------------
# FlatKdTree snapshots — deprecated wrappers over repro.kdtree.snapshot
# ----------------------------------------------------------------------
def _snapshot_deprecated(old: str, new: str) -> None:
    # stacklevel=4: warn -> warn_deprecated_alias -> this helper ->
    # wrapper -> caller.
    warn_deprecated_alias(
        f"repro.kdtree.serialize.{old}",
        f"repro.kdtree.snapshot.{new}",
        stacklevel=4,
    )


def flat_to_arrays(flat: FlatKdTree) -> dict[str, np.ndarray]:
    """Deprecated: use :meth:`repro.kdtree.snapshot.Snapshot.to_payload`."""
    _snapshot_deprecated("flat_to_arrays", "Snapshot.from_flat(...).to_payload()")
    return Snapshot.from_flat(flat).to_payload()


def flat_from_arrays(arrays: dict[str, np.ndarray]) -> FlatKdTree:
    """Deprecated: use :meth:`repro.kdtree.snapshot.Snapshot.from_payload`."""
    _snapshot_deprecated("flat_from_arrays", "Snapshot.from_payload(...).to_flat()")
    return Snapshot.from_payload(arrays).to_flat()


def save_flat(
    flat: FlatKdTree,
    path: str | Path | io.IOBase,
    *,
    extra: dict[str, np.ndarray] | None = None,
) -> None:
    """Deprecated: use :meth:`repro.kdtree.snapshot.Snapshot.save`.

    Writes the identical ``.npz`` format (``Snapshot.load`` reads old
    ``save_flat`` files and vice versa).
    """
    _snapshot_deprecated("save_flat", "Snapshot.from_flat(...).save(path)")
    Snapshot.from_flat(flat, extra=extra).save(path)


def load_flat(
    path: str | Path | io.IOBase, *, with_extra: bool = False
) -> FlatKdTree | tuple[FlatKdTree, dict[str, np.ndarray]]:
    """Deprecated: use :meth:`repro.kdtree.snapshot.Snapshot.load`."""
    _snapshot_deprecated("load_flat", "Snapshot.load(path)")
    snap = Snapshot.load(path)
    if not with_extra:
        return snap.to_flat()
    return snap.to_flat(), dict(snap.extras)
