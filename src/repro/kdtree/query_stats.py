"""Diagnosing the approximate search's misses.

The single-bucket search loses a neighbor exactly when that neighbor
sits on the far side of a cell boundary.  This module quantifies that:
for each query it measures the distance from the query to its leaf
region's nearest boundary and relates misses to boundary proximity —
the analysis that explains the shape of the paper's Figure 3 (bigger
buckets -> boundaries further away -> fewer losses).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Aabb
from repro.kdtree.node import KdTree
from repro.kdtree.search import PAD_INDEX, QueryResult


@dataclass(frozen=True)
class MissDiagnosis:
    """Aggregate explanation of approximate-search misses."""

    recall: float
    mean_boundary_distance: float
    mean_kth_distance: float
    boundary_limited_fraction: float
    miss_rate_near_boundary: float
    miss_rate_far_from_boundary: float

    def summary(self) -> str:
        return (
            f"recall {self.recall:.1%}; {self.boundary_limited_fraction:.1%} of "
            f"queries have their k-th neighbor beyond the cell boundary; "
            f"miss rate near boundaries {self.miss_rate_near_boundary:.1%} vs "
            f"{self.miss_rate_far_from_boundary:.1%} away from them"
        )

    def as_dict(self) -> dict:
        """Flat scalar view (the repo-wide stats convention)."""
        return {
            "recall": self.recall,
            "mean_boundary_distance": self.mean_boundary_distance,
            "mean_kth_distance": self.mean_kth_distance,
            "boundary_limited_fraction": self.boundary_limited_fraction,
            "miss_rate_near_boundary": self.miss_rate_near_boundary,
            "miss_rate_far_from_boundary": self.miss_rate_far_from_boundary,
        }


def leaf_regions(tree: KdTree) -> dict[int, Aabb]:
    """The half-space region of every leaf node."""
    regions: dict[int, Aabb] = {}

    def visit(index: int, region: Aabb) -> None:
        node = tree.nodes[index]
        if node.is_leaf:
            regions[index] = region
            return
        threshold = min(max(node.threshold, region.lo[node.dim]), region.hi[node.dim])
        below, above = region.split(node.dim, threshold)
        visit(node.left, below)
        visit(node.right, above)

    visit(tree.ROOT, Aabb.infinite())
    return regions


def boundary_distances(tree: KdTree, queries: np.ndarray) -> np.ndarray:
    """Distance from each query to its own leaf region's nearest face.

    Infinite faces (the space boundary) do not count; a query deep in
    its cell gets a large value, one at a split plane gets ~0.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    regions = leaf_regions(tree)
    leaves = tree.descend_batch(queries)
    out = np.empty(queries.shape[0])
    for i, leaf in enumerate(leaves):
        region = regions[int(leaf)]
        gaps = []
        for dim in range(3):
            for face in (region.lo[dim], region.hi[dim]):
                if np.isfinite(face):
                    gaps.append(abs(queries[i, dim] - face))
        out[i] = min(gaps) if gaps else np.inf
    return out


def diagnose_misses(
    tree: KdTree,
    queries: np.ndarray,
    approx: QueryResult,
    exact: QueryResult,
) -> MissDiagnosis:
    """Relate per-query recall to boundary proximity.

    ``approx``/``exact`` must hold the same ``k`` columns for the same
    queries.  A query is *boundary-limited* when its true k-th neighbor
    is farther away than its cell boundary — the geometric condition
    under which the single-bucket search *must* be able to miss.
    """
    if approx.n_queries != exact.n_queries or approx.k > exact.k:
        raise ValueError("approx and exact results must cover the same queries/k")
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    k = approx.k

    boundary = boundary_distances(tree, queries)
    kth = exact.distances[:, k - 1].copy()
    kth[np.isinf(kth)] = 0.0

    per_query_recall = np.empty(approx.n_queries)
    for i in range(approx.n_queries):
        returned = set(int(x) for x in approx.indices[i] if x != PAD_INDEX)
        truth = [int(x) for x in exact.indices[i, :k] if x != PAD_INDEX]
        per_query_recall[i] = (
            sum(1 for t in truth if t in returned) / len(truth) if truth else 1.0
        )

    limited = kth > boundary
    missed = per_query_recall < 1.0
    near = boundary < np.median(boundary)

    def rate(mask: np.ndarray) -> float:
        return float(missed[mask].mean()) if mask.any() else 0.0

    return MissDiagnosis(
        recall=float(per_query_recall.mean()),
        mean_boundary_distance=float(boundary[np.isfinite(boundary)].mean()),
        mean_kth_distance=float(kth.mean()),
        boundary_limited_fraction=float(limited.mean()),
        miss_rate_near_boundary=rate(near),
        miss_rate_far_from_boundary=rate(~near),
    )
