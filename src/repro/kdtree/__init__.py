"""Bucketed k-d tree: the algorithmic core the QuickNN hardware executes.

The functional layer of the reproduction.  Everything here is plain
software — correct-by-construction trees and searches — while
:mod:`repro.arch` reuses these exact algorithms and adds the cycle and
memory-traffic accounting of the hardware.

Quick example::

    from repro.kdtree import KdTreeConfig, build_tree, knn_approx

    tree, trace = build_tree(reference_cloud, KdTreeConfig(bucket_capacity=256))
    result = knn_approx(tree, query_cloud, k=8)
"""

from repro.kdtree.blocked import (
    PARTITIONERS,
    BlockedBuildConfig,
    BlockedIndex,
    build_blocked,
)
from repro.kdtree.build import BuildTrace, build_tree, place_points
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.engine import FlatKdTree, knn_approx_batched, knn_exact_batched
from repro.kdtree.flat_build import build_flat, build_tree_vectorized
from repro.kdtree.forest import KdForest, KdForestConfig
from repro.kdtree.incremental import UpdateTrace, reuse_tree, update_tree
from repro.kdtree.node import NO_NODE, KdNode, KdTree
from repro.kdtree.query_stats import MissDiagnosis, boundary_distances, diagnose_misses, leaf_regions
from repro.kdtree.search import (
    PAD_INDEX,
    BbfConfig,
    QueryResult,
    knn_approx,
    knn_approx_loop,
    knn_bbf,
    knn_exact,
    radius_search,
)
from repro.kdtree.serialize import (
    flat_from_arrays,
    flat_to_arrays,
    load_flat,
    load_tree,
    save_flat,
    save_tree,
    tree_from_arrays,
    tree_to_arrays,
)
from repro.kdtree.snapshot import Snapshot
from repro.kdtree.stats import TreeStats, node_access_probability, tree_stats
from repro.kdtree.validate import TreeInvariantError, check_tree

__all__ = [
    "BbfConfig",
    "BlockedBuildConfig",
    "BlockedIndex",
    "BuildTrace",
    "FlatKdTree",
    "KdForest",
    "KdForestConfig",
    "KdNode",
    "KdTree",
    "KdTreeConfig",
    "NO_NODE",
    "PAD_INDEX",
    "PARTITIONERS",
    "QueryResult",
    "Snapshot",
    "TreeInvariantError",
    "TreeStats",
    "UpdateTrace",
    "build_blocked",
    "build_flat",
    "build_tree",
    "build_tree_vectorized",
    "check_tree",
    "flat_from_arrays",
    "flat_to_arrays",
    "knn_approx",
    "knn_approx_batched",
    "knn_approx_loop",
    "knn_bbf",
    "knn_exact",
    "knn_exact_batched",
    "MissDiagnosis",
    "boundary_distances",
    "diagnose_misses",
    "leaf_regions",
    "load_flat",
    "load_tree",
    "node_access_probability",
    "place_points",
    "radius_search",
    "reuse_tree",
    "save_flat",
    "save_tree",
    "tree_from_arrays",
    "tree_stats",
    "tree_to_arrays",
    "update_tree",
]
