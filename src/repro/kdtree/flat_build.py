"""Vectorized direct-to-flat tree construction and placement.

The legacy builder in :mod:`repro.kdtree.build` is faithful to the
paper but pays the Python interpreter once per node (recursive subset
sorts) and converts the finished object graph into the engine's
:class:`~repro.kdtree.engine.FlatKdTree` only afterwards.  This module
restructures construction the same way PR 1 restructured queries —
level-synchronous, one NumPy kernel per tree level — and emits the
flat structure-of-arrays layout directly:

* **Construction** runs one segment-sort per level across *all* active
  nodes at once: the sample is kept segment-contiguous, each level
  stably sorts every segment by the cycling split dimension (a single
  2-D ``np.argsort`` when the segments are equal-sized, a two-pass
  stable composition otherwise) and reads all medians with one gather.
* **Placement** descends the whole frame simultaneously through
  per-level threshold tables: one gather + compare + slot update per
  level, instead of ~N root-to-leaf pointer walks.
* **Bucketing** is a counting pass (``np.bincount``) plus one stable
  argsort over small integer bucket ids — the CSR arrays the engine
  consumes come out directly.

The result is **bit-identical** to the legacy builder — same node
numbering (preorder), same thresholds, same bucket membership and
order, same :class:`~repro.kdtree.build.BuildTrace` — under the shared
tie-break rule both builders implement: subsets are sorted *stably* by
the split coordinate (ties keep their pre-sort order), the median
element splits at ``size // 2``, and points exactly on a threshold go
left.  ``tests/kdtree/test_build_vectorized.py`` holds the equivalence
suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.engine import FlatKdTree
from repro.kdtree.node import NO_NODE, KdNode, KdTree

if TYPE_CHECKING:
    from repro.kdtree.build import BuildTrace

__all__ = ["build_flat", "build_tree_vectorized"]


def _as_xyz(points) -> np.ndarray:
    xyz = points.xyz if isinstance(points, PointCloud) else np.asarray(points, dtype=np.float64)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError("points must have shape (N, 3)")
    return xyz


class _Level:
    """Per-level construction record (BFS order within the level)."""

    __slots__ = ("dim", "slots", "leaf", "sizes", "thresholds")

    def __init__(self, dim, slots, leaf, sizes, thresholds):
        self.dim = dim                # split dimension used at this level
        self.slots = slots            # complete-tree slot of every node
        self.leaf = leaf              # bool mask over the level's nodes
        self.sizes = sizes            # sample points under every node
        self.thresholds = thresholds  # per *internal* node, level order


def _construct_levels(
    sample: np.ndarray, config: KdTreeConfig, target_depth: int
) -> list[_Level]:
    """Level-synchronous median-split construction over the sample.

    Mirrors the legacy recursion exactly: a node stops splitting at the
    target depth or when its sample subset is smaller than twice the
    minimum leaf occupancy; otherwise it stably sorts the subset along
    the level's dimension and splits at ``size // 2``.
    """
    min2 = 2 * config.min_samples_per_leaf
    # The sample is kept physically reordered, segment-contiguous, in
    # column-major layout: each level's sort key is then a plain view
    # and one fancy gather re-permutes all three columns at once.
    cols = np.ascontiguousarray(sample.T)

    sizes = np.array([sample.shape[0]], dtype=np.int64)
    slots = np.array([0], dtype=np.int64)
    levels: list[_Level] = []
    depth = 0
    while sizes.size:
        dim = config.dim_at_depth(depth)
        leaf = (sizes < min2) | (depth >= target_depth)
        keep = ~leaf
        record = _Level(dim, slots, leaf, sizes, np.empty(0))
        levels.append(record)
        if not keep.any():
            break

        if leaf.any():
            cols = cols[:, np.repeat(keep, sizes)]
            sizes = sizes[keep]
            slots = slots[keep]
        starts = np.zeros(sizes.size, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])

        # Stable per-segment sort along the level's dimension.  Equal
        # segment sizes (the common sampled-build case) collapse to one
        # 2-D argsort; otherwise compose two stable passes — by value,
        # then by segment — which is the same ordering.
        vals = cols[dim]
        m0 = int(sizes[0])
        if vals.size == sizes.size * m0 and (sizes.size == 1 or bool(np.all(sizes == m0))):
            grid = vals.reshape(sizes.size, m0)
            # Introsort first — roughly half the cost of a stable sort.
            # Its permutation matches the stable one unless a segment
            # holds duplicate values, so fall back only on ties.
            order = np.argsort(grid, axis=1)
            flat = (order + starts[:, None]).ravel()
            if _has_segment_ties(vals[flat], starts):
                order = np.argsort(grid, axis=1, kind="stable")
                flat = (order + starts[:, None]).ravel()
        else:
            seg_ids = np.repeat(np.arange(sizes.size), sizes)
            by_val = np.argsort(vals, kind="stable")
            flat = by_val[np.argsort(seg_ids[by_val], kind="stable")]
        cols = cols[:, flat]

        medians = sizes // 2
        record.thresholds = cols[dim][starts + medians - 1]

        # Children: [start, start+m//2) and [start+m//2, start+m),
        # interleaved left/right — contiguous in the reordered sample.
        next_sizes = np.empty(2 * sizes.size, dtype=np.int64)
        next_sizes[0::2] = medians
        next_sizes[1::2] = sizes - medians
        next_slots = np.empty(2 * slots.size, dtype=np.int64)
        next_slots[0::2] = 2 * slots
        next_slots[1::2] = 2 * slots + 1
        sizes, slots = next_sizes, next_slots
        depth += 1
    return levels


def _has_segment_ties(sorted_vals: np.ndarray, starts: np.ndarray) -> bool:
    """True if any segment of the level holds duplicate values."""
    if sorted_vals.size < 2:
        return False
    eq = sorted_vals[1:] == sorted_vals[:-1]
    eq[starts[1:] - 1] = False  # adjacency across segment boundaries
    return bool(eq.any())


class _TreeArrays:
    """Preorder structural arrays plus the per-level preorder map."""

    __slots__ = (
        "dim", "threshold", "left", "right", "is_leaf", "bucket_id",
        "parent", "depth", "sort_sizes", "levels", "n_buckets", "pre",
    )


def _number_preorder(levels: list[_Level]) -> _TreeArrays:
    """Renumber the BFS level records into the legacy preorder layout.

    Subtree sizes roll up bottom-up, preorder indices roll down
    top-down — both one vectorized step per level — reproducing the
    legacy builder's depth-first node and bucket numbering exactly.
    """
    n_levels = len(levels)
    counts: list[np.ndarray] = [np.ones(level.slots.size, dtype=np.int64) for level in levels]
    for li in range(n_levels - 2, -1, -1):
        internal = ~levels[li].leaf
        child = counts[li + 1]
        counts[li][internal] = 1 + child[0::2] + child[1::2]

    pre: list[np.ndarray] = [np.zeros(level.slots.size, dtype=np.int64) for level in levels]
    for li in range(n_levels - 1):
        internal = ~levels[li].leaf
        left_pre = pre[li][internal] + 1
        pre[li + 1][0::2] = left_pre
        pre[li + 1][1::2] = left_pre + counts[li + 1][0::2]

    n_nodes = int(sum(c.size for c in counts))
    out = _TreeArrays()
    out.levels = levels
    out.pre = pre
    out.dim = np.zeros(n_nodes, dtype=np.int64)
    out.threshold = np.zeros(n_nodes, dtype=np.float64)
    out.left = np.full(n_nodes, NO_NODE, dtype=np.int64)
    out.right = np.full(n_nodes, NO_NODE, dtype=np.int64)
    out.is_leaf = np.zeros(n_nodes, dtype=bool)
    out.bucket_id = np.full(n_nodes, NO_NODE, dtype=np.int64)
    out.parent = np.full(n_nodes, NO_NODE, dtype=np.int64)
    out.depth = np.zeros(n_nodes, dtype=np.int64)

    sizes_by_pre = np.zeros(n_nodes, dtype=np.int64)
    for li, level in enumerate(levels):
        p = pre[li]
        out.is_leaf[p] = level.leaf
        out.depth[p] = li
        sizes_by_pre[p] = level.sizes
        internal = ~level.leaf
        if internal.any():
            pi = p[internal]
            out.dim[pi] = level.dim
            out.threshold[pi] = level.thresholds
            out.left[pi] = pre[li + 1][0::2]
            out.right[pi] = pre[li + 1][1::2]
            out.parent[pre[li + 1][0::2]] = pi
            out.parent[pre[li + 1][1::2]] = pi

    leaf_pre = np.sort(np.flatnonzero(out.is_leaf))
    out.bucket_id[leaf_pre] = np.arange(leaf_pre.size)
    out.n_buckets = int(leaf_pre.size)
    internal_pre = np.flatnonzero(~out.is_leaf)
    out.sort_sizes = sizes_by_pre[internal_pre].tolist()
    return out


def _place(arrays: _TreeArrays, xyz: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized placement: all points descend one level at a time.

    Returns the CSR ``(offsets, members)`` pair, with members ascending
    inside every bucket — exactly the legacy ``place_points`` output.
    """
    levels = arrays.levels
    n = xyz.shape[0]
    depth = len(levels) - 1
    n_buckets = arrays.n_buckets
    if depth == 0:
        offsets = np.array([0, n], dtype=np.int64)
        return offsets, np.arange(n, dtype=np.int64)

    # One gather + compare + slot update per level, over all points at
    # once.  Leaves above the bottom keep +inf thresholds so their
    # points ride the left spine down to a unique bottom-level slot.
    # Construction caps depth at ~log2(sample), so 2**depth is O(n) and
    # a narrow slot dtype keeps the update arithmetic cheap.
    if depth <= 14:
        slot_dtype = np.int16
    elif depth <= 30:
        slot_dtype = np.int32
    else:
        slot_dtype = np.int64
    cur = np.zeros(n, dtype=slot_dtype)
    gt = np.empty(n, dtype=bool)
    # Contiguous per-dim columns: the compare streams each one several
    # times (dims cycle), and strided access costs ~2x on the gather.
    columns = [np.ascontiguousarray(xyz[:, d]) for d in range(3)]
    for li, level in enumerate(levels[:-1]):
        internal = ~level.leaf
        table = np.full(1 << li, np.inf)
        table[level.slots[internal]] = level.thresholds
        if li == 0:
            np.greater(columns[level.dim], table[0], out=gt)
        else:
            np.greater(columns[level.dim], np.take(table, cur), out=gt)
        np.left_shift(cur, 1, out=cur)
        np.add(cur, gt, out=cur, casting="unsafe")

    # Preorder visits leaves left to right, so bucket ids ascend with
    # the bottom slot: grouping by slot IS grouping by bucket, and one
    # radix argsort over narrow slots yields members grouped by bucket,
    # ascending within each — exactly the legacy ordering.
    slot_by_bucket = np.empty(n_buckets, dtype=np.int64)
    for li, level in enumerate(levels):
        if level.leaf.any():
            bottom = level.slots[level.leaf] << (depth - li)
            slot_by_bucket[arrays.bucket_id[arrays.pre[li][level.leaf]]] = bottom
    counts_by_slot = np.bincount(cur, minlength=1 << depth)
    offsets = np.zeros(n_buckets + 1, dtype=np.int64)
    np.cumsum(counts_by_slot[slot_by_bucket], out=offsets[1:])

    max_slot = (1 << depth) - 1
    if max_slot <= np.iinfo(np.int8).max:
        key = cur.astype(np.int8)
    elif cur.dtype != np.int16 and max_slot <= np.iinfo(np.int16).max:
        key = cur.astype(np.int16)
    else:
        key = cur
    members = np.argsort(key, kind="stable")
    return offsets, members


def _build_arrays(
    points, config: KdTreeConfig | None, rng: np.random.Generator | None, place: bool
):
    """Shared pipeline: sample -> construct -> renumber -> place."""
    from repro.kdtree.build import BuildTrace

    config = config or KdTreeConfig()
    rng = rng or np.random.default_rng(0)
    xyz = _as_xyz(points)
    n = xyz.shape[0]
    if n == 0:
        raise ValueError("cannot build a k-d tree over zero points")

    trace = BuildTrace()
    sample_n = int(config.effective_sample_size(n))
    trace.sample_size = sample_n
    sample_idx = rng.choice(n, size=sample_n, replace=False) if sample_n < n else np.arange(n)
    sample = xyz[sample_idx]

    target_depth = config.target_depth(n)
    levels = _construct_levels(sample, config, target_depth)
    arrays = _number_preorder(levels)
    trace.sort_sizes = [int(s) for s in arrays.sort_sizes]

    if place:
        offsets, members = _place(arrays, xyz)
        trace.placement_traversals += n
    else:
        offsets = np.zeros(arrays.n_buckets + 1, dtype=np.int64)
        members = np.empty(0, dtype=np.int64)
    return xyz, arrays, offsets, members, trace


def build_flat(
    points,
    config: KdTreeConfig | None = None,
    *,
    rng: np.random.Generator | None = None,
    place: bool = True,
) -> tuple[FlatKdTree, "BuildTrace"]:
    """Build a :class:`FlatKdTree` directly — no ``KdNode`` objects.

    The fastest way from a frame to a queryable engine structure;
    output arrays equal ``FlatKdTree.from_tree(build_tree(...))`` for
    the same inputs.  With ``place=False`` the buckets are empty.
    """
    from repro.kdtree.build import record_build_metrics
    from repro.obs import get_registry

    with get_registry().timer("build.vectorized"):
        xyz, arrays, offsets, members, trace = _build_arrays(points, config, rng, place)
        flat = FlatKdTree.from_arrays(
            points=xyz,
            dim=arrays.dim,
            threshold=arrays.threshold,
            left=arrays.left,
            right=arrays.right,
            is_leaf=arrays.is_leaf,
            bucket_id=arrays.bucket_id,
            bucket_offsets=offsets,
            bucket_members=members,
        )
    record_build_metrics(trace, n_points=xyz.shape[0], builder="vectorized")
    return flat, trace


def build_tree_vectorized(
    points,
    config: KdTreeConfig | None = None,
    *,
    rng: np.random.Generator | None = None,
    place: bool = True,
) -> tuple[KdTree, "BuildTrace"]:
    """Vectorized :func:`~repro.kdtree.build.build_tree` counterpart.

    Runs the direct-to-flat pipeline, then materializes the (small)
    ``KdNode`` list for the object-graph consumers — searches, arch
    models, serialization.  The prebuilt flat layout is attached to the
    tree, so the first batched query pays no ``from_tree`` conversion.
    """
    xyz, arrays, offsets, members, trace = _build_arrays(points, config, rng, place)
    tree = KdTree(points=xyz)
    parent = arrays.parent.tolist()
    depth = arrays.depth.tolist()
    is_leaf = arrays.is_leaf.tolist()
    dim = arrays.dim.tolist()
    threshold = arrays.threshold.tolist()
    left = arrays.left.tolist()
    right = arrays.right.tolist()
    bucket_id = arrays.bucket_id.tolist()
    nodes = tree.nodes
    for i in range(arrays.dim.shape[0]):
        if is_leaf[i]:
            nodes.append(
                KdNode(index=i, parent=parent[i], depth=depth[i], bucket_id=bucket_id[i])
            )
        else:
            nodes.append(
                KdNode(
                    index=i, parent=parent[i], depth=depth[i], dim=dim[i],
                    threshold=threshold[i], left=left[i], right=right[i],
                )
            )
    if place:
        tree.buckets = np.split(members, offsets[1:-1])
    else:
        tree.buckets = [np.empty(0, dtype=np.int64) for _ in range(arrays.n_buckets)]

    tree._flat = FlatKdTree.from_arrays(
        points=xyz,
        dim=arrays.dim,
        threshold=arrays.threshold,
        left=arrays.left,
        right=arrays.right,
        is_leaf=arrays.is_leaf,
        bucket_id=arrays.bucket_id,
        bucket_offsets=offsets,
        bucket_members=members,
    )
    return tree, trace
