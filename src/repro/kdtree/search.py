"""Nearest-neighbor search over a bucketed k-d tree.

Two search modes, as in Section 2.2 of the paper:

* **Approximate** (:func:`knn_approx`) — descend to the single leaf
  whose region contains the query and scan only that bucket.  This is
  the mode QuickNN accelerates; it trades a small accuracy loss for a
  bounded, regular memory footprint.
* **Exact** (:func:`knn_exact`) — the same descent followed by
  *backtracking*: sibling subtrees are revisited whenever their region
  could still contain a closer point, guaranteeing the true k nearest
  neighbors.

Results use ``-1`` indices and ``inf`` distances to pad queries whose
bucket holds fewer than ``k`` points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.node import KdTree
from repro.registry import Registry, warn_deprecated_alias

PAD_INDEX = -1

#: The ``engine=`` knob names, as a proper registry so unknown strings
#: fail with the repo-wide message.  ``True`` / ``False`` remain accepted
#: as shorthands for ``"batched"`` / ``"loop"``.
ENGINES: Registry[str] = Registry("query engine")
ENGINES.add("batched", "batched", "vectorized")
ENGINES.add("loop", "loop", "reference")


def _engine_name(engine: bool | str) -> str:
    """Fold the ``engine=`` knob (bool shorthand or name) to a name."""
    if engine is True:
        return "batched"
    if engine is False:
        return "loop"
    return ENGINES.check(engine)


@dataclass(frozen=True)
class BbfConfig:
    """Best-bin-first search parameters (the FLANN "checks" budget).

    ``max_leaves`` bounds how many buckets one query may scan;
    ``max_leaves=1`` degenerates to the single-bucket approximate
    search, larger budgets approach the exact search.
    """

    max_leaves: int = 4

    def __post_init__(self):
        if self.max_leaves < 1:
            raise ValueError("max_leaves must be positive")


@dataclass(frozen=True)
class QueryResult:
    """k nearest neighbors for a batch of queries.

    ``indices`` has shape ``(M, k)`` (into the tree's reference points,
    ``-1`` where fewer than ``k`` neighbors were found) and
    ``distances`` the matching Euclidean distances (``inf`` padding).
    Both rows are sorted by ascending distance.
    """

    indices: np.ndarray
    distances: np.ndarray

    def __post_init__(self):
        if self.indices.shape != self.distances.shape:
            raise ValueError("indices and distances must have the same shape")

    @property
    def n_queries(self) -> int:
        return self.indices.shape[0]

    @property
    def k(self) -> int:
        return self.indices.shape[1]

    def valid_mask(self) -> np.ndarray:
        """True where a real neighbor (not padding) is present."""
        return self.indices != PAD_INDEX


def _as_query_array(queries) -> np.ndarray:
    xyz = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
    xyz = np.atleast_2d(xyz)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError("queries must have shape (M, 3)")
    return xyz


def _top_k(dists: np.ndarray, candidate_idx: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Smallest-k selection with padding; returns (indices, distances)."""
    m = dists.shape[0]
    if m > k:
        part = np.argpartition(dists, k - 1)[:k]
        order = part[np.argsort(dists[part], kind="stable")]
    else:
        order = np.argsort(dists, kind="stable")
    idx = np.full(k, PAD_INDEX, dtype=np.int64)
    dst = np.full(k, np.inf)
    take = min(k, m)
    idx[:take] = candidate_idx[order[:take]]
    dst[:take] = dists[order[:take]]
    return idx, dst


def knn_approx(
    tree: KdTree, queries, k: int, *, engine: bool | str = True
) -> QueryResult:
    """Approximate kNN: one bucket per query, no backtracking.

    By default this runs on the batched vectorized engine
    (:mod:`repro.kdtree.engine`): all queries descend the flat tree
    level-by-level, then one gather + top-k kernel answers whole
    buckets at a time.  ``engine`` accepts ``"batched"`` (alias
    ``True``) or ``"loop"`` (alias ``False``, the original per-query
    reference implementation); both produce identical results.
    """
    if k < 1:
        raise ValueError("k must be positive")
    q = _as_query_array(queries)
    if _engine_name(engine) == "batched":
        from repro.kdtree.engine import knn_approx_batched

        return knn_approx_batched(tree.flat(), q, k)
    return knn_approx_loop(tree, q, k)


def knn_approx_loop(tree: KdTree, queries, k: int) -> QueryResult:
    """The per-query loop path of :func:`knn_approx` (reference/baseline).

    Vectorized by grouping queries that land in the same leaf, but
    still running one Python top-k per query — the software
    pointer-chasing behavior the batched engine removes.
    """
    if k < 1:
        raise ValueError("k must be positive")
    q = _as_query_array(queries)
    m = q.shape[0]
    indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
    distances = np.full((m, k), np.inf)

    leaf_ids = tree.descend_batch(q)
    for leaf in np.unique(leaf_ids):
        members = np.flatnonzero(leaf_ids == leaf)
        bucket_id = tree.nodes[int(leaf)].bucket_id
        candidate_idx = tree.buckets[bucket_id]
        if candidate_idx.size == 0:
            continue
        candidates = tree.points[candidate_idx]
        # (Q_in_leaf, B) pairwise distances for this bucket only.
        diff = q[members, None, :] - candidates[None, :, :]
        dists = np.sqrt((diff * diff).sum(axis=2))
        for row, qi in enumerate(members):
            indices[qi], distances[qi] = _top_k(dists[row], candidate_idx, k)
    return QueryResult(indices=indices, distances=distances)


def knn_bbf(
    tree: KdTree,
    queries,
    k: int,
    config: BbfConfig | None = None,
    *,
    max_leaves: int | None = None,
) -> QueryResult:
    """Best-bin-first search with a bounded leaf budget (FLANN-style).

    Visits up to ``config.max_leaves`` buckets per query in order of
    their region's distance to the query — the standard software middle
    ground between the hardware's single-bucket search
    (``BbfConfig(max_leaves=1)`` is equivalent to :func:`knn_approx`)
    and the fully backtracking exact search.  This is the configuration
    behind the paper's FLANN CPU baseline (Table 1's 91% "Approx. k-d
    Tree" row).

    The bare ``max_leaves`` keyword is a deprecated alias kept for old
    call sites; pass a :class:`BbfConfig` like the other backends.
    """
    import heapq

    if max_leaves is not None:
        # stacklevel=3: warn -> warn_deprecated_alias -> knn_bbf -> caller.
        warn_deprecated_alias(
            "knn_bbf(..., max_leaves=...)",
            "BbfConfig(max_leaves=...)",
            stacklevel=3,
        )
        if config is not None:
            raise ValueError("pass either config or the deprecated max_leaves, not both")
        config = BbfConfig(max_leaves=max_leaves)
    config = config or BbfConfig()
    max_leaves = config.max_leaves

    if k < 1:
        raise ValueError("k must be positive")
    q = _as_query_array(queries)
    m = q.shape[0]
    indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
    distances = np.full((m, k), np.inf)
    nodes = tree.nodes

    for i in range(m):
        point = q[i]
        best_idx: list[int] = []
        best_dst: list[float] = []
        # Heap of (lower-bound distance, tiebreak, node index).
        heap: list[tuple[float, int, int]] = [(0.0, 0, tree.ROOT)]
        visited_leaves = 0
        counter = 1
        while heap and visited_leaves < max_leaves:
            bound, _, node_index = heapq.heappop(heap)
            if len(best_dst) == k and bound >= best_dst[-1]:
                break
            node = nodes[node_index]
            while not node.is_leaf:
                delta = point[node.dim] - node.threshold
                near, far = (
                    (node.left, node.right) if delta <= 0 else (node.right, node.left)
                )
                far_bound = max(bound, abs(delta))
                heapq.heappush(heap, (far_bound, counter, far))
                counter += 1
                node = nodes[near]
            visited_leaves += 1
            candidate_idx = tree.buckets[node.bucket_id]
            if candidate_idx.size == 0:
                continue
            diffs = tree.points[candidate_idx] - point
            dists = np.sqrt((diffs * diffs).sum(axis=1))
            for ci, cd in zip(candidate_idx, dists):
                _insert_bounded(best_idx, best_dst, int(ci), float(cd), k)
        indices[i, : len(best_idx)] = best_idx
        distances[i, : len(best_dst)] = best_dst
    return QueryResult(indices=indices, distances=distances)


def radius_search(tree: KdTree, query, radius: float) -> tuple[np.ndarray, np.ndarray]:
    """All reference points within ``radius`` of one query point (exact).

    Returns ``(indices, distances)`` sorted by ascending distance.
    Uses the same backtracking pruning as the exact kNN search; the
    companion operation ICP variants and clustering pipelines need
    alongside kNN.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    point = np.asarray(query, dtype=np.float64)
    if point.shape != (3,):
        raise ValueError("radius_search takes a single (3,) query point")

    found_idx: list[np.ndarray] = []
    found_dst: list[np.ndarray] = []

    def visit(node_index: int) -> None:
        node = tree.nodes[node_index]
        if node.is_leaf:
            members = tree.buckets[node.bucket_id]
            if members.size == 0:
                return
            diffs = tree.points[members] - point
            dists = np.sqrt((diffs * diffs).sum(axis=1))
            inside = dists <= radius
            if inside.any():
                found_idx.append(members[inside])
                found_dst.append(dists[inside])
            return
        delta = point[node.dim] - node.threshold
        near, far = (node.left, node.right) if delta <= 0 else (node.right, node.left)
        visit(near)
        if abs(delta) <= radius:
            visit(far)

    visit(tree.ROOT)
    if not found_idx:
        return np.empty(0, dtype=np.int64), np.empty(0)
    indices = np.concatenate(found_idx)
    distances = np.concatenate(found_dst)
    order = np.argsort(distances, kind="stable")
    return indices[order], distances[order]


def knn_exact(
    tree: KdTree, queries, k: int, *, engine: bool | str = True
) -> QueryResult:
    """Exact kNN via backtracking branch-and-bound over the tree.

    By default runs the batched engine path: every query first gets the
    vectorized single-bucket answer, and only the minority of queries
    whose k-th distance exceeds their descent-path plane margin (i.e.
    whose leaf radius test fails) drop to per-query backtracking.
    ``engine="loop"`` (alias ``False``) forces the original all-loop
    path.
    """
    if _engine_name(engine) == "batched":
        from repro.kdtree.engine import knn_exact_batched

        result, _ = knn_exact_batched(tree, _as_query_array(queries), k)
        return result
    result, _ = knn_exact_instrumented(tree, queries, k)
    return result


def knn_exact_instrumented(tree: KdTree, queries, k: int) -> tuple[QueryResult, np.ndarray]:
    """Exact kNN plus, per query, the number of buckets backtracking visited.

    The visit counts are what the exact-search architecture model
    charges its extra memory traffic with: an exact search must read
    every visited bucket, where the approximate search reads one.
    """
    if k < 1:
        raise ValueError("k must be positive")
    q = _as_query_array(queries)
    m = q.shape[0]
    indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
    distances = np.full((m, k), np.inf)
    visits = np.zeros(m, dtype=np.int64)
    for i in range(m):
        idx, dst, visited = _exact_single(tree, q[i], k)
        indices[i], distances[i] = idx, dst
        visits[i] = visited
    return QueryResult(indices=indices, distances=distances), visits


def _exact_single(
    tree: KdTree, point: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Depth-first exact search with sibling pruning for one query."""
    best_idx: list[int] = []
    best_dst: list[float] = []
    visited = 0

    def consider_bucket(bucket_id: int) -> None:
        candidate_idx = tree.buckets[bucket_id]
        if candidate_idx.size == 0:
            return
        diffs = tree.points[candidate_idx] - point
        dists = np.sqrt((diffs * diffs).sum(axis=1))
        for ci, cd in zip(candidate_idx, dists):
            _insert_bounded(best_idx, best_dst, int(ci), float(cd), k)

    def worst() -> float:
        return best_dst[-1] if len(best_dst) == k else np.inf

    def visit(node_index: int) -> None:
        nonlocal visited
        node = tree.nodes[node_index]
        if node.is_leaf:
            visited += 1
            consider_bucket(node.bucket_id)
            return
        delta = point[node.dim] - node.threshold
        near, far = (node.left, node.right) if delta <= 0 else (node.right, node.left)
        visit(near)
        # Backtrack into the far side only if its slab can beat the
        # current k-th best distance.
        if abs(delta) < worst():
            visit(far)

    visit(tree.ROOT)
    idx = np.full(k, PAD_INDEX, dtype=np.int64)
    dst = np.full(k, np.inf)
    idx[: len(best_idx)] = best_idx
    dst[: len(best_dst)] = best_dst
    return idx, dst, visited


def _insert_bounded(idx: list[int], dst: list[float], i: int, d: float, k: int) -> None:
    """Insert (i, d) into the sorted running top-k lists."""
    if len(dst) == k and d >= dst[-1]:
        return
    pos = int(np.searchsorted(np.asarray(dst), d))
    idx.insert(pos, i)
    dst.insert(pos, d)
    if len(dst) > k:
        idx.pop()
        dst.pop()
