"""Batched, vectorized kNN query engine over a flat k-d tree layout.

The per-query searches in :mod:`repro.kdtree.search` are faithful to
the paper's algorithm but pay a Python-interpreter toll for every
query — the software analogue of the pointer-chasing memory behavior
QuickNN removes in hardware (Section 4).  This module restructures the
computation the same way the accelerator does:

* :class:`FlatKdTree` is a structure-of-arrays snapshot of a
  :class:`~repro.kdtree.node.KdTree`: split dimensions, thresholds and
  child indices as contiguous NumPy arrays plus the buckets in CSR form
  (offsets + one concatenated member array) — the software mirror of
  the hardware's word-addressable tree cache and bucket block store.
* :func:`knn_approx_batched` advances *all* queries level-by-level with
  one ``np.where`` per tree level, then answers whole buckets at a
  time: queries are grouped by the leaf they reached (argsort over leaf
  ids) and each group is answered by one vectorized distance + top-k
  kernel.  No per-query Python loop runs on the hot path.
* :func:`knn_exact_batched` starts from the batched approximate answer,
  certifies the majority of queries exact through the leaf radius test
  (k-th distance vs. the smallest splitting-plane margin crossed on the
  way down), and resolves the rest with a *batched* backtracking pass:
  a vectorized frontier walk collects every (query, bucket) pair the
  branch-and-bound search could visit, then buckets are scanned one
  vectorized merge at a time.

Candidate *selection* inside a bucket uses the classic
``|q|^2 - 2 q.c + |c|^2`` BLAS expansion for speed (in float32, keeping
``SELECT_PAD`` extra candidates to absorb rounding at the selection
boundary, with an exact float64 re-selection for the rare rows where
more candidates tie at the boundary than the pad can hold; the
per-row-constant ``|q|^2`` term is dropped where only the ranking
matters).  The expansion is evaluated on
*centered* coordinates — the cloud centroid is subtracted from both the
reference points and the queries — because on raw coordinates its
cancellation error grows with ``|q|^2``: a lidar frame in UTM-style
coordinates far from the origin would swamp the true inter-point
distances and select the wrong candidates entirely.  Centering makes
the error scale with the cloud *extent* instead, which the pad absorbs.
The final top-k and its reported distances are always decided on
float64 distances recomputed from the raw coordinates with the same
``sqrt(((q - c)^2).sum())`` kernel the per-query paths use, so results
are element-for-element identical to the loop implementations (which
remain available — and tested against — as ``knn_approx_loop`` /
``knn_exact(engine=False)``).
"""

from __future__ import annotations

import numpy as np

from repro.kdtree.node import NO_NODE, KdTree
from repro.obs import get_registry


class FlatKdTree:
    """Structure-of-arrays layout of a bucketed k-d tree.

    Node arrays are indexed by node id (``nodes[i].index == i`` in the
    source tree); bucket membership is stored in CSR form
    (``bucket_offsets`` / ``bucket_members``).  The selection-stage
    arrays (``points_c`` / ``point_sq_c`` / ``bucket_xyz32`` /
    ``bucket_sq32``) hold coordinates with ``centroid`` subtracted, so
    the BLAS distance expansion stays cancellation-safe for clouds far
    from the origin; ``points`` keeps the raw coordinates the exact
    re-derivation kernel uses.  They are derived lazily on first query
    — construction (``from_tree`` / ``from_arrays``) is purely
    structural, so the build pipeline never pays for query-stage
    artifacts it may not use.
    """

    ROOT = 0

    #: Extra candidates kept by the float32 selection stage.  The final
    #: top-k is decided on exact float64 distances, so the pad only has
    #: to absorb float32 rounding at the selection boundary; rows where
    #: more candidates tie at that boundary than the pad can hold are
    #: re-selected exactly in float64 (see ``_grouped_topk``).
    SELECT_PAD = 4

    def __init__(
        self,
        *,
        points: np.ndarray,
        dim: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        is_leaf: np.ndarray,
        bucket_id: np.ndarray,
        bucket_offsets: np.ndarray,
        bucket_members: np.ndarray,
    ):
        self.points = points
        self.dim = dim
        self.threshold = threshold
        self.left = left
        self.right = right
        self.is_leaf = is_leaf
        self.bucket_id = bucket_id
        self.bucket_offsets = bucket_offsets
        self.bucket_members = bucket_members
        self._centroid: np.ndarray | None = None
        self._points_c: np.ndarray | None = None
        self._point_sq_c: np.ndarray | None = None
        self._bucket_xyz32: np.ndarray | None = None
        self._bucket_sq32: np.ndarray | None = None
        self._levels: "_LevelPlan | None | bool" = False  # False = not built yet

    # -- lazy selection-stage arrays -----------------------------------
    @property
    def centroid(self) -> np.ndarray:
        if self._centroid is None:
            self._centroid = (
                self.points.mean(axis=0)
                if self.points.shape[0]
                else np.zeros(self.points.shape[1])
            )
        return self._centroid

    @property
    def points_c(self) -> np.ndarray:
        if self._points_c is None:
            self._points_c = self.points - self.centroid
        return self._points_c

    @property
    def point_sq_c(self) -> np.ndarray:
        if self._point_sq_c is None:
            pc = self.points_c
            self._point_sq_c = (pc * pc).sum(axis=1)
        return self._point_sq_c

    @property
    def bucket_xyz32(self) -> np.ndarray:
        if self._bucket_xyz32 is None:
            self._bucket_xyz32 = np.ascontiguousarray(
                self.points_c[self.bucket_members], dtype=np.float32
            )
        return self._bucket_xyz32

    @property
    def bucket_sq32(self) -> np.ndarray:
        if self._bucket_sq32 is None:
            b32 = self.bucket_xyz32
            self._bucket_sq32 = (b32 * b32).sum(axis=1)
        return self._bucket_sq32

    @classmethod
    def from_arrays(
        cls,
        *,
        points: np.ndarray,
        dim: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        is_leaf: np.ndarray,
        bucket_id: np.ndarray,
        bucket_offsets: np.ndarray,
        bucket_members: np.ndarray,
    ) -> "FlatKdTree":
        """Assemble directly from prebuilt structural arrays.

        The entry point of the vectorized builder
        (:func:`repro.kdtree.flat_build.build_flat`), which never
        materializes :class:`~repro.kdtree.node.KdNode` objects.
        """
        return cls(
            points=points,
            dim=dim,
            threshold=threshold,
            left=left,
            right=right,
            is_leaf=is_leaf,
            bucket_id=bucket_id,
            bucket_offsets=bucket_offsets,
            bucket_members=bucket_members,
        )

    @classmethod
    def from_tree(cls, tree: KdTree) -> "FlatKdTree":
        """Build the flat layout once from a node-and-pointer tree."""
        n = len(tree.nodes)
        if n == 0:
            raise ValueError("cannot flatten a tree with no nodes")
        dim = np.zeros(n, dtype=np.int64)
        threshold = np.zeros(n, dtype=np.float64)
        left = np.full(n, NO_NODE, dtype=np.int64)
        right = np.full(n, NO_NODE, dtype=np.int64)
        is_leaf = np.zeros(n, dtype=bool)
        bucket_id = np.full(n, NO_NODE, dtype=np.int64)
        for node in tree.nodes:
            i = node.index
            is_leaf[i] = node.is_leaf
            if node.is_leaf:
                bucket_id[i] = node.bucket_id
            else:
                dim[i] = node.dim
                threshold[i] = node.threshold
                left[i] = node.left
                right[i] = node.right

        n_buckets = len(tree.buckets)
        sizes = np.array([b.size for b in tree.buckets], dtype=np.int64)
        offsets = np.zeros(n_buckets + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        members = (
            np.concatenate(tree.buckets)
            if n_buckets and offsets[-1] > 0
            else np.empty(0, dtype=np.int64)
        )
        return cls(
            points=tree.points,
            dim=dim,
            threshold=threshold,
            left=left,
            right=right,
            is_leaf=is_leaf,
            bucket_id=bucket_id,
            bucket_offsets=offsets,
            bucket_members=members,
        )

    # ------------------------------------------------------------------
    def flat(self) -> "FlatKdTree":
        """Self view, mirroring :meth:`~repro.kdtree.node.KdTree.flat`.

        Lets code that accepts "anything with a ``flat()``" — the
        batched exact search, the serving layer's shard workers — take
        either a :class:`~repro.kdtree.node.KdTree` or a snapshot-loaded
        :class:`FlatKdTree` without converting.
        """
        return self

    @property
    def n_nodes(self) -> int:
        return self.dim.shape[0]

    @property
    def n_buckets(self) -> int:
        return self.bucket_offsets.shape[0] - 1

    def bucket(self, bucket_id: int) -> np.ndarray:
        """Member indices of one bucket (a view into the CSR arrays)."""
        return self.bucket_members[
            self.bucket_offsets[bucket_id] : self.bucket_offsets[bucket_id + 1]
        ]

    def stats(self) -> dict:
        """Layout summary: sizes of the arrays the engine streams over."""
        sizes = np.diff(self.bucket_offsets)
        return {
            "n_points": int(self.points.shape[0]),
            "n_nodes": int(self.n_nodes),
            "n_leaves": int(self.is_leaf.sum()),
            "n_buckets": int(self.n_buckets),
            "max_bucket_size": int(sizes.max()) if sizes.size else 0,
            "mean_bucket_size": float(sizes.mean()) if sizes.size else 0.0,
        }

    # ------------------------------------------------------------------
    def descend(self, queries: np.ndarray) -> np.ndarray:
        """Leaf node id for each query, all queries advanced level-by-level."""
        leaf_ids, _ = self._descend(queries, with_margin=False)
        return leaf_ids

    def descend_with_margin(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Leaf ids plus, per query, the smallest ``|q[dim] - threshold]``
        over the splitting planes crossed on the way down.

        Every reference point *outside* a query's leaf lies across at
        least one of those planes, so the margin lower-bounds the
        distance to any out-of-leaf point — the exactness certificate
        (leaf radius test) :func:`knn_exact_batched` uses to skip
        backtracking.
        """
        return self._descend(queries, with_margin=True)

    def _descend(
        self, queries: np.ndarray, *, with_margin: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        m = q.shape[0]
        current = np.zeros(m, dtype=np.int64)
        margin = np.full(m, np.inf)
        active = ~self.is_leaf[current]
        while active.any():
            idx = current[active]
            dims = self.dim[idx]
            thresholds = self.threshold[idx]
            coords = q[active, dims]
            if with_margin:
                margin[active] = np.minimum(
                    margin[active], np.abs(coords - thresholds)
                )
            go_left = coords <= thresholds
            current[active] = np.where(go_left, self.left[idx], self.right[idx])
            active = ~self.is_leaf[current]
        return current, margin

    # -- level-synchronous fast descent --------------------------------
    def level_plan(self) -> "_LevelPlan | None":
        """Per-level threshold tables for the slot-arithmetic descent.

        Built (and cached) on first use.  Returns ``None`` when the
        tree does not qualify — split dimensions must be uniform per
        level (true for every tree the cycling-dims builders produce)
        and the virtual complete-tree tables must stay small.
        """
        if self._levels is False:
            self._levels = _LevelPlan.from_flat(self)
        return self._levels

    def descend_fast(self, queries: np.ndarray) -> np.ndarray:
        """Leaf node id per query via per-level threshold tables.

        One threshold gather + compare + slot update per tree level —
        no per-point node-array gathers — which makes whole-frame
        placement and incremental re-bucketing several times faster
        than the generic :meth:`descend`.  Falls back to
        :meth:`descend` for trees without a :meth:`level_plan`.
        """
        plan = self.level_plan()
        q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if plan is None:
            return self.descend(q)
        return plan.descend(q)


class _LevelPlan:
    """Threshold tables of the virtual complete tree, one per level.

    Slot ``s`` at level ``l`` is the position a node would occupy in a
    complete binary tree; a leaf above the bottom level parks its
    points by always sending them left (``+inf`` threshold), so the
    final slot identifies the leaf via ``leaf_node_of_slot``.
    """

    #: Refuse to build tables beyond this many bottom-level slots.
    MAX_SLOTS = 1 << 22

    __slots__ = ("dims", "tables", "leaf_node_of_slot", "depth")

    def __init__(self, dims, tables, leaf_node_of_slot, depth):
        self.dims = dims
        self.tables = tables
        self.leaf_node_of_slot = leaf_node_of_slot
        self.depth = depth

    @classmethod
    def from_flat(cls, flat: "FlatKdTree") -> "_LevelPlan | None":
        n = flat.dim.shape[0]
        depth_of = np.zeros(n, dtype=np.int64)
        slot_of = np.zeros(n, dtype=np.int64)
        internal = ~flat.is_leaf
        idx = np.flatnonzero(internal)
        # Every builder in the repo numbers children after their parent,
        # which lets one ascending sweep resolve depths and slots.
        left, right = flat.left, flat.right
        if idx.size and (np.any(left[idx] <= idx) or np.any(right[idx] <= idx)):
            return None
        for i in idx:
            d1 = depth_of[i] + 1
            s2 = 2 * slot_of[i]
            depth_of[left[i]] = d1
            depth_of[right[i]] = d1
            slot_of[left[i]] = s2
            slot_of[right[i]] = s2 + 1

        depth = int(depth_of[flat.is_leaf].max()) if flat.is_leaf.any() else 0
        if depth >= 63 or (1 << depth) > cls.MAX_SLOTS:
            return None

        dims: list[int] = []
        tables: list[np.ndarray] = []
        for level in range(depth):
            at = internal & (depth_of == level)
            level_dims = np.unique(flat.dim[at])
            if level_dims.size > 1:
                return None          # mixed dims: generic descent only
            dims.append(int(level_dims[0]) if level_dims.size else 0)
            table = np.full(1 << level, np.inf)
            table[slot_of[at]] = flat.threshold[at]
            tables.append(table)

        leaf_node_of_slot = np.zeros(1 << depth, dtype=np.int64)
        leaves = np.flatnonzero(flat.is_leaf)
        bottom = slot_of[leaves] << (depth - depth_of[leaves])
        leaf_node_of_slot[bottom] = leaves
        return cls(dims, tables, leaf_node_of_slot, depth)

    def descend(self, q: np.ndarray) -> np.ndarray:
        cur = np.zeros(q.shape[0], dtype=np.int64)
        for dim, table in zip(self.dims, self.tables):
            cur = cur + cur + (q[:, dim] > table[cur])
        return self.leaf_node_of_slot[cur]


# ----------------------------------------------------------------------
# Vectorized bucket kernels
# ----------------------------------------------------------------------
def _squared_distances(flat: FlatKdTree, qg: np.ndarray, cand: np.ndarray) -> np.ndarray:
    """Selection metric: ``|q - c|^2`` via the BLAS expansion, clipped at 0.

    Evaluated on centered coordinates so the expansion's cancellation
    error scales with the cloud extent, not the distance from the
    origin.
    """
    qc = qg - flat.centroid
    d2 = (
        (qc * qc).sum(axis=1)[:, None]
        - 2.0 * qc @ flat.points_c[cand].T
        + flat.point_sq_c[cand][None, :]
    )
    np.maximum(d2, 0.0, out=d2)
    return d2


def _exact_rows(
    flat: FlatKdTree, qg: np.ndarray, sel_idx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Re-derive the reported distances of already-selected candidates
    with the loop paths' exact kernel, and sort each row by them.

    ``sel_idx`` is ``(G, t)`` global point indices (``-1`` padding).
    Returns ``(indices, distances)`` rows sorted ascending, ``-1`` /
    ``inf`` padded — element-for-element what the per-query searches
    produce for the same candidate sets.
    """
    from repro.kdtree.search import PAD_INDEX

    valid = sel_idx != PAD_INDEX
    gathered = flat.points[np.where(valid, sel_idx, 0)]
    diff = qg[:, None, :] - gathered
    dists = np.sqrt((diff * diff).sum(axis=2))
    dists[~valid] = np.inf
    order = np.argsort(dists, axis=1, kind="stable")
    rows = np.arange(sel_idx.shape[0])[:, None]
    idx = np.where(valid, sel_idx, PAD_INDEX)[rows, order]
    dst = dists[rows, order]
    idx[np.isinf(dst)] = PAD_INDEX
    return idx, dst


def _grouped_topk(
    flat: FlatKdTree, q: np.ndarray, bucket_ids: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k over each query's bucket, one vectorized kernel per group.

    Queries are grouped by bucket (argsort), candidates are *selected*
    per group with a float32 BLAS metric over the CSR-aligned,
    centroid-centered bucket blocks (keeping ``SELECT_PAD`` extras to
    absorb float32 rounding, with an exact float64 re-selection for
    rows where boundary ties overflow the pad), and the reported top-k
    is decided on exactly recomputed float64 distances.  Returns
    ``(indices, distances)`` of shape ``(M, k)``.
    """
    from repro.kdtree.search import PAD_INDEX

    m = q.shape[0]
    indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
    distances = np.full((m, k), np.inf)
    if m == 0:
        return indices, distances

    q32 = (q - flat.centroid).astype(np.float32)
    t = k + FlatKdTree.SELECT_PAD

    order = np.argsort(bucket_ids, kind="stable")
    sorted_b = bucket_ids[order]
    run_starts = np.flatnonzero(np.r_[True, sorted_b[1:] != sorted_b[:-1]])
    run_stops = np.r_[run_starts[1:], sorted_b.size]
    get_registry().counter("engine.leaf_groups").inc(int(run_starts.size))

    # Per-group selection fills one (M, t) candidate table; the exact
    # re-derivation then runs as a single batched kernel over all rows
    # rather than once per group.
    sel = np.full((m, t), PAD_INDEX, dtype=np.int64)
    offsets = flat.bucket_offsets
    for start, stop in zip(run_starts, run_stops):
        qids = order[start:stop]
        bid = int(sorted_b[start])
        lo, hi = offsets[bid], offsets[bid + 1]
        b = hi - lo
        if b == 0:
            continue
        cand = flat.bucket_members[lo:hi]
        if b > t:
            # |q|^2 is constant per row, so it cannot change which
            # candidates rank in the top-t; rank on |c|^2 - 2 q.c only.
            d2 = (
                flat.bucket_sq32[lo:hi]
                - 2.0 * (q32[qids] @ flat.bucket_xyz32[lo:hi].T)
            )
            part = np.argpartition(d2, t - 1, axis=1)[:, :t]
            sel[qids] = cand[part]
            # SELECT_PAD absorbs float32 rounding at the selection
            # boundary only while fewer than t candidates sit within
            # rounding distance of it.  Duplicate-heavy buckets (points
            # identical up to float32 resolution, e.g. an unsplittable
            # overflowed leaf) can tie tens of candidates there, and
            # argpartition may then drop a true neighbor whose margin
            # is representable in float64 but not float32.  Re-select
            # those rows on exact difference-first float64 distances,
            # id-ascending among ties so `_exact_rows`'s stable sort
            # reports the canonical ids.
            kth = np.max(np.take_along_axis(d2, part, axis=1), axis=1)
            scale = (q32[qids] ** 2).sum(axis=1) + np.abs(
                flat.bucket_sq32[lo:hi]
            ).max()
            margin = 16.0 * np.finfo(np.float32).eps * scale
            risky = np.flatnonzero(
                (d2 <= (kth + margin)[:, None]).sum(axis=1) > t
            )
            if risky.size:
                ido = np.argsort(cand, kind="stable")
                cpts = flat.points[cand[ido]]
                diff = q[qids[risky], None, :] - cpts[None, :, :]
                d64 = np.einsum("mbd,mbd->mb", diff, diff)
                o = np.argsort(d64, axis=1, kind="stable")[:, :t]
                sel[qids[risky]] = cand[ido][o]
        else:
            sel[qids, :b] = cand
    idx, dst = _exact_rows(flat, q, sel)
    indices[:] = idx[:, :k]
    distances[:] = dst[:, :k]
    return indices, distances


def knn_approx_batched(flat: FlatKdTree, queries: np.ndarray, k: int):
    """Single-bucket approximate kNN for a whole query batch at once."""
    from repro.kdtree.search import QueryResult

    if k < 1:
        raise ValueError("k must be positive")
    obs = get_registry()
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    with obs.timer("engine.approx"):
        leaf_ids = flat.descend(q)
        indices, distances = _grouped_topk(flat, q, flat.bucket_id[leaf_ids], k)
    if obs.enabled:
        obs.counter("engine.approx.calls").inc()
        obs.counter("engine.approx.queries").inc(q.shape[0])
    return QueryResult(indices=indices, distances=distances)


# ----------------------------------------------------------------------
# Batched exact search
# ----------------------------------------------------------------------
def _collect_backtrack_visits(
    flat: FlatKdTree,
    q: np.ndarray,
    unsettled: np.ndarray,
    home_leaf: np.ndarray,
    bound: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized frontier walk of the branch-and-bound visit set.

    Re-descends every unsettled query from the root, always following
    the near child and forking into the far child whenever the
    splitting-plane margin is below the query's bound — exactly the
    pruning rule of the per-query exact search, with the (already
    computed) single-bucket k-th distance as a conservative bound.
    Returns the ``(query_id, bucket_id)`` pairs to scan, excluding each
    query's home leaf.
    """
    frontier_q = unsettled.copy()
    frontier_n = np.zeros(unsettled.size, dtype=np.int64)
    visit_q: list[np.ndarray] = []
    visit_b: list[np.ndarray] = []
    while frontier_q.size:
        at_leaf = flat.is_leaf[frontier_n]
        if at_leaf.any():
            lq = frontier_q[at_leaf]
            ln = frontier_n[at_leaf]
            keep = ln != home_leaf[lq]
            if keep.any():
                visit_q.append(lq[keep])
                visit_b.append(flat.bucket_id[ln[keep]])
            frontier_q = frontier_q[~at_leaf]
            frontier_n = frontier_n[~at_leaf]
            if frontier_q.size == 0:
                break
        dims = flat.dim[frontier_n]
        delta = q[frontier_q, dims] - flat.threshold[frontier_n]
        go_left = delta <= 0
        near = np.where(go_left, flat.left[frontier_n], flat.right[frontier_n])
        far = np.where(go_left, flat.right[frontier_n], flat.left[frontier_n])
        fork = np.abs(delta) < bound[frontier_q]
        frontier_n = np.concatenate([near, far[fork]])
        frontier_q = np.concatenate([frontier_q, frontier_q[fork]])
    if not visit_q:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(visit_q), np.concatenate(visit_b)


def knn_exact_batched(
    tree: "KdTree | FlatKdTree",
    queries: np.ndarray,
    k: int,
    *,
    max_visits: int | None = None,
):
    """Exact kNN: batched single-bucket pass, leaf radius test, then
    batched backtracking for the minority of queries that need it.

    ``tree`` may be a :class:`~repro.kdtree.node.KdTree` or a
    :class:`FlatKdTree` (e.g. loaded from a snapshot) — the search only
    touches the flat layout.  ``max_visits`` bounds how many *extra*
    buckets (beyond the home leaf) backtracking may scan per query, in
    the order the branch-and-bound walk reaches them: ``None`` is the
    unbounded exact search, ``0`` degenerates to the single-bucket
    approximate answer, and intermediate budgets trade accuracy for
    bounded work — the ladder :mod:`repro.serve` degrades along under
    load.  With a finite budget the result is no longer guaranteed
    exact.

    Returns ``(result, visits)`` where ``visits`` counts buckets
    scanned per query (1 for every query the radius test settles).
    """
    from repro.kdtree.search import QueryResult

    if k < 1:
        raise ValueError("k must be positive")
    if max_visits is not None and max_visits < 0:
        raise ValueError("max_visits must be non-negative")
    obs = get_registry()
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    with obs.timer("engine.exact"):
        indices, distances, visits = _exact_batched_impl(
            tree, q, k, obs, max_visits=max_visits
        )
    if obs.enabled:
        obs.counter("engine.exact.calls").inc()
        obs.counter("engine.exact.queries").inc(q.shape[0])
    return QueryResult(indices=indices, distances=distances), visits


def _truncate_visits(
    vq: np.ndarray, vb: np.ndarray, max_visits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Keep each query's first ``max_visits`` (query, bucket) pairs.

    Pairs arrive in the order the frontier walk reached the buckets; a
    stable sort by query groups them while preserving that arrival
    order, so the budget keeps the earliest-reached buckets.
    """
    order = np.argsort(vq, kind="stable")
    vq_s, vb_s = vq[order], vb[order]
    starts = np.flatnonzero(np.r_[True, vq_s[1:] != vq_s[:-1]])
    sizes = np.diff(np.r_[starts, vq_s.size])
    rank = np.arange(vq_s.size) - np.repeat(starts, sizes)
    keep = rank < max_visits
    return vq_s[keep], vb_s[keep]


def _exact_batched_impl(
    tree: "KdTree | FlatKdTree", q: np.ndarray, k: int, obs, *, max_visits=None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    from repro.kdtree.search import PAD_INDEX

    flat = tree.flat()
    leaf_ids, margins = flat.descend_with_margin(q)
    indices, distances = _grouped_topk(flat, q, flat.bucket_id[leaf_ids], k)
    visits = np.ones(q.shape[0], dtype=np.int64)

    # Leaf radius test: a query is settled iff it found k neighbors all
    # closer than every splitting plane it crossed — backtracking could
    # not improve it (the exact search prunes the far side of a plane
    # unless its margin is below the current k-th best).
    kth = distances[:, k - 1]
    unsettled = np.flatnonzero(~(kth <= margins))
    if obs.enabled:
        obs.counter("engine.exact.unsettled").inc(int(unsettled.size))
    if unsettled.size == 0:
        return indices, distances, visits

    if max_visits == 0:
        return indices, distances, visits

    vq, vb = _collect_backtrack_visits(flat, q, unsettled, leaf_ids, kth)
    if max_visits is not None and vq.size:
        before = vq.size
        vq, vb = _truncate_visits(vq, vb, max_visits)
        if obs.enabled:
            obs.counter("engine.exact.budget_truncated").inc(int(before - vq.size))
    if obs.enabled:
        obs.counter("engine.exact.bucket_scans").inc(int(vq.size))
        obs.distribution("engine.exact.frontier").observe(int(vq.size))
    if vq.size == 0:
        return indices, distances, visits

    # Merge the visited buckets into each query's running candidate
    # set, one vectorized merge per distinct bucket.  Selection runs on
    # the centered BLAS metric and, as in the single-bucket pass, keeps
    # ``SELECT_PAD`` extra candidates so rounding at the selection
    # boundary (the running set squares previously sqrt'd distances,
    # new candidates come from the expansion) cannot drop a true
    # neighbor; the touched rows are re-derived exactly — and cut back
    # to k — at the end.
    t = k + FlatKdTree.SELECT_PAD
    row_of = np.full(q.shape[0], -1, dtype=np.int64)
    row_of[unsettled] = np.arange(unsettled.size)
    run_d2 = np.concatenate(
        [distances[unsettled] ** 2, np.full((unsettled.size, t - k), np.inf)],
        axis=1,
    )
    run_idx = np.concatenate(
        [
            indices[unsettled],
            np.full((unsettled.size, t - k), PAD_INDEX, dtype=np.int64),
        ],
        axis=1,
    )
    order = np.argsort(vb, kind="stable")
    sorted_b = vb[order]
    run_starts = np.flatnonzero(np.r_[True, sorted_b[1:] != sorted_b[:-1]])
    run_stops = np.r_[run_starts[1:], sorted_b.size]
    for start, stop in zip(run_starts, run_stops):
        qids = vq[order[start:stop]]
        cand = flat.bucket(int(sorted_b[start]))
        visits[qids] += 1
        if cand.size == 0:
            continue
        rows = row_of[qids]
        d2 = _squared_distances(flat, q[qids], cand)
        cat_d2 = np.concatenate([run_d2[rows], d2], axis=1)
        cat_idx = np.concatenate(
            [run_idx[rows], np.broadcast_to(cand, (qids.size, cand.size))], axis=1
        )
        part = np.argpartition(cat_d2, t - 1, axis=1)[:, :t]
        run_d2[rows] = np.take_along_axis(cat_d2, part, axis=1)
        run_idx[rows] = np.take_along_axis(cat_idx, part, axis=1)

    touched = np.unique(vq)
    idx, dst = _exact_rows(flat, q[touched], run_idx[row_of[touched]])
    indices[touched] = idx[:, :k]
    distances[touched] = dst[:, :k]
    # Rows the radius test missed but backtracking never improved keep
    # their (already exact) single-bucket answer untouched.
    return indices, distances, visits
