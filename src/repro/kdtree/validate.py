"""Structural invariant checks for k-d trees.

Used by the test suite (including the hypothesis property tests) and
available to users as a debugging aid.  :func:`check_tree` raises
:class:`TreeInvariantError` describing the first violated invariant.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import Aabb
from repro.kdtree.node import NO_NODE, KdTree


class TreeInvariantError(AssertionError):
    """A k-d tree violated a structural invariant."""


def check_tree(tree: KdTree, *, require_all_points: bool = True) -> None:
    """Verify every structural invariant of a placed tree.

    Checks: node indices and parent/child pointers are consistent; every
    node is a proper leaf or a proper split; every node is reachable
    exactly once; every bucket belongs to exactly one leaf; every point
    appears in exactly one bucket (if ``require_all_points``); and every
    bucketed point lies inside its leaf's region.
    """
    if not tree.nodes:
        raise TreeInvariantError("tree has no nodes")

    for i, node in enumerate(tree.nodes):
        if node.index != i:
            raise TreeInvariantError(f"node at position {i} has index {node.index}")
        try:
            node.validate_role()
        except ValueError as exc:
            raise TreeInvariantError(str(exc)) from exc

    _check_reachability_and_parents(tree)
    _check_buckets(tree, require_all_points)
    _check_regions(tree)


def _check_reachability_and_parents(tree: KdTree) -> None:
    seen = set()
    stack = [(tree.ROOT, NO_NODE, 0)]
    while stack:
        index, parent, depth = stack.pop()
        if index in seen:
            raise TreeInvariantError(f"node {index} reachable via two paths")
        seen.add(index)
        node = tree.nodes[index]
        if node.parent != parent:
            raise TreeInvariantError(
                f"node {index} has parent {node.parent}, expected {parent}"
            )
        if node.depth != depth:
            raise TreeInvariantError(
                f"node {index} has depth {node.depth}, expected {depth}"
            )
        if not node.is_leaf:
            stack.append((node.left, index, depth + 1))
            stack.append((node.right, index, depth + 1))
    if len(seen) != tree.n_nodes:
        orphans = set(range(tree.n_nodes)) - seen
        raise TreeInvariantError(f"unreachable nodes: {sorted(orphans)[:8]}")


def _check_buckets(tree: KdTree, require_all_points: bool) -> None:
    bucket_owners: dict[int, int] = {}
    for node in tree.nodes:
        if node.is_leaf:
            if node.bucket_id in bucket_owners:
                raise TreeInvariantError(
                    f"bucket {node.bucket_id} owned by leaves "
                    f"{bucket_owners[node.bucket_id]} and {node.index}"
                )
            if not (0 <= node.bucket_id < len(tree.buckets)):
                raise TreeInvariantError(
                    f"leaf {node.index} references missing bucket {node.bucket_id}"
                )
            bucket_owners[node.bucket_id] = node.index
    if len(bucket_owners) != len(tree.buckets):
        raise TreeInvariantError("some buckets are not attached to any leaf")

    all_members = (
        np.concatenate([b for b in tree.buckets if b.size])
        if any(b.size for b in tree.buckets)
        else np.empty(0, dtype=np.int64)
    )
    if all_members.size != np.unique(all_members).size:
        raise TreeInvariantError("a point index appears in two buckets")
    if all_members.size and (
        all_members.min() < 0 or all_members.max() >= tree.n_points
    ):
        raise TreeInvariantError("bucket contains an out-of-range point index")
    if require_all_points and all_members.size != tree.n_points:
        raise TreeInvariantError(
            f"buckets hold {all_members.size} points, tree has {tree.n_points}"
        )


def _check_regions(tree: KdTree) -> None:
    """Every bucketed point must lie in its leaf's half-space region."""

    def visit(index: int, region: Aabb) -> None:
        node = tree.nodes[index]
        if node.is_leaf:
            members = tree.buckets[node.bucket_id]
            if members.size == 0:
                return
            inside = region.contains(tree.points[members])
            if not inside.all():
                bad = members[~inside][0]
                raise TreeInvariantError(
                    f"point {bad} outside the region of leaf {index}"
                )
            return
        below, above = region.split(node.dim, node.threshold) if _finite_split(
            region, node.dim, node.threshold
        ) else _unbounded_split(region, node.dim, node.threshold)
        visit(node.left, below)
        visit(node.right, above)

    visit(tree.ROOT, Aabb.infinite())


def _finite_split(region: Aabb, dim: int, threshold: float) -> bool:
    return bool(region.lo[dim] <= threshold <= region.hi[dim])


def _unbounded_split(region: Aabb, dim: int, threshold: float) -> tuple[Aabb, Aabb]:
    # A stale threshold (possible mid-update) may sit outside the region;
    # clamp so the containment check still applies to the usable side.
    clamped = min(max(threshold, region.lo[dim]), region.hi[dim])
    return region.split(dim, clamped)
