"""Unified flat-tree snapshot handle: one format, two transports.

A :class:`Snapshot` is the portable form of a
:class:`~repro.kdtree.engine.FlatKdTree`: the structural arrays of the
engine's structure-of-arrays layout, plus caller-owned side arrays
(``extras`` — the serve layer stores each shard's global point ids
this way), under a versioned header.  It is the single currency every
snapshot path consumes:

* **disk** — :meth:`Snapshot.save` / :meth:`Snapshot.load` write the
  ``.npz`` format historically produced by
  :func:`repro.kdtree.serialize.save_flat` (which now delegates here
  and is deprecated), so old snapshot files keep loading and new files
  keep loading in old readers.
* **shared memory** — :meth:`Snapshot.to_payload` flattens the
  snapshot into one ``{name: array}`` dict that
  :mod:`repro.serve.shm` lays out in a ``multiprocessing.shared_memory``
  segment; :meth:`Snapshot.from_payload` reassembles the handle from
  the zero-copy views a worker process attaches.

The round trip is bit-identical array for array in both transports:
the arrays are stored verbatim, and the lazy selection-stage artifacts
of :class:`FlatKdTree` are derived, never serialized.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.kdtree.engine import FlatKdTree

#: Version stamped into every payload header.  Version 1 is the PR 5
#: ``save_flat`` layout; this module reads and writes it unchanged so
#: snapshots interoperate across the rename.
FORMAT_VERSION = 1

#: Header key carrying the format version (kept from the original
#: ``save_flat`` payload for backward/forward compatibility).
_VERSION_KEY = "flat_version"

#: The structural arrays of a FlatKdTree, in constructor order.
FLAT_FIELDS = (
    "points",
    "dim",
    "threshold",
    "left",
    "right",
    "is_leaf",
    "bucket_id",
    "bucket_offsets",
    "bucket_members",
)

#: Prefix namespacing caller-supplied side arrays in a payload.
EXTRA_PREFIX = "extra_"


@dataclass(frozen=True)
class Snapshot:
    """A serialized-form flat k-d tree plus caller-owned side arrays.

    ``arrays`` maps every name in :data:`FLAT_FIELDS` to its array;
    ``extras`` carries side data (name-spaced on the wire with
    ``extra_``).  Instances are cheap handles over the arrays — no
    copies are taken on construction, so a snapshot built from
    shared-memory views stays zero-copy until the engine derives its
    query-stage artifacts.
    """

    arrays: dict[str, np.ndarray]
    extras: dict[str, np.ndarray] = field(default_factory=dict)
    version: int = FORMAT_VERSION

    def __post_init__(self):
        missing = [name for name in FLAT_FIELDS if name not in self.arrays]
        if missing:
            raise ValueError(f"snapshot is missing structural arrays {missing}")
        for name in self.extras:
            if name in FLAT_FIELDS or name == _VERSION_KEY:
                raise ValueError(
                    f"extra array name {name!r} collides with a structural field"
                )

    # -- construction --------------------------------------------------
    @classmethod
    def from_flat(
        cls, flat: FlatKdTree, *, extra: dict[str, np.ndarray] | None = None
    ) -> "Snapshot":
        """Capture a queryable tree (structural arrays only, no copies)."""
        arrays = {name: getattr(flat, name) for name in FLAT_FIELDS}
        extras = {name: np.asarray(value) for name, value in (extra or {}).items()}
        return cls(arrays=arrays, extras=extras)

    def to_flat(self) -> FlatKdTree:
        """Reassemble the queryable engine tree over these arrays."""
        return FlatKdTree.from_arrays(**{n: self.arrays[n] for n in FLAT_FIELDS})

    # -- flat payload (the wire format both transports share) ----------
    def to_payload(self) -> dict[str, np.ndarray]:
        """One flat ``{name: array}`` dict: header + fields + extras."""
        payload = {_VERSION_KEY: np.array([self.version], dtype=np.int64)}
        payload.update({name: self.arrays[name] for name in FLAT_FIELDS})
        for name, value in self.extras.items():
            payload[EXTRA_PREFIX + name] = value
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, np.ndarray]) -> "Snapshot":
        """Inverse of :meth:`to_payload`; validates the version header."""
        if _VERSION_KEY not in payload:
            raise ValueError("payload has no snapshot version header")
        version = int(np.asarray(payload[_VERSION_KEY]).ravel()[0])
        if version != FORMAT_VERSION:
            raise ValueError(f"unsupported flat tree format version {version}")
        arrays = {n: payload[n] for n in FLAT_FIELDS if n in payload}
        extras = {
            key[len(EXTRA_PREFIX):]: value
            for key, value in payload.items()
            if key.startswith(EXTRA_PREFIX)
        }
        return cls(arrays=arrays, extras=extras, version=version)

    # -- disk transport ------------------------------------------------
    def save(self, path: str | Path | io.IOBase, *, compressed: bool = True) -> None:
        """Write the ``.npz`` snapshot file (or writable binary stream).

        ``compressed=False`` stores the members raw (``np.savez``), the
        layout :meth:`load` can memory-map — the blocked index stores
        its per-block trees this way so a query pages in only the
        arrays it touches.
        """
        writer = np.savez_compressed if compressed else np.savez
        writer(path, **self.to_payload())

    @classmethod
    def load(
        cls, path: str | Path | io.IOBase, *, mmap_mode: str | None = None
    ) -> "Snapshot":
        """Read a snapshot written by :meth:`save` (or legacy ``save_flat``).

        ``mmap_mode`` (default ``None``: read everything eagerly, the
        historical behavior) opts into lazy page-in: ``"r"`` maps each
        array read-only over the file, ``"c"`` copy-on-write.  Mapping
        requires an uncompressed snapshot (``save(compressed=False)``)
        and a real filesystem path — ``np.load`` itself silently
        ignores ``mmap_mode`` for zip archives, so this path parses the
        archive and maps each stored member in place.  Arrays are
        bit-identical to an eager load either way.
        """
        if mmap_mode is None:
            with np.load(path) as payload:
                return cls.from_payload(
                    {key: payload[key] for key in payload.files}
                )
        return cls.from_payload(_mmap_npz_payload(path, mmap_mode))

    # -- introspection -------------------------------------------------
    @property
    def is_mapped(self) -> bool:
        """True when the arrays are memory-mapped views over a file."""
        return any(
            isinstance(getattr(a, "base", None), np.memmap)
            for a in self.arrays.values()
        )

    @property
    def n_points(self) -> int:
        return int(self.arrays["points"].shape[0])

    @property
    def nbytes(self) -> int:
        """Total payload bytes (what a shared-memory segment must hold)."""
        return sum(a.nbytes for a in self.to_payload().values())


#: Local-file-header prelude of a zip member: fixed 30 bytes, then the
#: file name and the (local, possibly distinct from central) extra field.
_ZIP_LOCAL_MAGIC = b"PK\x03\x04"
_ZIP_LOCAL_FIXED = 30


def _mmap_npz_payload(path, mmap_mode: str) -> dict[str, np.ndarray]:
    """Map every member of an *uncompressed* ``.npz`` in place.

    One ``np.memmap`` spans the archive; each stored member's ``.npy``
    header is parsed to find its data offset, and the returned arrays
    are zero-copy views at those offsets.  The views keep the mapping
    alive through their ``base`` chain, so no handle management is
    needed — the file unmaps when the last array is garbage collected.
    """
    import zipfile

    if mmap_mode not in ("r", "c"):
        raise ValueError(
            f"mmap_mode must be 'r' (read-only) or 'c' (copy-on-write), "
            f"got {mmap_mode!r}"
        )
    if isinstance(path, io.IOBase):
        raise TypeError("mmap_mode requires a filesystem path, not a stream")
    path = Path(path)
    mapped = np.memmap(path, dtype=np.uint8, mode=mmap_mode)
    payload: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(
                    f"{path}: member {info.filename!r} is compressed; "
                    "mmap_mode needs an uncompressed snapshot — re-save "
                    "with Snapshot.save(path, compressed=False)"
                )
            raw.seek(info.header_offset)
            local = raw.read(_ZIP_LOCAL_FIXED)
            if local[: len(_ZIP_LOCAL_MAGIC)] != _ZIP_LOCAL_MAGIC:
                raise ValueError(f"{path}: corrupt zip local header")
            name_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            raw.seek(info.header_offset + _ZIP_LOCAL_FIXED + name_len + extra_len)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
            else:  # pragma: no cover - no writer emits 3.0 for these dtypes
                raise ValueError(
                    f"{path}: unsupported .npy format version {version}"
                )
            if dtype.hasobject:
                raise ValueError(f"{path}: cannot map object arrays")
            key = info.filename.removesuffix(".npy")
            payload[key] = np.ndarray(
                shape,
                dtype=dtype,
                buffer=mapped,
                offset=raw.tell(),
                order="F" if fortran else "C",
            )
    return payload
