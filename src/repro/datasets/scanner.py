"""Rotating multi-beam LiDAR scanner model.

Mimics a Velodyne-style sensor: a fan of fixed-elevation beams spinning
through 360 degrees of azimuth, producing one range return per
(beam, azimuth) cell.  Range noise and random dropouts approximate the
measurement imperfections of a real unit.

The scanner is the source of the density profile the paper's k-d tree
results depend on: returns cluster near the sensor (1/r^2 falloff on
surfaces) and thin out with range, so k-d tree buckets built over a
frame are spatially very non-uniform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud, RigidTransform
from repro.datasets.scene import Scene


@dataclass(frozen=True)
class ScannerConfig:
    """Geometry and noise parameters of the LiDAR model.

    Defaults approximate a 32-beam unit with 0.4-degree azimuth
    resolution — about 29k rays per revolution, landing near the paper's
    ~100k-raw / ~30k-useful operating point once elevation coverage and
    dropouts are accounted for.
    """

    n_beams: int = 32
    n_azimuth: int = 900
    elevation_min_deg: float = -24.0
    elevation_max_deg: float = 4.0
    max_range: float = 90.0
    min_range: float = 1.0
    sensor_height: float = 1.8
    range_noise_std: float = 0.02
    dropout_rate: float = 0.05

    def __post_init__(self):
        if self.n_beams < 1 or self.n_azimuth < 1:
            raise ValueError("scanner needs at least one beam and azimuth step")
        if self.elevation_min_deg >= self.elevation_max_deg:
            raise ValueError("elevation_min_deg must be below elevation_max_deg")
        if not (0.0 <= self.dropout_rate < 1.0):
            raise ValueError("dropout_rate must be in [0, 1)")
        if self.min_range <= 0 or self.max_range <= self.min_range:
            raise ValueError("need 0 < min_range < max_range")

    @property
    def rays_per_revolution(self) -> int:
        return self.n_beams * self.n_azimuth


class LidarScanner:
    """Casts one revolution of rays into a scene and collects returns."""

    def __init__(self, config: ScannerConfig | None = None):
        self.config = config or ScannerConfig()
        self._directions = self._build_directions()

    def _build_directions(self) -> np.ndarray:
        cfg = self.config
        azimuths = np.linspace(0.0, 2.0 * np.pi, cfg.n_azimuth, endpoint=False)
        elevations = np.deg2rad(
            np.linspace(cfg.elevation_min_deg, cfg.elevation_max_deg, cfg.n_beams)
        )
        az, el = np.meshgrid(azimuths, elevations, indexing="ij")
        az, el = az.ravel(), el.ravel()
        cos_el = np.cos(el)
        return np.stack(
            [cos_el * np.cos(az), cos_el * np.sin(az), np.sin(el)], axis=1
        )

    def scan(
        self,
        scene: Scene,
        ego_pose: RigidTransform | None = None,
        rng: np.random.Generator | None = None,
    ) -> PointCloud:
        """One full revolution; returns points in the *world* frame.

        ``ego_pose`` places the sensor in the world (the sensor sits
        ``sensor_height`` above the ego origin).  Without an ``rng``,
        noise and dropouts are disabled and the scan is deterministic.
        """
        cfg = self.config
        pose = ego_pose or RigidTransform.identity()
        origin = pose.apply(np.array([0.0, 0.0, cfg.sensor_height]))
        directions = self._directions @ pose.rotation.T
        origins = np.broadcast_to(origin, directions.shape)

        t = scene.intersect(origins, directions)
        hit = (t >= cfg.min_range) & (t <= cfg.max_range)

        if rng is not None:
            if cfg.dropout_rate > 0.0:
                hit &= rng.random(t.shape) >= cfg.dropout_rate
            t = t + rng.normal(0.0, cfg.range_noise_std, size=t.shape)

        points = origin + t[hit, None] * directions[hit]
        return PointCloud(points, copy=False)
