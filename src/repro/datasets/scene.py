"""Procedural street scenes made of ray-traceable primitives.

A :class:`Scene` is a list of primitives, each supporting vectorized
ray intersection.  Primitives may carry a velocity, which the drive
generator uses to advance dynamic objects (vehicles, pedestrians)
between frames.

The default :func:`make_street_scene` lays out a straight urban road:
a ground plane, building facades along both sides, street poles, parked
and moving vehicles — the structures whose returns dominate a KITTI
frame after ground removal.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

_NO_HIT = np.inf


class Primitive:
    """Base class for ray-traceable scene objects.

    Subclasses implement :meth:`intersect` returning, for each ray, the
    distance ``t >= 0`` to the first hit or ``inf`` for a miss.
    """

    velocity: np.ndarray

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def moved(self, dt: float) -> "Primitive":
        """The primitive advanced ``dt`` seconds along its velocity."""
        raise NotImplementedError


@dataclass(frozen=True)
class GroundPlane(Primitive):
    """The horizontal plane ``z = height`` (infinite extent)."""

    height: float = 0.0
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        dz = directions[:, 2]
        oz = origins[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (self.height - oz) / dz
        t = np.where((np.abs(dz) > 1e-12) & (t > 1e-9), t, _NO_HIT)
        return t

    def moved(self, dt: float) -> "GroundPlane":
        return self  # ground does not move


@dataclass(frozen=True)
class Box(Primitive):
    """An axis-aligned box, optionally moving with constant velocity."""

    lo: np.ndarray
    hi: np.ndarray
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self):
        object.__setattr__(self, "lo", np.asarray(self.lo, dtype=np.float64))
        object.__setattr__(self, "hi", np.asarray(self.hi, dtype=np.float64))
        object.__setattr__(self, "velocity", np.asarray(self.velocity, dtype=np.float64))
        if (self.lo >= self.hi).any():
            raise ValueError(f"degenerate box: lo={self.lo}, hi={self.hi}")

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        # Standard slab test, vectorized across rays.
        with np.errstate(divide="ignore", invalid="ignore"):
            inv = 1.0 / directions
        t_lo = (self.lo - origins) * inv
        t_hi = (self.hi - origins) * inv
        t_near = np.minimum(t_lo, t_hi).max(axis=1)
        t_far = np.maximum(t_lo, t_hi).min(axis=1)
        hit = (t_far >= np.maximum(t_near, 0.0)) & (t_far > 1e-9)
        t = np.where(t_near > 1e-9, t_near, t_far)  # inside-box rays exit
        return np.where(hit, t, _NO_HIT)

    def moved(self, dt: float) -> "Box":
        if not self.velocity.any():
            return self
        offset = self.velocity * dt
        return replace(self, lo=self.lo + offset, hi=self.hi + offset)


@dataclass(frozen=True)
class Cylinder(Primitive):
    """A vertical cylinder (pole, trunk): center axis at ``(cx, cy)``."""

    cx: float
    cy: float
    radius: float
    z_lo: float
    z_hi: float
    velocity: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self):
        object.__setattr__(self, "velocity", np.asarray(self.velocity, dtype=np.float64))
        if self.radius <= 0:
            raise ValueError("cylinder radius must be positive")
        if self.z_lo >= self.z_hi:
            raise ValueError("cylinder must have z_lo < z_hi")

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        ox = origins[:, 0] - self.cx
        oy = origins[:, 1] - self.cy
        dx, dy = directions[:, 0], directions[:, 1]
        a = dx * dx + dy * dy
        b = 2.0 * (ox * dx + oy * dy)
        c = ox * ox + oy * oy - self.radius * self.radius
        disc = b * b - 4.0 * a * c
        with np.errstate(divide="ignore", invalid="ignore"):
            sqrt_disc = np.sqrt(np.maximum(disc, 0.0))
            t = (-b - sqrt_disc) / (2.0 * a)
        z = origins[:, 2] + t * directions[:, 2]
        hit = (disc >= 0.0) & (a > 1e-12) & (t > 1e-9) & (z >= self.z_lo) & (z <= self.z_hi)
        return np.where(hit, t, _NO_HIT)

    def moved(self, dt: float) -> "Cylinder":
        if not self.velocity.any():
            return self
        off = self.velocity * dt
        return replace(
            self,
            cx=self.cx + off[0],
            cy=self.cy + off[1],
            z_lo=self.z_lo + off[2],
            z_hi=self.z_hi + off[2],
        )


@dataclass(frozen=True)
class Scene:
    """An immutable collection of primitives."""

    primitives: tuple[Primitive, ...]

    def intersect(self, origins: np.ndarray, directions: np.ndarray) -> np.ndarray:
        """First-hit distance for each ray across all primitives.

        Chunked so the per-primitive hit matrix stays bounded even for
        the multi-million-ray scans of the scaling experiments.
        """
        n_rays = origins.shape[0]
        if not self.primitives:
            return np.full(n_rays, _NO_HIT)
        chunk = 200_000
        if n_rays <= chunk:
            hits = np.stack(
                [p.intersect(origins, directions) for p in self.primitives], axis=0
            )
            return hits.min(axis=0)
        out = np.empty(n_rays)
        for start in range(0, n_rays, chunk):
            stop = min(start + chunk, n_rays)
            out[start:stop] = self.intersect(origins[start:stop], directions[start:stop])
        return out

    def advanced(self, dt: float) -> "Scene":
        """The scene with every dynamic primitive moved forward ``dt``."""
        return Scene(tuple(p.moved(dt) for p in self.primitives))

    def __len__(self) -> int:
        return len(self.primitives)


def _car(x: float, y: float, *, velocity=(0.0, 0.0, 0.0)) -> Box:
    """A car-sized box centered at (x, y) on the ground."""
    half_l, half_w, height = 2.2, 0.9, 1.5
    return Box(
        lo=(x - half_l, y - half_w, 0.0),
        hi=(x + half_l, y + half_w, height),
        velocity=np.asarray(velocity, dtype=np.float64),
    )


def make_highway_scene(
    *,
    road_length: float = 240.0,
    road_half_width: float = 15.0,
    n_moving_vehicles: int = 10,
    n_signs: int = 8,
    seed: int = 0,
) -> Scene:
    """A divided highway: the Ford-campus-style cross-check environment.

    Different statistics from the urban street — no building canyon,
    long guardrails, sparse tall signs, higher speeds, more moving
    vehicles — used to verify that results do not depend on the street
    scene's particular structure (the paper cross-checks KITTI results
    against the Ford Campus dataset the same way).
    """
    rng = np.random.default_rng(seed)
    primitives: list[Primitive] = [GroundPlane(height=0.0)]

    # Guardrails: long, low boxes along both edges and the median.
    for y in (-road_half_width, 0.0, road_half_width):
        primitives.append(
            Box(lo=(-road_length / 2, y - 0.15, 0.0),
                hi=(road_length / 2, y + 0.15, 0.8))
        )

    # Sound barriers / embankments beyond the shoulders, with gaps.
    for side in (-1.0, 1.0):
        x = -road_length / 2
        while x < road_length / 2:
            length = rng.uniform(25.0, 60.0)
            y0 = side * (road_half_width + rng.uniform(4.0, 8.0))
            primitives.append(
                Box(lo=(x, min(y0, y0 + side * 1.0), 0.0),
                    hi=(x + length, max(y0, y0 + side * 1.0), rng.uniform(2.0, 5.0)))
            )
            x += length + rng.uniform(15.0, 40.0)

    # Overhead sign gantries: tall poles near the shoulder.
    for _ in range(n_signs):
        px = rng.uniform(-road_length / 2, road_length / 2)
        side = rng.choice((-1.0, 1.0))
        py = side * (road_half_width + rng.uniform(0.5, 2.0))
        primitives.append(
            Cylinder(cx=px, cy=py, radius=0.2, z_lo=0.0, z_hi=rng.uniform(6.0, 9.0))
        )

    # Fast traffic in four lanes, including truck-sized boxes.
    for _ in range(n_moving_vehicles):
        px = rng.uniform(-road_length / 2, road_length / 2)
        lane = rng.choice((-0.75, -0.3, 0.3, 0.75))
        py = lane * road_half_width
        speed = rng.uniform(20.0, 33.0) * (1.0 if lane > 0 else -1.0)
        if rng.random() < 0.3:  # truck
            half_l, half_w, height = 6.0, 1.25, 3.8
        else:
            half_l, half_w, height = 2.2, 0.9, 1.5
        primitives.append(
            Box(lo=(px - half_l, py - half_w, 0.0),
                hi=(px + half_l, py + half_w, height),
                velocity=(speed, 0.0, 0.0))
        )

    return Scene(tuple(primitives))


def make_street_scene(
    *,
    road_length: float = 120.0,
    road_half_width: float = 8.0,
    n_moving_cars: int = 4,
    n_parked_cars: int = 8,
    n_poles: int = 12,
    seed: int = 0,
) -> Scene:
    """Build a straight urban street with buildings, poles, and cars.

    The ego vehicle is assumed to start near the origin driving along +x.
    Geometry is deterministic for a given ``seed``.
    """
    rng = np.random.default_rng(seed)
    primitives: list[Primitive] = [GroundPlane(height=0.0)]

    # Building facades: rows of boxes along both sides of the road with
    # randomized setbacks and heights, producing the jagged skyline a
    # real street presents to the scanner.
    for side in (-1.0, 1.0):
        x = -road_length / 2.0
        while x < road_length / 2.0:
            width = rng.uniform(8.0, 18.0)
            depth = rng.uniform(6.0, 12.0)
            height = rng.uniform(4.0, 15.0)
            setback = rng.uniform(0.0, 4.0)
            y0 = side * (road_half_width + setback)
            y1 = y0 + side * depth
            primitives.append(
                Box(lo=(x, min(y0, y1), 0.0), hi=(x + width, max(y0, y1), height))
            )
            x += width + rng.uniform(1.0, 5.0)

    # Street poles near the curb.
    for _ in range(n_poles):
        px = rng.uniform(-road_length / 2.0, road_length / 2.0)
        side = rng.choice((-1.0, 1.0))
        py = side * (road_half_width - rng.uniform(0.3, 1.2))
        primitives.append(
            Cylinder(cx=px, cy=py, radius=rng.uniform(0.1, 0.25), z_lo=0.0, z_hi=rng.uniform(4.0, 8.0))
        )

    # Parked cars by the curb.
    for _ in range(n_parked_cars):
        px = rng.uniform(-road_length / 2.0, road_length / 2.0)
        side = rng.choice((-1.0, 1.0))
        py = side * (road_half_width - 2.0)
        primitives.append(_car(px, py))

    # Moving cars in the travel lanes.
    for _ in range(n_moving_cars):
        px = rng.uniform(-road_length / 2.0, road_length / 2.0)
        lane = rng.choice((-1.0, 1.0))
        py = lane * road_half_width / 2.0
        speed = rng.uniform(5.0, 14.0) * (-lane)  # opposing lanes, opposing flow
        primitives.append(_car(px, py, velocity=(speed, 0.0, 0.0)))

    return Scene(tuple(primitives))
