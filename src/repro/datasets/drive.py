"""Drive sequences: successive LiDAR frames from a moving ego vehicle.

The paper's benchmark workload is *successive-frame* kNN: every frame is
searched against the previous one while the ego vehicle and other
traffic move.  :func:`generate_drive` produces exactly that — a
deterministic sequence of ground-removed frames with known ego poses —
and :func:`lidar_frame` produces a single KITTI-like frame of a
requested size for the accuracy and architecture experiments.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.datasets.ground import remove_ground
from repro.datasets.scanner import LidarScanner, ScannerConfig
from repro.datasets.scene import Scene, make_highway_scene, make_street_scene
from repro.geometry import PointCloud, RigidTransform
from repro.registry import Registry

#: Scene factories selectable by name ("street" is the KITTI-like urban
#: default; "highway" is the Ford-campus-style cross-check environment).
SCENES = Registry("scene kind")
SCENES.add("street", make_street_scene)
SCENES.add("highway", make_highway_scene)

#: Deprecated plain-dict view kept for old call sites that iterate the
#: factories; the registry above is the source of truth.
SCENE_FACTORIES = {name: SCENES.resolve(name) for name in SCENES.available()}


def _make_scene(kind: str, seed: int) -> Scene:
    return SCENES.resolve(kind)(seed=seed)


@dataclass(frozen=True)
class Frame:
    """One LiDAR frame of a drive.

    ``cloud`` holds ground-removed points in the *world* frame;
    ``ego_pose`` maps sensor coordinates to world coordinates, so
    ``sensor_cloud()`` recovers what the sensor itself measured.
    """

    index: int
    time: float
    cloud: PointCloud
    ego_pose: RigidTransform

    def sensor_cloud(self) -> PointCloud:
        """The frame's points expressed in the sensor coordinate frame."""
        return PointCloud(self.ego_pose.inverse().apply(self.cloud.xyz), copy=False)


@dataclass(frozen=True)
class DriveConfig:
    """Parameters of a synthetic drive."""

    n_frames: int = 10
    frame_period: float = 0.1
    ego_speed: float = 10.0
    ego_yaw_rate: float = 0.0
    target_points: int | None = 30_000
    scene_seed: int = 0
    scene_kind: str = "street"
    #: Ego motion profile: "straight" holds ``ego_yaw_rate`` constant;
    #: "turn" ramps into a constant-rate turn after 1/3 of the drive;
    #: "slalom" oscillates the yaw rate (lane changes).
    ego_profile: str = "straight"
    scanner: ScannerConfig = field(
        default_factory=lambda: ScannerConfig(n_beams=48, n_azimuth=1800)
    )
    ground_threshold: float = 0.3

    def __post_init__(self):
        if self.n_frames < 1:
            raise ValueError("drive needs at least one frame")
        if self.frame_period <= 0:
            raise ValueError("frame_period must be positive")
        if self.target_points is not None and self.target_points < 1:
            raise ValueError("target_points must be positive when given")
        if self.ego_profile not in ("straight", "turn", "slalom"):
            raise ValueError(
                "ego_profile must be 'straight', 'turn' or 'slalom'"
            )

    def yaw_rate_at(self, frame_index: int) -> float:
        """Yaw rate (rad/s) of the chosen motion profile at a frame."""
        base = self.ego_yaw_rate
        if self.ego_profile == "straight":
            return base
        if self.ego_profile == "turn":
            rate = base if base else 0.3
            return rate if frame_index >= self.n_frames // 3 else 0.0
        # slalom: sinusoidal lane-change wobble over the drive.
        rate = base if base else 0.25
        return rate * np.sin(2.0 * np.pi * frame_index / max(self.n_frames, 1))


def generate_drive(config: DriveConfig, *, seed: int = 0) -> Iterator[Frame]:
    """Yield successive frames of a drive through a street scene.

    Deterministic for a given ``(config, seed)``.  Frames larger than
    ``config.target_points`` are uniformly subsampled to that size, the
    same way the paper fixes frame sizes for benchmarking.
    """
    rng = np.random.default_rng(seed)
    scene = _make_scene(config.scene_kind, config.scene_seed)
    scanner = LidarScanner(config.scanner)
    pose = RigidTransform.identity()

    for i in range(config.n_frames):
        t = i * config.frame_period
        raw = scanner.scan(scene, ego_pose=pose, rng=rng)
        cloud = remove_ground(raw, z_threshold=config.ground_threshold)
        if config.target_points is not None and len(cloud) > config.target_points:
            cloud = cloud.subsample(config.target_points, rng)
        yield Frame(index=i, time=t, cloud=cloud, ego_pose=pose)

        # Advance the world by one frame period.
        scene = scene.advanced(config.frame_period)
        step = RigidTransform.from_yaw(
            config.yaw_rate_at(i) * config.frame_period,
            translation=(config.ego_speed * config.frame_period, 0.0, 0.0),
        )
        pose = pose.compose(step)


@functools.lru_cache(maxsize=32)
def _cached_frame(n_points: int, seed: int, scene_kind: str) -> PointCloud:
    """Generate one ground-removed frame with at least ``n_points`` points.

    Scanner resolution is scaled to the request and escalated if the
    scene yields too few non-ground returns.
    """
    rng = np.random.default_rng(seed)
    scene = _make_scene(scene_kind, seed)
    n_azimuth = 900
    factor = _RAY_FACTOR.get(scene_kind, 12.0)
    n_beams = max(16, int(np.ceil(factor * n_points / n_azimuth)))
    for _ in range(4):
        scanner = LidarScanner(ScannerConfig(n_beams=n_beams, n_azimuth=n_azimuth))
        raw = scanner.scan(scene, rng=rng)
        cloud = remove_ground(raw)
        if len(cloud) >= n_points:
            return cloud.subsample(n_points, rng)
        n_beams *= 2
    raise RuntimeError(
        f"could not produce {n_points} non-ground points (got {len(cloud)})"
    )


def lidar_frame(
    n_points: int = 30_000, *, seed: int = 0, scene_kind: str = "street"
) -> PointCloud:
    """A single ground-removed LiDAR frame of exactly ``n_points`` points.

    This is the workhorse workload generator: the paper's "30k useful
    points after ground removal" operating point corresponds to
    ``lidar_frame(30_000)``.  ``scene_kind`` selects the environment
    ("street" for KITTI-like urban, "highway" for the Ford-style
    cross-check).
    """
    if n_points < 1:
        raise ValueError("n_points must be positive")
    return _cached_frame(n_points, seed, scene_kind)


def lidar_frame_pair(
    n_points: int = 30_000,
    *,
    seed: int = 0,
    ego_speed: float = 10.0,
    scene_kind: str = "street",
) -> tuple[PointCloud, PointCloud]:
    """Two successive frames (reference, query) of the same drive.

    This is the successive-frame kNN workload: the query frame is the
    scene one frame period later, seen from the moved ego vehicle, in
    world coordinates.
    """
    config = DriveConfig(
        n_frames=2,
        target_points=n_points,
        ego_speed=ego_speed,
        scene_seed=seed,
        scene_kind=scene_kind,
        scanner=scanner_for(n_points, scene_kind),
    )
    frames = list(generate_drive(config, seed=seed))
    if len(frames[0].cloud) < n_points or len(frames[1].cloud) < n_points:
        raise RuntimeError(
            f"scene {scene_kind!r} yielded too few non-ground points for "
            f"a {n_points}-point frame pair"
        )
    return frames[0].cloud, frames[1].cloud


#: Rays needed per useful (non-ground) point, by scene kind: the open
#: highway returns mostly ground, so it needs a denser scan.
_RAY_FACTOR = {"street": 3.5, "highway": 12.0}


def scanner_for(n_points: int, scene_kind: str = "street") -> ScannerConfig:
    """A scanner resolution comfortably above the requested frame size."""
    n_azimuth = 1200
    factor = _RAY_FACTOR.get(scene_kind, 12.0)
    n_beams = max(16, int(np.ceil(factor * n_points / n_azimuth)))
    return ScannerConfig(n_beams=n_beams, n_azimuth=n_azimuth)
