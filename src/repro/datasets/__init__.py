"""Synthetic LiDAR data — the stand-in for the KITTI / Ford Campus drives.

The paper evaluates on real LiDAR recordings.  Those recordings are not
available offline, so this package builds the closest synthetic
equivalent: a procedural street scene scanned by a rotating multi-beam
LiDAR model.  The resulting frames reproduce the statistical properties
that drive every result in the paper — non-uniform density (quadratic
falloff with range), a dominant ground plane that preprocessing removes,
vertical structure (buildings, poles, vehicles), and frame-to-frame
coherence with a moving ego vehicle and moving objects.

Typical use::

    from repro.datasets import DriveConfig, generate_drive, lidar_frame

    frame = lidar_frame(n_points=30_000, seed=0)     # one KITTI-like frame
    for frame in generate_drive(DriveConfig(n_frames=10), seed=0):
        ...                                           # successive frames
"""

from repro.datasets.city import city_block_map
from repro.datasets.drive import DriveConfig, Frame, generate_drive, lidar_frame, lidar_frame_pair
from repro.datasets.ground import remove_ground
from repro.datasets.io import load_cloud, save_cloud
from repro.datasets.segmentation import GroundPlaneFit, fit_ground_plane, remove_ground_ransac
from repro.datasets.scanner import LidarScanner, ScannerConfig
from repro.datasets.scene import (
    Box,
    Cylinder,
    GroundPlane,
    Scene,
    make_highway_scene,
    make_street_scene,
)
from repro.datasets.synthetic import gaussian_clusters, perturbed_pair, uniform_cloud
from repro.datasets.voxel import voxel_downsample, voxel_occupancy

__all__ = [
    "Box",
    "Cylinder",
    "DriveConfig",
    "Frame",
    "GroundPlane",
    "LidarScanner",
    "Scene",
    "ScannerConfig",
    "city_block_map",
    "gaussian_clusters",
    "generate_drive",
    "lidar_frame",
    "lidar_frame_pair",
    "load_cloud",
    "save_cloud",
    "make_highway_scene",
    "make_street_scene",
    "perturbed_pair",
    "remove_ground",
    "remove_ground_ransac",
    "fit_ground_plane",
    "GroundPlaneFit",
    "uniform_cloud",
    "voxel_downsample",
    "voxel_occupancy",
]
