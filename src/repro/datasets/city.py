"""Map-scale accumulation: a drive's frames merged into one huge cloud.

The repo's other generators stop at single-frame scale (~30k points);
real mapping pipelines register every frame of a drive into a shared
world frame and accumulate a city-block map of 1M-10M points.
:func:`city_block_map` reproduces that workload from the synthetic
drive machinery: frames from :func:`~repro.datasets.drive.generate_drive`
already carry world-frame (registered) clouds, so accumulating them
along a slalom trajectory yields a dense multi-frame map with the real
thing's statistics — re-observed structure, density that varies with
how often the ego passed by, and a footprint far beyond one scan.

The map is the blocked index's workload (:mod:`repro.kdtree.blocked`):
``out=`` streams the accumulating points straight into an ``.npy``
memmap, so a map bigger than RAM can be generated, built, and served
without ever being fully resident.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.datasets.drive import DriveConfig, generate_drive, scanner_for

__all__ = ["city_block_map"]


def city_block_map(
    n_points: int = 1_000_000,
    *,
    seed: int = 0,
    frame_points: int = 40_000,
    scene_kind: str = "street",
    ego_profile: str = "slalom",
    out: str | Path | None = None,
) -> np.ndarray:
    """Accumulate registered drive frames into an ``(n_points, 3)`` map.

    Frames are generated until the map reaches ``n_points`` (the last
    frame is truncated to land exactly), deterministic for a given
    ``(n_points, seed, frame_points, scene_kind, ego_profile)``.

    ``out`` writes the map incrementally into an ``.npy`` memmap at
    that path and returns the (flushed, read-only) map view — the
    out-of-core path: peak RAM stays one frame, and the returned array
    (or just the path) feeds :func:`repro.kdtree.build_blocked`
    directly.  ``out=None`` returns an in-memory array.
    """
    if n_points < 1:
        raise ValueError("n_points must be positive")
    if frame_points < 1:
        raise ValueError("frame_points must be positive")
    n_frames = -(-n_points // frame_points) + 1  # slack for short frames
    config = DriveConfig(
        n_frames=n_frames,
        target_points=frame_points,
        ego_profile=ego_profile,
        scene_kind=scene_kind,
        scene_seed=seed,
        scanner=scanner_for(frame_points, scene_kind),
    )

    if out is not None:
        out = os.fspath(out)
        store = np.lib.format.open_memmap(
            out, mode="w+", dtype=np.float64, shape=(n_points, 3)
        )
    else:
        store = np.empty((n_points, 3), dtype=np.float64)

    filled = 0
    while filled < n_points:
        for frame in generate_drive(config, seed=seed):
            take = min(len(frame.cloud), n_points - filled)
            store[filled:filled + take] = frame.cloud.xyz[:take]
            filled += take
            if filled >= n_points:
                break
        else:  # pragma: no cover - drive exhausted early (tiny frames)
            config = DriveConfig(
                n_frames=config.n_frames * 2,
                target_points=frame_points,
                ego_profile=ego_profile,
                scene_kind=scene_kind,
                scene_seed=seed,
                scanner=config.scanner,
            )

    if out is not None:
        store.flush()
        del store
        return np.load(out, mmap_mode="r")
    return store
