"""Simple synthetic point distributions.

Small, fully controlled clouds for unit tests and micro-benchmarks,
where the full LiDAR scanner would be overkill: uniform boxes, gaussian
cluster mixtures (the non-uniform-density stress case for tree balance),
and perturbed frame pairs with a known ground-truth transform (ICP
tests).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PointCloud, RigidTransform


def uniform_cloud(
    n: int, *, rng: np.random.Generator, lo=(-50.0, -50.0, 0.0), hi=(50.0, 50.0, 10.0)
) -> PointCloud:
    """``n`` points uniform in an axis-aligned box."""
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    if (lo >= hi).any():
        raise ValueError("uniform_cloud needs lo < hi on every axis")
    return PointCloud(rng.uniform(lo, hi, size=(n, 3)), copy=False)


def gaussian_clusters(
    n: int,
    *,
    rng: np.random.Generator,
    n_clusters: int = 8,
    spread: float = 40.0,
    cluster_std: float = 2.0,
) -> PointCloud:
    """A mixture of isotropic gaussian blobs — strongly non-uniform density."""
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    centers = rng.uniform(-spread, spread, size=(n_clusters, 3))
    assignment = rng.integers(0, n_clusters, size=n)
    points = centers[assignment] + rng.normal(0.0, cluster_std, size=(n, 3))
    return PointCloud(points, copy=False)


def perturbed_pair(
    n: int,
    *,
    rng: np.random.Generator,
    transform: RigidTransform | None = None,
    noise_std: float = 0.01,
) -> tuple[PointCloud, PointCloud, RigidTransform]:
    """A cloud and its transformed, noise-perturbed copy.

    Returns ``(reference, query, true_transform)`` where
    ``query ≈ true_transform(reference)``.  Used to validate ICP: the
    estimated transform should recover ``true_transform``.
    """
    if transform is None:
        transform = RigidTransform.from_yaw(0.02, translation=(0.5, 0.1, 0.0))
    reference = gaussian_clusters(n, rng=rng)
    moved = transform.apply(reference.xyz)
    if noise_std > 0.0:
        moved = moved + rng.normal(0.0, noise_std, size=moved.shape)
    return reference, PointCloud(moved, copy=False), transform
