"""RANSAC ground-plane segmentation.

A more realistic preprocessing stage than the height threshold: fits a
plane to the dominant ground structure with RANSAC (robust to slopes
and sensor-height drift), following the spirit of the fast segmentation
pipelines the paper cites for ground removal (Zermas et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud


@dataclass(frozen=True)
class GroundPlaneFit:
    """A fitted ground plane ``normal . x = offset`` plus its inliers."""

    normal: np.ndarray
    offset: float
    inlier_fraction: float

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        """Height of each point above (+) or below (-) the plane."""
        return np.atleast_2d(points) @ self.normal - self.offset


def fit_ground_plane(
    cloud: PointCloud,
    *,
    rng: np.random.Generator | None = None,
    n_iterations: int = 64,
    inlier_tolerance: float = 0.15,
    max_tilt_deg: float = 15.0,
) -> GroundPlaneFit:
    """RANSAC plane fit constrained to near-horizontal orientations.

    Samples point triples, keeps the plane with the most points within
    ``inlier_tolerance``, rejecting candidate planes tilted more than
    ``max_tilt_deg`` from horizontal (walls must not win), and refines
    the winner with a least-squares fit over its inliers.
    """
    if len(cloud) < 3:
        raise ValueError("need at least 3 points to fit a plane")
    rng = rng or np.random.default_rng(0)
    xyz = cloud.xyz
    min_vertical = np.cos(np.deg2rad(max_tilt_deg))

    best_count = -1
    best: tuple[np.ndarray, float] | None = None
    for _ in range(n_iterations):
        triple = xyz[rng.choice(len(cloud), size=3, replace=False)]
        normal = np.cross(triple[1] - triple[0], triple[2] - triple[0])
        norm = np.linalg.norm(normal)
        if norm < 1e-12:
            continue
        normal = normal / norm
        if normal[2] < 0:
            normal = -normal
        if normal[2] < min_vertical:
            continue  # too tilted to be ground
        offset = float(normal @ triple[0])
        count = int((np.abs(xyz @ normal - offset) <= inlier_tolerance).sum())
        if count > best_count:
            best_count, best = count, (normal, offset)

    if best is None:
        raise RuntimeError("RANSAC found no near-horizontal plane")

    # Refine with least squares over the winning inliers: z = a x + b y + c.
    normal, offset = best
    inliers = np.abs(xyz @ normal - offset) <= inlier_tolerance
    pts = xyz[inliers]
    design = np.column_stack([pts[:, 0], pts[:, 1], np.ones(pts.shape[0])])
    coeffs, *_ = np.linalg.lstsq(design, pts[:, 2], rcond=None)
    refined = np.array([-coeffs[0], -coeffs[1], 1.0])
    refined /= np.linalg.norm(refined)
    refined_offset = float(coeffs[2] * refined[2])
    inlier_fraction = float(inliers.mean())
    return GroundPlaneFit(
        normal=refined, offset=refined_offset, inlier_fraction=inlier_fraction
    )


def remove_ground_ransac(
    cloud: PointCloud,
    *,
    rng: np.random.Generator | None = None,
    clearance: float = 0.3,
    **fit_kwargs,
) -> PointCloud:
    """Drop every point within ``clearance`` above the fitted ground."""
    if len(cloud) < 3:
        return cloud
    plane = fit_ground_plane(cloud, rng=rng, **fit_kwargs)
    heights = plane.signed_distance(cloud.xyz)
    return cloud.filter(heights > clearance)
