"""Voxel-grid downsampling.

Standard point-cloud decimation: space is quantized into cubic voxels
and each occupied voxel is represented by the centroid of its points.
Useful for bounding ICP cost and for density normalization before
clustering.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PointCloud


def voxel_downsample(cloud: PointCloud, voxel_size: float) -> PointCloud:
    """One centroid per occupied ``voxel_size``-sided cube."""
    if voxel_size <= 0:
        raise ValueError("voxel_size must be positive")
    if len(cloud) == 0:
        return cloud
    xyz = cloud.xyz
    keys = np.floor(xyz / voxel_size).astype(np.int64)
    # Sort by voxel key, then reduce contiguous runs to centroids.
    order = np.lexsort((keys[:, 2], keys[:, 1], keys[:, 0]))
    sorted_keys = keys[order]
    boundaries = np.flatnonzero((np.diff(sorted_keys, axis=0) != 0).any(axis=1)) + 1
    groups = np.split(order, boundaries)
    centroids = np.array([xyz[g].mean(axis=0) for g in groups])
    return PointCloud(centroids, copy=False)


def voxel_occupancy(cloud: PointCloud, voxel_size: float) -> dict[tuple[int, int, int], int]:
    """Point count per occupied voxel (diagnostics / density maps)."""
    if voxel_size <= 0:
        raise ValueError("voxel_size must be positive")
    counts: dict[tuple[int, int, int], int] = {}
    if len(cloud) == 0:
        return counts
    keys = np.floor(cloud.xyz / voxel_size).astype(np.int64)
    for key in map(tuple, keys):
        counts[key] = counts.get(key, 0) + 1
    return counts
