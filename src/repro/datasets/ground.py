"""Ground-point removal.

The paper's preprocessing step: "it is common practice to remove many of
these [ground] points using a ground threshold", taking a ~100k-point
raw frame down to ~30k useful points.  We implement the same simple
height-threshold filter (plus a robust variant that estimates the ground
height first, for scenes where the sensor height drifts).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PointCloud


def remove_ground(cloud: PointCloud, *, z_threshold: float = 0.3) -> PointCloud:
    """Drop every point at or below ``z_threshold`` meters."""
    if len(cloud) == 0:
        return cloud
    return cloud.filter(cloud.xyz[:, 2] > z_threshold)


def remove_ground_robust(
    cloud: PointCloud, *, clearance: float = 0.3, percentile: float = 5.0
) -> PointCloud:
    """Threshold relative to an estimated ground height.

    The ground height is taken as a low percentile of the z
    distribution, which is robust to a minority of below-ground noise
    returns; points within ``clearance`` of it are removed.
    """
    if len(cloud) == 0:
        return cloud
    ground_z = float(np.percentile(cloud.xyz[:, 2], percentile))
    return cloud.filter(cloud.xyz[:, 2] > ground_z + clearance)


def ground_fraction(cloud: PointCloud, *, z_threshold: float = 0.3) -> float:
    """Fraction of points the threshold filter would remove."""
    if len(cloud) == 0:
        return 0.0
    return float((cloud.xyz[:, 2] <= z_threshold).mean())
