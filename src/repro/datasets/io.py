"""Point-cloud file I/O.

Lets users feed *real* recordings (e.g. KITTI velodyne scans, which are
flat little-endian float32 ``x y z reflectance`` records) through the
same pipeline the synthetic data uses, and save generated frames for
reuse.  Formats:

* ``.npz`` / ``.npy`` — numpy arrays of shape (N, 3) or (N, 4);
* ``.bin`` — KITTI velodyne binary (float32 x, y, z, reflectance);
* ``.xyz`` — whitespace-separated ASCII, one point per line.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.geometry import PointCloud


def save_cloud(cloud: PointCloud, path: str | Path) -> None:
    """Write a cloud to ``.npz``, ``.npy``, ``.bin`` (KITTI) or ``.xyz``."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".npz":
        np.savez_compressed(path, xyz=cloud.xyz)
    elif suffix == ".npy":
        np.save(path, cloud.xyz)
    elif suffix == ".bin":
        padded = np.zeros((len(cloud), 4), dtype=np.float32)
        padded[:, :3] = cloud.xyz
        padded.tofile(path)
    elif suffix == ".xyz":
        np.savetxt(path, cloud.xyz, fmt="%.6f")
    else:
        raise ValueError(f"unsupported point-cloud format {suffix!r}")


def load_cloud(path: str | Path) -> PointCloud:
    """Read a cloud written by :func:`save_cloud` (or a KITTI scan)."""
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".npz":
        with np.load(path) as payload:
            xyz = payload["xyz"]
    elif suffix == ".npy":
        xyz = np.load(path)
    elif suffix == ".bin":
        raw = np.fromfile(path, dtype=np.float32)
        if raw.size % 4 != 0:
            raise ValueError(f"{path} is not a KITTI velodyne file (size % 4 != 0)")
        xyz = raw.reshape(-1, 4)[:, :3].astype(np.float64)
    elif suffix == ".xyz":
        xyz = np.loadtxt(path, ndmin=2)
    else:
        raise ValueError(f"unsupported point-cloud format {suffix!r}")

    xyz = np.asarray(xyz, dtype=np.float64)
    if xyz.ndim != 2 or xyz.shape[1] < 3:
        raise ValueError(f"{path} does not contain (N, >=3) points")
    return PointCloud(xyz[:, :3], copy=False)
