"""Residency eviction policies, shared by every bounded cache in the repo.

Two layers hold more state than fits their budget and must pick
victims: the per-tenant session fleet (:mod:`repro.serve.sessions`
spills idle sessions' trees to disk) and the blocked index
(:mod:`repro.kdtree.blocked` drops memory-mapped block trees).  Both
ask the same question — *which resident entry frees the most room at
the least expected cost?* — so the policies live here, behind one
:class:`~repro.registry.Registry`, and operate on any entry exposing
two attributes:

``last_active``
    Monotonic timestamp of the entry's most recent use.
``nbytes``
    Resident byte footprint of the entry.

A policy is called as ``policy(entry, now) -> sort key``; resident
idle entries are evicted in **ascending** key order until the cache is
back under budget.
"""

from __future__ import annotations

from repro.registry import Registry

__all__ = ["EVICTION"]

#: Eviction policies: ``policy(entry, now) -> sort key``; resident
#: idle entries are evicted in ascending key order.
EVICTION: Registry = Registry("eviction policy")


@EVICTION.register("lru")
def _lru_key(entry, now: float) -> float:
    """Least recently active first."""
    return entry.last_active


@EVICTION.register("cost-aware", "cost")
def _cost_key(entry, now: float) -> float:
    """Largest (idle time x resident bytes) first — FractalCloud-style
    locality economics: a big tree nobody is touching frees the most
    memory per unit of expected restore cost."""
    return -(now - entry.last_active) * float(max(entry.nbytes, 1))
