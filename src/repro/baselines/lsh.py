"""Locality-sensitive hashing for approximate kNN.

The "Approx. LSH" row of Table 1.  A classic random-projection E2LSH
scheme: ``n_tables`` hash tables, each hashing a point through
``n_projections`` quantized random projections; a query scans the union
of its matching buckets.

LSH was designed for high-dimensional data where space partitioning
trees degrade; the paper's point — reproduced by the Table 1 harness —
is that in 3D its fixed, data-oblivious partitioning is far *worse*
than a k-d tree at equal search cost (18.4% accuracy in the paper).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud
from repro.modality import UnsupportedQueryMixin
from repro.kdtree.search import PAD_INDEX, QueryResult, _top_k


@dataclass(frozen=True)
class LshConfig:
    """Random-projection LSH parameters.

    ``bucket_width`` is the quantization step ``w`` of each projection;
    small widths fragment the space (fast, inaccurate), large widths
    degenerate toward linear search.
    """

    n_tables: int = 1
    n_projections: int = 8
    bucket_width: float = 0.5
    max_candidates: int | None = None

    def __post_init__(self):
        if self.n_tables < 1:
            raise ValueError("n_tables must be positive")
        if self.n_projections < 1:
            raise ValueError("n_projections must be positive")
        if self.bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        if self.max_candidates is not None and self.max_candidates < 1:
            raise ValueError("max_candidates must be positive when given")


class LshIndex(UnsupportedQueryMixin):
    """An LSH index over a fixed reference set.

    Radius / FPS queries raise the typed
    :class:`~repro.index.protocol.UnsupportedQuery`.
    """

    name = "lsh"

    def __init__(
        self,
        reference: PointCloud | np.ndarray,
        config: LshConfig | None = None,
        *,
        rng: np.random.Generator | None = None,
    ):
        self.config = config or LshConfig()
        rng = rng or np.random.default_rng(0)
        self.points = (
            reference.xyz if isinstance(reference, PointCloud)
            else np.asarray(reference, dtype=np.float64)
        )
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError("reference must have shape (N, 3)")
        if self.points.shape[0] == 0:
            raise ValueError("reference set is empty")

        cfg = self.config
        # One (projections, offsets) pair per table.
        self._projections = rng.normal(size=(cfg.n_tables, cfg.n_projections, 3))
        self._offsets = rng.uniform(0.0, cfg.bucket_width, size=(cfg.n_tables, cfg.n_projections))
        self._tables: list[dict[tuple, np.ndarray]] = []
        for t in range(cfg.n_tables):
            keys = self._hash(self.points, t)
            table: dict[tuple, list[int]] = defaultdict(list)
            for i, key in enumerate(map(tuple, keys)):
                table[key].append(i)
            self._tables.append(
                {key: np.asarray(v, dtype=np.int64) for key, v in table.items()}
            )

    def build(self, reference: PointCloud | np.ndarray) -> "LshIndex":
        """Rebuild the hash tables over a new reference cloud; returns self."""
        self.__init__(reference, self.config)
        return self

    def stats(self) -> dict:
        return {
            "n_reference": int(self.points.shape[0]),
            "n_tables": self.config.n_tables,
            "n_projections": self.config.n_projections,
            "bucket_width": self.config.bucket_width,
            "mean_bucket_size": self.mean_bucket_size(),
        }

    def _hash(self, pts: np.ndarray, table: int) -> np.ndarray:
        cfg = self.config
        projected = pts @ self._projections[table].T + self._offsets[table]
        return np.floor(projected / cfg.bucket_width).astype(np.int64)

    def query(self, queries: PointCloud | np.ndarray, k: int) -> QueryResult:
        """Scan the union of matching buckets across all tables."""
        if k < 1:
            raise ValueError("k must be positive")
        q = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
        q = np.atleast_2d(q)
        m = q.shape[0]
        indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
        distances = np.full((m, k), np.inf)
        keys_per_table = [self._hash(q, t) for t in range(self.config.n_tables)]
        for i in range(m):
            candidates = self._candidates(keys_per_table, i)
            if candidates.size == 0:
                continue
            diffs = self.points[candidates] - q[i]
            dists = np.sqrt((diffs * diffs).sum(axis=1))
            indices[i], distances[i] = _top_k(dists, candidates, k)
        return QueryResult(indices=indices, distances=distances)

    def _candidates(self, keys_per_table: list[np.ndarray], i: int) -> np.ndarray:
        gathered = []
        for t, table in enumerate(self._tables):
            bucket = table.get(tuple(keys_per_table[t][i]))
            if bucket is not None:
                gathered.append(bucket)
        if not gathered:
            return np.empty(0, dtype=np.int64)
        candidates = np.unique(np.concatenate(gathered))
        limit = self.config.max_candidates
        if limit is not None and candidates.size > limit:
            candidates = candidates[:limit]
        return candidates

    def mean_bucket_size(self) -> float:
        """Average bucket occupancy across tables, for tuning diagnostics."""
        sizes = [b.size for table in self._tables for b in table.values()]
        return float(np.mean(sizes)) if sizes else 0.0
