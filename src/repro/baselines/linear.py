"""Exact linear (brute-force) kNN search.

The reference method of Section 2.1: every query is compared against
every reference point.  Chunked so the pairwise distance matrix never
exceeds a fixed memory budget, which keeps the 30k x 30k successive-
frame workload tractable.

This function doubles as the ground truth for all accuracy metrics.
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.search import PAD_INDEX, QueryResult


def knn_bruteforce(
    reference: PointCloud | np.ndarray,
    queries: PointCloud | np.ndarray,
    k: int,
    *,
    chunk_size: int = 1024,
) -> QueryResult:
    """Exact kNN by exhaustive distance computation.

    Parameters
    ----------
    reference, queries:
        Point sets of shapes ``(N, 3)`` and ``(M, 3)``.
    k:
        Number of neighbors; results are padded if ``k > N``.
    chunk_size:
        Queries processed per chunk (bounds peak memory at
        ``chunk_size * N`` floats).
    """
    if k < 1:
        raise ValueError("k must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    ref = reference.xyz if isinstance(reference, PointCloud) else np.asarray(reference, dtype=np.float64)
    qry = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
    qry = np.atleast_2d(qry)
    if ref.ndim != 2 or ref.shape[1] != 3 or qry.shape[1] != 3:
        raise ValueError("reference and queries must have shape (*, 3)")
    n, m = ref.shape[0], qry.shape[0]
    if n == 0:
        raise ValueError("reference set is empty")

    take = min(k, n)
    indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
    distances = np.full((m, k), np.inf)

    ref_sq = (ref * ref).sum(axis=1)
    for start in range(0, m, chunk_size):
        stop = min(start + chunk_size, m)
        block = qry[start:stop]
        # Squared distances via the expansion |q - r|^2 = |q|^2 - 2 q.r + |r|^2.
        d2 = (
            (block * block).sum(axis=1)[:, None]
            - 2.0 * block @ ref.T
            + ref_sq[None, :]
        )
        np.maximum(d2, 0.0, out=d2)
        if n > take:
            part = np.argpartition(d2, take - 1, axis=1)[:, :take]
        else:
            part = np.broadcast_to(np.arange(n), (stop - start, n)).copy()
        part_d = np.take_along_axis(d2, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        indices[start:stop, :take] = np.take_along_axis(part, order, axis=1)
        distances[start:stop, :take] = np.sqrt(np.take_along_axis(part_d, order, axis=1))

    return QueryResult(indices=indices, distances=distances)
