"""Baseline kNN search methods the paper compares against (Table 1).

* :func:`knn_bruteforce` — the exact linear search (and the ground
  truth for every accuracy measurement in the harness).
* :class:`KMeansTree` — a FLANN-style hierarchical k-means tree with
  greedy descent, the "Approx. k-means" row.
* :class:`LshIndex` — random-projection locality-sensitive hashing,
  the "Approx. LSH" row (which the paper shows collapses in 3D).
"""

from repro.baselines.grid import GridConfig, GridIndex
from repro.baselines.kmeans_tree import KMeansTree, KMeansTreeConfig
from repro.baselines.linear import knn_bruteforce
from repro.baselines.lsh import LshConfig, LshIndex

__all__ = [
    "GridConfig",
    "GridIndex",
    "KMeansTree",
    "KMeansTreeConfig",
    "LshConfig",
    "LshIndex",
    "knn_bruteforce",
]
