"""Uniform-grid (voxel hash) kNN search.

The other practical spatial index for 3D data: points are hashed into
cubic cells, and a query scans cells in expanding rings around its own
cell until the k-th best distance is closed out by the ring bound —
which makes the search *exact*.  Grids excel on uniform densities and
degrade on LiDAR's highly non-uniform frames (empty far-field rings,
overstuffed near-field cells), the trade-off the extension Table 1 row
quantifies against the k-d tree.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud
from repro.modality import UnsupportedQueryMixin
from repro.kdtree.search import PAD_INDEX, QueryResult, _insert_bounded


@dataclass(frozen=True)
class GridConfig:
    """Cell size of the hash grid.

    A good cell size puts O(k) points in a 3x3x3 neighborhood; too
    small and rings multiply, too large and cells degenerate to linear
    scans.
    """

    cell_size: float = 2.0

    def __post_init__(self):
        if self.cell_size <= 0:
            raise ValueError("cell_size must be positive")


class GridIndex(UnsupportedQueryMixin):
    """An exact expanding-ring kNN index over a voxel hash.

    Radius / FPS queries raise the typed
    :class:`~repro.index.protocol.UnsupportedQuery`.
    """

    name = "grid"

    def __init__(self, reference: PointCloud | np.ndarray, config: GridConfig | None = None):
        self.config = config or GridConfig()
        self.build(reference)

    def build(self, reference: PointCloud | np.ndarray) -> "GridIndex":
        """(Re)hash a reference cloud into the grid; returns self."""
        self.points = (
            reference.xyz if isinstance(reference, PointCloud)
            else np.asarray(reference, dtype=np.float64)
        )
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError("reference must have shape (N, 3)")
        if self.points.shape[0] == 0:
            raise ValueError("reference set is empty")
        cells = np.floor(self.points / self.config.cell_size).astype(np.int64)
        table: dict[tuple[int, int, int], list[int]] = defaultdict(list)
        for i, key in enumerate(map(tuple, cells)):
            table[key].append(i)
        self._cells = {key: np.asarray(v, dtype=np.int64) for key, v in table.items()}
        return self

    def stats(self) -> dict:
        n_cells, mean_occ, max_occ = self.occupancy_stats()
        return {
            "n_reference": int(self.points.shape[0]),
            "cell_size": self.config.cell_size,
            "n_cells": n_cells,
            "mean_cell_occupancy": mean_occ,
            "max_cell_occupancy": max_occ,
        }

    # ------------------------------------------------------------------
    def query(self, queries: PointCloud | np.ndarray, k: int) -> QueryResult:
        """Exact kNN by expanding-ring cell scans."""
        if k < 1:
            raise ValueError("k must be positive")
        q = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
        q = np.atleast_2d(q)
        m = q.shape[0]
        indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
        distances = np.full((m, k), np.inf)
        for i in range(m):
            idx, dst = self._query_single(q[i], k)
            indices[i, : len(idx)] = idx
            distances[i, : len(dst)] = dst
        return QueryResult(indices=indices, distances=distances)

    def _query_single(self, point: np.ndarray, k: int) -> tuple[list[int], list[float]]:
        size = self.config.cell_size
        home = tuple(np.floor(point / size).astype(np.int64))
        best_idx: list[int] = []
        best_dst: list[float] = []
        ring = 0
        # The largest possible ring: enough to cover the whole data.
        max_ring = 1 + int(
            max(np.abs(self.points / size - np.asarray(home)).max(axis=0).max(), 1)
        )
        while ring <= max_ring:
            # Once k candidates are held, a further ring can only help if
            # its nearest face is closer than the current k-th distance.
            if len(best_dst) == k and (ring - 1) * size > best_dst[-1]:
                break
            for key in self._ring_cells(home, ring):
                members = self._cells.get(key)
                if members is None:
                    continue
                diffs = self.points[members] - point
                dists = np.sqrt((diffs * diffs).sum(axis=1))
                for ci, cd in zip(members, dists):
                    _insert_bounded(best_idx, best_dst, int(ci), float(cd), k)
            ring += 1
        return best_idx, best_dst

    @staticmethod
    def _ring_cells(home: tuple[int, int, int], ring: int):
        """Cells at Chebyshev distance exactly ``ring`` from ``home``."""
        hx, hy, hz = home
        if ring == 0:
            yield home
            return
        span = range(-ring, ring + 1)
        for dx in span:
            for dy in span:
                for dz in span:
                    if max(abs(dx), abs(dy), abs(dz)) == ring:
                        yield (hx + dx, hy + dy, hz + dz)

    def occupancy_stats(self) -> tuple[int, float, int]:
        """(n_cells, mean points/cell, max points/cell) — balance diagnostics."""
        sizes = [v.size for v in self._cells.values()]
        return len(sizes), float(np.mean(sizes)), int(max(sizes))
