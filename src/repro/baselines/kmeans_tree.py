"""Hierarchical k-means tree (FLANN-style) approximate kNN.

The "Approx. k-means" row of Table 1.  The search space is recursively
partitioned into ``branching`` clusters by Lloyd's algorithm until the
partitions shrink below a leaf size; a query greedily descends to the
nearest cluster at every level and scans the leaf it reaches.

The paper finds this method slightly more accurate than the k-d tree
(about +5.6% on KITTI) but more than twice as slow to build and search —
the harness reproduces both observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud
from repro.modality import UnsupportedQueryMixin
from repro.kdtree.search import PAD_INDEX, QueryResult, _top_k


@dataclass(frozen=True)
class KMeansTreeConfig:
    """Parameters of the hierarchical k-means partition."""

    branching: int = 8
    leaf_size: int = 256
    max_lloyd_iterations: int = 10

    def __post_init__(self):
        if self.branching < 2:
            raise ValueError("branching must be at least 2")
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        if self.max_lloyd_iterations < 1:
            raise ValueError("max_lloyd_iterations must be positive")


class _Node:
    __slots__ = ("centers", "children", "members")

    def __init__(self):
        self.centers: np.ndarray | None = None   # (branching, 3) for internal
        self.children: list["_Node"] | None = None
        self.members: np.ndarray | None = None   # point indices for leaves


class KMeansTree(UnsupportedQueryMixin):
    """A k-means tree index over a fixed reference set.

    Radius / FPS queries raise the typed
    :class:`~repro.index.protocol.UnsupportedQuery`.
    """

    name = "kmeans"

    def __init__(
        self,
        reference: PointCloud | np.ndarray,
        config: KMeansTreeConfig | None = None,
        *,
        rng: np.random.Generator | None = None,
    ):
        self.config = config or KMeansTreeConfig()
        self._rng = rng or np.random.default_rng(0)
        self.points = (
            reference.xyz if isinstance(reference, PointCloud)
            else np.asarray(reference, dtype=np.float64)
        )
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise ValueError("reference must have shape (N, 3)")
        if self.points.shape[0] == 0:
            raise ValueError("reference set is empty")
        self.n_lloyd_updates = 0  # build-cost counter (distance evaluations)
        self._root = self._build(np.arange(self.points.shape[0], dtype=np.int64))

    def build(self, reference: PointCloud | np.ndarray) -> "KMeansTree":
        """Re-cluster a new reference cloud; returns self."""
        self.__init__(reference, self.config)
        return self

    def stats(self) -> dict:
        sizes = self.leaf_sizes()
        return {
            "n_reference": int(self.points.shape[0]),
            "branching": self.config.branching,
            "n_leaves": int(sizes.size),
            "mean_leaf_size": float(sizes.mean()) if sizes.size else 0.0,
            "n_lloyd_updates": int(self.n_lloyd_updates),
        }

    # ------------------------------------------------------------------
    def _build(self, members: np.ndarray) -> _Node:
        node = _Node()
        cfg = self.config
        if members.size <= cfg.leaf_size or members.size <= cfg.branching:
            node.members = members
            return node

        centers, assignment = self._lloyd(self.points[members])
        node.centers = centers
        node.children = []
        for c in range(centers.shape[0]):
            sub = members[assignment == c]
            if sub.size == 0:
                # Guard against an empty cluster: give it an empty leaf.
                child = _Node()
                child.members = sub
            elif sub.size == members.size:
                # Degenerate clustering (all points identical): stop.
                child = _Node()
                child.members = sub
            else:
                child = self._build(sub)
            node.children.append(child)
        return node

    def _lloyd(self, pts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Standard Lloyd iterations; returns (centers, assignment)."""
        cfg = self.config
        k = min(cfg.branching, pts.shape[0])
        seed_idx = self._rng.choice(pts.shape[0], size=k, replace=False)
        centers = pts[seed_idx].copy()
        assignment = np.zeros(pts.shape[0], dtype=np.int64)
        for _ in range(cfg.max_lloyd_iterations):
            d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            self.n_lloyd_updates += d2.size
            new_assignment = d2.argmin(axis=1)
            if (new_assignment == assignment).all() and _ > 0:
                break
            assignment = new_assignment
            for c in range(k):
                mask = assignment == c
                if mask.any():
                    centers[c] = pts[mask].mean(axis=0)
        return centers, assignment

    # ------------------------------------------------------------------
    def query(self, queries: PointCloud | np.ndarray, k: int) -> QueryResult:
        """Greedy-descent approximate search (one leaf per query)."""
        if k < 1:
            raise ValueError("k must be positive")
        q = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries, dtype=np.float64)
        q = np.atleast_2d(q)
        m = q.shape[0]
        indices = np.full((m, k), PAD_INDEX, dtype=np.int64)
        distances = np.full((m, k), np.inf)
        for i in range(m):
            leaf = self._descend(q[i])
            members = leaf.members
            if members is None or members.size == 0:
                continue
            diffs = self.points[members] - q[i]
            dists = np.sqrt((diffs * diffs).sum(axis=1))
            indices[i], distances[i] = _top_k(dists, members, k)
        return QueryResult(indices=indices, distances=distances)

    def _descend(self, point: np.ndarray) -> _Node:
        node = self._root
        while node.children is not None:
            d2 = ((node.centers - point) ** 2).sum(axis=1)
            child = node.children[int(d2.argmin())]
            if child.members is not None and child.members.size == 0:
                # Empty cluster: fall back to the best non-empty child.
                order = np.argsort(d2, kind="stable")
                for c in order:
                    candidate = node.children[int(c)]
                    if candidate.members is None or candidate.members.size:
                        child = candidate
                        break
            node = child
        return node

    def leaf_sizes(self) -> np.ndarray:
        """Points per leaf, for balance diagnostics."""
        sizes = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.children is None:
                sizes.append(0 if node.members is None else int(node.members.size))
            else:
                stack.extend(node.children)
        return np.array(sizes, dtype=np.int64)
