"""Surface normal estimation and FPS downsampling over the query layer.

The first consumer of the radius/sampling query modalities.  Normal
estimation is the canonical radius-search workload in a LiDAR stack:
for every point, gather its neighborhood ball, fit a plane by PCA of
the neighborhood covariance, and take the smallest-eigenvalue
eigenvector as the surface normal (the curvature proxy is the standard
ratio of that eigenvalue to the trace).  Everything is batched — one
:meth:`~repro.index.protocol.NeighborIndex.query_radius` call for all
points, covariance moments accumulated with ``bincount`` over the CSR
pairs, one vectorized ``eigh`` over the valid rows — so the cost
profile follows the engine, not a Python loop.

:func:`downsample_fps` is the sampling-side consumer: pick ``m``
well-spread representatives with farthest point sampling through
:meth:`~repro.index.protocol.NeighborIndex.sample` (build-fused when
the backend is a k-d tree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import PointCloud


def _as_xyz(cloud) -> np.ndarray:
    xyz = cloud.xyz if isinstance(cloud, PointCloud) else np.asarray(
        cloud, dtype=np.float64
    )
    xyz = np.asarray(xyz, dtype=np.float64)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError("cloud must have shape (N, 3)")
    return xyz


@dataclass(frozen=True)
class SurfaceNormals:
    """Per-point plane fits from radius neighborhoods.

    Rows with fewer than 3 neighbors (the point itself counts) cannot
    fix a plane; their ``normals`` row is NaN and ``curvature`` is NaN.
    ``n_neighbors`` reports each row's neighborhood size, so callers
    can filter or re-query sparse regions.
    """

    normals: np.ndarray      # (N, 3) unit normals; NaN where underdetermined
    curvature: np.ndarray    # (N,) lambda_0 / trace in [0, 1/3]; NaN likewise
    n_neighbors: np.ndarray  # (N,) int64 ball occupancy per point

    @property
    def n_valid(self) -> int:
        return int(np.count_nonzero(~np.isnan(self.curvature)))


def estimate_normals(
    cloud,
    *,
    radius: float,
    max_neighbors: int | None = None,
    index=None,
    viewpoint=None,
) -> SurfaceNormals:
    """PCA plane-fit normals from one batched radius query.

    ``index`` may be any built :class:`~repro.index.protocol.
    NeighborIndex` with ``supports_radius`` (reuse the tree the
    pipeline already has); by default a ``kd-exact`` index is built
    over the cloud.  ``max_neighbors`` caps each neighborhood at its
    nearest that many — the usual defense against overdense patches.
    ``viewpoint`` (default the origin, where the sensor sits) orients
    every normal toward the sensor, making signs deterministic.
    """
    xyz = _as_xyz(cloud)
    n = xyz.shape[0]
    if index is None:
        from repro.index import make_index

        index = make_index("kd-exact", xyz)
    view = (
        np.zeros(3) if viewpoint is None
        else np.asarray(viewpoint, dtype=np.float64)
    )
    result = index.query_radius(xyz, radius, max_neighbors=max_neighbors)
    counts = result.counts()
    row_of_pair = np.repeat(np.arange(n, dtype=np.int64), counts)
    nbr = xyz[result.indices]

    # First and second moments per row via bincount — reduceat would
    # mis-handle empty rows (a zero-length segment yields a[start]).
    sums = np.empty((n, 3))
    for j in range(3):
        sums[:, j] = np.bincount(row_of_pair, weights=nbr[:, j], minlength=n)
    moments = {}
    for a, b in ((0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2)):
        moments[a, b] = np.bincount(
            row_of_pair, weights=nbr[:, a] * nbr[:, b], minlength=n
        )

    valid = counts >= 3
    normals = np.full((n, 3), np.nan)
    curvature = np.full(n, np.nan)
    if valid.any():
        c = counts[valid].astype(np.float64)
        mean = sums[valid] / c[:, None]
        cov = np.empty((int(valid.sum()), 3, 3))
        for a, b in ((0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2)):
            cov_ab = moments[a, b][valid] / c - mean[:, a] * mean[:, b]
            cov[:, a, b] = cov_ab
            cov[:, b, a] = cov_ab
        eigvals, eigvecs = np.linalg.eigh(cov)
        fitted = eigvecs[:, :, 0]  # smallest-eigenvalue eigenvector
        trace = eigvals.sum(axis=1)
        lam0 = np.maximum(eigvals[:, 0], 0.0)
        with np.errstate(invalid="ignore", divide="ignore"):
            curv = np.where(trace > 0.0, lam0 / trace, 0.0)
        # Orient toward the viewpoint; exactly-tangent rows keep the
        # eigh sign (deterministic for a given input).
        toward = view[None, :] - xyz[valid]
        flip = (fitted * toward).sum(axis=1) < 0.0
        fitted[flip] *= -1.0
        normals[valid] = fitted
        curvature[valid] = curv
    return SurfaceNormals(
        normals=normals,
        curvature=curvature,
        n_neighbors=counts,
    )


def downsample_fps(cloud, m: int, *, start: int = 0, index=None) -> np.ndarray:
    """``m`` well-spread point indices by farthest point sampling.

    Routes through ``index.sample`` when an index with
    ``supports_sample`` is supplied (a k-d backend runs the build-fused
    FuseFPS path); otherwise runs :func:`repro.query.fps.sample_fps`
    directly over the cloud, which builds the flat tree it prunes with.
    """
    if index is not None and getattr(index, "supports_sample", False):
        return index.sample(m, start=start)
    from repro.query.fps import sample_fps

    return sample_fps(_as_xyz(cloud), m, start=start)
