"""Multi-object tracking over segmented clusters.

The paper's motivating task: "perceiving the dynamics of moving objects
in the environment and estimating their relative position."  The
tracker maintains a set of :class:`Track` objects, associates each new
frame's clusters to them by nearest predicted centroid, and estimates
per-object velocity from the smoothed position history — the signal a
planner consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.perception.clustering import Cluster


@dataclass
class Track:
    """One tracked object."""

    track_id: int
    positions: list[np.ndarray] = field(default_factory=list)
    times: list[float] = field(default_factory=list)
    last_cluster: Cluster | None = None
    missed_frames: int = 0

    @property
    def position(self) -> np.ndarray:
        return self.positions[-1]

    @property
    def age(self) -> int:
        """Number of frames this track has been observed."""
        return len(self.positions)

    def velocity(self, *, window: int = 3) -> np.ndarray:
        """Mean velocity over the last ``window`` observations (m/s)."""
        if len(self.positions) < 2:
            return np.zeros(3)
        take = min(window + 1, len(self.positions))
        pos = np.asarray(self.positions[-take:])
        t = np.asarray(self.times[-take:])
        dt = t[-1] - t[0]
        if dt <= 0:
            return np.zeros(3)
        return (pos[-1] - pos[0]) / dt

    def predict(self, time: float) -> np.ndarray:
        """Constant-velocity position prediction at ``time``."""
        return self.position + self.velocity() * (time - self.times[-1])

    @property
    def speed(self) -> float:
        return float(np.linalg.norm(self.velocity()))


class MultiObjectTracker:
    """Greedy nearest-prediction data association with track management.

    Parameters
    ----------
    gate_distance:
        Maximum distance between a track's predicted position and a
        cluster centroid for an association to be accepted.
    max_missed:
        Tracks unseen for this many consecutive frames are dropped.
    min_age_confirmed:
        Frames of observation before a track counts as confirmed
        (suppresses one-frame noise blobs in :meth:`confirmed_tracks`).
    """

    def __init__(
        self,
        *,
        gate_distance: float = 3.0,
        max_missed: int = 2,
        min_age_confirmed: int = 2,
    ):
        if gate_distance <= 0:
            raise ValueError("gate_distance must be positive")
        if max_missed < 0:
            raise ValueError("max_missed must be non-negative")
        if min_age_confirmed < 1:
            raise ValueError("min_age_confirmed must be positive")
        self.gate_distance = gate_distance
        self.max_missed = max_missed
        self.min_age_confirmed = min_age_confirmed
        self.tracks: list[Track] = []
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    def update(self, clusters: list[Cluster], time: float) -> list[Track]:
        """Ingest one frame's clusters; returns the live track list."""
        unmatched = list(range(len(clusters)))
        # Greedy association: closest (track, cluster) pairs first.
        pairs: list[tuple[float, int, int]] = []
        for ti, track in enumerate(self.tracks):
            predicted = track.predict(time)
            for ci in unmatched:
                gap = float(np.linalg.norm(clusters[ci].centroid - predicted))
                if gap <= self.gate_distance:
                    pairs.append((gap, ti, ci))
        pairs.sort()

        used_tracks: set[int] = set()
        used_clusters: set[int] = set()
        for gap, ti, ci in pairs:
            if ti in used_tracks or ci in used_clusters:
                continue
            used_tracks.add(ti)
            used_clusters.add(ci)
            track = self.tracks[ti]
            track.positions.append(clusters[ci].centroid)
            track.times.append(time)
            track.last_cluster = clusters[ci]
            track.missed_frames = 0

        # Unassociated tracks age out; unassociated clusters spawn tracks.
        for ti, track in enumerate(self.tracks):
            if ti not in used_tracks:
                track.missed_frames += 1
        self.tracks = [t for t in self.tracks if t.missed_frames <= self.max_missed]
        for ci, cluster in enumerate(clusters):
            if ci not in used_clusters:
                track = Track(track_id=next(self._ids))
                track.positions.append(cluster.centroid)
                track.times.append(time)
                track.last_cluster = cluster
                self.tracks.append(track)
        return self.tracks

    def confirmed_tracks(self) -> list[Track]:
        """Tracks observed long enough to be trusted."""
        return [t for t in self.tracks if t.age >= self.min_age_confirmed]

    def moving_tracks(self, *, min_speed: float = 1.0) -> list[Track]:
        """Confirmed tracks moving faster than ``min_speed`` m/s."""
        return [t for t in self.confirmed_tracks() if t.speed >= min_speed]
