"""Euclidean clustering of point clouds.

Groups points whose mutual distance is below a tolerance into object
candidates — the segmentation step that follows ground removal in a
LiDAR perception stack.  Implemented as connected components over a
voxel-grid hash: points are binned at the tolerance scale, and bins are
joined with their neighbors by union-find, which keeps the whole pass
O(N) instead of the naive O(N^2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Aabb, PointCloud


@dataclass(frozen=True)
class Cluster:
    """One segmented object candidate."""

    indices: np.ndarray
    centroid: np.ndarray
    bounds: Aabb

    @property
    def n_points(self) -> int:
        return int(self.indices.size)

    @property
    def footprint(self) -> tuple[float, float]:
        """(length, width) of the axis-aligned ground footprint."""
        extent = self.bounds.extent
        return float(max(extent[0], extent[1])), float(min(extent[0], extent[1]))


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def euclidean_clusters(
    cloud: PointCloud,
    *,
    tolerance: float = 0.7,
    min_points: int = 10,
    max_points: int | None = None,
) -> list[Cluster]:
    """Segment a cloud into clusters of mutually nearby points.

    Two points belong to the same cluster when connected by a chain of
    points with consecutive gaps ``<= tolerance`` (up to the grid
    quantization: bins of side ``tolerance`` joined over a 3x3x3
    neighborhood, the usual practical approximation).  Clusters smaller
    than ``min_points`` (stray returns) or larger than ``max_points``
    (unsplit walls) are discarded.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    if min_points < 1:
        raise ValueError("min_points must be positive")
    n = len(cloud)
    if n == 0:
        return []

    xyz = cloud.xyz
    bins = np.floor(xyz / tolerance).astype(np.int64)
    bin_ids: dict[tuple[int, int, int], int] = {}
    point_bin = np.empty(n, dtype=np.int64)
    for i, key in enumerate(map(tuple, bins)):
        if key not in bin_ids:
            bin_ids[key] = len(bin_ids)
        point_bin[i] = bin_ids[key]

    # Union neighboring occupied bins (27-neighborhood).
    uf = _UnionFind(len(bin_ids))
    offsets = [
        (dx, dy, dz)
        for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ]
    for key, bid in bin_ids.items():
        for off in offsets:
            neighbor = (key[0] + off[0], key[1] + off[1], key[2] + off[2])
            other = bin_ids.get(neighbor)
            if other is not None:
                uf.union(bid, other)

    roots = np.array([uf.find(int(b)) for b in point_bin])
    clusters: list[Cluster] = []
    for root in np.unique(roots):
        members = np.flatnonzero(roots == root)
        if members.size < min_points:
            continue
        if max_points is not None and members.size > max_points:
            continue
        pts = xyz[members]
        clusters.append(
            Cluster(
                indices=members,
                centroid=pts.mean(axis=0),
                bounds=Aabb(pts.min(axis=0), pts.max(axis=0)),
            )
        )
    clusters.sort(key=lambda c: -c.n_points)
    return clusters
