"""Perception layer: the application the paper accelerates kNN *for*.

Section 1 of the paper motivates QuickNN with LiDAR perception —
detecting obstacles, estimating the motion of moving objects, and
separating them from the static surroundings, all built on
nearest-neighbor primitives.  This package closes that loop end to end:

* :mod:`repro.perception.clustering` — Euclidean clustering of
  non-ground points into object candidates (grid-hashed connected
  components, the standard segmentation step after ground removal);
* :mod:`repro.perception.tracker` — a multi-object tracker that
  associates clusters across frames and estimates per-object velocity
  from successive positions, the "perceiving the dynamics of moving
  objects" task of the paper's introduction;
* :mod:`repro.perception.normals` — PCA surface normals from batched
  radius queries and FPS downsampling, the first consumer of the
  non-kNN query modalities behind :class:`~repro.index.protocol.
  NeighborIndex`.
"""

from repro.perception.clustering import Cluster, euclidean_clusters
from repro.perception.normals import (
    SurfaceNormals,
    downsample_fps,
    estimate_normals,
)
from repro.perception.tracker import MultiObjectTracker, Track

__all__ = [
    "Cluster",
    "MultiObjectTracker",
    "SurfaceNormals",
    "Track",
    "downsample_fps",
    "estimate_normals",
    "euclidean_clusters",
]
