"""Query-modality capability flags and the typed ``UnsupportedQuery``.

Standalone on purpose: backends live under ``repro.kdtree`` and
``repro.baselines`` while the :class:`~repro.index.NeighborIndex`
protocol lives under ``repro.index`` (whose package import populates
the adapter registry, which imports the backends).  This module has no
repro-internal imports, so every backend can take the mixin without a
cycle; :mod:`repro.index.protocol` re-exports everything here as the
public surface.

The contract: a backend either answers a modality natively (flag True,
name recorded via :func:`declare_support`) or keeps the method and
raises :class:`UnsupportedQuery` — never ``AttributeError``, never a
silent wrong answer.  The error message lists the backends that do
support the modality, mirroring the registry's unknown-name errors.
"""

from __future__ import annotations


class UnsupportedQuery(TypeError):
    """A backend was asked for a query modality it does not implement.

    Raised (never ``AttributeError``) by every backend whose
    ``supports_<modality>`` flag is False; the message names the
    backends that do support the modality, mirroring the registry's
    unknown-name errors.
    """

    def __init__(self, backend: str, modality: str):
        supported = supporting_backends(modality)
        listing = ", ".join(supported) if supported else "none"
        super().__init__(
            f"index {backend!r} does not support {modality} queries "
            f"(supported by: {listing})"
        )
        self.backend = backend
        self.modality = modality


#: modality name -> canonical backend names answering it natively.
_MODALITY_SUPPORT: dict[str, set[str]] = {"radius": set(), "sample": set()}


def declare_support(modality: str, *names: str) -> None:
    """Record that ``names`` answer ``modality`` natively.

    Adapters call this at registration time; the sets feed the
    :class:`UnsupportedQuery` message and :func:`supporting_backends`.
    """
    _MODALITY_SUPPORT.setdefault(modality, set()).update(names)


def supporting_backends(modality: str) -> list[str]:
    """Sorted canonical names of backends supporting ``modality``."""
    return sorted(_MODALITY_SUPPORT.get(modality, ()))


class UnsupportedQueryMixin:
    """Default refusals for backends without the extra modalities.

    Mix into any :class:`~repro.index.NeighborIndex` implementation to
    get the capability flags (False) and uniformly raising
    ``query_radius`` / ``sample`` — the conformance suite in
    ``tests/index`` checks every registered backend behaves exactly
    this way or answers for real.
    """

    supports_radius = False
    supports_sample = False

    def query_radius(self, queries, radius: float, *,
                     max_neighbors: int | None = None):
        raise UnsupportedQuery(self.name, "radius")

    def sample(self, m: int, *, start: int = 0):
        raise UnsupportedQuery(self.name, "sample")
