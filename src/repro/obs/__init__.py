"""Unified observability: metrics registry, phase timers, trace export.

Every instrumented layer of the reproduction — the batched query
engine, the DRAM and gather-cache simulators, the ICP loop, the
experiment harness — emits into one process-wide registry through this
package::

    import repro.obs as obs

    registry = obs.enable(trace=True)      # observability on
    ...                                    # run instrumented work
    registry.as_dict()                     # {"engine.approx.queries": ..., ...}
    obs.write_chrome_trace("out.trace.json", registry)
    obs.disable()                          # back to the zero-cost no-op

Observability is *off* by default: the active registry starts as a
:class:`NullRegistry` whose operations are shared no-ops, so the
instrumentation's cost with profiling disabled is a few attribute
lookups per batch.  See ``docs/observability.md`` for the metric
naming scheme and the profiling workflow.
"""

from repro.obs.export import (
    chrome_trace,
    profile_payload,
    prometheus_text,
    write_chrome_trace,
    write_profile,
    write_prometheus,
)
from repro.obs.registry import (
    Counter,
    Distribution,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    get_registry,
    set_registry,
    use_registry,
)

__all__ = [
    "Counter",
    "Distribution",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "chrome_trace",
    "disable",
    "enable",
    "get_registry",
    "profile_payload",
    "prometheus_text",
    "set_registry",
    "use_registry",
    "write_chrome_trace",
    "write_profile",
    "write_prometheus",
]
