"""The metrics registry: counters, gauges, distributions, and spans.

One process-wide *active registry* receives everything the
instrumented layers emit.  It starts life as a :class:`NullRegistry`
whose every operation is a no-op — instrumentation left in hot paths
costs a handful of attribute lookups per *batch*, never per element —
and is swapped for a live :class:`MetricsRegistry` by :func:`enable`
(the ``quicknn-experiments --profile`` / ``--trace`` flags do exactly
this).

Metric names are hierarchical dotted paths with a subsystem prefix:
``dram.bytes``, ``cache.read_gather.flushes``,
``engine.exact.bucket_scans``, ``icp.rms`` — see
``docs/observability.md`` for the full naming scheme.  Four metric
kinds cover the repo's needs:

* **counter** — monotonically accumulated totals (``inc``),
* **gauge** — last-written value (``set``),
* **distribution** — streaming summary (count / total / mean / min /
  max / last) of observed values (``observe``),
* **histogram** — a distribution that additionally samples a bounded
  reservoir so it can report percentiles (``percentile(95)``, and
  ``p50``/``p90``/``p95``/``p99`` in ``as_dict()``) — the serving
  layer's latency metrics use this kind.

Spans come in two flavors.  ``timer(name)`` is a context manager that
observes the elapsed seconds into the ``<name>.seconds`` distribution.
``phase(name)`` does the same and *additionally* records a Chrome
``trace_event`` span (when the registry was created with
``trace=True``), so nested phases render as a flame chart in
``chrome://tracing`` / Perfetto.  Trace events carry the recording
process's real pid and native thread id, so spans from different
processes land on separate tracks when merged.  ``phase(name,
args={...})`` attaches arguments to the span — the serving layer uses
this to stamp request ids onto every stage of a request's fan-out.
``sample(name, value)`` observes a distribution and, when tracing,
also emits a trace *counter* track — used for per-iteration
convergence curves.

Thread-safety: ``Distribution.observe`` and ``Histogram.observe``
mutate several fields per observation, so both take a per-instrument
lock — the serving layer's replica threads hammer them concurrently.
``Counter.inc`` / ``Gauge.set`` stay lock-free: a single in-place
update whose worst interleaving loses one increment, which the repo's
single-writer hot paths never hit (the serving coordinator serializes
its own metric writes).  The :class:`NullRegistry` fast path is
untouched — disabled instrumentation still costs only attribute
lookups.

Cross-process aggregation: a live registry can serialize its complete
state (:meth:`MetricsRegistry.snapshot`), emit the *changes since its
last flush* (:meth:`MetricsRegistry.flush_delta`), and fold another
registry's snapshot or delta into itself
(:meth:`MetricsRegistry.merge_from`).  The serving layer's worker
processes run their own live registries and piggyback ``flush_delta``
payloads on every result message; the coordinator merges them, so
machine-wide ``engine.*`` truth survives the process boundary.  See
``docs/observability.md`` ("Cross-process aggregation") for the
payload layout and merge semantics.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Distribution:
    """Streaming summary of a series of observations.

    ``observe`` updates five fields; a per-instrument lock keeps
    concurrent observers (the serving layer's replica threads) from
    interleaving a torn summary.
    """

    __slots__ = ("name", "count", "total", "min", "max", "last", "_lock")
    kind = "distribution"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """Summary as plain scalars (no observations when empty)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }

    # -- cross-process protocol ----------------------------------------
    def state(self) -> dict:
        """Full-fidelity serializable state (JSON/pickle-safe)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }

    def merge(self, entry: dict) -> None:
        """Fold a :meth:`state`-shaped summary (or delta) into this one.

        ``count``/``total`` accumulate; ``min``/``max`` combine
        order-independently; ``last`` is last-merged-wins.
        """
        add = int(entry.get("count", 0))
        if add == 0:
            return
        with self._lock:
            self.count += add
            self.total += float(entry.get("total", 0.0))
            other_min = float(entry.get("min", float("inf")))
            other_max = float(entry.get("max", float("-inf")))
            if other_min < self.min:
                self.min = other_min
            if other_max > self.max:
                self.max = other_max
            self.last = float(entry.get("last", self.last))


class Histogram:
    """A distribution that can also answer percentile queries.

    Keeps the same streaming summary as :class:`Distribution` plus a
    bounded reservoir (algorithm R with a per-name deterministic seed),
    so ``percentile(95)`` stays O(reservoir) no matter how many values
    were observed.  Used where tail behavior is the point — the serving
    layer's latency metrics (``serve.latency.*``) report p50/p95/p99
    through this kind.

    For the cross-process delta protocol the histogram additionally
    buffers observations since the last :meth:`drain_pending` into a
    second bounded reservoir, so a flush ships representative raw
    samples (plus the exact count they stand for) instead of the whole
    observation stream.
    """

    __slots__ = ("name", "count", "total", "min", "max", "last",
                 "_reservoir", "_rng", "_lock", "_pending", "_pending_seen")
    kind = "histogram"

    #: Reservoir capacity; percentile error is sampling error over this
    #: many points, plenty for p99 at the serving layer's volumes.
    RESERVOIR_SIZE = 4096

    #: The percentiles ``as_dict`` reports (the serving layer's catalog).
    REPORTED_PERCENTILES = (50, 90, 95, 99)

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0
        self._reservoir: list[float] = []
        self._rng = random.Random(name)
        self._lock = threading.Lock()
        self._pending: list[float] = []
        self._pending_seen = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.last = value
            if len(self._reservoir) < self.RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.RESERVOIR_SIZE:
                    self._reservoir[slot] = value
            # Same algorithm R over the flush window, feeding flush_delta.
            self._pending_seen += 1
            if len(self._pending) < self.RESERVOIR_SIZE:
                self._pending.append(value)
            else:
                slot = self._rng.randrange(self._pending_seen)
                if slot < self.RESERVOIR_SIZE:
                    self._pending[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the sampled observations."""
        with self._lock:
            data = sorted(self._reservoir)
        if not data:
            return 0.0
        if len(data) == 1:
            return data[0]
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def as_dict(self) -> dict:
        """Summary plus the reported percentiles (``p50`` … ``p99``)."""
        if self.count == 0:
            return {"count": 0}
        out = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }
        with self._lock:
            data = sorted(self._reservoir)
        for q in self.REPORTED_PERCENTILES:
            pos = (q / 100.0) * (len(data) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(data) - 1)
            frac = pos - lo
            out[f"p{q}"] = data[lo] * (1.0 - frac) + data[hi] * frac
        return out

    # -- cross-process protocol ----------------------------------------
    def state(self) -> dict:
        """Full-fidelity serializable state, reservoir included."""
        if self.count == 0:
            return {"count": 0}
        with self._lock:
            samples = list(self._reservoir)
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "samples": samples,
        }

    def drain_pending(self) -> tuple[list[float], int]:
        """Samples buffered since the last drain, and the count they stand
        for; resets the flush window."""
        with self._lock:
            samples, self._pending = self._pending, []
            seen, self._pending_seen = self._pending_seen, 0
        return samples, seen

    def merge(self, entry: dict) -> None:
        """Fold a :meth:`state`/delta summary plus its samples into this one.

        The summary fields merge exactly (counts and totals add, the
        extremes combine).  The reservoir merge is a weighted union: the
        incoming samples stand for ``entry["count"]`` observations, the
        resident reservoir for the prior count, and the merged reservoir
        keeps a proportional draw from each side — approximate in the
        same way reservoir percentiles already are.
        """
        add = int(entry.get("count", 0))
        if add == 0:
            return
        samples = [float(v) for v in entry.get("samples", [])]
        with self._lock:
            self.count += add
            self.total += float(entry.get("total", 0.0))
            other_min = float(entry.get("min", float("inf")))
            other_max = float(entry.get("max", float("-inf")))
            if other_min < self.min:
                self.min = other_min
            if other_max > self.max:
                self.max = other_max
            self.last = float(entry.get("last", self.last))
            if not samples:
                return
            if len(self._reservoir) + len(samples) <= self.RESERVOIR_SIZE:
                self._reservoir.extend(samples)
                return
            # Proportional draw: keep RESERVOIR_SIZE items, split by the
            # observation weight each side represents.
            size = self.RESERVOIR_SIZE
            take_new = min(
                len(samples), max(1, round(size * add / self.count))
            )
            take_old = min(len(self._reservoir), size - take_new)
            kept_old = (
                self._reservoir if len(self._reservoir) == take_old
                else self._rng.sample(self._reservoir, take_old)
            )
            kept_new = (
                samples if len(samples) == take_new
                else self._rng.sample(samples, take_new)
            )
            self._reservoir = list(kept_old) + list(kept_new)


class _Span:
    """Context manager timing one region; optionally traced."""

    __slots__ = ("_registry", "name", "cat", "args", "_traced", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, *,
                 traced: bool, args: dict | None = None):
        self._registry = registry
        self.name = name
        self.cat = name.split(".", 1)[0]
        self.args = args
        self._traced = traced and registry.trace_enabled
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        reg = self._registry
        reg.distribution(f"{self.name}.seconds").observe(end - self._start)
        if self._traced:
            event = {
                "name": self.name,
                "cat": self.cat,
                "ph": "X",
                "ts": (self._start - reg._t0) * 1e6,
                "dur": (end - self._start) * 1e6,
                "pid": os.getpid(),
                "tid": threading.get_native_id(),
            }
            if self.args is not None:
                event["args"] = self.args
            reg._events.append(event)
        return False


class MetricsRegistry:
    """A live registry: metrics accumulate, spans time, traces record.

    ``process_label`` names this process in merged Chrome traces
    (worker processes set it to ``quicknn-worker-<id>``).
    """

    enabled = True

    def __init__(self, *, trace: bool = False,
                 process_label: str = "quicknn-repro"):
        self.trace_enabled = trace
        self.process_label = process_label
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._distributions: dict[str, Distribution] = {}
        self._histograms: dict[str, Histogram] = {}
        self._events: list[dict] = []
        self._t0 = time.perf_counter()
        # Cross-process bookkeeping: per-pid labels of merged registries
        # and the flush baselines of the delta protocol.
        self._process_labels: dict[int, str] = {}
        self._flushed_counters: dict[str, float] = {}
        self._flushed_gauges: dict[str, float] = {}
        self._flushed_dists: dict[str, tuple[int, float]] = {}
        self._flushed_hists: dict[str, tuple[int, float]] = {}
        self._events_flushed = 0

    # -- metric accessors (get-or-create) ------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def distribution(self, name: str) -> Distribution:
        metric = self._distributions.get(name)
        if metric is None:
            metric = self._distributions[name] = Distribution(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- timing --------------------------------------------------------
    def phase(self, name: str, args: dict | None = None) -> _Span:
        """Timed span that also records a Chrome-trace slice.

        ``args`` lands on the trace event (request/job ids, sizes …)
        so merged multi-process traces stay navigable.
        """
        return _Span(self, name, traced=True, args=args)

    def timer(self, name: str) -> _Span:
        """Timed span without a trace slice (cheap, hot-path safe)."""
        return _Span(self, name, traced=False)

    def sample(self, name: str, value: float) -> None:
        """Observe ``value`` and, when tracing, plot it as a counter track."""
        self.distribution(name).observe(value)
        if self.trace_enabled:
            self._events.append(
                {
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "ph": "C",
                    "ts": (time.perf_counter() - self._t0) * 1e6,
                    "pid": os.getpid(),
                    "args": {"value": float(value)},
                }
            )

    def ingest(self, mapping: dict, prefix: str = "") -> None:
        """Record a flat ``as_dict()``-style mapping as gauges.

        Non-numeric values are skipped; keys get ``prefix`` prepended.
        The bridge from the repo's stats objects into the registry::

            registry.ingest(model.stats.as_dict(), prefix="dram")
        """
        if prefix and not prefix.endswith("."):
            prefix += "."
        for key, value in mapping.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.gauge(f"{prefix}{key}").set(value)

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """Full-fidelity serializable state: one sub-dict per metric kind.

        Unlike :meth:`as_dict` (the flat human/JSON report view), a
        snapshot carries everything :meth:`merge_from` needs to
        reconstruct the metrics in another registry — including each
        histogram's sampled reservoir (``samples``).  ``t0``/``pid``/
        ``process_label`` identify the recording process so trace
        timestamps can be rebased at merge time.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "distributions": {
                n: d.state() for n, d in sorted(self._distributions.items())
            },
            "histograms": {
                n: h.state() for n, h in sorted(self._histograms.items())
            },
            "events": list(self._events),
            "t0": self._t0,
            "pid": os.getpid(),
            "process_label": self.process_label,
        }

    def flush_delta(self) -> dict:
        """Changes since the previous ``flush_delta`` (serializable).

        Counters ship their increment, gauges their current value (only
        when changed), distributions/histograms a summary delta whose
        ``count``/``total`` are increments and whose ``min``/``max``/
        ``last`` are the cumulative values (extremes merge
        idempotently).  Histogram deltas carry the raw samples buffered
        over the flush window.  Trace events recorded since the last
        flush are included verbatim.  The caller feeds the payload to
        another registry's :meth:`merge_from`; flushing is how worker
        processes stream their metrics to the serving coordinator.
        """
        counters: dict[str, float] = {}
        for name, c in self._counters.items():
            delta = c.value - self._flushed_counters.get(name, 0)
            if delta:
                counters[name] = delta
                self._flushed_counters[name] = c.value
        gauges: dict[str, float] = {}
        for name, g in self._gauges.items():
            if self._flushed_gauges.get(name) != g.value:
                gauges[name] = g.value
                self._flushed_gauges[name] = g.value
        dists: dict[str, dict] = {}
        for name, d in self._distributions.items():
            count0, total0 = self._flushed_dists.get(name, (0, 0.0))
            if d.count != count0:
                dists[name] = {
                    "count": d.count - count0,
                    "total": d.total - total0,
                    "min": d.min,
                    "max": d.max,
                    "last": d.last,
                }
                self._flushed_dists[name] = (d.count, d.total)
        hists: dict[str, dict] = {}
        for name, h in self._histograms.items():
            samples, seen = h.drain_pending()
            if seen:
                total0 = self._flushed_hists.get(name, (0, 0.0))[1]
                hists[name] = {
                    "count": seen,
                    "total": h.total - total0,
                    "min": h.min,
                    "max": h.max,
                    "last": h.last,
                    "samples": samples,
                }
                self._flushed_hists[name] = (h.count, h.total)
        events = self._events[self._events_flushed:]
        self._events_flushed = len(self._events)
        return {
            "counters": counters,
            "gauges": gauges,
            "distributions": dists,
            "histograms": hists,
            "events": list(events),
            "t0": self._t0,
            "pid": os.getpid(),
            "process_label": self.process_label,
        }

    def merge_from(self, payload: dict, prefix: str = "") -> None:
        """Fold a :meth:`snapshot` or :meth:`flush_delta` into this registry.

        Counters accumulate, gauges are last-merged-wins, distribution
        and histogram summaries combine per their ``merge`` rules.
        With ``prefix`` every metric name is prefixed (the serving
        coordinator merges each worker delta twice: once into the
        machine-wide names and once under ``worker.<id>.`` for the
        per-worker breakdown) and trace events are skipped — events
        merge only on the unprefixed pass, rebased from the source
        registry's clock origin onto this one's so the merged timeline
        is coherent.  Callers sharing a registry across threads must
        serialize ``merge_from`` calls themselves.
        """
        if prefix and not prefix.endswith("."):
            prefix += "."
        for name, delta in payload.get("counters", {}).items():
            if delta:
                self.counter(prefix + name).inc(delta)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(prefix + name).set(value)
        for name, entry in payload.get("distributions", {}).items():
            self.distribution(prefix + name).merge(entry)
        for name, entry in payload.get("histograms", {}).items():
            self.histogram(prefix + name).merge(entry)
        if prefix:
            return
        pid = payload.get("pid")
        label = payload.get("process_label")
        if pid is not None and label and pid != os.getpid():
            self._process_labels[pid] = label
        events = payload.get("events", [])
        if events and self.trace_enabled:
            # perf_counter is CLOCK_MONOTONIC on the platforms we run
            # on, so a cross-process rebase is a pure origin shift.
            shift = (payload.get("t0", self._t0) - self._t0) * 1e6
            for event in events:
                moved = dict(event)
                moved["ts"] = event.get("ts", 0.0) + shift
                self._events.append(moved)

    def as_dict(self) -> dict:
        """Flat view: dotted names to scalars (distributions expanded)."""
        out: dict[str, float] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.value
        for name, dist in sorted(self._distributions.items()):
            for stat, value in dist.as_dict().items():
                out[f"{name}.{stat}"] = value
        for name, hist in sorted(self._histograms.items()):
            for stat, value in hist.as_dict().items():
                out[f"{name}.{stat}"] = value
        return out

    @property
    def events(self) -> list[dict]:
        """Recorded trace events (spans and counter samples)."""
        return list(self._events)

    @property
    def process_labels(self) -> dict[int, str]:
        """Labels of merged foreign processes, keyed by pid."""
        return dict(self._process_labels)

    def chrome_trace(self) -> dict:
        """The trace in Chrome ``trace_event`` JSON object format."""
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def reset(self) -> None:
        """Drop all metrics and trace events; restart the clock."""
        self._counters.clear()
        self._gauges.clear()
        self._distributions.clear()
        self._histograms.clear()
        self._events.clear()
        self._process_labels.clear()
        self._flushed_counters.clear()
        self._flushed_gauges.clear()
        self._flushed_dists.clear()
        self._flushed_hists.clear()
        self._events_flushed = 0
        self._t0 = time.perf_counter()


# ----------------------------------------------------------------------
# The no-op registry (observability off)
# ----------------------------------------------------------------------
class _NullMetric:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()
    count = 0
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def merge(self, entry: dict) -> None:
        pass

    def as_dict(self) -> dict:
        return {}


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """Observability disabled: every operation is a shared no-op.

    Instrumented code never needs to check whether observability is on
    — but *may* consult :attr:`enabled` to skip building metric labels
    or caching counter handles.
    """

    enabled = False
    trace_enabled = False
    process_label = "quicknn-repro"

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def distribution(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def phase(self, name: str, args: dict | None = None) -> _NullSpan:
        return _NULL_SPAN

    def timer(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def sample(self, name: str, value: float) -> None:
        pass

    def ingest(self, mapping: dict, prefix: str = "") -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "distributions": {}, "histograms": {}}

    def flush_delta(self) -> dict:
        return {"counters": {}, "gauges": {}, "distributions": {}, "histograms": {}}

    def merge_from(self, payload: dict, prefix: str = "") -> None:
        pass

    def as_dict(self) -> dict:
        return {}

    @property
    def events(self) -> list[dict]:
        return []

    @property
    def process_labels(self) -> dict[int, str]:
        return {}

    def chrome_trace(self) -> dict:
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def reset(self) -> None:
        pass


# ----------------------------------------------------------------------
# Active-registry management
# ----------------------------------------------------------------------
_NULL_REGISTRY = NullRegistry()
_active: MetricsRegistry | NullRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The registry instrumented code should emit into right now."""
    return _active


def set_registry(
    registry: MetricsRegistry | NullRegistry | None,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` (``None`` -> the no-op); returns the previous."""
    global _active
    previous = _active
    _active = registry if registry is not None else _NULL_REGISTRY
    return previous


def enable(*, trace: bool = False) -> MetricsRegistry:
    """Install and return a fresh live registry.

    Components capture the active registry when *constructed* (the
    simulator models cache their counter handles), so enable
    observability before building the objects you want measured.
    """
    registry = MetricsRegistry(trace=trace)
    set_registry(registry)
    return registry


def disable() -> MetricsRegistry | NullRegistry:
    """Re-install the no-op registry; returns the one that was active."""
    return set_registry(None)


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry):
    """Scope ``registry`` as the active one (tests, nested profiling)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
