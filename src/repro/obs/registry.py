"""The metrics registry: counters, gauges, distributions, and spans.

One process-wide *active registry* receives everything the
instrumented layers emit.  It starts life as a :class:`NullRegistry`
whose every operation is a no-op — instrumentation left in hot paths
costs a handful of attribute lookups per *batch*, never per element —
and is swapped for a live :class:`MetricsRegistry` by :func:`enable`
(the ``quicknn-experiments --profile`` / ``--trace`` flags do exactly
this).

Metric names are hierarchical dotted paths with a subsystem prefix:
``dram.bytes``, ``cache.read_gather.flushes``,
``engine.exact.bucket_scans``, ``icp.rms`` — see
``docs/observability.md`` for the full naming scheme.  Four metric
kinds cover the repo's needs:

* **counter** — monotonically accumulated totals (``inc``),
* **gauge** — last-written value (``set``),
* **distribution** — streaming summary (count / total / mean / min /
  max / last) of observed values (``observe``),
* **histogram** — a distribution that additionally samples a bounded
  reservoir so it can report percentiles (``percentile(95)``, and
  ``p50``/``p90``/``p95``/``p99`` in ``as_dict()``) — the serving
  layer's latency metrics use this kind.

Spans come in two flavors.  ``timer(name)`` is a context manager that
observes the elapsed seconds into the ``<name>.seconds`` distribution.
``phase(name)`` does the same and *additionally* records a Chrome
``trace_event`` span (when the registry was created with
``trace=True``), so nested phases render as a flame chart in
``chrome://tracing`` / Perfetto.  ``sample(name, value)`` observes a
distribution and, when tracing, also emits a trace *counter* track —
used for per-iteration convergence curves.

The registry is deliberately not thread-safe beyond what the GIL
provides: increments are single bytecode-level operations and the
repo's hot paths are single-threaded NumPy batches.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Distribution:
    """Streaming summary of a series of observations."""

    __slots__ = ("name", "count", "total", "min", "max", "last")
    kind = "distribution"

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """Summary as plain scalars (no observations when empty)."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }


class Histogram:
    """A distribution that can also answer percentile queries.

    Keeps the same streaming summary as :class:`Distribution` plus a
    bounded reservoir (algorithm R with a per-name deterministic seed),
    so ``percentile(95)`` stays O(reservoir) no matter how many values
    were observed.  Used where tail behavior is the point — the serving
    layer's latency metrics (``serve.latency.*``) report p50/p95/p99
    through this kind.
    """

    __slots__ = ("name", "count", "total", "min", "max", "last",
                 "_reservoir", "_rng")
    kind = "histogram"

    #: Reservoir capacity; percentile error is sampling error over this
    #: many points, plenty for p99 at the serving layer's volumes.
    RESERVOIR_SIZE = 4096

    #: The percentiles ``as_dict`` reports (the serving layer's catalog).
    REPORTED_PERCENTILES = (50, 90, 95, 99)

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0
        self._reservoir: list[float] = []
        self._rng = random.Random(name)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        if len(self._reservoir) < self.RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.RESERVOIR_SIZE:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the sampled observations."""
        if not self._reservoir:
            return 0.0
        data = sorted(self._reservoir)
        if len(data) == 1:
            return data[0]
        pos = (q / 100.0) * (len(data) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def as_dict(self) -> dict:
        """Summary plus the reported percentiles (``p50`` … ``p99``)."""
        if self.count == 0:
            return {"count": 0}
        out = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }
        data = sorted(self._reservoir)
        for q in self.REPORTED_PERCENTILES:
            pos = (q / 100.0) * (len(data) - 1)
            lo = int(pos)
            hi = min(lo + 1, len(data) - 1)
            frac = pos - lo
            out[f"p{q}"] = data[lo] * (1.0 - frac) + data[hi] * frac
        return out


class _Span:
    """Context manager timing one region; optionally traced."""

    __slots__ = ("_registry", "name", "cat", "_traced", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str, *, traced: bool):
        self._registry = registry
        self.name = name
        self.cat = name.split(".", 1)[0]
        self._traced = traced and registry.trace_enabled
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        reg = self._registry
        reg.distribution(f"{self.name}.seconds").observe(end - self._start)
        if self._traced:
            reg._events.append(
                {
                    "name": self.name,
                    "cat": self.cat,
                    "ph": "X",
                    "ts": (self._start - reg._t0) * 1e6,
                    "dur": (end - self._start) * 1e6,
                    "pid": 0,
                    "tid": 0,
                }
            )
        return False


class MetricsRegistry:
    """A live registry: metrics accumulate, spans time, traces record."""

    enabled = True

    def __init__(self, *, trace: bool = False):
        self.trace_enabled = trace
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._distributions: dict[str, Distribution] = {}
        self._histograms: dict[str, Histogram] = {}
        self._events: list[dict] = []
        self._t0 = time.perf_counter()

    # -- metric accessors (get-or-create) ------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def distribution(self, name: str) -> Distribution:
        metric = self._distributions.get(name)
        if metric is None:
            metric = self._distributions[name] = Distribution(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    # -- timing --------------------------------------------------------
    def phase(self, name: str) -> _Span:
        """Timed span that also records a Chrome-trace slice."""
        return _Span(self, name, traced=True)

    def timer(self, name: str) -> _Span:
        """Timed span without a trace slice (cheap, hot-path safe)."""
        return _Span(self, name, traced=False)

    def sample(self, name: str, value: float) -> None:
        """Observe ``value`` and, when tracing, plot it as a counter track."""
        self.distribution(name).observe(value)
        if self.trace_enabled:
            self._events.append(
                {
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "ph": "C",
                    "ts": (time.perf_counter() - self._t0) * 1e6,
                    "pid": 0,
                    "args": {"value": float(value)},
                }
            )

    def ingest(self, mapping: dict, prefix: str = "") -> None:
        """Record a flat ``as_dict()``-style mapping as gauges.

        Non-numeric values are skipped; keys get ``prefix`` prepended.
        The bridge from the repo's stats objects into the registry::

            registry.ingest(model.stats.as_dict(), prefix="dram")
        """
        if prefix and not prefix.endswith("."):
            prefix += "."
        for key, value in mapping.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.gauge(f"{prefix}{key}").set(value)

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """Structured view: one sub-dict per metric kind."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "distributions": {
                n: d.as_dict() for n, d in sorted(self._distributions.items())
            },
            "histograms": {
                n: h.as_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def as_dict(self) -> dict:
        """Flat view: dotted names to scalars (distributions expanded)."""
        out: dict[str, float] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = gauge.value
        for name, dist in sorted(self._distributions.items()):
            for stat, value in dist.as_dict().items():
                out[f"{name}.{stat}"] = value
        for name, hist in sorted(self._histograms.items()):
            for stat, value in hist.as_dict().items():
                out[f"{name}.{stat}"] = value
        return out

    @property
    def events(self) -> list[dict]:
        """Recorded trace events (spans and counter samples)."""
        return list(self._events)

    def chrome_trace(self) -> dict:
        """The trace in Chrome ``trace_event`` JSON object format."""
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def reset(self) -> None:
        """Drop all metrics and trace events; restart the clock."""
        self._counters.clear()
        self._gauges.clear()
        self._distributions.clear()
        self._histograms.clear()
        self._events.clear()
        self._t0 = time.perf_counter()


# ----------------------------------------------------------------------
# The no-op registry (observability off)
# ----------------------------------------------------------------------
class _NullMetric:
    """Accepts every metric operation and does nothing."""

    __slots__ = ()
    count = 0
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def as_dict(self) -> dict:
        return {}


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_METRIC = _NullMetric()
_NULL_SPAN = _NullSpan()


class NullRegistry:
    """Observability disabled: every operation is a shared no-op.

    Instrumented code never needs to check whether observability is on
    — but *may* consult :attr:`enabled` to skip building metric labels
    or caching counter handles.
    """

    enabled = False
    trace_enabled = False

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def distribution(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def phase(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def timer(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def sample(self, name: str, value: float) -> None:
        pass

    def ingest(self, mapping: dict, prefix: str = "") -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "distributions": {}, "histograms": {}}

    def as_dict(self) -> dict:
        return {}

    @property
    def events(self) -> list[dict]:
        return []

    def chrome_trace(self) -> dict:
        from repro.obs.export import chrome_trace

        return chrome_trace(self)

    def reset(self) -> None:
        pass


# ----------------------------------------------------------------------
# Active-registry management
# ----------------------------------------------------------------------
_NULL_REGISTRY = NullRegistry()
_active: MetricsRegistry | NullRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry | NullRegistry:
    """The registry instrumented code should emit into right now."""
    return _active


def set_registry(
    registry: MetricsRegistry | NullRegistry | None,
) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` (``None`` -> the no-op); returns the previous."""
    global _active
    previous = _active
    _active = registry if registry is not None else _NULL_REGISTRY
    return previous


def enable(*, trace: bool = False) -> MetricsRegistry:
    """Install and return a fresh live registry.

    Components capture the active registry when *constructed* (the
    simulator models cache their counter handles), so enable
    observability before building the objects you want measured.
    """
    registry = MetricsRegistry(trace=trace)
    set_registry(registry)
    return registry


def disable() -> MetricsRegistry | NullRegistry:
    """Re-install the no-op registry; returns the one that was active."""
    return set_registry(None)


@contextmanager
def use_registry(registry: MetricsRegistry | NullRegistry):
    """Scope ``registry`` as the active one (tests, nested profiling)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
