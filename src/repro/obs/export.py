"""Exporters: flat dicts, profile JSON, and Chrome ``trace_event`` files.

Two file formats leave the registry:

* **profile JSON** — a plain object with the flat metric dict (and, for
  the experiment harness, per-experiment wall-clock); human- and
  ``jq``-friendly.
* **Chrome trace JSON** — the ``trace_event`` *object format*
  (``{"traceEvents": [...]}``) that ``chrome://tracing`` and
  https://ui.perfetto.dev load directly.  Phase spans are complete
  events (``ph: "X"``) with microsecond ``ts``/``dur``; ``sample``
  points are counter events (``ph: "C"``).
"""

from __future__ import annotations

import json


def chrome_trace(registry) -> dict:
    """The registry's recorded events as a Chrome trace object.

    Always loadable, even for an empty or no-op registry; a metadata
    event names the process so the timeline is labelled in the viewer.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 0,
            "args": {"name": "quicknn-repro"},
        }
    ]
    events.extend(registry.events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, registry) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(registry), handle)


def profile_payload(registry, **sections) -> dict:
    """A profile document: flat metrics plus caller-supplied sections.

    ``sections`` (e.g. ``experiments=[...]``) are placed alongside the
    ``metrics`` dict so harnesses can attach their own structure.
    """
    payload = dict(sections)
    payload["metrics"] = registry.as_dict()
    return payload


def write_profile(path: str, registry, **sections) -> None:
    """Serialize :func:`profile_payload` to ``path`` (indented JSON)."""
    with open(path, "w") as handle:
        json.dump(profile_payload(registry, **sections), handle, indent=2, default=str)
