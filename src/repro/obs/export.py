"""Exporters: flat dicts, profile JSON, Chrome traces, Prometheus text.

Three file formats leave the registry:

* **profile JSON** — a plain object with the flat metric dict (and, for
  the experiment harness, per-experiment wall-clock); human- and
  ``jq``-friendly.
* **Chrome trace JSON** — the ``trace_event`` *object format*
  (``{"traceEvents": [...]}``) that ``chrome://tracing`` and
  https://ui.perfetto.dev load directly.  Phase spans are complete
  events (``ph: "X"``) with microsecond ``ts``/``dur``; ``sample``
  points are counter events (``ph: "C"``).  Events carry the real pid
  and native thread id of whatever recorded them, and a registry that
  merged worker deltas (:meth:`MetricsRegistry.merge_from`) emits one
  ``process_name`` metadata record per pid — a multi-process serving
  trace renders as one connected flame chart, each process on its own
  labelled track.
* **Prometheus text exposition** — the ``text/plain; version=0.0.4``
  format scrape endpoints speak.  Dotted metric names flatten to
  underscore form; counters gain the conventional ``_total`` suffix,
  distributions and histograms export as summaries (``_count``/
  ``_sum`` plus ``quantile``-labelled lines for histograms).
"""

from __future__ import annotations

import json
import os
import re

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def chrome_trace(registry) -> dict:
    """The registry's recorded events as a Chrome trace object.

    Always loadable, even for an empty or no-op registry; metadata
    events name every process that contributed events (the recording
    process plus any merged worker registries) so the timeline tracks
    are labelled in the viewer.
    """
    labels: dict[int, str] = {
        os.getpid(): getattr(registry, "process_label", "quicknn-repro")
    }
    labels.update(getattr(registry, "process_labels", {}))
    recorded = registry.events
    for event in recorded:  # label foreign pids even without a merge record
        labels.setdefault(event.get("pid", 0), "quicknn-worker")
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": pid,
            "args": {"name": label},
        }
        for pid, label in sorted(labels.items())
    ]
    events.extend(recorded)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, registry) -> None:
    """Serialize :func:`chrome_trace` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(registry), handle)


def profile_payload(registry, **sections) -> dict:
    """A profile document: flat metrics plus caller-supplied sections.

    ``sections`` (e.g. ``experiments=[...]``) are placed alongside the
    ``metrics`` dict so harnesses can attach their own structure.
    """
    payload = dict(sections)
    payload["metrics"] = registry.as_dict()
    return payload


def write_profile(path: str, registry, **sections) -> None:
    """Serialize :func:`profile_payload` to ``path`` (indented JSON)."""
    with open(path, "w") as handle:
        json.dump(profile_payload(registry, **sections), handle, indent=2, default=str)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """A metric name in the exposition charset (dots become underscores)."""
    flat = _PROM_NAME_RE.sub("_", name.replace(".", "_"))
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _prom_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def prometheus_text(registry) -> str:
    """The registry in the Prometheus text exposition format.

    Counters export as ``<name>_total``, gauges as-is, distributions as
    summaries (``_count``/``_sum``), histograms as summaries with the
    registry's reported percentiles on ``quantile`` labels.  Output is
    sorted by metric name so the exposition is byte-stable for a given
    registry state — scrape-friendly and golden-testable.
    """
    lines: list[str] = []
    snap = registry.snapshot()
    for name, value in sorted(snap.get("counters", {}).items()):
        flat = _prom_name(name)
        lines.append(f"# TYPE {flat}_total counter")
        lines.append(f"{flat}_total {_prom_value(value)}")
    for name, value in sorted(snap.get("gauges", {}).items()):
        flat = _prom_name(name)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_prom_value(value)}")
    for name, entry in sorted(snap.get("distributions", {}).items()):
        flat = _prom_name(name)
        lines.append(f"# TYPE {flat} summary")
        lines.append(f"{flat}_count {int(entry.get('count', 0))}")
        lines.append(f"{flat}_sum {_prom_value(entry.get('total', 0.0))}")
    for name, entry in sorted(snap.get("histograms", {}).items()):
        flat = _prom_name(name)
        hist = registry.histogram(name)
        lines.append(f"# TYPE {flat} summary")
        for q in getattr(hist, "REPORTED_PERCENTILES", ()):
            lines.append(
                f'{flat}{{quantile="{q / 100.0}"}} '
                f"{_prom_value(hist.percentile(q))}"
            )
        lines.append(f"{flat}_count {int(entry.get('count', 0))}")
        lines.append(f"{flat}_sum {_prom_value(entry.get('total', 0.0))}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, registry) -> None:
    """Serialize :func:`prometheus_text` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))
