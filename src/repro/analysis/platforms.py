"""Analytic CPU / GPU platform models for the cross-platform comparison.

The paper benchmarks FLANN's k-d tree on an Intel i7-7700k and an
open-source k-d tree (kNNcuda) on an Nvidia GTX 1080 Ti.  Neither that
hardware nor those measurements are available offline, so Figure 17 and
Table 6 are reproduced with calibrated analytic cost models:

* latency = tree build (``N log N``) + per-query traversal-and-scan
  work, with a fixed launch overhead on the GPU;
* coefficients are first-principles estimates of each platform
  (FLANN ~4 us per 3D query on a ~4.5 GHz core; the GPU amortizing
  thousands of parallel queries but paying kernel-launch and transfer
  overheads), cross-checked against the paper's measured *relative*
  numbers at the 30k-point operating point (GPU = 2.62x CPU).
* power figures are the sustained package powers of the parts
  (91 W TDP for the i7-7700k; ~67 W measured-average for the 1080 Ti on
  this memory-bound workload, consistent with the paper's 3.55x
  perf/W ratio).

These models are deliberately *independent* of the QuickNN simulator:
the reproduction's speedup tables fall out of comparing the two, they
are not fitted to match the paper's speedups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformModel:
    """Analytic latency/power model of a kNN platform.

    ``latency_seconds(n, k)`` models a full successive-frame search:
    build a k-d tree over ``n`` points, then query all ``n`` points for
    ``k`` neighbors.
    """

    name: str
    power_watts: float
    build_coef: float          # seconds per (point * log2(points))
    query_traverse_coef: float  # seconds per (query * tree level)
    query_scan_coef: float     # seconds per (query * candidate point)
    query_fixed: float         # seconds per query (call overhead)
    launch_overhead: float     # seconds per frame (kernel launch, transfer)
    bucket_size: int = 256

    def __post_init__(self):
        if self.power_watts <= 0:
            raise ValueError("power must be positive")
        if min(self.build_coef, self.query_traverse_coef, self.query_scan_coef,
               self.query_fixed, self.launch_overhead) < 0:
            raise ValueError("cost coefficients must be non-negative")

    def latency_seconds(self, n_points: int, k: int = 8) -> float:
        """Per-frame latency of build + N queries."""
        if n_points < 1:
            raise ValueError("n_points must be positive")
        if k < 1:
            raise ValueError("k must be positive")
        depth = max(1.0, math.log2(max(2.0, n_points / self.bucket_size)))
        build = self.build_coef * n_points * math.log2(max(2, n_points))
        per_query = (
            self.query_fixed
            + self.query_traverse_coef * depth
            + self.query_scan_coef * (self.bucket_size + 4.0 * k)
        )
        return self.launch_overhead + build + n_points * per_query

    def fps(self, n_points: int, k: int = 8) -> float:
        return 1.0 / self.latency_seconds(n_points, k)

    def perf_per_watt(self, n_points: int, k: int = 8) -> float:
        return self.fps(n_points, k) / self.power_watts


#: Intel i7-7700k running FLANN's randomized k-d tree (single hot core
#: plus FLANN's internal threading; effective ~4 us/query at 30k).
CPU_MODEL = PlatformModel(
    name="cpu-i7-7700k-flann",
    power_watts=91.0,
    build_coef=2.2e-8,      # ~10 ms build at 30k points
    query_traverse_coef=2.5e-8,   # ~25 ns per level (cache-missy pointer chase)
    query_scan_coef=1.3e-8,       # ~13 ns per candidate distance (SIMD-assisted)
    query_fixed=2.0e-7,
    launch_overhead=0.0,
)

#: Nvidia GTX 1080 Ti running an open-source CUDA k-d tree search.  The
#: GPU hides per-query latency across thousands of threads but pays
#: transfers and an irregular, divergence-heavy kernel (the paper's
#: point about "irregularity of point cloud data" on GPU).
GPU_MODEL = PlatformModel(
    name="gpu-gtx1080ti-knncuda",
    power_watts=67.0,
    build_coef=3.0e-8,      # tree build + upload
    query_traverse_coef=1.0e-8,
    query_scan_coef=3.2e-9,
    query_fixed=1.0e-7,
    launch_overhead=5.0e-3,  # kernel launches + PCIe transfers
)
