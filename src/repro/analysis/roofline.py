"""Roofline-style bound analysis of a simulated frame.

Classifies a :class:`~repro.arch.report.FrameReport` as memory-bound or
compute-bound and quantifies the headroom — the analysis behind the
paper's Section 7.2 claim that "the most significant bottleneck in the
system is the limited external memory bandwidth", and behind the HBM
extension experiment that tests it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.report import FrameReport


@dataclass(frozen=True)
class BoundAnalysis:
    """Where one simulated frame's time went."""

    memory_busy_fraction: float
    compute_busy_fraction: float
    bound: str                      # "memory" | "compute" | "balanced"
    limiting_engine: str            # busiest engine by cycles
    speedup_if_memory_free: float   # latency ratio with a perfect memory

    def summary(self) -> str:
        return (
            f"{self.bound}-bound (memory busy {self.memory_busy_fraction:.0%}, "
            f"{self.limiting_engine} is the limiting engine; a perfect "
            f"memory would speed the frame up {self.speedup_if_memory_free:.2f}x)"
        )


def analyze_bound(report: FrameReport, *, balance_band: float = 0.10) -> BoundAnalysis:
    """Classify a frame report as memory- or compute-bound.

    ``balance_band`` is the fraction within which the memory and compute
    occupancies are declared "balanced".
    """
    total = report.total_cycles
    memory_busy = report.dram.busy_cycles
    compute_busy = max(report.compute_cycles.values(), default=0)

    memory_fraction = min(1.0, memory_busy / total)
    compute_fraction = min(1.0, compute_busy / total)

    if memory_fraction > compute_fraction * (1.0 + balance_band):
        bound = "memory"
    elif compute_fraction > memory_fraction * (1.0 + balance_band):
        bound = "compute"
    else:
        bound = "balanced"

    limiting = "memory"
    if report.compute_cycles:
        busiest_engine, busiest = max(
            report.compute_cycles.items(), key=lambda item: item[1]
        )
        if busiest > memory_busy:
            limiting = busiest_engine

    # With a perfect (zero-latency, infinite-bandwidth) memory the frame
    # could not run faster than its busiest compute engine.
    floor = max(compute_busy, 1)
    speedup = total / floor

    return BoundAnalysis(
        memory_busy_fraction=memory_fraction,
        compute_busy_fraction=compute_fraction,
        bound=bound,
        limiting_engine=limiting,
        speedup_if_memory_free=speedup,
    )


def arithmetic_intensity(report: FrameReport) -> float:
    """Compute cycles per byte of DRAM traffic (a roofline x-axis).

    Low values mean the design streams data with little reuse — the
    regime the paper's gather caches are built for.
    """
    total_bytes = report.dram.bytes
    if total_bytes == 0:
        return float("inf")
    return sum(report.compute_cycles.values()) / total_bytes
