"""Trajectory evaluation metrics (ATE / RPE).

Standard odometry metrics for evaluating the ICP tracking layer against
ground-truth ego poses: absolute trajectory error (global drift) and
relative pose error (per-step accuracy).  These quantify the end-to-end
claim the paper leans on — that approximate kNN is good enough for
motion estimation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry import RigidTransform


@dataclass(frozen=True)
class TrajectoryErrors:
    """Summary statistics of a trajectory comparison."""

    ate_rmse: float
    ate_max: float
    rpe_translation_rmse: float
    rpe_rotation_rmse: float

    def summary(self) -> str:
        return (
            f"ATE {self.ate_rmse:.3f} m rms (max {self.ate_max:.3f}), "
            f"RPE {self.rpe_translation_rmse:.3f} m / "
            f"{np.degrees(self.rpe_rotation_rmse):.2f} deg per step"
        )


def absolute_trajectory_error(
    estimated: Sequence[RigidTransform],
    truth: Sequence[RigidTransform],
) -> np.ndarray:
    """Per-frame position error of an estimated trajectory (meters).

    Both trajectories must be expressed in the same world frame and be
    aligned at the first pose (the tracker anchors at identity, so pass
    ground truth re-based to its first pose).
    """
    _check_same_length(estimated, truth)
    est = np.array([p.translation for p in estimated])
    ref = np.array([p.translation for p in truth])
    return np.linalg.norm(est - ref, axis=1)


def relative_pose_errors(
    estimated: Sequence[RigidTransform],
    truth: Sequence[RigidTransform],
) -> tuple[np.ndarray, np.ndarray]:
    """Per-step (translation, rotation) errors between pose increments.

    Step ``i`` compares ``est_i^-1 est_{i+1}`` against
    ``truth_i^-1 truth_{i+1}``; translation errors are in meters,
    rotation errors in radians.
    """
    _check_same_length(estimated, truth)
    if len(estimated) < 2:
        return np.empty(0), np.empty(0)
    trans_errors = []
    rot_errors = []
    for i in range(len(estimated) - 1):
        est_step = estimated[i].inverse().compose(estimated[i + 1])
        ref_step = truth[i].inverse().compose(truth[i + 1])
        delta = ref_step.inverse().compose(est_step)
        angle, dist = delta.magnitude()
        trans_errors.append(dist)
        rot_errors.append(angle)
    return np.asarray(trans_errors), np.asarray(rot_errors)


def evaluate_trajectory(
    estimated: Sequence[RigidTransform],
    truth: Sequence[RigidTransform],
    *,
    rebase: bool = True,
) -> TrajectoryErrors:
    """Full ATE/RPE evaluation; optionally re-bases truth at its first pose."""
    truth = list(truth)
    if rebase and truth:
        origin_inv = truth[0].inverse()
        truth = [origin_inv.compose(p) for p in truth]
    ate = absolute_trajectory_error(estimated, truth)
    rpe_t, rpe_r = relative_pose_errors(estimated, truth)
    return TrajectoryErrors(
        ate_rmse=float(np.sqrt(np.mean(ate**2))) if ate.size else 0.0,
        ate_max=float(ate.max()) if ate.size else 0.0,
        rpe_translation_rmse=float(np.sqrt(np.mean(rpe_t**2))) if rpe_t.size else 0.0,
        rpe_rotation_rmse=float(np.sqrt(np.mean(rpe_r**2))) if rpe_r.size else 0.0,
    )


def _check_same_length(a, b) -> None:
    if len(a) != len(b):
        raise ValueError(f"trajectory lengths differ: {len(a)} vs {len(b)}")
    if len(a) == 0:
        raise ValueError("trajectories must be non-empty")
