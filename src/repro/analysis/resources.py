"""Parametric FPGA resource and power model (Tables 2-3, Figure 16).

The paper reports post-synthesis and post-place-and-route utilization of
the VCU118 prototype and uses LUT+FF as the area metric of Figure 16.
Synthesis is obviously unavailable here, so resources are modeled
*parametrically*: every component contributes per-unit costs (an FU's
DSPs and logic, a cache's storage, the fixed TBuild / wrapper logic),
with the per-unit constants calibrated once against the paper's 64-FU
tables.  The model then *extrapolates* across FU counts, which is what
Figure 16's perf-per-area / perf-per-watt scaling study needs.

Power follows the same structure (static + per-FU dynamic + cache
activity), anchored to the Xilinx Power Estimator figures the paper
reports (4.44 W linear, 4.73 W QuickNN at 64 FUs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import BUCKET_MAP_BYTES, POINT_BYTES, TREE_NODE_BYTES


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated FPGA footprint of one configuration."""

    luts: int
    registers: int
    brams: int
    dsps: int
    power_watts: float

    @property
    def area(self) -> int:
        """The paper's Figure 16 area metric: LUT + FF."""
        return self.luts + self.registers


@dataclass(frozen=True)
class ResourceModel:
    """Per-component cost coefficients of one architecture family.

    ``fixed_*`` covers control FSMs, TBuild, and the wrapper (DDR4
    controller + host interface); ``per_fu_*`` is one functional unit's
    datapath; caches are charged by size (distributed LUT-RAM at 64
    bits per LUT, or BRAM at 36 kb per block for the synthesis-style
    estimate).
    """

    name: str
    fixed_luts: int
    fixed_registers: int
    fixed_brams: int
    per_fu_luts: int
    per_fu_registers: int
    per_fu_dsps: int
    static_watts: float
    per_fu_watts: float
    per_cache_byte_watts: float

    #: Distributed-RAM packing density: 64 bits of cache per LUT.
    CACHE_BITS_PER_LUT = 64

    def cache_luts(self, cache_bytes: int) -> int:
        return -(-cache_bytes * 8 // self.CACHE_BITS_PER_LUT)

    def estimate(self, n_fus: int, *, cache_bytes: int = 0) -> ResourceEstimate:
        """Footprint of a configuration with ``n_fus`` FUs.

        ``cache_bytes`` is the architecture's total on-chip cache (use
        :func:`quicknn_cache_bytes` for QuickNN configurations).
        """
        if n_fus < 1:
            raise ValueError("need at least one FU")
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be non-negative")
        luts = self.fixed_luts + n_fus * self.per_fu_luts + self.cache_luts(cache_bytes)
        registers = self.fixed_registers + n_fus * self.per_fu_registers
        power = (
            self.static_watts
            + self.per_fu_watts * n_fus
            + self.per_cache_byte_watts * cache_bytes
        )
        return ResourceEstimate(
            luts=luts,
            registers=registers,
            brams=self.fixed_brams,
            dsps=n_fus * self.per_fu_dsps,
            power_watts=power,
        )


def quicknn_cache_bytes(
    n_fus: int,
    *,
    n_tree_nodes: int = 255,
    n_buckets: int = 128,
    write_gather_slots: int = 128,
    write_gather_capacity: int = 8,
    read_gather_slots: int = 128,
    sample_scratch_points: int = 2048,
    n_traversal_workers: int = 8,
    replicated_nodes: int = 7,
) -> int:
    """Total on-chip cache bytes of a QuickNN configuration.

    Mirrors the Section 5 inventory: TBuild's scratchpad, tree cache,
    bucket map and write-gather cache, plus TSearch's tree cache, bucket
    map and read-gather cache (whose r_n scales with the FU count —
    the driver of Figure 16's post-32-FU perf-per-area decline).
    """
    tree_cache = (
        n_tree_nodes + (n_traversal_workers - 1) * replicated_nodes
    ) * TREE_NODE_BYTES
    bucket_map = n_buckets * BUCKET_MAP_BYTES
    scratch = sample_scratch_points * POINT_BYTES
    write_gather = write_gather_slots * write_gather_capacity * POINT_BYTES
    read_gather = read_gather_slots * n_fus * POINT_BYTES
    tbuild = scratch + tree_cache + bucket_map + write_gather
    tsearch = tree_cache + bucket_map + read_gather
    return tbuild + tsearch


#: Linear-search architecture, calibrated to Table 2 (64 FUs:
#: 45,458 LUTs / 40,024 FFs / 512 DSPs post-synthesis, 4.44 W).
LINEAR_RESOURCE_MODEL = ResourceModel(
    name="linear",
    fixed_luts=7_100,
    fixed_registers=5_600,
    fixed_brams=30,
    per_fu_luts=599,
    per_fu_registers=538,
    per_fu_dsps=8,
    static_watts=4.06,
    per_fu_watts=0.006,
    per_cache_byte_watts=0.0,
)

#: QuickNN, calibrated to Table 3 (64 FUs: 90,754 LUTs / 79,002 FFs /
#: 512 DSPs / 31 BRAM post-synthesis, 4.73 W).  The fixed part covers
#: TBuild (13.7k LUTs), TSearch control, and the wrapper.
QUICKNN_RESOURCE_MODEL = ResourceModel(
    name="quicknn",
    fixed_luts=35_000,
    fixed_registers=44_000,
    fixed_brams=31,
    per_fu_luts=599,
    per_fu_registers=538,
    per_fu_dsps=8,
    static_watts=4.20,
    per_fu_watts=0.006,
    per_cache_byte_watts=1.5e-6,
)
