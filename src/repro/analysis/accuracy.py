"""Search-accuracy metrics.

Section 2.2 of the paper defines accuracy as "the likelihood the k
nearest neighbors are present in the top k + x nearest neighbors" of
the approximate search, plus a separate top-1 containment rate.  Both
are implemented here over :class:`~repro.kdtree.search.QueryResult`
pairs (approximate result vs exact ground truth).
"""

from __future__ import annotations

import numpy as np

from repro.kdtree.search import PAD_INDEX, QueryResult


def knn_recall(approx: QueryResult, exact: QueryResult, k: int, x: int = 0) -> float:
    """The paper's accuracy-at-``(k, x)``.

    Section 2.2: "the likelihood the k nearest neighbors [returned] are
    present in the top k + x nearest neighbors" — i.e. the mean fraction
    of the approximate search's top-``k`` answers that fall within the
    exact top-``(k + x)``.  At ``x = 0`` this is plain top-k recall;
    growing ``x`` relaxes the rank tolerance, which is how Figure 3's
    curves rise with x.  ``exact`` must therefore hold at least
    ``k + x`` columns.  Padded (missing) entries never count as hits.
    """
    _check_pair(approx, exact)
    if k < 1 or k > approx.k:
        raise ValueError(f"k must be in [1, {approx.k}]")
    if x < 0 or k + x > exact.k:
        raise ValueError(f"x must be in [0, {exact.k - k}]")
    hits = _containment_counts(exact.indices[:, : k + x], approx.indices[:, :k])
    return float(np.mean(hits / k))


def top1_containment(approx: QueryResult, exact: QueryResult) -> float:
    """Fraction of queries whose true nearest neighbor appears at all."""
    _check_pair(approx, exact)
    hits = _containment_counts(approx.indices, exact.indices[:, :1])
    return float(np.mean(hits))


def _containment_counts(approx_idx: np.ndarray, truth_idx: np.ndarray) -> np.ndarray:
    """Per-query count of truth indices present in the approximate rows."""
    m = truth_idx.shape[0]
    counts = np.zeros(m)
    for i in range(m):
        row = approx_idx[i]
        row = set(row[row != PAD_INDEX].tolist())
        truth = truth_idx[i]
        truth = truth[truth != PAD_INDEX]
        counts[i] = sum(1 for t in truth.tolist() if t in row)
    return counts


def _check_pair(approx: QueryResult, exact: QueryResult) -> None:
    if approx.n_queries != exact.n_queries:
        raise ValueError(
            f"query counts differ: approx {approx.n_queries} vs exact {exact.n_queries}"
        )
