"""Metrics and evaluation models.

* :mod:`repro.analysis.accuracy` — the paper's top-(k+x) recall metric.
* :mod:`repro.analysis.platforms` — calibrated analytic latency/power
  models of the CPU (i7-7700k + FLANN) and GPU (GTX 1080 Ti + kNNcuda)
  comparison points.
* :mod:`repro.analysis.resources` — the parametric FPGA resource and
  power model behind Tables 2-3 and Figure 16.
"""

from repro.analysis.accuracy import knn_recall, top1_containment
from repro.analysis.platforms import CPU_MODEL, GPU_MODEL, PlatformModel
from repro.analysis.roofline import BoundAnalysis, analyze_bound, arithmetic_intensity
from repro.analysis.trajectory import (
    TrajectoryErrors,
    absolute_trajectory_error,
    evaluate_trajectory,
    relative_pose_errors,
)
from repro.analysis.resources import (
    LINEAR_RESOURCE_MODEL,
    QUICKNN_RESOURCE_MODEL,
    ResourceEstimate,
    ResourceModel,
)

__all__ = [
    "CPU_MODEL",
    "GPU_MODEL",
    "LINEAR_RESOURCE_MODEL",
    "PlatformModel",
    "BoundAnalysis",
    "analyze_bound",
    "arithmetic_intensity",
    "QUICKNN_RESOURCE_MODEL",
    "ResourceEstimate",
    "ResourceModel",
    "knn_recall",
    "top1_containment",
    "TrajectoryErrors",
    "absolute_trajectory_error",
    "evaluate_trajectory",
    "relative_pose_errors",
]
