"""Fixed-point coordinate model.

The QuickNN hardware stores coordinates as fixed-point words (the FPGA
prototype uses a 32-bit point word per dimension).  Quantization matters
for two reasons: it defines the *data size* that the memory-traffic model
charges per point, and it bounds the numeric error the approximate
search inherits from the hardware.

We model a signed Qm.f format: ``m`` integer bits (including sign) and
``f`` fractional bits.  The default ``Q24.8`` covers ±8 million meters at
~4 mm resolution — far beyond any LiDAR return — so quantization error,
not range clipping, is the only effect in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point format with ``integer_bits + fraction_bits`` bits.

    ``integer_bits`` includes the sign bit.
    """

    integer_bits: int = 24
    fraction_bits: int = 8

    def __post_init__(self):
        if self.integer_bits < 1:
            raise ValueError("need at least a sign bit")
        if self.fraction_bits < 0:
            raise ValueError("fraction_bits must be non-negative")
        if self.total_bits > 64:
            raise ValueError("formats wider than 64 bits are not supported")

    @property
    def total_bits(self) -> int:
        return self.integer_bits + self.fraction_bits

    @property
    def scale(self) -> float:
        """Real-value weight of one least-significant bit."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        return -(2 ** (self.total_bits - 1)) * self.scale

    @property
    def bytes_per_value(self) -> int:
        """Storage charged by the memory model, rounded up to whole bytes."""
        return (self.total_bits + 7) // 8


#: Format used by all architecture models: 32-bit point words, 8 fractional
#: bits (≈4 mm resolution), matching the FPGA prototype's 3 x 32-bit points.
DEFAULT_FORMAT = FixedPointFormat(integer_bits=24, fraction_bits=8)


def quantize(values: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Convert real values to integer codes (round-to-nearest, saturating)."""
    values = np.asarray(values, dtype=np.float64)
    codes = np.rint(values / fmt.scale)
    lo = -(2 ** (fmt.total_bits - 1))
    hi = 2 ** (fmt.total_bits - 1) - 1
    return np.clip(codes, lo, hi).astype(np.int64)


def dequantize(codes: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Convert integer codes back to real values."""
    return np.asarray(codes, dtype=np.float64) * fmt.scale


def roundtrip(values: np.ndarray, fmt: FixedPointFormat = DEFAULT_FORMAT) -> np.ndarray:
    """Real values as the hardware would see them after quantization."""
    return dequantize(quantize(values, fmt), fmt)


def quantization_error_bound(fmt: FixedPointFormat = DEFAULT_FORMAT) -> float:
    """Worst-case absolute error for in-range values: half an LSB."""
    return fmt.scale / 2.0
