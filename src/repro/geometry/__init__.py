"""Geometric primitives shared by every layer of the QuickNN reproduction.

This package provides the small vocabulary of 3D geometry used everywhere
else in the library: point clouds (:class:`PointCloud`), axis-aligned
bounding boxes (:class:`Aabb`), rigid-body transforms
(:class:`RigidTransform`), and the fixed-point quantization model that
mirrors the hardware's numeric format (:mod:`repro.geometry.quantize`).
"""

from repro.geometry.aabb import Aabb
from repro.geometry.points import PointCloud
from repro.geometry.quantize import FixedPointFormat, dequantize, quantize
from repro.geometry.transforms import RigidTransform

__all__ = [
    "Aabb",
    "PointCloud",
    "RigidTransform",
    "FixedPointFormat",
    "quantize",
    "dequantize",
]
