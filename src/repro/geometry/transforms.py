"""Rigid-body transforms (rotation + translation).

The ICP application layer estimates frame-to-frame motion as a rigid
transform, and the drive-sequence generator uses transforms to move the
ego vehicle and dynamic objects between frames.
"""

from __future__ import annotations

import numpy as np


class RigidTransform:
    """A proper rigid transform ``x -> R @ x + t``.

    ``R`` must be a rotation matrix (orthonormal, determinant +1) within a
    small numeric tolerance.
    """

    __slots__ = ("rotation", "translation")

    _ORTHONORMAL_TOL = 1e-8

    def __init__(self, rotation: np.ndarray, translation: np.ndarray):
        rotation = np.asarray(rotation, dtype=np.float64)
        translation = np.asarray(translation, dtype=np.float64)
        if rotation.shape != (3, 3):
            raise ValueError(f"rotation must be 3x3, got {rotation.shape}")
        if translation.shape != (3,):
            raise ValueError(f"translation must have shape (3,), got {translation.shape}")
        residual = rotation @ rotation.T - np.eye(3)
        if np.abs(residual).max() > 1e-6:
            raise ValueError("rotation matrix is not orthonormal")
        if np.linalg.det(rotation) < 0:
            raise ValueError("rotation matrix is a reflection (det < 0)")
        self.rotation = rotation.copy()
        self.translation = translation.copy()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls) -> "RigidTransform":
        return cls(np.eye(3), np.zeros(3))

    @classmethod
    def from_translation(cls, translation) -> "RigidTransform":
        return cls(np.eye(3), np.asarray(translation, dtype=np.float64))

    @classmethod
    def from_yaw(cls, yaw: float, translation=(0.0, 0.0, 0.0)) -> "RigidTransform":
        """Rotation about the vertical (z) axis — vehicle heading."""
        c, s = np.cos(yaw), np.sin(yaw)
        rotation = np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
        return cls(rotation, np.asarray(translation, dtype=np.float64))

    @classmethod
    def from_euler(cls, roll: float, pitch: float, yaw: float, translation=(0.0, 0.0, 0.0)) -> "RigidTransform":
        """ZYX (yaw-pitch-roll) Euler angles."""
        cr, sr = np.cos(roll), np.sin(roll)
        cp, sp = np.cos(pitch), np.sin(pitch)
        cy, sy = np.cos(yaw), np.sin(yaw)
        rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]], dtype=np.float64)
        ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]], dtype=np.float64)
        rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]], dtype=np.float64)
        return cls(rz @ ry @ rx, np.asarray(translation, dtype=np.float64))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform an ``(N, 3)`` array (or a single ``(3,)`` point)."""
        points = np.asarray(points, dtype=np.float64)
        single = points.ndim == 1
        pts = np.atleast_2d(points)
        out = pts @ self.rotation.T + self.translation
        return out[0] if single else out

    def compose(self, other: "RigidTransform") -> "RigidTransform":
        """``self ∘ other``: apply ``other`` first, then ``self``."""
        return RigidTransform(
            self.rotation @ other.rotation,
            self.rotation @ other.translation + self.translation,
        )

    def inverse(self) -> "RigidTransform":
        rot_inv = self.rotation.T
        return RigidTransform(rot_inv, -rot_inv @ self.translation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def yaw(self) -> float:
        """Heading angle (rotation about z) implied by the rotation."""
        return float(np.arctan2(self.rotation[1, 0], self.rotation[0, 0]))

    def magnitude(self) -> tuple[float, float]:
        """(rotation angle in radians, translation norm) of the transform."""
        trace = np.clip((np.trace(self.rotation) - 1.0) / 2.0, -1.0, 1.0)
        return float(np.arccos(trace)), float(np.linalg.norm(self.translation))

    def is_close(self, other: "RigidTransform", *, atol: float = 1e-9) -> bool:
        return bool(
            np.allclose(self.rotation, other.rotation, atol=atol)
            and np.allclose(self.translation, other.translation, atol=atol)
        )

    def __repr__(self) -> str:
        angle, dist = self.magnitude()
        return f"RigidTransform(angle={angle:.4f} rad, |t|={dist:.4f})"
