"""Axis-aligned bounding boxes.

Used by the k-d tree (region tracking during exact backtracking search),
the scene generator (object extents), and the tree validator (verifying
that every bucketed point lies in its leaf's region).
"""

from __future__ import annotations

import numpy as np


class Aabb:
    """An axis-aligned box ``[lo, hi]`` in 3D.

    Degenerate boxes (``lo == hi`` on some axis) are allowed; inverted
    boxes are not.
    """

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = np.asarray(lo, dtype=np.float64).copy()
        self.hi = np.asarray(hi, dtype=np.float64).copy()
        if self.lo.shape != (3,) or self.hi.shape != (3,):
            raise ValueError("Aabb corners must have shape (3,)")
        if (self.lo > self.hi).any():
            raise ValueError(f"inverted Aabb: lo={self.lo}, hi={self.hi}")

    @classmethod
    def infinite(cls) -> "Aabb":
        """A box covering all of space (used as the k-d tree root region)."""
        box = cls.__new__(cls)
        box.lo = np.full(3, -np.inf)
        box.hi = np.full(3, np.inf)
        return box

    # ------------------------------------------------------------------
    @property
    def extent(self) -> np.ndarray:
        return self.hi - self.lo

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of which points lie inside (inclusive)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return ((points >= self.lo) & (points <= self.hi)).all(axis=1)

    def distance_sq_to(self, point: np.ndarray) -> float:
        """Squared distance from ``point`` to the box (0 if inside).

        This is the standard branch-and-bound lower bound used by the
        exact (backtracking) k-d tree search.
        """
        point = np.asarray(point, dtype=np.float64)
        delta = np.maximum(self.lo - point, 0.0) + np.maximum(point - self.hi, 0.0)
        return float(np.dot(delta, delta))

    def intersects_sphere(self, center: np.ndarray, radius: float) -> bool:
        """Whether a sphere overlaps the box."""
        return self.distance_sq_to(center) <= radius * radius

    def split(self, dim: int, threshold: float) -> tuple["Aabb", "Aabb"]:
        """Split into (below, above) halves along ``dim`` at ``threshold``.

        The threshold must fall inside the box on that axis.
        """
        if not (self.lo[dim] <= threshold <= self.hi[dim]):
            raise ValueError(
                f"threshold {threshold} outside box [{self.lo[dim]}, {self.hi[dim]}]"
                f" on dim {dim}"
            )
        below_hi = self.hi.copy()
        below_hi[dim] = threshold
        above_lo = self.lo.copy()
        above_lo[dim] = threshold
        below = Aabb.__new__(Aabb)
        below.lo, below.hi = self.lo.copy(), below_hi
        above = Aabb.__new__(Aabb)
        above.lo, above.hi = above_lo, self.hi.copy()
        return below, above

    def union(self, other: "Aabb") -> "Aabb":
        out = Aabb.__new__(Aabb)
        out.lo = np.minimum(self.lo, other.lo)
        out.hi = np.maximum(self.hi, other.hi)
        return out

    def __repr__(self) -> str:
        return f"Aabb(lo={self.lo.tolist()}, hi={self.hi.tolist()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Aabb):
            return NotImplemented
        return bool(np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi))
