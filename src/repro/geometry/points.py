"""Point-cloud container.

A :class:`PointCloud` is a thin, validated wrapper around an ``(N, 3)``
float64 array.  Every dataset generator, tree builder, and architecture
model in this library exchanges points through this type, so the
validation performed here (finite values, correct shape and dtype) is
the single gate through which all geometry enters the system.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.aabb import Aabb


class PointCloud:
    """An immutable-by-convention collection of 3D points.

    Parameters
    ----------
    xyz:
        Array-like of shape ``(N, 3)``.  Copied unless ``copy=False`` and
        the input is already a contiguous float64 array.
    copy:
        Whether to defensively copy the input array.
    """

    __slots__ = ("_xyz",)

    def __init__(self, xyz: np.ndarray | Sequence[Sequence[float]], *, copy: bool = True):
        arr = np.array(xyz, dtype=np.float64, copy=copy)
        if arr.ndim == 1 and arr.size == 0:
            arr = arr.reshape(0, 3)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"point cloud must have shape (N, 3), got {arr.shape}")
        if arr.size and not np.isfinite(arr).all():
            raise ValueError("point cloud contains non-finite coordinates")
        self._xyz = arr

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "PointCloud":
        """A point cloud with zero points."""
        return cls(np.empty((0, 3)), copy=False)

    @classmethod
    def concatenate(cls, clouds: Iterable["PointCloud"]) -> "PointCloud":
        """Stack several clouds into one, preserving order."""
        arrays = [c.xyz for c in clouds]
        if not arrays:
            return cls.empty()
        return cls(np.vstack(arrays), copy=False)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def xyz(self) -> np.ndarray:
        """The underlying ``(N, 3)`` float64 array (do not mutate)."""
        return self._xyz

    def __len__(self) -> int:
        return self._xyz.shape[0]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._xyz)

    def __getitem__(self, index) -> "PointCloud":
        """Select points; always returns a (possibly single-point) cloud."""
        selected = np.atleast_2d(self._xyz[index])
        return PointCloud(selected)

    def __repr__(self) -> str:
        return f"PointCloud(n={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PointCloud):
            return NotImplemented
        return self._xyz.shape == other._xyz.shape and bool(
            np.array_equal(self._xyz, other._xyz)
        )

    def __hash__(self):  # pragma: no cover - clouds are not hashable
        raise TypeError("PointCloud is not hashable")

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def bounds(self) -> Aabb:
        """The tight axis-aligned bounding box of the cloud."""
        if len(self) == 0:
            raise ValueError("cannot compute bounds of an empty point cloud")
        return Aabb(self._xyz.min(axis=0), self._xyz.max(axis=0))

    def centroid(self) -> np.ndarray:
        """The arithmetic mean of the points, shape ``(3,)``."""
        if len(self) == 0:
            raise ValueError("cannot compute centroid of an empty point cloud")
        return self._xyz.mean(axis=0)

    def distances_to(self, point: np.ndarray) -> np.ndarray:
        """Euclidean distance from every point to ``point``, shape ``(N,)``."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (3,):
            raise ValueError(f"query point must have shape (3,), got {point.shape}")
        return np.linalg.norm(self._xyz - point, axis=1)

    def subsample(self, n: int, rng: np.random.Generator) -> "PointCloud":
        """Choose ``n`` points uniformly at random without replacement."""
        if n > len(self):
            raise ValueError(f"cannot subsample {n} points from a cloud of {len(self)}")
        idx = rng.choice(len(self), size=n, replace=False)
        return PointCloud(self._xyz[idx])

    def translated(self, offset: np.ndarray) -> "PointCloud":
        """A copy of the cloud shifted by ``offset`` (shape ``(3,)``)."""
        offset = np.asarray(offset, dtype=np.float64)
        if offset.shape != (3,):
            raise ValueError(f"offset must have shape (3,), got {offset.shape}")
        return PointCloud(self._xyz + offset, copy=False)

    def filter(self, mask: np.ndarray) -> "PointCloud":
        """Keep points where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (len(self),):
            raise ValueError(
                f"mask must have shape ({len(self)},), got {mask.shape}"
            )
        return PointCloud(self._xyz[mask])
