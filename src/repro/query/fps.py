"""Farthest point sampling fused with the k-d tree build (FuseFPS).

FPS is the standard point-cloud downsampler: starting from a seed
point, repeatedly select the point farthest from the current sample
set.  The naive algorithm (:func:`sample_fps_reference`) updates every
point's distance-to-sample after each selection — O(n·m) kernel work.

FuseFPS's observation is that the k-d tree build the pipeline runs
*anyway* hands FPS exactly the pruning structure it needs: the build's
buckets partition the cloud, each bucket's AABB gives a lower bound on
the distance from a new sample to every member, and a per-bucket
**upper bound on the members' current distance-to-sample** lets whole
buckets skip the update — if the new sample cannot get closer than the
bucket's farthest point already is, no member's minimum can change.
:func:`sample_fps` builds the flat tree (or fuses onto one the caller
already built) and runs the sampling loop over buckets instead of
points, visiting only the buckets the bound cannot clear.

The pruning is *exactly* lossless, not approximately: the AABB lower
bound is computed with the same per-axis-then-sum float64 operation
order as the distance kernel, so ``lb <= d2`` holds bit-for-bit, and a
skipped bucket's update is a provable no-op.  The selected index
sequence is therefore identical to the naive reference, including tie
handling (ties broken by ascending index — ``np.argmax``'s
first-occurrence rule; an all-duplicate cloud samples ids
``start, 0, 1, 2, ...``).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.config import KdTreeConfig
from repro.kdtree.engine import FlatKdTree
from repro.obs import get_registry


def _as_xyz(points) -> np.ndarray:
    xyz = points.xyz if isinstance(points, PointCloud) else np.asarray(
        points, dtype=np.float64
    )
    xyz = np.asarray(xyz, dtype=np.float64)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError("points must have shape (N, 3)")
    return xyz


def sample_fps_reference(points, m: int, *, start: int = 0) -> np.ndarray:
    """Naive O(n·m) farthest point sampling — the contract definition.

    One full-cloud distance update per selection.  Returns the ``m``
    selected indices in selection order; :func:`sample_fps` must
    reproduce this sequence exactly.
    """
    xyz = _as_xyz(points)
    n = xyz.shape[0]
    _check_sample_args(n, m, start)
    sel = np.empty(m, dtype=np.int64)
    sel[0] = start
    d2 = np.full(n, np.inf)
    cur = start
    for i in range(1, m):
        diff = xyz - xyz[cur]
        np.minimum(d2, (diff * diff).sum(axis=1), out=d2)
        d2[cur] = -np.inf
        cur = int(np.argmax(d2))
        sel[i] = cur
    return sel


def _check_sample_args(n: int, m: int, start: int) -> None:
    if n == 0:
        raise ValueError("cannot sample from an empty cloud")
    if not 1 <= m <= n:
        raise ValueError(f"m must be in [1, {n}], got {m}")
    if not 0 <= start < n:
        raise ValueError(f"start must be in [0, {n}), got {start}")


class BucketFpsState:
    """Per-bucket FPS bookkeeping over one flat tree's partition.

    Tracks, for every point, its squared distance to the sample set
    (``d2``; selected points are parked at ``-inf``) and, per bucket,
    the exact maximum of its members' ``d2`` plus the smallest member
    id achieving it.  :meth:`update` advances all of it for one new
    sample, visiting only the buckets whose AABB lower bound cannot
    prove the update a no-op.  The serve/blocked layers reuse this
    state per block, translating the local argmax through the block's
    global ids.
    """

    def __init__(self, flat: FlatKdTree, xyz: np.ndarray | None = None):
        self.xyz = flat.points if xyz is None else xyz
        n = self.xyz.shape[0]
        self.n = n
        members = flat.bucket_members
        offsets = flat.bucket_offsets
        sizes = np.diff(offsets)
        self._members = members
        self._starts = offsets[:-1]
        self._sizes = sizes
        nonempty = sizes > 0
        self._nonempty = nonempty
        nb = sizes.shape[0]
        # Bucket AABBs from the actual members (a leaf's region can be
        # unbounded; its occupied box is what bounds member distances).
        pts_m = self.xyz[members]
        self._lo = np.full((nb, 3), np.inf)
        self._hi = np.full((nb, 3), -np.inf)
        idx_ne = np.flatnonzero(nonempty)
        if idx_ne.size:
            starts_ne = offsets[:-1][idx_ne]
            self._lo[idx_ne] = np.minimum.reduceat(pts_m, starts_ne, axis=0)
            self._hi[idx_ne] = np.maximum.reduceat(pts_m, starts_ne, axis=0)
        self._bucket_of = np.empty(n, dtype=np.int64)
        self._bucket_of[members] = np.repeat(
            np.arange(nb, dtype=np.int64), sizes
        )
        self.d2 = np.full(n, np.inf)
        self.bucket_max = np.where(nonempty, np.inf, -np.inf)
        # Smallest member id per bucket (every d2 starts equal at inf).
        self.bucket_arg = np.full(nb, n, dtype=np.int64)
        if idx_ne.size:
            self.bucket_arg[idx_ne] = np.minimum.reduceat(members, starts_ne)
        self.visited = 0
        self.pruned = 0

    def peek(self) -> tuple[float, int]:
        """Current farthest point: ``(max d2, smallest id achieving it)``."""
        value = float(self.bucket_max.max())
        at = self.bucket_max == value
        return value, int(self.bucket_arg[at].min())

    def update(self, s: np.ndarray, selected_local: int | None = None) -> None:
        """Fold one new sample at ``s`` into every member's ``d2``.

        ``selected_local`` names the selected point when it belongs to
        this state's cloud: it is parked at ``-inf`` and its bucket is
        force-visited so the stored max/arg stay exact.
        """
        forced = -1
        if selected_local is not None:
            self.d2[selected_local] = -np.inf
            forced = int(self._bucket_of[selected_local])
        delta = np.maximum(np.maximum(self._lo - s, s - self._hi), 0.0)
        lb = (delta * delta).sum(axis=1)
        visit = (lb < self.bucket_max) & self._nonempty
        if forced >= 0:
            visit[forced] = True
        visit_ids = np.flatnonzero(visit)
        self.visited += int(visit_ids.size)
        self.pruned += int(self._nonempty.sum() - visit_ids.size)
        if visit_ids.size == 0:
            return
        ls = self._sizes[visit_ids]
        total = int(ls.sum())
        stops = np.cumsum(ls)
        within = np.arange(total) - np.repeat(stops - ls, ls)
        vis_members = self._members[
            np.repeat(self._starts[visit_ids], ls) + within
        ]
        diff = self.xyz[vis_members] - s
        self.d2[vis_members] = np.minimum(
            self.d2[vis_members], (diff * diff).sum(axis=1)
        )
        vals = self.d2[vis_members]
        seg = np.r_[0, stops[:-1]]
        new_max = np.maximum.reduceat(vals, seg)
        at_max = vals == np.repeat(new_max, ls)
        new_arg = np.minimum.reduceat(
            np.where(at_max, vis_members, self.n), seg
        )
        self.bucket_max[visit_ids] = new_max
        self.bucket_arg[visit_ids] = new_arg


def sample_fps(
    points,
    m: int,
    *,
    start: int = 0,
    flat: FlatKdTree | None = None,
    config: KdTreeConfig | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Build-fused farthest point sampling (FuseFPS).

    Selects ``m`` indices, bit-identical in sequence to
    :func:`sample_fps_reference`.  Pass ``flat`` to fuse onto a tree
    the pipeline already built (the intended mode — sampling then
    costs no extra build); otherwise one level-synchronous
    :func:`~repro.kdtree.flat_build.build_flat` pass constructs it,
    and the caller still ends up with FPS for the price of the build
    it needed anyway.
    """
    xyz = _as_xyz(points)
    _check_sample_args(xyz.shape[0], m, start)
    obs = get_registry()
    with obs.timer("build.fps"):
        if flat is None:
            from repro.kdtree.flat_build import build_flat

            flat, _ = build_flat(xyz, config, rng=rng)
        state = BucketFpsState(flat, xyz)
        sel = np.empty(m, dtype=np.int64)
        sel[0] = start
        cur = start
        for i in range(1, m):
            state.update(xyz[cur], cur)
            _, cur = state.peek()
            sel[i] = cur
    if obs.enabled:
        obs.counter("build.fps.calls").inc()
        obs.counter("build.fps.samples").inc(m)
        obs.counter("build.fps.bucket_visits").inc(state.visited)
        obs.counter("build.fps.bucket_pruned").inc(state.pruned)
    return sel
