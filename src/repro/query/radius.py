"""Batched, vectorized radius (range) search over a flat k-d tree.

The radius query is the other half of real perception workloads —
clustering and normal estimation ask "everything within ``r``", not
"the nearest ``k``" — and it reuses the exact machinery the batched
kNN engine already has:

* a **vectorized frontier walk** collects every ``(query, bucket)``
  pair the branch-and-bound search would visit: all queries walk down
  from the root together, always entering the near child and forking
  into the far child whenever the splitting-plane margin is within the
  radius (``|q[dim] - t| <= r`` — the same pruning rule as the
  per-query :func:`repro.kdtree.search.radius_search`);
* per visited bucket, the whole (queries x members) visit matrix is
  **pre-filtered** with the centered BLAS distance expansion
  (cancellation-safe far from the origin, see
  :mod:`repro.kdtree.engine`) under a conservative margin that can
  only ever *add* candidates — the bucket's points are sliced from
  bucket-ordered copies, so the matmul reads contiguous memory and
  the per-bucket working set stays cache-resident;
* the survivors' distances are **re-derived exactly** with the same
  float64 ``sqrt(((q - c)^2).sum())`` kernel every per-query path
  uses, gathering from the bucket-local arrays, and the inclusion
  test ``dist <= r`` runs on those exact values — so the reported
  pairs and distances are bit-identical to the reference loop.

Results come back as a CSR :class:`~repro.query.result.RaggedResult`
with rows in canonical (distance, index) order and an optional
``max_neighbors`` cap (the nearest ones win).
"""

from __future__ import annotations

import numpy as np

from repro.geometry import PointCloud
from repro.kdtree.engine import FlatKdTree
from repro.obs import get_registry
from repro.query.result import RaggedResult, build_ragged

#: Safety factor on the BLAS prefilter boundary, in units of the
#: expansion's magnitude scale.  The float64 expansion's cancellation
#: error on centered coordinates is a few ulps of ``|q_c|^2 + |c_c|^2``;
#: 64 ulps of that scale is comfortably conservative, and an over-wide
#: margin only sends extra candidates to the exact re-derivation.
_PREFILTER_ULPS = 64.0


def _as_query_array(queries) -> np.ndarray:
    xyz = queries.xyz if isinstance(queries, PointCloud) else np.asarray(
        queries, dtype=np.float64
    )
    xyz = np.atleast_2d(np.asarray(xyz, dtype=np.float64))
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError("queries must have shape (M, 3)")
    return xyz


def _check_radius(radius: float) -> float:
    radius = float(radius)
    if not radius >= 0.0:
        raise ValueError("radius must be non-negative")
    return radius


def _collect_radius_visits(
    flat: FlatKdTree, q: np.ndarray, radius: float
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized frontier walk of the radius-search visit set.

    Returns the ``(query_id, bucket_id)`` pairs whose bucket's region
    intersects the query's ball.  Unlike the kNN backtracking walk
    there is no home leaf to exclude — every reached leaf is scanned —
    and the fork test is the radius itself, inclusive (``<=``) to
    match the per-query reference's pruning rule exactly (``r = 0``
    still forks across planes the query sits on).
    """
    m = q.shape[0]
    frontier_q = np.arange(m, dtype=np.int64)
    frontier_n = np.zeros(m, dtype=np.int64)
    visit_q: list[np.ndarray] = []
    visit_b: list[np.ndarray] = []
    while frontier_q.size:
        at_leaf = flat.is_leaf[frontier_n]
        if at_leaf.any():
            visit_q.append(frontier_q[at_leaf])
            visit_b.append(flat.bucket_id[frontier_n[at_leaf]])
            frontier_q = frontier_q[~at_leaf]
            frontier_n = frontier_n[~at_leaf]
            if frontier_q.size == 0:
                break
        dims = flat.dim[frontier_n]
        delta = q[frontier_q, dims] - flat.threshold[frontier_n]
        go_left = delta <= 0
        near = np.where(go_left, flat.left[frontier_n], flat.right[frontier_n])
        far = np.where(go_left, flat.right[frontier_n], flat.left[frontier_n])
        fork = np.abs(delta) <= radius
        frontier_n = np.concatenate([near, far[fork]])
        frontier_q = np.concatenate([frontier_q, frontier_q[fork]])
    if not visit_q:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(visit_q), np.concatenate(visit_b)


def radius_batched(
    tree,
    queries,
    radius: float,
    *,
    max_neighbors: int | None = None,
) -> RaggedResult:
    """All reference points within ``radius`` of each query (exact).

    ``tree`` may be a :class:`~repro.kdtree.node.KdTree` or a
    :class:`FlatKdTree`.  Returns a canonical
    :class:`~repro.query.result.RaggedResult`; with ``max_neighbors``
    each row keeps only its nearest that many.  Bit-identical (pair
    set and distances) to :func:`radius_reference`.
    """
    radius = _check_radius(radius)
    obs = get_registry()
    q = _as_query_array(queries)
    flat = tree.flat()
    m = q.shape[0]
    with obs.timer("engine.radius"):
        vq, vb = _collect_radius_visits(flat, q, radius)
        pair_q: list[np.ndarray] = []
        pair_i: list[np.ndarray] = []
        pair_d: list[np.ndarray] = []
        if vq.size:
            r2 = radius * radius
            eps = np.finfo(np.float64).eps
            offsets = flat.bucket_offsets
            members = flat.bucket_members
            # Bucket-ordered copies: one 100%-hit gather each, so every
            # per-bucket slice below is a contiguous view and the exact
            # re-derivation gathers from cache-resident locals instead
            # of random rows of the full cloud.
            pts = flat.points[members]
            pts_c = flat.points_c[members]
            psq_all = flat.point_sq_c[members]
            order = np.argsort(vb, kind="stable")
            sorted_b = vb[order]
            run_starts = np.flatnonzero(
                np.r_[True, sorted_b[1:] != sorted_b[:-1]]
            )
            run_stops = np.r_[run_starts[1:], sorted_b.size]
            for start, stop in zip(run_starts, run_stops):
                qids = vq[order[start:stop]]
                bid = int(sorted_b[start])
                lo, hi = int(offsets[bid]), int(offsets[bid + 1])
                if hi == lo:
                    continue
                qb = q[qids]
                # Centered BLAS prefilter: cheap matmul metric over the
                # whole (queries x members) visit matrix, with a margin
                # so rounding can only let extra pairs through.
                qc = qb - flat.centroid
                qsq = (qc * qc).sum(axis=1)
                pc = pts_c[lo:hi]
                psq = psq_all[lo:hi]
                d2 = qsq[:, None] - 2.0 * (qc @ pc.T) + psq[None, :]
                scale = qsq[:, None] + max(float(psq.max()), 0.0)
                gi, bj = np.nonzero(d2 <= r2 + _PREFILTER_ULPS * eps * scale)
                if gi.size == 0:
                    continue
                # Exact re-derivation with the per-query paths' kernel;
                # the inclusion decision happens on these values only.
                diff = qb[gi] - pts[lo:hi][bj]
                dist = np.sqrt((diff * diff).sum(axis=1))
                inside = dist <= radius
                pair_q.append(qids[gi[inside]])
                pair_i.append(members[lo:hi][bj[inside]])
                pair_d.append(dist[inside])
        if pair_q:
            qid = np.concatenate(pair_q)
            idx = np.concatenate(pair_i)
            dst = np.concatenate(pair_d)
        else:
            qid = np.empty(0, dtype=np.int64)
            idx = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.float64)
        result = build_ragged(qid, idx, dst, m, max_neighbors=max_neighbors)
    if obs.enabled:
        obs.counter("engine.radius.calls").inc()
        obs.counter("engine.radius.queries").inc(m)
        obs.counter("engine.radius.bucket_scans").inc(int(vq.size))
        obs.counter("engine.radius.pairs").inc(int(result.n_pairs))
    return result


def radius_reference(
    tree,
    queries,
    radius: float,
    *,
    max_neighbors: int | None = None,
) -> RaggedResult:
    """Per-query reference loop defining the radius-search contract.

    An explicit-stack depth-first walk per query over the flat layout
    with the classic pruning rule (descend the near child, enter the
    far child iff ``|q[dim] - t| <= r``) and the exact float64
    distance kernel.  Slow on purpose — one Python traversal per
    query, the software pointer-chasing behavior the batched kernel
    removes — and the ground truth :func:`radius_batched` must match
    bit for bit.
    """
    radius = _check_radius(radius)
    q = _as_query_array(queries)
    flat = tree.flat()
    m = q.shape[0]
    pair_q: list[np.ndarray] = []
    pair_i: list[np.ndarray] = []
    pair_d: list[np.ndarray] = []
    for qi in range(m):
        point = q[qi]
        stack = [FlatKdTree.ROOT]
        while stack:
            node = stack.pop()
            if flat.is_leaf[node]:
                bid = flat.bucket_id[node]
                members = flat.bucket_members[
                    flat.bucket_offsets[bid] : flat.bucket_offsets[bid + 1]
                ]
                if members.size == 0:
                    continue
                diff = flat.points[members] - point
                dist = np.sqrt((diff * diff).sum(axis=1))
                inside = dist <= radius
                if inside.any():
                    found = members[inside]
                    pair_q.append(np.full(found.size, qi, dtype=np.int64))
                    pair_i.append(found)
                    pair_d.append(dist[inside])
                continue
            delta = point[flat.dim[node]] - flat.threshold[node]
            near, far = (
                (flat.left[node], flat.right[node])
                if delta <= 0
                else (flat.right[node], flat.left[node])
            )
            if abs(delta) <= radius:
                stack.append(far)
            stack.append(near)
    if pair_q:
        qid = np.concatenate(pair_q)
        idx = np.concatenate(pair_i)
        dst = np.concatenate(pair_d)
    else:
        qid = np.empty(0, dtype=np.int64)
        idx = np.empty(0, dtype=np.int64)
        dst = np.empty(0, dtype=np.float64)
    return build_ragged(qid, idx, dst, m, max_neighbors=max_neighbors)


def radius_bruteforce(
    reference,
    queries,
    radius: float,
    *,
    max_neighbors: int | None = None,
    chunk_size: int = 1024,
) -> RaggedResult:
    """Tree-free oracle: exact kernel over every (query, point) pair.

    Chunked over queries to bound the ``(chunk, N, 3)`` temporary.
    Same kernel, same canonical order — bit-identical to the tree
    paths on any input.
    """
    radius = _check_radius(radius)
    ref = _as_query_array(reference)
    q = _as_query_array(queries)
    m = q.shape[0]
    pair_q: list[np.ndarray] = []
    pair_i: list[np.ndarray] = []
    pair_d: list[np.ndarray] = []
    for start in range(0, m, chunk_size):
        chunk = q[start : start + chunk_size]
        diff = chunk[:, None, :] - ref[None, :, :]
        dist = np.sqrt((diff * diff).sum(axis=2))
        gi, pj = np.nonzero(dist <= radius)
        pair_q.append(gi + start)
        pair_i.append(pj.astype(np.int64))
        pair_d.append(dist[gi, pj])
    qid = np.concatenate(pair_q) if pair_q else np.empty(0, dtype=np.int64)
    idx = np.concatenate(pair_i) if pair_i else np.empty(0, dtype=np.int64)
    dst = np.concatenate(pair_d) if pair_d else np.empty(0, dtype=np.float64)
    return build_ragged(qid, idx, dst, m, max_neighbors=max_neighbors)
