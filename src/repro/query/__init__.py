"""Query-modality subsystem: radius search and farthest point sampling.

Everything before this package answered one question — k nearest
neighbors on 3D points.  This package adds the other two primitives
real perception pipelines spend their neighbor-search budget on, both
riding the same flat-tree machinery as the batched kNN engine:

* **Radius (range) search** — :func:`radius_batched`, a vectorized
  batched kernel over :class:`~repro.kdtree.engine.FlatKdTree` (ball
  pruning + BLAS candidate prefilter + exact float64 re-derivation),
  bit-identical to the per-query :func:`radius_reference` loop and to
  the tree-free :func:`radius_bruteforce` oracle.  Results are CSR
  :class:`RaggedResult` batches in canonical (distance, index) row
  order with an optional ``max_neighbors`` cap.
* **Farthest point sampling fused with tree build** (FuseFPS) —
  :func:`sample_fps`, which reuses the build's bucket partition and
  per-bucket distance bounds to prune point-to-sample updates, exactly
  reproducing the naive :func:`sample_fps_reference` selection
  sequence (ties broken by index).

Both surface behind the :class:`~repro.index.NeighborIndex` protocol
as ``query_radius`` / ``sample`` with ``supports_radius`` /
``supports_sample`` capability flags, and through the serving layer as
a ragged-result request type (see :mod:`repro.serve`).
"""

from repro.query.fps import BucketFpsState, sample_fps, sample_fps_reference
from repro.query.radius import (
    radius_batched,
    radius_bruteforce,
    radius_reference,
)
from repro.query.result import RaggedResult, build_ragged

__all__ = [
    "BucketFpsState",
    "RaggedResult",
    "build_ragged",
    "radius_batched",
    "radius_bruteforce",
    "radius_reference",
    "sample_fps",
    "sample_fps_reference",
]
