"""Ragged (CSR) result container shared by every radius-query path.

A radius query has no fixed ``k``: each query row returns however many
reference points fall inside its ball.  :class:`RaggedResult` stores
the batch answer in CSR form — one flat ``indices`` / ``distances``
pair plus an ``offsets`` array of row boundaries — the same layout the
engine's bucket membership uses, so rows are zero-copy slices and the
whole batch serializes as three dense arrays.

Row order is canonical everywhere: ascending distance, ties broken by
ascending reference index.  Every producer in the repo (the batched
kernel, the reference loop, brute force, the blocked router, the
sharded serve merge) emits this order, which is what makes the
bit-identity guarantees testable with ``assert_array_equal``.

Dtype stability is part of the contract: ``indices`` and ``offsets``
are always ``int64`` and ``distances`` ``float64``, including through
the :meth:`as_dict` / :meth:`from_dict` round trip — ``np.asarray``
over a Python list would otherwise pick the platform default int and
silently narrow offsets on 32-bit-int platforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class RaggedResult:
    """Radius-search neighbors for a batch of queries, in CSR form.

    Row ``i`` is ``indices[offsets[i]:offsets[i+1]]`` (reference point
    ids) with matching Euclidean ``distances``, sorted by ascending
    distance then ascending index.  Construction coerces the arrays to
    the contract dtypes (int64 / float64 / int64) and validates the
    CSR structure.
    """

    indices: np.ndarray
    distances: np.ndarray
    offsets: np.ndarray

    def __post_init__(self):
        indices = np.asarray(self.indices, dtype=np.int64)
        distances = np.asarray(self.distances, dtype=np.float64)
        offsets = np.asarray(self.offsets, dtype=np.int64)
        if indices.ndim != 1 or distances.ndim != 1 or offsets.ndim != 1:
            raise ValueError("RaggedResult arrays must be 1-D")
        if indices.shape != distances.shape:
            raise ValueError("indices and distances must have the same length")
        if offsets.size < 1 or offsets[0] != 0 or offsets[-1] != indices.size:
            raise ValueError(
                "offsets must run from 0 to len(indices) inclusive"
            )
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        object.__setattr__(self, "indices", indices)
        object.__setattr__(self, "distances", distances)
        object.__setattr__(self, "offsets", offsets)

    @property
    def n_queries(self) -> int:
        return self.offsets.shape[0] - 1

    @property
    def n_pairs(self) -> int:
        """Total (query, neighbor) pairs across all rows."""
        return self.indices.shape[0]

    def counts(self) -> np.ndarray:
        """Neighbors found per query, shape ``(n_queries,)``."""
        return np.diff(self.offsets)

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, distances)`` views of one query's neighbors."""
        lo, hi = self.offsets[i], self.offsets[i + 1]
        return self.indices[lo:hi], self.distances[lo:hi]

    # -- serialization --------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready view (the repo-wide stats convention)."""
        return {
            "indices": self.indices.tolist(),
            "distances": self.distances.tolist(),
            "offsets": self.offsets.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RaggedResult":
        """Inverse of :meth:`as_dict`; restores the contract dtypes."""
        return cls(
            indices=np.asarray(payload["indices"], dtype=np.int64),
            distances=np.asarray(payload["distances"], dtype=np.float64),
            offsets=np.asarray(payload["offsets"], dtype=np.int64),
        )


#: Pair count above which a capped build pre-reduces heavy rows before
#: the canonical sort.  Below this the two-pass sort is already cheap.
_PRECAP_PAIRS = 1_000_000


def _precap_rows(
    qid: np.ndarray,
    indices: np.ndarray,
    distances: np.ndarray,
    n_queries: int,
    max_neighbors: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shrink over-full rows to their cap-candidates before sorting.

    Sorting millions of pairs only to discard all but ``max_neighbors``
    per row is the dominant cost of a capped dense-radius build.  One
    stable sort groups pairs by row; each over-full row is cut at its
    ``max_neighbors``-th smallest distance (``np.partition`` on the
    order-isomorphic int64 bits), keeping every pair at or below that
    threshold.  Boundary ties survive the cut — the canonical rank cap
    downstream resolves them by ascending index exactly as before — so
    the final result is unchanged, only computed on far fewer pairs.
    """
    counts = np.bincount(qid, minlength=n_queries).astype(np.int64)
    if int(counts.max(initial=0)) <= max_neighbors:
        return qid, indices, distances
    grouped = np.argsort(qid, kind="stable")
    qid = qid[grouped]
    indices = indices[grouped]
    distances = np.ascontiguousarray(distances[grouped])
    bits = distances.view(np.int64)
    starts = np.zeros(n_queries, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    keep = np.ones(qid.size, dtype=bool)
    for row in np.flatnonzero(counts > max_neighbors):
        lo = int(starts[row])
        hi = lo + int(counts[row])
        seg = bits[lo:hi]
        kth = np.partition(seg, max_neighbors - 1)[max_neighbors - 1]
        keep[lo:hi] = seg <= kth
    return qid[keep], indices[keep], distances[keep]


def build_ragged(
    qid: np.ndarray,
    indices: np.ndarray,
    distances: np.ndarray,
    n_queries: int,
    *,
    max_neighbors: int | None = None,
) -> RaggedResult:
    """Assemble a canonical :class:`RaggedResult` from loose pairs.

    ``qid`` / ``indices`` / ``distances`` are parallel arrays of
    (query row, reference id, distance) triples in any order.  The
    pairs are put in canonical order — grouped by query, each row
    ascending by (distance, index) — and the optional ``max_neighbors``
    cap keeps each row's first ``max_neighbors`` entries, i.e. its
    nearest ones.  On large capped batches a pre-cap pass first trims
    each over-full row to its nearest candidates so the canonical sort
    never sees the pairs the cap would discard.  Every producer funnels
    through here so the canonical order has exactly one implementation.
    """
    if max_neighbors is not None and max_neighbors < 1:
        raise ValueError("max_neighbors must be positive")
    qid = np.asarray(qid, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    distances = np.ascontiguousarray(distances, dtype=np.float64)
    metric = not (distances.size and float(distances.min()) < 0.0)
    if (
        metric
        and max_neighbors is not None
        and qid.size > _PRECAP_PAIRS
    ):
        qid, indices, distances = _precap_rows(
            qid, indices, distances, n_queries, max_neighbors
        )
    if not metric:
        # Defensive fallback for non-metric inputs; every in-repo
        # producer emits non-negative distances and takes the fast path.
        order = np.lexsort((indices, distances, qid))
    else:
        # The canonical 3-key lexsort, decomposed into two integer
        # stable sorts (several times faster than lexsort's float
        # merges on multi-million-pair batches): the int64 view of a
        # non-negative float64 is order-isomorphic to its value, so a
        # stable sort on the bits orders by distance with exactly the
        # value-equality tie structure; a stable sort on the row id
        # then groups rows while preserving that order.
        bits = distances.view(np.int64)
        by_dist = np.argsort(bits, kind="stable")
        order = by_dist[np.argsort(qid[by_dist], kind="stable")]
    qid = qid[order]
    indices = indices[order]
    distances = distances[order]
    if qid.size > 1:
        # Ties — equal (row, distance) runs — still carry producer
        # arrival order; the canonical tie-break is ascending index.
        # Only `indices` needs repair: qid and the distance are
        # constant within a run.
        b = distances.view(np.int64)
        same = (qid[1:] == qid[:-1]) & (b[1:] == b[:-1])
        if same.any():
            run_id = np.zeros(qid.size, dtype=np.int64)
            np.cumsum(~same, out=run_id[1:])
            run_sizes = np.bincount(run_id)
            sub = np.flatnonzero(run_sizes[run_id] > 1)
            sub_sorted = sub[np.lexsort((indices[sub], run_id[sub]))]
            repaired = indices.copy()
            repaired[sub] = indices[sub_sorted]
            indices = repaired
    counts = np.bincount(qid, minlength=n_queries).astype(np.int64)
    if max_neighbors is not None and qid.size:
        starts = np.zeros(n_queries, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        rank = np.arange(qid.size) - np.repeat(starts, counts)
        keep = rank < max_neighbors
        qid = qid[keep]
        indices = indices[keep]
        distances = distances[keep]
        counts = np.minimum(counts, max_neighbors)
    offsets = np.zeros(n_queries + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return RaggedResult(indices=indices, distances=distances, offsets=offsets)
