"""Functional Units: the distance-compare datapath of Figure 4.

A Functional Unit (FU) holds one query point and a running sorted list
of the k best candidates seen so far.  Reference points are broadcast
to all FUs one per cycle; each FU computes the squared distance and
conditionally inserts into its list.  The same FU design is shared by
the linear architecture (scanning whole frames) and QuickNN's TSearch
(scanning single buckets).

:class:`FunctionalUnit` is the bit-true functional model (used in tests
to prove the datapath matches numpy); :func:`fu_batch_cycles` is the
cycle model: a batch of up to ``n_fus`` queries scans ``n_candidates``
points in ``n_candidates`` cycles plus a fixed pipeline fill/drain.
"""

from __future__ import annotations

import numpy as np

#: Pipeline depth of the FU datapath: subtract, square, accumulate,
#: compare/insert stages.
FU_PIPELINE_DEPTH = 8


class FunctionalUnit:
    """Running top-k list for one query point."""

    def __init__(self, query: np.ndarray, k: int):
        query = np.asarray(query, dtype=np.float64)
        if query.shape != (3,):
            raise ValueError("query must have shape (3,)")
        if k < 1:
            raise ValueError("k must be positive")
        self.query = query
        self.k = k
        self._indices: list[int] = []
        self._distances: list[float] = []

    def process(self, index: int, point: np.ndarray) -> None:
        """Consume one broadcast reference point."""
        diff = np.asarray(point, dtype=np.float64) - self.query
        dist = float(np.sqrt((diff * diff).sum()))
        if len(self._distances) == self.k and dist >= self._distances[-1]:
            return
        pos = int(np.searchsorted(np.asarray(self._distances), dist))
        self._indices.insert(pos, index)
        self._distances.insert(pos, dist)
        if len(self._distances) > self.k:
            self._indices.pop()
            self._distances.pop()

    def process_batch(self, indices: np.ndarray, points: np.ndarray) -> None:
        for i, p in zip(indices, points):
            self.process(int(i), p)

    def results(self) -> tuple[np.ndarray, np.ndarray]:
        """(indices, distances), padded with -1/inf to length k."""
        idx = np.full(self.k, -1, dtype=np.int64)
        dst = np.full(self.k, np.inf)
        idx[: len(self._indices)] = self._indices
        dst[: len(self._distances)] = self._distances
        return idx, dst


def fu_batch_cycles(n_queries: int, n_candidates: int, n_fus: int) -> int:
    """Cycles for an FU array to scan ``n_candidates`` broadcast points.

    Queries beyond ``n_fus`` require additional passes over the
    candidate stream, exactly like the linear architecture's outer loop.
    """
    if n_fus < 1:
        raise ValueError("n_fus must be positive")
    if n_queries < 0 or n_candidates < 0:
        raise ValueError("counts must be non-negative")
    if n_queries == 0 or n_candidates == 0:
        return 0
    passes = -(-n_queries // n_fus)
    return passes * (n_candidates + FU_PIPELINE_DEPTH)
