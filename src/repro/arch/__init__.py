"""Architecture models: QuickNN and its hardware baselines.

Transaction-level, cycle-accounting models of the three accelerators
the paper evaluates on FPGA —

* :class:`LinearArch` — the exact brute-force baseline (Section 3),
* :class:`SimpleKdArch` — a k-d tree accelerator with no memory
  optimizations (the middle bar of Figure 12),
* :class:`QuickNN` — the full memory- and performance-optimized design
  (Sections 4-5),

— plus the reusable building blocks: functional units, merge-sort
accelerator, gather caches, bucket-block store, banked tree cache, and
the parallel-traversal simulator.
"""

from repro.arch.bucket_store import BlockSpan, BucketBlockStore
from repro.arch.exact_arch import ExactKdArch
from repro.arch.fu import FU_PIPELINE_DEPTH, FunctionalUnit, fu_batch_cycles
from repro.arch.gather import FlushEvent, GatherCache, ReadGatherCache, WriteGatherCache
from repro.arch.linear_arch import LinearArch, LinearArchConfig
from repro.arch.params import CORE_CLOCK_HZ, POINT_BYTES, RESULT_BYTES, fps_from_cycles
from repro.arch.pipeline import PipelineResult, run_drive
from repro.arch.quicknn import QuickNN, QuickNNConfig
from repro.arch.report import FrameReport
from repro.arch.simple_kd import SimpleKdArch, SimpleKdConfig
from repro.arch.sorter import MergeSorter, MergeSorterConfig
from repro.arch.traversal import TraversalReport, simulate_traversal, traversal_cycles_estimate
from repro.arch.tree_cache import BankedTreeCache, PartitionScheme, TreeCacheConfig

__all__ = [
    "BankedTreeCache",
    "BlockSpan",
    "BucketBlockStore",
    "CORE_CLOCK_HZ",
    "ExactKdArch",
    "FU_PIPELINE_DEPTH",
    "FlushEvent",
    "FrameReport",
    "FunctionalUnit",
    "GatherCache",
    "LinearArch",
    "LinearArchConfig",
    "MergeSorter",
    "MergeSorterConfig",
    "POINT_BYTES",
    "PartitionScheme",
    "PipelineResult",
    "QuickNN",
    "QuickNNConfig",
    "RESULT_BYTES",
    "ReadGatherCache",
    "SimpleKdArch",
    "SimpleKdConfig",
    "TraversalReport",
    "TreeCacheConfig",
    "WriteGatherCache",
    "fps_from_cycles",
    "fu_batch_cycles",
    "run_drive",
    "simulate_traversal",
    "traversal_cycles_estimate",
]
