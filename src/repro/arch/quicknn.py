"""The QuickNN architecture model (Sections 4-5 of the paper).

One simulated *round* of the steady-state pipeline (Figure 7):

* **TBuild** samples the incoming frame, constructs the next k-d tree
  with the merge-sort unit, and places every point into bucket blocks
  through the parallel traversal workers and the **write-gather cache**.
* **TSearch** *snoops* the same Rd1 point stream (eliminating the Rd2
  stream entirely), gathers queries per target bucket in the
  **read-gather cache**, and on each gather flush burst-reads one
  bucket (Rd3) and scans it through the FU array, writing results (Wr2).

The model is functional *and* performance-accurate at the transaction
level: the returned neighbors are the real approximate-kNN answers, and
every DRAM transaction those answers require is charged to the DDR4
timing model in the order the hardware would issue it.

Cycle composition per frame::

    total = sample + construct + place&search

where the place&search phase runs three concurrent engines and is
bounded by the busiest one:

* TBuild: max(its memory streams, traversal-worker throughput),
* TSearch: bucket reads + FU scans + result writes (single-buffered,
  so these serialize per gather flush),
* the shared DRAM interface: the sum of all streams' busy cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.bucket_store import BucketBlockStore
from repro.arch.fu import fu_batch_cycles
from repro.arch.gather import ReadGatherCache, WriteGatherCache
from repro.arch.params import (
    POINT_BYTES,
    RESULT_BYTES,
    STREAM_CHUNK_BYTES,
)
from repro.arch.report import FrameReport
from repro.arch.schedule import BucketJob, StreamJob, schedule_phase3
from repro.arch.sorter import MergeSorter, MergeSorterConfig
from repro.arch.traversal import traversal_cycles_estimate
from repro.arch.tree_cache import BankedTreeCache, TreeCacheConfig
from repro.geometry import PointCloud
from repro.kdtree import KdTreeConfig, build_tree, knn_approx, place_points, update_tree
from repro.kdtree.search import QueryResult
from repro.sim.address import AddressAllocator
from repro.sim.dram import DramModel, DramTimingParams


@dataclass(frozen=True)
class QuickNNConfig:
    """Full architecture configuration.

    Defaults reproduce the paper's 64-FU prototype operating point:
    256-point buckets, a 128 x 8 write-gather cache, a read-gather
    cache with one slot per bucket-map entry and ``r_n = n_fus``
    (Section 4.2 requires ``r_n >= N_FU`` to keep the FUs busy), eight
    traversal workers over a four-bank tree cache with the top three
    levels replicated.
    """

    n_fus: int = 64
    tree: KdTreeConfig = KdTreeConfig()
    dram: DramTimingParams = DramTimingParams()
    sorter: MergeSorterConfig = MergeSorterConfig()
    tree_cache: TreeCacheConfig = TreeCacheConfig()
    n_traversal_workers: int = 8
    #: Gather-cache slot counts; ``None`` sizes them to the tree's
    #: bucket count (one slot per bucket-map entry, as the prototype's
    #: 128-slot caches match its 128-bucket trees at 30k points).
    write_gather_slots: int | None = None
    write_gather_capacity: int = 8
    read_gather_slots: int | None = None
    read_gather_capacity: int | None = None
    #: Control-FSM cycles to launch one gathered-bucket search: bucket
    #: map lookup, DRAM request issue, FU scoreboard setup.
    bucket_kickoff_cycles: int = 24
    #: TSearch snoops TBuild's Rd1 stream (Section 4.2's stream merge).
    #: Disable to measure the cost of a separate Rd2 stream (ablation).
    enable_snooping: bool = True
    #: How TBuild obtains each round's tree: ``"rebuild"`` constructs it
    #: from scratch (the prototype's choice at <100k points) or
    #: ``"incremental"`` merges/splits the previous round's tree
    #: (Section 4.4, which the paper projects as essential at ~1M).
    tree_strategy: str = "rebuild"
    #: Model the prototype's fixed-point coordinate datapath: quantize
    #: all coordinates to 32-bit Q24.8 words before building/searching,
    #: so the returned neighbors are what the hardware would compute.
    model_fixed_point: bool = False
    #: Phase-3 duration estimator: ``"analytic"`` bounds the phase by
    #: its busiest resource; ``"event"`` runs the discrete-event
    #: scheduler in :mod:`repro.arch.schedule`, simulating DRAM queueing
    #: and the snoop/traverse/scan dependency chain explicitly.
    scheduler: str = "analytic"

    def __post_init__(self):
        if self.n_fus < 1:
            raise ValueError("need at least one FU")
        if self.n_traversal_workers < 1:
            raise ValueError("need at least one traversal worker")
        for value in (self.write_gather_slots, self.write_gather_capacity,
                      self.read_gather_slots):
            if value is not None and value < 1:
                raise ValueError("gather cache dimensions must be positive")
        if self.read_gather_capacity is not None and self.read_gather_capacity < 1:
            raise ValueError("read_gather_capacity must be positive when given")
        if self.bucket_kickoff_cycles < 0:
            raise ValueError("bucket_kickoff_cycles must be non-negative")
        if self.tree_strategy not in ("rebuild", "incremental"):
            raise ValueError("tree_strategy must be 'rebuild' or 'incremental'")
        if self.scheduler not in ("analytic", "event"):
            raise ValueError("scheduler must be 'analytic' or 'event'")

    @property
    def effective_read_gather_capacity(self) -> int:
        """r_n, defaulting to N_FU as the paper prescribes."""
        return self.read_gather_capacity or self.n_fus


class QuickNN:
    """Transaction-level model of the complete QuickNN accelerator."""

    def __init__(self, config: QuickNNConfig | None = None):
        self.config = config or QuickNNConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        reference: PointCloud | np.ndarray,
        queries: PointCloud | np.ndarray,
        k: int,
        *,
        rng: np.random.Generator | None = None,
    ) -> tuple[QueryResult, FrameReport]:
        """Simulate one steady-state round on a successive-frame pair.

        The *reference* frame's tree (built in the previous round) is
        searched with the *query* frame, while TBuild simultaneously
        builds the query frame's own tree for the next round — the
        paper's Figure 7 data sharing, which is what lets TSearch snoop
        TBuild's read stream.
        """
        if k < 1:
            raise ValueError("k must be positive")
        cfg = self.config
        rng = rng or np.random.default_rng(0)
        ref = reference.xyz if isinstance(reference, PointCloud) else np.asarray(reference)
        qry = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries)
        n_ref, n_qry = ref.shape[0], qry.shape[0]
        if n_ref == 0 or n_qry == 0:
            raise ValueError("frames must be non-empty")
        if cfg.model_fixed_point:
            from repro.geometry.quantize import roundtrip

            ref = roundtrip(ref)
            qry = roundtrip(qry)

        # ---------------- functional execution -----------------------
        # Previous round's tree over the reference frame (searched now).
        ref_tree, _ = build_tree(ref, cfg.tree, rng=rng)
        result = knn_approx(ref_tree, qry, k)
        # This round's TBuild work: the query frame's own tree, either
        # constructed from scratch or derived from the previous round's
        # tree by incremental merge/split (Section 4.4).
        if cfg.tree_strategy == "rebuild":
            qry_tree, build_trace = build_tree(qry, cfg.tree, rng=rng, place=False)
            place_points(qry_tree, trace=build_trace)
            sample_size = build_trace.sample_size
            sort_sizes = build_trace.sort_sizes
        else:
            qry_tree, update_trace = update_tree(ref_tree, qry, cfg.tree)
            sample_size = 0  # no sampling pass: the old tree seeds the new one
            sort_sizes = update_trace.sort_sizes

        # ---------------- memory layout -------------------------------
        dram = DramModel(cfg.dram)
        allocator = AddressAllocator()
        frame_region = allocator.allocate("frame", n_qry * POINT_BYTES)
        result_region = allocator.allocate("results", n_qry * k * RESULT_BYTES)
        ref_store = BucketBlockStore(
            allocator, n_buckets=len(ref_tree.buckets),
            block_points=cfg.tree.bucket_capacity)
        qry_store = BucketBlockStore(
            AddressAllocator(alignment=64), n_buckets=len(qry_tree.buckets),
            block_points=cfg.tree.bucket_capacity)
        # Pre-fill the reference store exactly as last round's TBuild
        # left it, so Rd3 sees the true block chains.
        for bucket_id, members in enumerate(ref_tree.buckets):
            if members.size:
                ref_store.append(bucket_id, int(members.size))

        phase_cycles: dict[str, int] = {}
        compute_cycles: dict[str, int] = {}

        # ---------------- phase 1: initial sampling -------------------
        sample_cycles = dram.access_scattered(
            "RdSample", sample_size, POINT_BYTES, write=False
        ) if sample_size else 0
        phase_cycles["sample"] = sample_cycles

        # ---------------- phase 2: tree construction ------------------
        sorter = MergeSorter(cfg.sorter)
        construct_cycles = sorter.charge_many(sort_sizes)
        compute_cycles["sorter"] = sorter.total_cycles
        phase_cycles["construct"] = construct_cycles

        # ---------------- phase 3: placement + snooped search ---------
        # TBuild side: stream the frame once (Rd1); TSearch snoops it,
        # so there is no Rd2 — unless snooping is disabled (ablation),
        # in which case TSearch re-reads the frame itself.
        rd1_chunk_costs = _stream_chunks(dram, "Rd1", frame_region.base,
                                         n_qry * POINT_BYTES, write=False)
        rd1 = sum(rd1_chunk_costs)
        rd2 = 0
        rd2_chunk_costs = None
        if not cfg.enable_snooping:
            rd2_chunk_costs = _stream_chunks(dram, "Rd2", frame_region.base,
                                             n_qry * POINT_BYTES, write=False)
            rd2 = sum(rd2_chunk_costs)

        # Traversal workers route each point to its bucket.
        cache = BankedTreeCache(qry_tree, cfg.tree_cache,
                                n_workers=cfg.n_traversal_workers, rng=rng)
        traversal = traversal_cycles_estimate(
            n_qry, qry_tree.depth(),
            n_workers=cfg.n_traversal_workers,
            n_banks=cfg.tree_cache.n_banks,
            replicated_levels=cfg.tree_cache.replicated_levels)
        compute_cycles["traversal"] = traversal

        # Write-gather the placement stream into bucket blocks (Wr1).
        # Jobs are tagged with the stream position that triggered them
        # so the event scheduler can replay the dependency order.
        leaf_to_bucket_q = {n.index: n.bucket_id for n in qry_tree.nodes if n.is_leaf}
        place_leaves = qry_tree.descend_batch(qry)
        wg_slots = cfg.write_gather_slots or len(qry_tree.buckets)
        wg = WriteGatherCache(wg_slots, cfg.write_gather_capacity)
        wr1 = 0
        wr1_jobs: list[StreamJob] = []
        for position, leaf in enumerate(place_leaves):
            for event in wg.insert(leaf_to_bucket_q[int(leaf)]):
                cost = 0
                for span in qry_store.append(event.bucket_id, event.count):
                    cost += dram.access("Wr1", span.addr, span.nbytes, write=True)
                wr1 += cost
                wr1_jobs.append(StreamJob(point_index=position, cost=cost))
        for event in wg.drain():
            cost = 0
            for span in qry_store.append(event.bucket_id, event.count):
                cost += dram.access("Wr1", span.addr, span.nbytes, write=True)
            wr1 += cost
            wr1_jobs.append(StreamJob(point_index=n_qry - 1, cost=cost))

        # TSearch side: read-gather the snooped query stream, burst-read
        # buckets (Rd3), scan through the FU array, write results (Wr2).
        leaf_to_bucket_r = {n.index: n.bucket_id for n in ref_tree.nodes if n.is_leaf}
        search_leaves = ref_tree.descend_batch(qry)
        rg_slots = cfg.read_gather_slots or len(ref_tree.buckets)
        rg = ReadGatherCache(rg_slots, cfg.effective_read_gather_capacity)
        rd3 = wr2 = 0
        fu_total = 0
        n_bucket_reads = 0
        result_cursor = 0
        bucket_jobs: list[BucketJob] = []

        def charge_bucket(event, position: int) -> None:
            nonlocal rd3, wr2, fu_total, n_bucket_reads, result_cursor
            n_bucket_reads += 1
            rd3_cost = 0
            for span in ref_store.read_spans(event.bucket_id):
                rd3_cost += dram.access("Rd3", span.addr, span.nbytes, write=False)
            rd3 += rd3_cost
            fu_cost = fu_batch_cycles(
                event.count, ref_store.bucket_fill(event.bucket_id), cfg.n_fus)
            fu_total += fu_cost
            nbytes = event.count * k * RESULT_BYTES
            wr2_cost = dram.access("Wr2", result_region.addr(result_cursor),
                                   nbytes, write=True)
            wr2 += wr2_cost
            result_cursor += nbytes
            bucket_jobs.append(BucketJob(
                point_index=position, rd3_cost=rd3_cost, fu_cost=fu_cost,
                wr2_cost=wr2_cost, kickoff=cfg.bucket_kickoff_cycles))

        for position, leaf in enumerate(search_leaves):
            for event in rg.insert(leaf_to_bucket_r[int(leaf)]):
                charge_bucket(event, position)
        for event in rg.drain():
            charge_bucket(event, n_qry - 1)

        compute_cycles["fu"] = fu_total
        kickoff = n_bucket_reads * cfg.bucket_kickoff_cycles

        tbuild_busy = max(rd1 + wr1, traversal)
        tsearch_busy = rd2 + rd3 + wr2 + fu_total + kickoff
        mem_busy = rd1 + rd2 + wr1 + rd3 + wr2
        if cfg.scheduler == "event":
            schedule = schedule_phase3(
                n_points=n_qry,
                chunk_costs=rd1_chunk_costs,
                points_per_chunk=max(1, STREAM_CHUNK_BYTES // POINT_BYTES),
                traversal_cycles_per_point=traversal / n_qry,
                wr1_jobs=wr1_jobs,
                bucket_jobs=bucket_jobs,
                rd2_chunk_costs=rd2_chunk_costs,
            )
            phase3 = schedule.total_cycles
        else:
            phase3 = max(tbuild_busy, tsearch_busy, mem_busy)
        phase_cycles["place+search"] = phase3

        total = sample_cycles + construct_cycles + phase3
        report = FrameReport(
            architecture=f"quicknn-{cfg.n_fus}fu",
            n_reference=n_ref,
            n_query=n_qry,
            k=k,
            total_cycles=total,
            phase_cycles=phase_cycles,
            compute_cycles=compute_cycles,
            dram=dram.stats,
            notes={
                "bucket_reads": float(n_bucket_reads),
                "write_gather_flushes": float(wg.stats.flushes),
                "read_gather_mean_fill": rg.stats.mean_fill,
                "tree_cache_bytes": float(cache.cache_bytes()),
                "tbuild_busy": float(tbuild_busy),
                "tsearch_busy": float(tsearch_busy),
                "mem_busy": float(mem_busy),
            },
        )
        return result, report

    def simulate(self, n_points: int, k: int = 8, *, seed: int = 0) -> FrameReport:
        """Performance report on a synthetic successive-frame pair."""
        from repro.datasets import lidar_frame_pair

        ref, qry = lidar_frame_pair(n_points, seed=seed)
        _, report = self.run(ref, qry, k)
        return report


def _stream_chunks(
    dram: DramModel, name: str, base: int, nbytes: int, *, write: bool
) -> list[int]:
    """Issue a long sequential transfer; returns per-chunk cycle costs."""
    costs = []
    offset = 0
    while offset < nbytes:
        take = min(STREAM_CHUNK_BYTES, nbytes - offset)
        costs.append(dram.access(name, base + offset, take, write=write))
        offset += take
    return costs
