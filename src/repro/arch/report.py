"""Per-frame performance reports produced by the architecture models."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.params import fps_from_cycles
from repro.sim.dram import DramStats


@dataclass
class FrameReport:
    """What one simulated frame cost.

    ``phase_cycles`` breaks the total down by pipeline phase (sample /
    construct / place+search / drain for QuickNN; stream passes for the
    linear architecture).  ``dram`` is the frozen traffic statistics of
    the frame's DRAM transactions.
    """

    architecture: str
    n_reference: int
    n_query: int
    k: int
    total_cycles: int
    phase_cycles: dict[str, int] = field(default_factory=dict)
    compute_cycles: dict[str, int] = field(default_factory=dict)
    dram: DramStats = field(default_factory=DramStats)
    notes: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.total_cycles <= 0:
            raise ValueError("total_cycles must be positive")

    @property
    def fps(self) -> float:
        """Frames per second at the 100 MHz core clock."""
        return fps_from_cycles(self.total_cycles)

    @property
    def latency_ms(self) -> float:
        return self.total_cycles * 1e-5

    @property
    def memory_accesses(self) -> int:
        """Access-transaction count (one burst = one access)."""
        return self.dram.accesses

    @property
    def memory_words(self) -> int:
        """8-byte bus words moved — the unit of the paper's Figure 12."""
        return self.dram.words

    @property
    def bandwidth_utilization(self) -> float:
        """Data cycles over total frame cycles (the paper's Figure 13)."""
        return self.dram.bandwidth_utilization(self.total_cycles)

    def as_dict(self) -> dict:
        """Flat scalar view, DRAM stats nested under ``dram.*``."""
        out = {
            "n_reference": self.n_reference,
            "n_query": self.n_query,
            "k": self.k,
            "total_cycles": self.total_cycles,
            "fps": self.fps,
            "latency_ms": self.latency_ms,
            "bandwidth_utilization": self.bandwidth_utilization,
        }
        for phase, cycles in self.phase_cycles.items():
            out[f"phase_cycles.{phase}"] = cycles
        for unit, cycles in self.compute_cycles.items():
            out[f"compute_cycles.{unit}"] = cycles
        for key, value in self.dram.as_dict().items():
            out[f"dram.{key}"] = value
        for key, value in self.notes.items():
            out[f"notes.{key}"] = value
        return out

    def summary(self) -> str:
        phases = ", ".join(f"{k}={v}" for k, v in self.phase_cycles.items())
        return (
            f"{self.architecture}: {self.n_reference} ref x {self.n_query} qry, "
            f"k={self.k}: {self.total_cycles} cycles ({self.fps:.1f} FPS), "
            f"{self.memory_words} words, util={self.bandwidth_utilization:.2f} "
            f"[{phases}]"
        )
