""""Simple k-d" architecture: the tree method with no memory optimization.

The middle bar of the paper's Figure 12.  Same algorithm as QuickNN —
build a bucketed k-d tree, place points, search one bucket per query —
but with the straightforward software-style memory layout: tree nodes
*and* points live in DRAM, buckets are pointer lists over scattered
points, and there are no gather caches and no stream merging.  Every
traversal step and every bucket point therefore costs an independent
random DRAM access.

Comparing this model against :class:`~repro.arch.quicknn.QuickNN`
isolates how much of QuickNN's win comes from the memory system rather
than from the k-d tree algorithm itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.params import POINT_BYTES, RESULT_BYTES, STREAM_CHUNK_BYTES, TREE_NODE_BYTES
from repro.arch.report import FrameReport
from repro.arch.sorter import MergeSorter, MergeSorterConfig
from repro.arch.fu import fu_batch_cycles
from repro.geometry import PointCloud
from repro.kdtree import KdTreeConfig, build_tree, knn_approx
from repro.kdtree.search import QueryResult
from repro.sim.address import AddressAllocator
from repro.sim.dram import DramModel, DramTimingParams


@dataclass(frozen=True)
class SimpleKdConfig:
    """Geometry of the unoptimized k-d tree accelerator."""

    n_fus: int = 64
    tree: KdTreeConfig = KdTreeConfig()
    dram: DramTimingParams = DramTimingParams()
    sorter: MergeSorterConfig = MergeSorterConfig()
    #: The paper's Simple k-d has "only a simple cache": the tree nodes
    #: fit on chip, but buckets stay scattered in DRAM.  Set False to
    #: model the fully DRAM-resident software layout instead.
    tree_cached_on_chip: bool = True

    def __post_init__(self):
        if self.n_fus < 1:
            raise ValueError("need at least one FU")


class SimpleKdArch:
    """Transaction-level model of the cache-less k-d tree accelerator."""

    def __init__(self, config: SimpleKdConfig | None = None):
        self.config = config or SimpleKdConfig()

    def run(
        self,
        reference: PointCloud | np.ndarray,
        queries: PointCloud | np.ndarray,
        k: int,
    ) -> tuple[QueryResult, FrameReport]:
        """Execute the search functionally and account the memory traffic."""
        if k < 1:
            raise ValueError("k must be positive")
        cfg = self.config
        ref = reference.xyz if isinstance(reference, PointCloud) else np.asarray(reference)
        qry = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries)
        n_ref, n_qry = ref.shape[0], qry.shape[0]

        tree, trace = build_tree(ref, cfg.tree)
        result = knn_approx(tree, qry, k)

        dram = DramModel(cfg.dram)
        allocator = AddressAllocator()
        ref_region = allocator.allocate("reference", n_ref * POINT_BYTES)
        allocator.allocate("query", n_qry * POINT_BYTES)
        allocator.allocate("tree", tree.n_nodes * TREE_NODE_BYTES)

        depth = tree.depth()
        phase_cycles: dict[str, int] = {}
        sorter = MergeSorter(cfg.sorter)

        # --- Build: sample read + on-chip sort (scratchpad), tree write-out.
        build_cycles = dram.access_scattered(
            "RdSample", trace.sample_size, POINT_BYTES, write=False)
        build_cycles += sorter.charge_many(trace.sort_sizes)
        if not cfg.tree_cached_on_chip:
            build_cycles += dram.access_scattered(
                "WrTree", tree.n_nodes, TREE_NODE_BYTES, write=True)
        phase_cycles["build"] = build_cycles

        # --- Placement: stream the frame in, then per point walk the
        # tree and write the point into its scattered bucket.
        place_cycles = _stream(dram, "Rd1", ref_region.base, n_ref * POINT_BYTES)
        if not cfg.tree_cached_on_chip:
            place_cycles += dram.access_scattered(
                "RdTreePlace", n_ref * (depth + 1), TREE_NODE_BYTES, write=False,
                turnaround_each=False)
        place_cycles += dram.access_scattered(
            "Wr1", n_ref, POINT_BYTES, write=True, turnaround_each=True)
        phase_cycles["place"] = place_cycles

        # --- Search: per query, read the query point, walk the tree,
        # then fetch every bucket point through its pointer.
        leaf_ids = tree.descend_batch(qry)
        bucket_points_read = int(
            sum(tree.buckets[tree.nodes[int(l)].bucket_id].size for l in leaf_ids)
        )
        search_mem = _stream(dram, "Rd2", ref_region.base, n_qry * POINT_BYTES)
        if not cfg.tree_cached_on_chip:
            search_mem += dram.access_scattered(
                "RdTreeSearch", n_qry * (depth + 1), TREE_NODE_BYTES, write=False)
        search_mem += dram.access_scattered(
            "Rd3", bucket_points_read, POINT_BYTES, write=False)
        search_mem += dram.access_scattered(
            "Wr2", n_qry, k * RESULT_BYTES, write=True)
        search_compute = fu_batch_cycles(n_qry, bucket_points_read // max(n_qry, 1), cfg.n_fus)
        phase_cycles["search"] = max(search_mem, search_compute)

        total = sum(phase_cycles.values())
        report = FrameReport(
            architecture=f"simple-kd-{cfg.n_fus}fu",
            n_reference=n_ref,
            n_query=n_qry,
            k=k,
            total_cycles=total,
            phase_cycles=phase_cycles,
            compute_cycles={"sorter": sorter.total_cycles, "fu": search_compute},
            dram=dram.stats,
        )
        return result, report

    def simulate(self, n_reference: int, n_query: int, k: int, *, seed: int = 0) -> FrameReport:
        """Traffic report on a synthetic frame pair of the given size."""
        from repro.datasets import lidar_frame_pair

        ref, qry = lidar_frame_pair(max(n_reference, n_query), seed=seed)
        _, report = self.run(ref.xyz[:n_reference], qry.xyz[:n_query], k)
        return report


def _stream(dram: DramModel, name: str, base: int, nbytes: int) -> int:
    cycles = 0
    offset = 0
    while offset < nbytes:
        take = min(STREAM_CHUNK_BYTES, nbytes - offset)
        cycles += dram.access(name, base + offset, take, write=False)
        offset += take
    return cycles
