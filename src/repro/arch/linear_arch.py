"""Linear (brute-force) search architecture — the baseline of Section 3.

The frame's reference points stream from DRAM once per batch of
``n_fus`` query points, broadcast to every FU; all access is sequential,
so memory bandwidth utilization is very high (the paper measures 98.7%)
but the access *volume* is O(N^2 / n_fus) — exactly the pathology the
k-d tree architecture removes.

``simulate`` produces the cycle/traffic report without doing the O(N^2)
arithmetic; ``run`` additionally computes the exact kNN results with the
same batching (functionally identical to brute force, verified in the
test suite).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.fu import fu_batch_cycles
from repro.arch.params import POINT_BYTES, RESULT_BYTES, STREAM_CHUNK_BYTES
from repro.arch.report import FrameReport
from repro.baselines.linear import knn_bruteforce
from repro.geometry import PointCloud
from repro.kdtree.search import QueryResult
from repro.sim.address import AddressAllocator
from repro.sim.dram import DramModel, DramTimingParams


@dataclass(frozen=True)
class LinearArchConfig:
    """Geometry of the linear-search accelerator."""

    n_fus: int = 64
    dram: DramTimingParams = DramTimingParams()

    def __post_init__(self):
        if self.n_fus < 1:
            raise ValueError("need at least one FU")


class LinearArch:
    """Transaction-level model of the linear kNN accelerator."""

    def __init__(self, config: LinearArchConfig | None = None):
        self.config = config or LinearArchConfig()

    # ------------------------------------------------------------------
    def simulate(self, n_reference: int, n_query: int, k: int) -> FrameReport:
        """Cycle/traffic accounting for one frame (no kNN arithmetic)."""
        if min(n_reference, n_query, k) < 1:
            raise ValueError("n_reference, n_query and k must be positive")
        cfg = self.config
        dram = DramModel(cfg.dram)
        allocator = AddressAllocator()
        ref_region = allocator.allocate("reference", n_reference * POINT_BYTES)
        query_region = allocator.allocate("query", n_query * POINT_BYTES)
        result_region = allocator.allocate("results", n_query * k * RESULT_BYTES)

        passes = -(-n_query // cfg.n_fus)
        phase_cycles: dict[str, int] = {}
        compute_total = 0
        total = 0

        for p in range(passes):
            batch = min(cfg.n_fus, n_query - p * cfg.n_fus)
            # Load the batch's query points (sequential).
            mem = _stream(dram, "RdQuery",
                          query_region.addr(p * cfg.n_fus * POINT_BYTES),
                          batch * POINT_BYTES, write=False)
            # Stream the whole reference frame, broadcast to the FUs.
            mem += _stream(dram, "RdRef", ref_region.base,
                           n_reference * POINT_BYTES, write=False)
            compute = fu_batch_cycles(batch, n_reference, cfg.n_fus)
            compute_total += compute
            # FUs consume one point per cycle; the stream feeds them at
            # the memory rate, so the pass takes the slower of the two.
            pass_cycles = max(mem, compute)
            # Flush results (sequential).
            pass_cycles += _stream(
                dram, "WrResult",
                result_region.addr(p * cfg.n_fus * k * RESULT_BYTES),
                batch * k * RESULT_BYTES, write=True)
            total += pass_cycles

        phase_cycles["stream_passes"] = total
        return FrameReport(
            architecture=f"linear-{cfg.n_fus}fu",
            n_reference=n_reference,
            n_query=n_query,
            k=k,
            total_cycles=total,
            phase_cycles=phase_cycles,
            compute_cycles={"fu": compute_total},
            dram=dram.stats,
        )

    def run(
        self,
        reference: PointCloud | np.ndarray,
        queries: PointCloud | np.ndarray,
        k: int,
    ) -> tuple[QueryResult, FrameReport]:
        """Functional execution plus the performance report."""
        ref = reference.xyz if isinstance(reference, PointCloud) else np.asarray(reference)
        qry = queries.xyz if isinstance(queries, PointCloud) else np.asarray(queries)
        result = knn_bruteforce(ref, qry, k)
        report = self.simulate(ref.shape[0], qry.shape[0], k)
        return result, report


def _stream(dram: DramModel, name: str, base: int, nbytes: int, *, write: bool) -> int:
    """Issue a long sequential transfer as chunked accesses."""
    cycles = 0
    offset = 0
    while offset < nbytes:
        take = min(STREAM_CHUNK_BYTES, nbytes - offset)
        cycles += dram.access(name, base + offset, take, write=write)
        offset += take
    return cycles
