"""Merge-sort accelerator cycle model.

TBuild's construction phase sorts sample subsets at every tree level.
The prototype uses a dedicated n-way merge-sort unit (after Pugsley et
al.): each round merges ``n_way`` sorted runs at one element per cycle,
so sorting ``N`` elements takes ``ceil(log_n_way(N))`` rounds of ``N``
element-cycles each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MergeSorterConfig:
    """Sorter geometry: merge width and per-round control overhead."""

    n_way: int = 4
    round_setup_cycles: int = 16

    def __post_init__(self):
        if self.n_way < 2:
            raise ValueError("merge sorter needs n_way >= 2")
        if self.round_setup_cycles < 0:
            raise ValueError("round_setup_cycles must be non-negative")


class MergeSorter:
    """Cycle accounting for a hardware n-way merge sorter."""

    def __init__(self, config: MergeSorterConfig | None = None):
        self.config = config or MergeSorterConfig()
        self.total_cycles = 0
        self.total_elements = 0

    def rounds(self, n: int) -> int:
        """Merge rounds needed to fully sort ``n`` elements."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n <= 1:
            return 0
        return max(1, math.ceil(math.log(n, self.config.n_way)))

    def sort_cycles(self, n: int) -> int:
        """Cycles to sort one array of ``n`` elements."""
        r = self.rounds(n)
        return r * (n + self.config.round_setup_cycles)

    def charge(self, n: int) -> int:
        """Account one sort and return its cost."""
        cycles = self.sort_cycles(n)
        self.total_cycles += cycles
        self.total_elements += n
        return cycles

    def charge_many(self, sizes) -> int:
        """Account a sequence of sorts (e.g. a BuildTrace's sort_sizes)."""
        return sum(self.charge(int(n)) for n in sizes)
