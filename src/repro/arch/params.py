"""Constants shared by all architecture models.

These mirror the FPGA prototype of Section 6: a 100 MHz core clock, a
64-bit DDR4 interface, 3 x 32-bit fixed-point words per point, and
8-byte (index, distance) result records.
"""

from __future__ import annotations

CORE_CLOCK_HZ = 100_000_000
CYCLE_SECONDS = 1.0 / CORE_CLOCK_HZ

#: Bytes of one stored point: x, y, z as 32-bit fixed-point words.
POINT_BYTES = 12

#: Bytes of one kNN result record: 32-bit point index + 32-bit distance.
RESULT_BYTES = 8

#: Bytes of one tree node in the on-chip caches: threshold (4), packed
#: dimension/flags (2), and three node pointers (2 each, 16-bit word
#: addresses are ample for trees of a few thousand nodes), padded to a
#: word-addressable 16-byte record.
TREE_NODE_BYTES = 16

#: Bytes of one bucket-map entry: DRAM start address of a bucket chain.
BUCKET_MAP_BYTES = 4

#: Size of sequential DRAM accesses issued by streaming engines.  The
#: MIG-style controller accepts bounded bursts; 4 KiB keeps the access
#: count realistic without affecting throughput (row misses are charged
#: per row crossed either way).
STREAM_CHUNK_BYTES = 4096


def cycles_to_seconds(cycles: int | float) -> float:
    """Convert core cycles to wall-clock seconds (10 ns per cycle)."""
    return float(cycles) * CYCLE_SECONDS


def fps_from_cycles(cycles_per_frame: int | float) -> float:
    """Frames per second implied by a per-frame cycle count."""
    if cycles_per_frame <= 0:
        raise ValueError("cycles_per_frame must be positive")
    return CORE_CLOCK_HZ / float(cycles_per_frame)
