"""Parallel tree-traversal simulation (Section 4.3, Figure 9b).

Multiple workers route points down the tree simultaneously.  Steps
inside the replicated top levels are free of contention (every worker
owns a copy); steps into the banked lower levels must win a bank grant
— each bank serves one node request per cycle.  This cycle-accurate
arbitration model is what produces the paper's Figure 9b: near-linear
speedup for ``random`` and ``group`` partitions up to ~2 workers per
bank, and the collapse of the ``leftright`` scheme under skewed data.

:func:`traversal_cycles_estimate` is the closed-form companion used
inside the QuickNN frame model, validated against this simulator in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.tree_cache import BankedTreeCache
from repro.kdtree.node import KdTree
from repro.obs import get_registry


@dataclass(frozen=True)
class TraversalReport:
    """Outcome of one parallel-traversal simulation."""

    n_points: int
    n_workers: int
    cycles: int
    node_visits: int
    bank_requests: np.ndarray
    stall_cycles: int

    @property
    def visits_per_cycle(self) -> float:
        return self.node_visits / self.cycles if self.cycles else 0.0

    def as_dict(self) -> dict:
        """Flat scalar view (the repo-wide stats convention)."""
        return {
            "n_points": self.n_points,
            "n_workers": self.n_workers,
            "cycles": self.cycles,
            "node_visits": self.node_visits,
            "stall_cycles": self.stall_cycles,
            "visits_per_cycle": self.visits_per_cycle,
        }


def simulate_traversal(
    tree: KdTree,
    points: np.ndarray,
    cache: BankedTreeCache,
    *,
    n_workers: int,
    compare_cycles: int = 1,
    assignment: str = "blocked",
) -> TraversalReport:
    """Cycle-accurate worker/bank arbitration for a placement pass.

    A worker alternates between fetching its next node (one cycle
    locally in the replicated region, or one granted bank request) and
    ``compare_cycles`` of threshold comparison before the next fetch —
    which is why ``n`` banks sustain up to ``2n`` workers, as the paper
    observes.  Every bank grants a single request per cycle, with
    rotating priority to avoid systematic worker bias.

    ``assignment`` controls how stream points are dealt to workers:
    ``"blocked"`` gives each worker a contiguous stripe of the stream
    (the hardware DMA pattern: with an azimuth-ordered LiDAR stream the
    workers then occupy *different* spatial sectors, which is what the
    subtree-per-bank ``group`` partition exploits); ``"queue"`` is a
    shared work queue (workers cluster on consecutive, spatially
    correlated points).
    """
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if compare_cycles < 0:
        raise ValueError("compare_cycles must be non-negative")
    if assignment not in ("blocked", "queue"):
        raise ValueError("assignment must be 'blocked' or 'queue'")
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n_points = points.shape[0]
    if n_points == 0:
        raise ValueError("need at least one point to traverse")

    nodes = tree.nodes
    bank_of = cache.bank_of
    n_banks = cache.config.n_banks

    next_point = 0
    if assignment == "blocked":
        bounds = np.linspace(0, n_points, n_workers + 1).astype(np.int64)
        stripe_next = bounds[:-1].copy()
    # Per-worker state: current node index or -1 when idle/fetching.
    current = np.full(n_workers, -2, dtype=np.int64)  # -2 = needs a new point
    point_of = np.full(n_workers, -1, dtype=np.int64)
    busy_until = np.zeros(n_workers, dtype=np.int64)  # comparing until this cycle

    def take_point(worker: int) -> int:
        """Next point index for this worker, or -1 when exhausted."""
        nonlocal next_point
        if assignment == "queue":
            if next_point >= n_points:
                return -1
            index = next_point
            next_point += 1
            return index
        if stripe_next[worker] >= bounds[worker + 1]:
            return -1
        index = int(stripe_next[worker])
        stripe_next[worker] += 1
        next_point += 1
        return index

    cycles = 0
    node_visits = 0
    stall_cycles = 0
    bank_requests = np.zeros(n_banks, dtype=np.int64)
    active = True
    rr_offset = 0

    def desired_child(worker: int) -> int:
        node = nodes[current[worker]]
        if node.is_leaf:
            return -1
        value = points[point_of[worker], node.dim]
        return node.left if value <= node.threshold else node.right

    while active:
        cycles += 1
        # Collect this cycle's bank requests: worker -> (bank, child).
        requests: dict[int, list[tuple[int, int]]] = {}
        movers: list[tuple[int, int]] = []

        for w in range(n_workers):
            if busy_until[w] >= cycles:
                continue  # still comparing the last fetched node
            if current[w] == -2:
                taken = take_point(w)
                if taken >= 0:
                    point_of[w] = taken
                    movers.append((w, tree.ROOT))  # root is replicated: free
                    node_visits += 1
                continue
            child = desired_child(w)
            if child == -1:
                current[w] = -2  # reached a leaf; fetch a new point next cycle
                continue
            bank = bank_of[child]
            if bank == REPLICATED_BANK:
                movers.append((w, child))
                node_visits += 1
            else:
                requests.setdefault(int(bank), []).append((w, child))

        # Grant one request per bank, rotating priority across cycles.
        for bank, queue in requests.items():
            queue.sort(key=lambda wc: (wc[0] - rr_offset) % n_workers)
            winner, child = queue[0]
            movers.append((winner, child))
            node_visits += 1
            bank_requests[bank] += 1
            stall_cycles += len(queue) - 1

        for w, node in movers:
            current[w] = node
            busy_until[w] = cycles + compare_cycles

        rr_offset = (rr_offset + 1) % n_workers
        active = next_point < n_points or (current != -2).any()

    obs = get_registry()
    if obs.enabled:
        obs.counter("arch.traversal.runs").inc()
        obs.counter("arch.traversal.points").inc(n_points)
        obs.counter("arch.traversal.cycles").inc(cycles)
        obs.counter("arch.traversal.node_visits").inc(node_visits)
        obs.counter("arch.traversal.stall_cycles").inc(stall_cycles)
    return TraversalReport(
        n_points=n_points,
        n_workers=n_workers,
        cycles=cycles,
        node_visits=node_visits,
        bank_requests=bank_requests,
        stall_cycles=stall_cycles,
    )


#: Alias for readability inside the hot loop above.
REPLICATED_BANK = -1


def traversal_cycles_estimate(
    n_points: int,
    tree_depth: int,
    *,
    n_workers: int,
    n_banks: int,
    replicated_levels: int,
) -> int:
    """Closed-form traversal time used by the QuickNN frame model.

    Work splits into a replicated part (parallel across workers, one
    level per cycle each) and a banked part (bounded by both worker
    count and aggregate bank bandwidth of ``n_banks`` grants/cycle).
    """
    if min(n_points, n_workers, n_banks) < 1 or tree_depth < 0:
        raise ValueError("invalid traversal estimate parameters")
    levels = tree_depth + 1
    upper = min(replicated_levels, levels)
    lower = levels - upper
    upper_cycles = n_points * upper / n_workers
    lower_cycles = n_points * lower / min(n_workers, n_banks + n_workers / 2)
    bank_bound = n_points * lower / n_banks
    return int(np.ceil(max(upper_cycles + lower_cycles, bank_bound)))
